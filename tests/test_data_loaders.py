"""Tests for the delimited-file loader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loaders import load_delimited
from repro.exceptions import DataValidationError


def write(tmp_path, text, name="data.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestBasicParsing:
    def test_headerless_numeric(self, tmp_path):
        path = write(tmp_path, "1,2,3\n4,5,6\n")
        table = load_delimited(path)
        assert table.data.shape == (2, 3)
        assert table.labels is None
        assert table.feature_names == ("f0", "f1", "f2")

    def test_header_detected(self, tmp_path):
        path = write(tmp_path, "a,b\n1,2\n3,4\n")
        table = load_delimited(path)
        assert table.feature_names == ("a", "b")
        assert table.n == 2

    def test_header_forced_off(self, tmp_path):
        path = write(tmp_path, "1,2\n3,4\n")
        table = load_delimited(path, has_header=False)
        assert table.n == 2

    def test_custom_delimiter(self, tmp_path):
        path = write(tmp_path, "1;2\n3;4\n")
        table = load_delimited(path, delimiter=";")
        assert table.data.shape == (2, 2)

    def test_float32_output(self, tmp_path):
        path = write(tmp_path, "1.5,2.5\n")
        assert load_delimited(path).data.dtype == np.float32


class TestLabels:
    def test_label_by_index(self, tmp_path):
        path = write(tmp_path, "1,2,red\n3,4,blue\n5,6,red\n")
        table = load_delimited(path, label_column=-1)
        assert table.data.shape == (3, 2)
        assert table.labels.tolist() == [0, 1, 0]
        assert table.label_mapping == {"red": 0, "blue": 1}

    def test_label_by_name(self, tmp_path):
        path = write(tmp_path, "x,y,class\n1,2,a\n3,4,b\n")
        table = load_delimited(path, label_column="class")
        assert table.feature_names == ("x", "y")
        assert table.labels.tolist() == [0, 1]

    def test_named_label_without_header_rejected(self, tmp_path):
        path = write(tmp_path, "1,2,a\n")
        with pytest.raises(DataValidationError, match="no header"):
            load_delimited(path, has_header=False, label_column="class")

    def test_unknown_label_name_rejected(self, tmp_path):
        path = write(tmp_path, "x,y\n1,2\n")
        with pytest.raises(DataValidationError, match="not in header"):
            load_delimited(path, label_column="class")

    def test_label_index_out_of_range(self, tmp_path):
        path = write(tmp_path, "1,2\n")
        with pytest.raises(DataValidationError, match="out of range"):
            load_delimited(path, label_column=5)


class TestMissingValues:
    def test_rows_with_missing_dropped(self, tmp_path):
        path = write(tmp_path, "1,2\n?,4\n5,6\n")
        table = load_delimited(path)
        assert table.n == 2

    def test_missing_raises_when_not_dropping(self, tmp_path):
        path = write(tmp_path, "1,2\n?,4\n")
        with pytest.raises(DataValidationError, match="missing"):
            load_delimited(path, drop_missing=False)

    def test_all_rows_missing_rejected(self, tmp_path):
        path = write(tmp_path, "?,1\n2,?\n")
        with pytest.raises(DataValidationError, match="every row"):
            load_delimited(path)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataValidationError, match="not found"):
            load_delimited(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        with pytest.raises(DataValidationError, match="no data"):
            load_delimited(write(tmp_path, ""))

    def test_header_only(self, tmp_path):
        with pytest.raises(DataValidationError, match="no data rows"):
            load_delimited(write(tmp_path, "a,b\n"))

    def test_ragged_rows_rejected(self, tmp_path):
        with pytest.raises(DataValidationError, match="differing width"):
            load_delimited(write(tmp_path, "1,2\n3,4,5\n"))

    def test_non_numeric_feature_rejected(self, tmp_path):
        with pytest.raises(DataValidationError, match="non-numeric"):
            load_delimited(write(tmp_path, "1,2\n3,oops\n"), has_header=False)


class TestEndToEnd:
    def test_loaded_table_clusters(self, tmp_path):
        """A loaded CSV flows straight into proclus()."""
        rng = np.random.default_rng(0)
        rows = ["x,y,z,class"]
        for c, center in enumerate((0.2, 0.8)):
            for _ in range(120):
                p = rng.normal(center, 0.03, 3)
                rows.append(",".join(f"{v:.4f}" for v in p) + f",c{c}")
        path = write(tmp_path, "\n".join(rows) + "\n")
        table = load_delimited(path, label_column="class")

        from repro import proclus
        from repro.data import minmax_normalize
        from repro.eval.metrics import purity

        result = proclus(
            minmax_normalize(table.data), k=2, l=2, backend="fast", seed=0,
        )
        assert purity(table.labels, result.labels) > 0.95
