"""End-to-end validation: PROCLUS on the SIMT emulator vs the engines.

Running the complete algorithm kernel-for-kernel on the emulator and
getting the identical clustering is the strongest evidence that the
vectorized engines compute what the paper's CUDA program computes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import proclus
from repro.gpu_impl.emulated_engine import EmulatedGpuProclusEngine
from repro.params import ProclusParams


@pytest.fixture(scope="module")
def tiny():
    from repro.data.normalize import minmax_normalize
    from repro.data.synthetic import generate_subspace_data

    ds = generate_subspace_data(n=120, d=6, n_clusters=3, subspace_dims=3, seed=5)
    return minmax_normalize(ds.data)


@pytest.fixture
def params():
    return ProclusParams(k=3, l=3, a=15, b=4, patience=3)


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_vectorized_backends(self, tiny, params, seed):
        reference = proclus(tiny, backend="proclus", params=params, seed=seed)
        engine = EmulatedGpuProclusEngine(params=params, seed=seed)
        emulated = engine.fit(tiny)
        assert emulated.same_clustering(reference)
        assert emulated.iterations == reference.iterations
        assert emulated.best_iteration == reference.best_iteration
        assert emulated.cost == pytest.approx(reference.cost, rel=1e-12)

    def test_schedule_shuffling_does_not_change_result(self, tiny, params):
        plain = EmulatedGpuProclusEngine(params=params, seed=3).fit(tiny)
        shuffled = EmulatedGpuProclusEngine(
            params=params, seed=3, schedule_seed=99
        ).fit(tiny)
        assert plain.same_clustering(shuffled)

    def test_reports_kernel_launches(self, tiny, params):
        engine = EmulatedGpuProclusEngine(params=params, seed=0)
        result = engine.fit(tiny)
        # Greedy alone launches 2 per pick; each iteration several more.
        assert result.stats.counters["emulator.kernel_launches"] > 20
        assert result.stats.hardware == "SIMT emulator"

    def test_outliers_match_reference(self, tiny, params):
        reference = proclus(tiny, backend="fast", params=params, seed=1)
        emulated = EmulatedGpuProclusEngine(params=params, seed=1).fit(tiny)
        assert np.array_equal(
            emulated.labels == -1, reference.labels == -1
        )


class TestEmulatedGpuFast:
    """Section 4.2's kernel pipeline, end to end on the emulator."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_vectorized_fast(self, tiny, params, seed):
        from repro.gpu_impl.emulated_engine import EmulatedGpuFastProclusEngine

        reference = proclus(tiny, backend="fast", params=params, seed=seed)
        emulated = EmulatedGpuFastProclusEngine(params=params, seed=seed).fit(tiny)
        assert emulated.same_clustering(reference)
        assert emulated.iterations == reference.iterations
        assert emulated.cost == pytest.approx(reference.cost, rel=1e-12)

    def test_matches_plain_emulated_engine(self, tiny, params):
        from repro.gpu_impl.emulated_engine import (
            EmulatedGpuFastProclusEngine,
            EmulatedGpuProclusEngine,
        )

        plain = EmulatedGpuProclusEngine(params=params, seed=4).fit(tiny)
        fast = EmulatedGpuFastProclusEngine(params=params, seed=4).fit(tiny)
        assert fast.same_clustering(plain)

    def test_shuffled_schedule_stable(self, tiny, params):
        from repro.gpu_impl.emulated_engine import EmulatedGpuFastProclusEngine

        a = EmulatedGpuFastProclusEngine(params=params, seed=5).fit(tiny)
        b = EmulatedGpuFastProclusEngine(
            params=params, seed=5, schedule_seed=17
        ).fit(tiny)
        assert a.same_clustering(b)

    def test_dist_found_rows_bounded(self, tiny, params):
        from repro.gpu_impl.emulated_engine import EmulatedGpuFastProclusEngine

        engine = EmulatedGpuFastProclusEngine(params=params, seed=0)
        engine.fit(tiny)
        m = params.effective_num_potential(tiny.shape[0])
        assert engine._dist_found.sum() <= m
        assert engine._dist_found.sum() >= params.k


class TestEmulatedGpuFastStar:
    """The k-slot cache pipeline (Section 3.2) on the emulator."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_vectorized_fast_star(self, tiny, params, seed):
        from repro.gpu_impl.emulated_engine import (
            EmulatedGpuFastStarProclusEngine,
        )

        reference = proclus(tiny, backend="fast-star", params=params, seed=seed)
        emulated = EmulatedGpuFastStarProclusEngine(
            params=params, seed=seed
        ).fit(tiny)
        assert emulated.same_clustering(reference)
        assert emulated.iterations == reference.iterations

    def test_slot_state_bounded_to_k(self, tiny, params):
        from repro.gpu_impl.emulated_engine import (
            EmulatedGpuFastStarProclusEngine,
        )

        engine = EmulatedGpuFastStarProclusEngine(params=params, seed=0)
        engine.fit(tiny)
        assert engine._dist.shape[0] == params.k
        assert engine._h.shape[0] == params.k
