"""Focused tests for the multi-core CPU variants (the OpenMP analog)."""

from __future__ import annotations

import pytest

from repro import proclus
from repro.cpu_parallel import (
    MulticoreFastProclusEngine,
    MulticoreFastStarProclusEngine,
    MulticoreProclusEngine,
)
from repro.hardware.specs import INTEL_I7_9750H, INTEL_I9_10940X
from repro.params import ProclusParams

ENGINES = {
    "multicore": MulticoreProclusEngine,
    "multicore-fast": MulticoreFastProclusEngine,
    "multicore-fast-star": MulticoreFastStarProclusEngine,
}


@pytest.fixture(scope="module")
def workload():
    from repro.data.normalize import minmax_normalize
    from repro.data.synthetic import generate_subspace_data

    ds = generate_subspace_data(n=6000, d=10, n_clusters=5, subspace_dims=4, seed=0)
    return minmax_normalize(ds.data), ProclusParams(k=5, l=4, a=40, b=6)


class TestSpeedupEnvelope:
    def test_speedup_within_amdahl_bounds(self, workload):
        """Multicore speedup must exceed 3x but never the core count."""
        data, params = workload
        scalar = proclus(data, backend="proclus", params=params, seed=0)
        multi = proclus(data, backend="multicore", params=params, seed=0)
        speedup = scalar.stats.modeled_seconds / multi.stats.modeled_seconds
        assert 3.0 < speedup <= INTEL_I7_9750H.cores

    def test_paper_band_up_to_6x(self, workload):
        data, params = workload
        scalar = proclus(data, backend="proclus", params=params, seed=0)
        multi = proclus(data, backend="multicore", params=params, seed=0)
        speedup = scalar.stats.modeled_seconds / multi.stats.modeled_seconds
        assert speedup <= 6.0

    def test_more_cores_faster(self, workload):
        data, params = workload
        small = proclus(
            data, backend="multicore", params=params, seed=0,
            cpu_spec=INTEL_I7_9750H,
        )
        big = proclus(
            data, backend="multicore", params=params, seed=0,
            cpu_spec=INTEL_I9_10940X,
        )
        assert big.stats.modeled_seconds < small.stats.modeled_seconds

    def test_fast_variant_faster_than_plain_multicore(self, workload):
        data, params = workload
        plain = proclus(data, backend="multicore", params=params, seed=0)
        fast = proclus(data, backend="multicore-fast", params=params, seed=0)
        assert fast.stats.modeled_seconds < plain.stats.modeled_seconds


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_identical_to_sequential(self, workload, name):
        data, params = workload
        seq = proclus(data, backend="proclus", params=params, seed=3)
        multi = proclus(data, backend=name, params=params, seed=3)
        assert multi.same_clustering(seq)

    def test_hardware_name_reports_cores(self, workload):
        data, params = workload
        result = proclus(data, backend="multicore", params=params, seed=0)
        assert "6 cores" in result.stats.hardware

    def test_same_op_counts_as_sequential(self, workload):
        """The parallel version performs the same work, just spread out."""
        data, params = workload
        seq = proclus(data, backend="proclus", params=params, seed=1)
        multi = proclus(data, backend="multicore", params=params, seed=1)
        assert (
            multi.stats.counters["cpu.scalar_ops"]
            == seq.stats.counters["cpu.scalar_ops"]
        )
        assert (
            multi.stats.counters["cpu.vector_ops"]
            == seq.stats.counters["cpu.vector_ops"]
        )
