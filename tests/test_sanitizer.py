"""Tests for the kernel sanitizer (repro.gpu.sanitizer).

Positive controls: the deliberately buggy kernels in
:mod:`negative_kernels` must each be flagged with their specific
diagnostic class.  Negative controls: their fixed variants — and the
repository's shipped kernels — must produce zero diagnostics.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests import negative_kernels as bad
from repro.exceptions import SanitizerError
from repro.gpu import DeviceArray, MemoryManager, SimtEmulator
from repro.gpu.sanitizer import (
    ATOMIC_PLAIN_CONFLICT,
    OUT_OF_BOUNDS,
    RACE_READ_WRITE,
    RACE_WRITE_WRITE,
    UNINITIALIZED_SHARED_READ,
    Sanitizer,
    TrackedArray,
    sanitize_launch,
)

pytestmark = pytest.mark.sanitized


class TestNegativeControls:
    """Each buggy fixture kernel is flagged with its specific class."""

    def test_oob_write_flagged(self):
        out = np.zeros(8, dtype=np.float32)
        report = sanitize_launch(bad.oob_write_kernel, 1, 8, out)
        assert report.kinds == {OUT_OF_BOUNDS}
        diag = report.by_kind(OUT_OF_BOUNDS)[0]
        assert diag.array == "out"
        assert "outside shape (8,)" in diag.detail

    def test_oob_write_raises_fatally(self):
        out = np.zeros(8, dtype=np.float32)
        emulator = SimtEmulator(sanitizer=Sanitizer())
        with pytest.raises(SanitizerError) as excinfo:
            emulator.launch(bad.oob_write_kernel, 1, 8, out)
        assert excinfo.value.diagnostic.kind == OUT_OF_BOUNDS

    def test_negative_index_flagged_not_wrapped(self):
        data = np.arange(8, dtype=np.float32)
        out = np.zeros(8, dtype=np.float32)
        report = sanitize_launch(bad.oob_negative_read_kernel, 1, 8, data, out)
        assert report.kinds == {OUT_OF_BOUNDS}
        assert report.by_kind(OUT_OF_BOUNDS)[0].array == "data"

    def test_missing_sync_flagged_as_read_write_race(self):
        out = np.zeros(8, dtype=np.float32)
        report = sanitize_launch(bad.missing_sync_kernel, 1, 8, out)
        assert report.kinds == {RACE_READ_WRITE}
        diag = report.by_kind(RACE_READ_WRITE)[0]
        assert diag.array == "shared:tile"
        assert "no barrier between" in diag.detail

    def test_atomic_plain_conflict_flagged(self):
        out = np.zeros(1, dtype=np.float64)
        report = sanitize_launch(bad.atomic_plain_conflict_kernel, 1, 8, out)
        assert report.kinds == {ATOMIC_PLAIN_CONFLICT}
        assert "atomic" in report.by_kind(ATOMIC_PLAIN_CONFLICT)[0].detail

    def test_uninitialized_shared_read_flagged(self):
        out = np.zeros(8, dtype=np.float32)
        report = sanitize_launch(bad.uninit_shared_read_kernel, 1, 8, out)
        assert report.kinds == {UNINITIALIZED_SHARED_READ}
        diag = report.by_kind(UNINITIALIZED_SHARED_READ)[0]
        assert diag.array == "shared:tile"
        assert diag.location is not None

    def test_cross_block_write_race_flagged(self):
        out = np.zeros(1, dtype=np.float64)
        report = sanitize_launch(bad.cross_block_race_kernel, 4, 4, out)
        assert report.kinds == {RACE_WRITE_WRITE}


class TestFixedVariants:
    """The corrected counterparts run silently."""

    def test_barrier_orders_shared_exchange(self):
        out = np.zeros(8, dtype=np.float32)
        report = sanitize_launch(bad.fixed_sync_kernel, 1, 8, out)
        assert report.ok, report.render()
        np.testing.assert_array_equal(
            out, np.array([1, 2, 3, 4, 5, 6, 7, 0], dtype=np.float32)
        )

    def test_atomic_only_accumulation_is_silent(self):
        out = np.zeros(1, dtype=np.float64)
        report = sanitize_launch(bad.atomic_only_kernel, 4, 8, out)
        assert report.ok, report.render()
        assert out[0] == 32.0

    def test_shuffled_schedule_still_silent(self):
        out = np.zeros(8, dtype=np.float32)
        report = sanitize_launch(bad.fixed_sync_kernel, 1, 8, out,
                                 schedule_seed=3)
        assert report.ok, report.render()


class TestShippedKernelsSilent:
    """A shipped pipeline runs sanitized with zero diagnostics (the
    full sweep is `repro sanitize`; this is the in-suite smoke check)."""

    def test_compute_l_pipeline_clean(self):
        from repro.gpu_impl.kernels.compute_l import compute_l_emulated

        rng = np.random.default_rng(0)
        data = rng.random((25, 4), dtype=np.float32)
        sanitizer = Sanitizer()
        emulator = SimtEmulator(schedule_seed=1, sanitizer=sanitizer)
        compute_l_emulated(data, np.array([2, 7, 11]), emulator=emulator,
                           threads_per_block=8)
        assert sanitizer.report.ok, sanitizer.report.render()
        assert sanitizer.report.launches == 3
        assert sanitizer.report.accesses > 0


class TestWiring:
    """The three integration layers: launch flag, emulator ctor, CLI
    (the CLI layer is covered in test_cli.py)."""

    def test_launch_sanitize_flag_creates_sanitizer(self):
        emulator = SimtEmulator()
        assert emulator.sanitizer is None
        out = np.zeros(4, dtype=np.float64)
        emulator.launch(bad.atomic_only_kernel, 1, 4, out, sanitize=True)
        assert emulator.sanitizer is not None
        assert emulator.sanitizer.report.launches == 1
        assert emulator.sanitizer.report.ok

    def test_unsanitized_launch_logs_nothing(self):
        emulator = SimtEmulator()
        out = np.zeros(1, dtype=np.float64)
        emulator.launch(bad.atomic_plain_conflict_kernel, 1, 8, out)
        assert emulator.sanitizer is None  # racy kernel ran unobserved

    def test_report_accumulates_across_launches(self):
        sanitizer = Sanitizer()
        emulator = SimtEmulator(sanitizer=sanitizer)
        out = np.zeros(4, dtype=np.float64)
        emulator.launch(bad.atomic_only_kernel, 1, 4, out)
        emulator.launch(bad.atomic_plain_conflict_kernel, 1, 4, out)
        assert sanitizer.report.launches == 2
        assert sanitizer.report.kinds == {ATOMIC_PLAIN_CONFLICT}
        assert sanitizer.report.by_kind(ATOMIC_PLAIN_CONFLICT)[0].launch == 2

    def test_device_array_tracked_labels_diagnostics(self):
        manager = MemoryManager(capacity_bytes=1 << 20)
        array = manager.alloc(8, np.float32, name="delta", fill=0.0)
        sanitizer = Sanitizer()
        emulator = SimtEmulator(sanitizer=sanitizer)
        with pytest.raises(SanitizerError):
            emulator.launch(bad.oob_write_kernel, 1, 8,
                            array.tracked(sanitizer))
        assert sanitizer.report.by_kind(OUT_OF_BOUNDS)[0].array == "delta"


class TestTrackedArray:
    def test_behaves_like_ndarray(self):
        sanitizer = Sanitizer()
        tracked = sanitizer.track(np.arange(6, dtype=np.float32), "x")
        assert isinstance(tracked, TrackedArray)
        assert tracked.sum() == 15.0
        np.testing.assert_array_equal(tracked * 2, np.arange(6) * 2.0)

    def test_host_accesses_not_logged(self):
        sanitizer = Sanitizer()
        tracked = sanitizer.track(np.arange(6, dtype=np.float32), "x")
        tracked[0] = 9.0  # outside any launch: not in_kernel
        assert sanitizer.report.accesses == 0

    def test_retracking_reuses_registration(self):
        sanitizer = Sanitizer()
        base = np.zeros(4, dtype=np.float32)
        first = sanitizer.track(base, "a")
        second = sanitizer.track(base, "b")
        assert first._info is second._info
        assert sanitizer.track(first, "c") is first

    def test_views_and_ufunc_results_untracked(self):
        sanitizer = Sanitizer()
        tracked = sanitizer.track(np.zeros((3, 4), dtype=np.float32), "x")
        row = tracked[1]
        assert isinstance(row, TrackedArray)
        assert row._san is None  # derived views report nothing
        result = tracked + 1.0
        assert getattr(result, "_san", None) is None

    def test_writes_recorded_per_element(self):
        sanitizer = Sanitizer()
        tracked = sanitizer.track(np.zeros(8, dtype=np.float32), "x")
        sanitizer.begin_launch("manual")
        sanitizer.set_thread((0,), (0,), 0)
        tracked[3] = 1.0
        tracked[2:5]  # slice read covers three elements
        sanitizer.clear_thread()
        sanitizer.end_launch()
        assert sanitizer.report.accesses == 4
        assert sanitizer.report.ok


class TestReportRendering:
    def test_render_and_to_dict(self):
        out = np.zeros(8, dtype=np.float32)
        report = sanitize_launch(bad.missing_sync_kernel, 1, 8, out)
        text = report.render()
        # one diagnostic per raced element, all eight tile cells
        assert "8 diagnostics" in text
        assert RACE_READ_WRITE in text
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["diagnostics"][0]["kind"] == RACE_READ_WRITE
        assert payload["diagnostics"][0]["array"] == "shared:tile"

    def test_one_diagnostic_per_element(self):
        """A race over one cell reports once, however many threads hit it."""
        out = np.zeros(1, dtype=np.float64)
        report = sanitize_launch(bad.atomic_plain_conflict_kernel, 1, 16, out)
        assert len(report.diagnostics) == 1
