"""Edge cases of the engine loop: degenerate parameters and datasets."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro import proclus
from repro.core.state import NEVER_USED_DELTA
from repro.params import ProclusParams


@pytest.fixture(scope="module")
def data():
    from repro.data.normalize import minmax_normalize
    from repro.data.synthetic import generate_subspace_data

    ds = generate_subspace_data(n=600, d=6, n_clusters=3, subspace_dims=3, seed=1)
    return minmax_normalize(ds.data)


class TestDegenerateParameters:
    def test_b_equals_one_no_replacement_candidates(self, data):
        """With B=1 there are exactly k potential medoids: nothing can be
        replaced and the search must still terminate cleanly."""
        params = ProclusParams(k=3, l=3, a=10, b=1)
        for backend in ("proclus", "fast", "gpu-fast"):
            result = proclus(data, backend=backend, params=params, seed=0)
            # With a frozen medoid set, after the first (improving)
            # iteration every further one repeats the same clustering.
            assert result.iterations == 1 + params.patience
            assert result.best_iteration == 0

    def test_k_equals_one(self, data):
        """A single cluster: delta_i has no other medoid (infinite sphere),
        everything is assigned to it, no outliers exist."""
        params = ProclusParams(k=1, l=3, a=30, b=5)
        result = proclus(data, backend="proclus", params=params, seed=0)
        assert result.k == 1
        assert result.n_outliers == 0
        assert np.all(result.labels == 0)
        assert len(result.dimensions[0]) == 3

    def test_k_equals_one_identical_across_variants(self, data):
        params = ProclusParams(k=1, l=2, a=20, b=4)
        base = proclus(data, backend="proclus", params=params, seed=2)
        for backend in ("fast", "fast-star", "gpu", "gpu-fast"):
            assert proclus(data, backend=backend, params=params, seed=2).same_clustering(base)

    def test_max_iterations_caps_runaway(self, data):
        params = ProclusParams(k=3, l=3, a=20, b=4, patience=50, max_iterations=4)
        result = proclus(data, backend="fast", params=params, seed=0)
        assert result.iterations == 4

    def test_patience_one_minimal_search(self, data):
        params = ProclusParams(k=3, l=3, a=20, b=4, patience=1)
        result = proclus(data, backend="proclus", params=params, seed=0)
        assert result.iterations >= 2  # first improves, one stale ends it

    def test_l_equals_d_full_space(self, data):
        params = ProclusParams(k=3, l=6, a=20, b=4)  # d = 6
        result = proclus(data, backend="fast", params=params, seed=0)
        for dims in result.dimensions:
            assert dims == tuple(range(6))

    def test_min_deviation_one(self, data):
        params = ProclusParams(k=3, l=3, a=20, b=4, min_deviation=1.0)
        result = proclus(data, backend="proclus", params=params, seed=0)
        assert result.k == 3


class TestDegenerateData:
    def test_all_identical_points(self):
        data = np.full((200, 5), 0.5, dtype=np.float32)
        params = ProclusParams(k=2, l=2, a=10, b=3)
        base = proclus(data, backend="proclus", params=params, seed=0)
        fast = proclus(data, backend="fast", params=params, seed=0)
        assert base.same_clustering(fast)
        assert base.cost == 0.0

    def test_single_informative_dimension(self):
        rng = np.random.default_rng(0)
        data = np.zeros((400, 5), dtype=np.float32)
        data[:, 2] = rng.random(400)
        params = ProclusParams(k=2, l=2, a=15, b=3)
        result = proclus(data, backend="fast", params=params, seed=0)
        assert result.k == 2

    def test_two_points_two_clusters(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]], dtype=np.float32)
        params = ProclusParams(k=2, l=2, a=1, b=1)
        result = proclus(data, backend="proclus", params=params, seed=0)
        assert sorted(result.labels.tolist()) in ([0, 1], [-1, -1], [-1, 0], [-1, 1])

    def test_d_equals_two_minimum(self):
        rng = np.random.default_rng(1)
        data = rng.random((300, 2), dtype=np.float32)
        result = proclus(data, k=3, l=2, backend="fast", seed=0,
                         params=ProclusParams(k=3, l=2, a=15, b=3))
        assert all(dims == (0, 1) for dims in result.dimensions)


class HIncrementalMachine(RuleBasedStateMachine):
    """Stateful check of Theorem 3.2: arbitrary radius walks keep the
    incrementally maintained H equal to the recomputed sum."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(1234)
        self.data = rng.random((300, 4), dtype=np.float32)
        self.medoid = self.data[7]
        from repro.core.distance import euclidean_to_point

        self.dist = euclidean_to_point(self.data, self.medoid)
        self.h = np.zeros(4, dtype=np.float64)
        self.size = 0
        self.prev = np.float32(NEVER_USED_DELTA)

    @rule(radius=st.floats(0.0, 1.5, width=32))
    def update_radius(self, radius):
        from repro.core.distance import abs_diff_dim_sums

        radius = np.float32(radius)
        if radius >= self.prev:
            mask = (self.dist > self.prev) & (self.dist <= radius)
            lam = 1
        else:
            mask = (self.dist > radius) & (self.dist <= self.prev)
            lam = -1
        if mask.any():
            self.h += lam * abs_diff_dim_sums(self.data[mask], self.medoid)
            self.size += lam * int(mask.sum())
        self.prev = radius

    @invariant()
    def h_equals_recompute(self):
        from repro.core.distance import abs_diff_dim_sums

        mask = self.dist <= self.prev
        expected = abs_diff_dim_sums(self.data[mask], self.medoid)
        assert self.size == int(mask.sum())
        assert np.array_equal(self.h, expected)


TestHIncrementalMachine = HIncrementalMachine.TestCase
TestHIncrementalMachine.settings = settings(
    max_examples=20, stateful_step_count=20, deadline=None
)
