"""Tests for the greedy potential-medoid selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import euclidean_distances
from repro.core.greedy import greedy_select


@pytest.fixture
def sample():
    return np.random.default_rng(0).random((80, 5), dtype=np.float32)


class TestBasic:
    def test_first_pick_is_seed(self, sample):
        chosen = greedy_select(sample, 10, seed_index=17)
        assert chosen[0] == 17

    def test_picks_are_distinct(self, sample):
        chosen = greedy_select(sample, 20, seed_index=0)
        assert len(np.unique(chosen)) == 20

    def test_count_equal_sample_size_selects_all(self, sample):
        chosen = greedy_select(sample, 80, seed_index=3)
        assert sorted(chosen.tolist()) == list(range(80))

    def test_single_pick(self, sample):
        assert greedy_select(sample, 1, seed_index=5).tolist() == [5]

    def test_deterministic(self, sample):
        a = greedy_select(sample, 15, 2)
        b = greedy_select(sample, 15, 2)
        assert np.array_equal(a, b)


class TestMaximinProperty:
    def test_each_pick_maximizes_min_distance(self, sample):
        """Pick i must be the argmax of the min-distance to picks < i."""
        chosen = greedy_select(sample, 12, seed_index=4)
        dist = euclidean_distances(sample, sample[chosen])
        for i in range(1, 12):
            min_to_chosen = dist[:i].min(axis=0)
            assert min_to_chosen[chosen[i]] == min_to_chosen.max()

    def test_far_corner_selected_second(self):
        sample = np.zeros((5, 2), dtype=np.float32)
        sample[3] = [1.0, 1.0]  # the single distant point
        chosen = greedy_select(sample, 2, seed_index=0)
        assert chosen[1] == 3

    def test_tie_breaks_to_lowest_index(self):
        # Three identical distant points: the first one must win.
        sample = np.zeros((6, 2), dtype=np.float32)
        sample[2] = sample[4] = sample[5] = [1.0, 0.0]
        chosen = greedy_select(sample, 2, seed_index=0)
        assert chosen[1] == 2

    def test_spread_better_than_random(self, sample):
        """Greedy picks must be farther apart than a random subset."""
        chosen = greedy_select(sample, 10, seed_index=0)
        rng = np.random.default_rng(1)
        random_pick = rng.choice(80, 10, replace=False)

        def min_pairwise(ids):
            d = euclidean_distances(sample[ids], sample[ids]).astype(np.float64)
            np.fill_diagonal(d, np.inf)
            return d.min()

        assert min_pairwise(chosen) >= min_pairwise(random_pick)


class TestValidation:
    def test_rejects_zero_count(self, sample):
        with pytest.raises(ValueError):
            greedy_select(sample, 0, 0)

    def test_rejects_count_beyond_sample(self, sample):
        with pytest.raises(ValueError):
            greedy_select(sample, 81, 0)

    def test_rejects_seed_out_of_range(self, sample):
        with pytest.raises(ValueError):
            greedy_select(sample, 5, 80)
        with pytest.raises(ValueError):
            greedy_select(sample, 5, -1)
