"""Tests for the counters and the analytical hardware cost models."""

from __future__ import annotations

import pytest

from repro.hardware.counters import KernelLaunch, WorkCounter
from repro.hardware.cost_model import GpuModel, MulticoreCpuModel, ScalarCpuModel
from repro.hardware.specs import (
    GTX_1660_TI,
    INTEL_I7_9750H,
    INTEL_I9_10940X,
    RTX_3090,
    cpu_for_problem,
    gpu_for_problem,
)


class TestWorkCounter:
    def test_add_accumulates(self):
        c = WorkCounter()
        c.add("x", 3)
        c.add("x", 4)
        assert c.get("x") == 7

    def test_get_default(self):
        assert WorkCounter().get("missing") == 0.0
        assert WorkCounter().get("missing", 9.0) == 9.0

    def test_record_launch_folds_counters(self):
        c = WorkCounter()
        c.record_launch(KernelLaunch("k", "p", 4, 32, flops=10, gmem_bytes=20, atomic_ops=3))
        assert c.get("gpu.kernel_launches") == 1
        assert c.get("gpu.flops") == 10
        assert len(c.kernel_launches) == 1

    def test_merge(self):
        a, b = WorkCounter(), WorkCounter()
        a.add("x", 1)
        b.add("x", 2)
        b.record_launch(KernelLaunch("k", "p", 1, 1))
        a.merge(b)
        assert a.get("x") == 3
        assert len(a.kernel_launches) == 1

    def test_as_dict_is_copy(self):
        c = WorkCounter()
        c.add("x", 1)
        d = c.as_dict()
        d["x"] = 99
        assert c.get("x") == 1

    def test_total_threads(self):
        assert KernelLaunch("k", "p", 4, 32).total_threads == 128


class TestScalarCpuModel:
    def test_time_proportional_to_ops(self):
        m = ScalarCpuModel(INTEL_I7_9750H)
        t1 = m.work("p", scalar_ops=1e6)
        t2 = m.work("p", scalar_ops=2e6)
        assert t2 == pytest.approx(2 * t1)

    def test_vector_ops_faster_than_scalar(self):
        m = ScalarCpuModel(INTEL_I7_9750H)
        assert m.work("p", vector_ops=1e6) < m.work("p", scalar_ops=1e6)

    def test_phase_accumulation(self):
        m = ScalarCpuModel(INTEL_I7_9750H)
        m.work("a", scalar_ops=1e6)
        m.work("a", scalar_ops=1e6)
        m.work("b", scalar_ops=1e6)
        assert m.phase_seconds["a"] == pytest.approx(2 * m.phase_seconds["b"])
        assert m.total_seconds == pytest.approx(sum(m.phase_seconds.values()))

    def test_name_mentions_single_core(self):
        assert "1 core" in ScalarCpuModel(INTEL_I7_9750H).name


class TestMulticoreModel:
    def test_faster_than_scalar(self):
        scalar = ScalarCpuModel(INTEL_I7_9750H).work("p", scalar_ops=1e8)
        multi = MulticoreCpuModel(INTEL_I7_9750H).work("p", scalar_ops=1e8)
        assert multi < scalar

    def test_speedup_bounded_by_core_count(self):
        scalar = ScalarCpuModel(INTEL_I7_9750H).work("p", scalar_ops=1e9)
        multi = MulticoreCpuModel(INTEL_I7_9750H).work("p", scalar_ops=1e9)
        assert scalar / multi <= INTEL_I7_9750H.cores

    def test_fork_join_overhead_dominates_tiny_regions(self):
        m = MulticoreCpuModel(INTEL_I7_9750H)
        t = m.work("p", scalar_ops=10, regions=100)
        assert t >= 100 * INTEL_I7_9750H.fork_join_overhead_s

    def test_more_cores_faster(self):
        t6 = MulticoreCpuModel(INTEL_I7_9750H).work("p", scalar_ops=1e9)
        t14 = MulticoreCpuModel(INTEL_I9_10940X).work("p", scalar_ops=1e9)
        assert t14 < t6


class TestGpuModel:
    def make_launch(self, **kw):
        args = dict(name="k", phase="p", grid_blocks=1024, threads_per_block=256)
        args.update(kw)
        return KernelLaunch(**args)

    def test_launch_overhead_floor(self):
        m = GpuModel(GTX_1660_TI)
        t = m.launch_time(self.make_launch())
        assert t >= GTX_1660_TI.kernel_launch_overhead_s

    def test_memory_bound_time_scales_with_bytes(self):
        m = GpuModel(GTX_1660_TI)
        t1 = m.launch_time(self.make_launch(gmem_bytes=1e8))
        t2 = m.launch_time(self.make_launch(gmem_bytes=2e8))
        assert t2 == pytest.approx(2 * t1, rel=0.05)

    def test_compute_bound_when_flops_dominate(self):
        m = GpuModel(GTX_1660_TI)
        mem = m.launch_time(self.make_launch(gmem_bytes=1e6))
        both = m.launch_time(self.make_launch(gmem_bytes=1e6, flops=1e12))
        assert both > mem

    def test_low_ipc_slows_compute(self):
        m = GpuModel(GTX_1660_TI)
        fast = m.launch_time(self.make_launch(flops=1e11, ipc=1.0))
        slow = m.launch_time(self.make_launch(flops=1e11, ipc=0.25))
        assert slow > fast

    def test_atomic_throughput_term(self):
        m = GpuModel(GTX_1660_TI)
        t = m.launch_time(self.make_launch(atomic_ops=2e9))
        assert t >= 1.0  # 2e9 atomics at 2e9/s

    def test_small_launch_underutilizes_bandwidth(self):
        """One tiny block cannot saturate memory bandwidth."""
        m = GpuModel(GTX_1660_TI)
        tiny = m.launch_time(
            self.make_launch(grid_blocks=1, threads_per_block=32, gmem_bytes=1e7)
        )
        full = m.launch_time(
            self.make_launch(grid_blocks=4096, threads_per_block=256, gmem_bytes=1e7)
        )
        assert tiny > full

    def test_launch_accrues(self):
        m = GpuModel(GTX_1660_TI)
        m.launch(self.make_launch(gmem_bytes=1e7))
        assert m.total_seconds > 0
        assert m.counter.get("gpu.kernel_launches") == 1

    def test_resident_blocks_respects_smem(self):
        m = GpuModel(GTX_1660_TI)
        launch = self.make_launch(threads_per_block=64, smem_bytes_per_block=32 * 1024)
        assert m.resident_blocks_per_sm(launch) == 2


class TestSpecSelection:
    def test_small_problems_use_1660ti(self):
        assert gpu_for_problem(64_000) is GTX_1660_TI
        assert cpu_for_problem(64_000) is INTEL_I7_9750H

    def test_large_problems_use_3090(self):
        assert gpu_for_problem(2**23) is RTX_3090
        assert cpu_for_problem(2**23) is INTEL_I9_10940X

    def test_gpu_derived_properties(self):
        assert GTX_1660_TI.core_count == 1536
        assert RTX_3090.core_count == 10496
        assert GTX_1660_TI.peak_flops == pytest.approx(1536 * 1.77e9 * 2)
        assert GTX_1660_TI.effective_bandwidth < GTX_1660_TI.mem_bandwidth_bytes_per_s
