"""Input-validation hardening: every bad input raises a typed error.

The audit contract: no code path surfaces a bare ``ValueError`` /
``KeyError`` / ``TypeError`` for malformed user input — everything is a
:class:`repro.exceptions.ReproError` subclass the CLI and the resilience
layer can classify.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ParameterGrid, ProclusParams, proclus, run_parameter_study
from repro.exceptions import (
    DataValidationError,
    ParameterError,
    ReproError,
)


class TestParamTypes:
    @pytest.mark.parametrize("field", ["k", "l", "a", "b", "patience",
                                       "max_iterations"])
    @pytest.mark.parametrize("bad", ["5", None, 2.5, True])
    def test_integer_fields_reject_non_ints(self, field, bad):
        with pytest.raises(ParameterError):
            ProclusParams(**{field: bad})

    @pytest.mark.parametrize("bad", ["0.7", None, True])
    def test_min_deviation_rejects_non_reals(self, bad):
        with pytest.raises(ParameterError):
            ProclusParams(min_deviation=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     -float("inf"), 0.0, 1.5])
    def test_min_deviation_rejects_non_finite_and_out_of_range(self, bad):
        with pytest.raises(ParameterError):
            ProclusParams(min_deviation=bad)

    @pytest.mark.parametrize("kwargs", [
        {"ks": (4, "5")},
        {"ks": (4, None)},
        {"ls": (3, 2.5)},
        {"ls": (True,)},
    ])
    def test_grid_entries_typed(self, kwargs):
        with pytest.raises(ParameterError):
            ParameterGrid(**kwargs)

    def test_numpy_integers_accepted(self):
        params = ProclusParams(k=np.int64(4), l=np.int32(3))
        assert params.k == 4 and params.l == 3


class TestDataValidation:
    def test_nan_data_rejected(self):
        data = np.random.default_rng(0).random((200, 6))
        data[3, 2] = np.nan
        with pytest.raises(DataValidationError):
            proclus(data, k=3, l=3)

    def test_inf_data_rejected(self):
        data = np.random.default_rng(0).random((200, 6))
        data[0, 0] = np.inf
        with pytest.raises(DataValidationError):
            proclus(data, k=3, l=3)

    def test_k_larger_than_available_medoids_rejected(self):
        data = np.random.default_rng(0).random((50, 6))
        with pytest.raises(ParameterError, match="potential medoids"):
            proclus(data, k=60, l=3)

    def test_l_larger_than_d_rejected(self):
        data = np.random.default_rng(0).random((200, 4))
        with pytest.raises(ParameterError, match="dimensionality"):
            proclus(data, k=3, l=8)

    def test_wrong_rank_rejected(self):
        with pytest.raises(DataValidationError):
            proclus(np.zeros(10), k=2, l=2)

    def test_non_numeric_rejected(self):
        with pytest.raises(DataValidationError):
            proclus(np.array([["a", "b"], ["c", "d"]]), k=2, l=2)


class TestApiErrors:
    def test_unknown_backend_is_typed(self):
        data = np.random.default_rng(0).random((100, 6))
        with pytest.raises(ParameterError, match="unknown backend"):
            proclus(data, k=3, l=3, backend="quantum")

    def test_resume_requires_checkpoint_dir(self):
        data = np.random.default_rng(0).random((100, 6))
        with pytest.raises(ParameterError, match="checkpoint_dir"):
            run_parameter_study(data, resume=True)

    def test_resilience_of_wrong_type_is_typed(self):
        data = np.random.default_rng(0).random((100, 6))
        with pytest.raises(ParameterError, match="RetryPolicy"):
            run_parameter_study(data, resilience="yes please")

    def test_dist_chunks_validated(self):
        from repro import BACKENDS

        with pytest.raises(ParameterError):
            BACKENDS["gpu-fast"](params=ProclusParams(), dist_chunks=0)
        with pytest.raises(ParameterError):
            BACKENDS["gpu-fast"](params=ProclusParams(), dist_chunks=True)
        with pytest.raises(ParameterError):
            BACKENDS["gpu-fast"](params=ProclusParams(), dist_chunks="2")

    @pytest.mark.parametrize("call", [
        lambda data: proclus(data, k=0, l=3),
        lambda data: proclus(data, k="many", l=3),
        lambda data: proclus(data, k=3, l=None),
        lambda data: proclus(data, k=3, l=3, backend="nope"),
        lambda data: proclus(data * np.nan, k=3, l=3),
        lambda data: run_parameter_study(data, resume=True),
        lambda data: run_parameter_study(data, resilience=object()),
    ])
    def test_no_bare_builtin_errors_leak(self, call):
        """Everything malformed surfaces as a ReproError, never a bare
        ValueError/KeyError/TypeError."""
        data = np.random.default_rng(0).random((120, 6))
        with pytest.raises(ReproError):
            call(data)
