"""CLI tests for error handling, --strict, chaos, and study resume."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exceptions import ParameterError


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


SMALL = (
    "--n", "400", "--d", "8", "--clusters", "3",
    "--k", "3", "--l", "3", "--a", "20", "--b", "4",
)


class TestErrorHandling:
    def test_bad_parameter_combo_exits_2_with_one_line_message(self, capsys):
        code, _, err = run(capsys, "cluster", "--n", "100", "--k", "200")
        assert code == 2
        assert "repro: error:" in err
        assert "potential medoids" in err
        assert "--strict" in err  # points at the escape hatch

    def test_strict_reraises(self, capsys):
        with pytest.raises(ParameterError):
            main(["--strict", "cluster", "--n", "100", "--k", "200"])

    def test_bad_input_file_exits_2(self, capsys, tmp_path):
        bogus = tmp_path / "missing.npy"
        code, _, err = run(
            capsys, "cluster", *SMALL, "--save-labels",
            str(tmp_path / "no" / "such" / "dir" / "x.npy"),
        )
        assert code == 2
        assert "repro: error:" in err
        assert bogus.exists() is False

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(
            cli.__dict__, "_cmd_info", interrupted
        )
        # Rebuild the parser so the patched handler is bound.
        code = cli.main(["info"])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err


class TestStudyResume:
    def test_checkpoint_then_resume(self, capsys, tmp_path):
        directory = tmp_path / "ckpt"
        argv = (
            "study", *SMALL, "--ks", "4", "3", "--ls", "3",
            "--checkpoint-dir", str(directory),
        )
        code, out, _ = run(capsys, *argv)
        assert code == 0
        assert "checkpoints in" in out
        assert (directory / "manifest.json").exists()

        code, resumed_out, _ = run(capsys, *argv, "--resume")
        assert code == 0
        assert "resume" in resumed_out
        # The resumed study reports the identical costs.
        table = [line for line in out.splitlines() if line.startswith("   ")]
        resumed_table = [
            line for line in resumed_out.splitlines() if line.startswith("   ")
        ]
        assert table == resumed_table

    def test_resume_without_dir_exits_2(self, capsys):
        code, _, err = run(capsys, "study", *SMALL, "--ks", "3", "--ls", "3",
                           "--resume")
        assert code == 2
        assert "checkpoint_dir" in err

    def test_resilient_flag_accepted(self, capsys):
        code, out, _ = run(
            capsys, "study", *SMALL, "--ks", "3", "--ls", "3", "--resilient"
        )
        assert code == 0
        assert "best:" in out


class TestChaos:
    def test_sweep_single_backend_ok(self, capsys, tmp_path):
        log = tmp_path / "chaos.json"
        code, out, _ = run(
            capsys, "chaos", *SMALL, "--backends", "gpu-fast",
            "--json", str(log),
        )
        assert code == 0
        assert "all 5 injected runs completed" in out
        payload = json.loads(log.read_text())
        assert payload["schema"] == "repro.chaos/1"
        assert payload["ok"] is True
        assert len(payload["rows"]) == 5
        for row in payload["rows"]:
            assert row["ok"] and row["identical"] and row["along_ladder"]
            assert row["fired"] >= 1
            assert row["injected"]  # the raw injection records

    def test_custom_fault_spec(self, capsys):
        code, out, _ = run(
            capsys, "chaos", *SMALL, "--backends", "gpu",
            "--fault", "transient@*#2",
        )
        assert code == 0
        assert "custom" in out

    def test_unparseable_fault_exits_2(self, capsys):
        code, _, err = run(
            capsys, "chaos", *SMALL, "--backends", "gpu",
            "--fault", "explode@everything",
        )
        assert code == 2
        assert "repro: error:" in err
