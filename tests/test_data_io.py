"""Tests for dataset persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.io import load_saved_dataset, save_dataset
from repro.data.synthetic import generate_subspace_data
from repro.exceptions import DataValidationError


@pytest.fixture
def dataset():
    return generate_subspace_data(n=120, d=5, n_clusters=3, subspace_dims=2, seed=0)


def test_round_trip(tmp_path, dataset):
    path = save_dataset(dataset, tmp_path / "ds.npz")
    loaded = load_saved_dataset(path)
    assert np.array_equal(loaded.data, dataset.data)
    assert np.array_equal(loaded.labels, dataset.labels)
    assert loaded.subspaces == dataset.subspaces
    assert loaded.name == dataset.name


def test_extension_appended(tmp_path, dataset):
    path = save_dataset(dataset, tmp_path / "plain")
    assert path.suffix == ".npz"
    assert path.exists()


def test_parent_directories_created(tmp_path, dataset):
    path = save_dataset(dataset, tmp_path / "a" / "b" / "ds.npz")
    assert path.exists()


def test_missing_file_rejected(tmp_path):
    with pytest.raises(DataValidationError, match="not found"):
        load_saved_dataset(tmp_path / "nope.npz")


def test_foreign_npz_rejected(tmp_path):
    path = tmp_path / "foreign.npz"
    np.savez(path, other=np.arange(3))
    with pytest.raises(DataValidationError, match="not a saved dataset"):
        load_saved_dataset(path)


def test_subspace_tuples_are_ints(tmp_path, dataset):
    loaded = load_saved_dataset(save_dataset(dataset, tmp_path / "x.npz"))
    for dims in loaded.subspaces:
        assert all(isinstance(j, int) for j in dims)
