"""Tests for the ASCII chart renderers."""

from __future__ import annotations

import pytest

from repro.viz import bar_chart, line_chart, log_line_chart, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_blocks(self):
        s = sparkline([1, 2, 3, 4, 5])
        assert list(s) == sorted(s)

    def test_constant_series(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_extremes_hit_first_and_last_level(self):
        s = sparkline([0.0, 1.0])
        assert s[0] == "▁" and s[1] == "█"


class TestBarChart:
    def test_rows_and_proportions(self):
        text = bar_chart(["a", "bb"], [2.0, 4.0], width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_labels_aligned(self):
        text = bar_chart(["x", "longer"], [1, 1])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_unit_appended(self):
        assert "ms" in bar_chart(["a"], [3.5], unit="ms")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])

    def test_empty(self):
        assert bar_chart([], []) == "(no data)"

    def test_zero_values(self):
        text = bar_chart(["a"], [0.0])
        assert "#" not in text


class TestLineCharts:
    def test_contains_all_series_markers(self):
        chart = line_chart([1, 2, 3], {"one": [1, 2, 3], "two": [3, 2, 1]})
        assert "* one" in chart and "o two" in chart

    def test_axis_labels_present(self):
        chart = line_chart([1, 2], {"s": [1, 2]}, x_label="points n")
        assert "points n" in chart

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError, match="points for"):
            line_chart([1, 2], {"s": [1, 2, 3]})

    def test_log_chart_renders_decades(self):
        chart = log_line_chart(
            [512, 2048, 8192],
            {"proclus": [0.04, 0.2, 0.4], "gpu": [0.0015, 0.0019, 0.0017]},
        )
        assert "proclus" in chart and "gpu" in chart

    def test_log_chart_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_line_chart([0, 1], {"s": [1, 2]})
        with pytest.raises(ValueError):
            log_line_chart([1, 2], {"s": [0, 2]})

    def test_constant_series_renders(self):
        chart = line_chart([1, 2, 3], {"flat": [5, 5, 5]})
        assert "flat" in chart
