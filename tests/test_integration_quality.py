"""End-to-end quality: PROCLUS must actually find the planted structure.

The paper evaluates running time only (the clusterings are identical
across variants), but a reproduction should also demonstrate that the
implementation recovers planted projected clusters — otherwise a broken
FindDimensions could hide behind matching timings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import proclus
from repro.data.normalize import minmax_normalize
from repro.data.synthetic import generate_subspace_data
from repro.eval.metrics import (
    adjusted_rand_index,
    normalized_mutual_information,
    purity,
    subspace_recovery,
)
from repro.params import ProclusParams


def best_of_seeds(data, params, seeds=range(5), backend="fast"):
    """PROCLUS is a randomized local search: take the best of a few runs."""
    results = [
        proclus(data, backend=backend, params=params, seed=s) for s in seeds
    ]
    return min(results, key=lambda r: r.cost)


@pytest.fixture(scope="module")
def easy():
    ds = generate_subspace_data(
        n=3000, d=12, n_clusters=4, subspace_dims=5, std=1.5, seed=21
    )
    return minmax_normalize(ds.data), ds


class TestClusterRecovery:
    def test_high_agreement_on_easy_data(self, easy):
        data, ds = easy
        params = ProclusParams(k=4, l=5, a=40, b=6)
        result = best_of_seeds(data, params)
        ari = adjusted_rand_index(ds.labels, result.labels)
        nmi = normalized_mutual_information(ds.labels, result.labels)
        assert ari > 0.8, f"ARI too low: {ari}"
        assert nmi > 0.8, f"NMI too low: {nmi}"

    def test_purity_on_easy_data(self, easy):
        data, ds = easy
        params = ProclusParams(k=4, l=5, a=40, b=6)
        result = best_of_seeds(data, params)
        assert purity(ds.labels, result.labels) > 0.85

    def test_subspace_recovery(self, easy):
        data, ds = easy
        params = ProclusParams(k=4, l=5, a=40, b=6)
        result = best_of_seeds(data, params)
        recovery = subspace_recovery(
            ds.subspaces, ds.labels, result.dimensions, result.labels
        )
        assert recovery > 0.6, f"subspace recovery too low: {recovery}"

    def test_refined_cost_reported(self, easy):
        data, _ = easy
        params = ProclusParams(k=4, l=5, a=40, b=6)
        result = best_of_seeds(data, params)
        assert result.refined_cost > 0

    def test_outlier_detection_flags_planted_noise(self):
        ds = generate_subspace_data(
            n=2000, d=10, n_clusters=3, subspace_dims=5, std=1.0,
            noise_fraction=0.1, seed=33,
        )
        data = minmax_normalize(ds.data)
        params = ProclusParams(k=3, l=5, a=40, b=6)
        result = best_of_seeds(data, params)
        detected = result.labels == -1
        planted = ds.labels == -1
        if detected.sum() == 0:
            pytest.skip("no outliers flagged in this configuration")
        # Outlier flags must be enriched in the planted noise: precision
        # clearly above the 10% base rate.
        precision = (detected & planted).sum() / detected.sum()
        assert precision > 0.3, f"outlier precision {precision:.2f}"

    def test_more_clusters_than_planted_still_valid(self, easy):
        data, ds = easy
        params = ProclusParams(k=8, l=4, a=20, b=4)
        result = proclus(data, backend="fast", params=params, seed=0)
        assert result.k == 8
        assert purity(ds.labels, result.labels) > 0.7


class TestCostSanity:
    def test_best_cost_not_worse_than_first_iteration(self, easy):
        data, _ = easy
        params = ProclusParams(k=4, l=5, a=40, b=6, patience=1)
        quick = proclus(data, backend="fast", params=params, seed=2)
        patient = proclus(
            data, backend="fast",
            params=params.with_(patience=8), seed=2,
        )
        assert patient.cost <= quick.cost + 1e-12

    def test_planted_assignment_costs_less_than_random(self, easy):
        data, ds = easy
        from repro.core.phases import evaluate_clusters

        dims = ds.subspaces
        planted_cost = evaluate_clusters(data, ds.labels, dims)
        rng = np.random.default_rng(0)
        random_cost = evaluate_clusters(
            data, rng.integers(0, 4, len(ds.labels)), dims
        )
        assert planted_cost < random_cost
