"""Metamorphic and property-based invariants across the pipeline.

These tests state *relations between runs* rather than expected values:
permutation equivariance, translation invariance, monotonicity, and
structural invariants that must hold for any input.  They are the
deepest correctness net the suite has — a bug that preserves all of
them and the cross-variant equivalence is very hard to write.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distance import euclidean_to_point, segmental_distances
from repro.core.greedy import greedy_select
from repro.core.phases import (
    assign_points,
    compute_bad_medoids,
    evaluate_clusters,
    find_dimensions,
)

unit = st.floats(0.0, 1.0, width=32)


def matrices(min_n=4, max_n=40, min_d=2, max_d=6):
    return hnp.arrays(
        dtype=np.float32,
        shape=st.tuples(st.integers(min_n, max_n), st.integers(min_d, max_d)),
        elements=unit,
    )


class TestPermutationEquivariance:
    """Relabeling the points must relabel the outputs and nothing else."""

    @settings(max_examples=25, deadline=None)
    @given(matrices(), st.integers(0, 2**31 - 1))
    def test_assignment_is_permutation_equivariant(self, data, seed):
        k = min(3, data.shape[0])
        medoids = data[:k]
        dims = tuple(tuple(range(data.shape[1])) for _ in range(k))
        labels, _ = assign_points(data, medoids, dims)
        perm = np.random.default_rng(seed).permutation(data.shape[0])
        labels_perm, _ = assign_points(data[perm], medoids, dims)
        assert np.array_equal(labels_perm, labels[perm])

    @settings(max_examples=20, deadline=None)
    @given(matrices(min_n=6), st.integers(0, 2**31 - 1))
    def test_cost_is_permutation_invariant(self, data, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, data.shape[0])
        dims = ((0, 1), (0, 1))
        cost = evaluate_clusters(data, labels, dims)
        perm = rng.permutation(data.shape[0])
        cost_perm = evaluate_clusters(data[perm], labels[perm], dims)
        assert cost_perm == pytest.approx(cost, rel=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(matrices(min_n=8))
    def test_distance_is_permutation_equivariant(self, data):
        point = data[0]
        d = euclidean_to_point(data, point)
        perm = np.random.default_rng(0).permutation(data.shape[0])
        assert np.array_equal(euclidean_to_point(data[perm], point), d[perm])


class TestGeometricInvariance:
    """Distances depend only on differences: translation must not matter."""

    @settings(max_examples=20, deadline=None)
    @given(matrices(), st.floats(0.0, 0.25, width=32))
    def test_segmental_translation_invariance(self, data, shift):
        """Exactly representable shifts leave segmental distances unchanged."""
        shift = np.float32(np.round(shift * 16) / 16)  # power-of-two grid
        medoids = data[: min(2, data.shape[0])]
        dims = tuple(
            tuple(range(data.shape[1])) for _ in range(len(medoids))
        )
        seg = segmental_distances(data, medoids, dims)
        seg_shifted = segmental_distances(data + shift, medoids + shift, dims)
        assert np.allclose(seg, seg_shifted, atol=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(matrices(min_n=6))
    def test_triangle_inequality_full_space(self, data):
        a, b = data[0], data[1]
        d_via_b = float(euclidean_to_point(data[1:2], a)[0])
        dist_from_a = euclidean_to_point(data, a).astype(np.float64)
        dist_from_b = euclidean_to_point(data, b).astype(np.float64)
        assert np.all(dist_from_a <= dist_from_b + d_via_b + 1e-5)


class TestGreedyProperties:
    @settings(max_examples=20, deadline=None)
    @given(matrices(min_n=8, max_n=30), st.integers(2, 6))
    def test_greedy_prefix_property(self, data, count):
        """The first m picks of a greedy-(m+1) run equal a greedy-m run."""
        count = min(count, data.shape[0] - 1)
        longer = greedy_select(data, count + 1, 0)
        shorter = greedy_select(data, count, 0)
        assert np.array_equal(longer[:count], shorter)

    @settings(max_examples=20, deadline=None)
    @given(matrices(min_n=8, max_n=30))
    def test_greedy_min_separation_non_increasing(self, data):
        """Each pick's maximin distance can only shrink as picks accrue."""
        count = min(6, data.shape[0])
        chosen = greedy_select(data, count, 0)
        gaps = []
        for i in range(1, count):
            dist = np.min(
                [euclidean_to_point(data[chosen[:i]], data[chosen[i]])]
            )
            gaps.append(float(dist))
        assert all(a >= b - 1e-6 for a, b in zip(gaps, gaps[1:]))


class TestFindDimensionsProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 10)),
            elements=st.floats(0.0, 10.0),
        ),
        st.integers(2, 6),
    )
    def test_budget_and_structure_always_hold(self, x, l):
        k, d = x.shape
        l = min(l, d)
        dims = find_dimensions(x, l)
        assert len(dims) == k
        assert sum(len(t) for t in dims) == k * l
        for t in dims:
            assert len(t) >= 2
            assert list(t) == sorted(set(t))
            assert all(0 <= j < d for j in t)

    @settings(max_examples=20, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 4), st.integers(3, 8)),
            elements=st.floats(0.1, 10.0),
        )
    )
    def test_scaling_a_row_uniformly_keeps_its_picks(self, x):
        """Z is scale-free per medoid: scaling a row leaves Z unchanged.

        Quantize to a coarse grid first: values differing only in the
        last few ulps are near-ties whose Z ordering the *3 rounding
        can legitimately flip — the property holds for separated
        values and exact ties, not for ulp-level near-ties.
        """
        x = np.round(x, 2)
        dims = find_dimensions(x, 2)
        scaled = x.copy()
        scaled[0] *= 3.0
        dims_scaled = find_dimensions(scaled, 2)
        assert dims_scaled[0] == dims[0]


class TestBadMedoidProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 10_000), min_size=2, max_size=12),
        st.floats(0.01, 1.0),
    )
    def test_paper_rule_always_flags_at_least_one(self, sizes, min_dev):
        sizes = np.asarray(sizes)
        bad = compute_bad_medoids(sizes, int(sizes.sum()) or 1, min_dev)
        assert len(bad) >= 1
        assert all(0 <= b < len(sizes) for b in bad)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 10_000), min_size=2, max_size=12),
        st.floats(0.01, 1.0),
    )
    def test_original_rule_superset_of_threshold_flags(self, sizes, min_dev):
        sizes = np.asarray(sizes)
        n = int(sizes.sum()) or 1
        original = set(
            compute_bad_medoids(sizes, n, min_dev, rule="original").tolist()
        )
        threshold = n / len(sizes) * min_dev
        below = set(np.flatnonzero(sizes < threshold).tolist())
        assert below <= original
        assert int(np.argmin(sizes)) in original

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=2, max_size=8))
    def test_rules_agree_when_smallest_is_below_threshold(self, sizes):
        sizes = np.asarray(sizes)
        n = max(int(sizes.sum()), 1)
        paper = compute_bad_medoids(sizes, n, 0.7, rule="paper")
        if sizes[int(np.argmin(sizes))] < n / len(sizes) * 0.7:
            original = compute_bad_medoids(sizes, n, 0.7, rule="original")
            assert np.array_equal(paper, original)


class TestEndToEndMetamorphic:
    def test_duplicating_dataset_preserves_relative_structure(self):
        """Running on data ∪ data: every cluster keeps its pairs together."""
        from repro import proclus
        from repro.data import generate_subspace_data, minmax_normalize
        from repro.params import ProclusParams

        ds = generate_subspace_data(n=400, d=6, n_clusters=3, subspace_dims=3, seed=6)
        data = minmax_normalize(ds.data)
        doubled = np.vstack([data, data])
        params = ProclusParams(k=3, l=3, a=15, b=4)
        result = proclus(doubled, backend="fast", params=params, seed=0)
        first, second = result.labels[:400], result.labels[400:]
        # Identical points have identical segmental distances, and ties
        # break identically -> identical labels.
        assert np.array_equal(first, second)

    def test_adding_constant_dimension_does_not_break_run(self):
        from repro import proclus
        from repro.data import generate_subspace_data, minmax_normalize
        from repro.params import ProclusParams

        ds = generate_subspace_data(n=500, d=6, n_clusters=3, subspace_dims=3, seed=7)
        data = minmax_normalize(ds.data)
        widened = np.hstack([data, np.zeros((500, 1), dtype=np.float32)])
        params = ProclusParams(k=3, l=3, a=15, b=4)
        result = proclus(widened, backend="fast", params=params, seed=0)
        assert result.k == 3
