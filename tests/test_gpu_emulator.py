"""Tests for the cooperative SIMT emulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmulationError, KernelLaunchError
from repro.gpu.atomics import atomic_add, atomic_inc
from repro.gpu.emulator import SimtEmulator, ThreadContext


class TestPlainKernels:
    def test_every_thread_runs_once(self):
        hits = np.zeros(24, dtype=np.int64)

        def kernel(ctx, out):
            out[ctx.global_id] += 1

        SimtEmulator().launch(kernel, 4, 6, hits)
        assert np.all(hits == 1)

    def test_grid_stride_covers_all_items(self):
        out = np.zeros(100, dtype=np.int64)

        def kernel(ctx, out):
            for i in ctx.grid_stride(100):
                out[i] += 1

        SimtEmulator().launch(kernel, 3, 8, out)
        assert np.all(out == 1)

    def test_grid_stride_x_partitions_per_y_block(self):
        out = np.zeros((3, 50), dtype=np.int64)

        def kernel(ctx, out):
            for i in ctx.grid_stride_x(50):
                out[ctx.by, i] += 1

        SimtEmulator().launch(kernel, (4, 3), 8, out)
        assert np.all(out == 1)

    def test_block_stride_partitions_within_block(self):
        out = np.zeros(17, dtype=np.int64)

        def kernel(ctx, out):
            if ctx.bx == 0:
                for i in ctx.block_stride(17):
                    out[i] += 1

        SimtEmulator().launch(kernel, 2, 4, out)
        assert np.all(out == 1)

    def test_2d_block_indices(self):
        seen = []

        def kernel(ctx):
            seen.append((ctx.block_idx, ctx.thread_idx))

        SimtEmulator().launch(kernel, (2, 3), (2,))
        assert len(seen) == 2 * 3 * 2

    def test_launch_count(self):
        em = SimtEmulator()

        def kernel(ctx):
            pass

        em.launch(kernel, 1, 1)
        em.launch(kernel, 2, 2)
        assert em.launches == 2


class TestBarriers:
    def test_syncthreads_orders_phases(self):
        """All threads must observe phase-1 writes after the barrier."""
        n = 8
        stage = np.zeros(n, dtype=np.int64)
        ok = np.zeros(n, dtype=bool)

        def kernel(ctx, stage, ok):
            stage[ctx.tx] = 1
            yield
            ok[ctx.tx] = bool(np.all(stage == 1))

        SimtEmulator().launch(kernel, 1, n, stage, ok)
        assert ok.all()

    def test_multiple_barriers(self):
        counter = np.zeros(1, dtype=np.int64)
        records = []

        def kernel(ctx, counter):
            atomic_inc(counter, 0)
            yield
            records.append(int(counter[0]))
            yield
            atomic_inc(counter, 0)

        SimtEmulator().launch(kernel, 1, 5, counter)
        assert records == [5] * 5
        assert counter[0] == 10

    def test_divergent_sync_detected(self):
        def kernel(ctx):
            if ctx.tx == 0:
                yield  # only thread 0 reaches the barrier

        with pytest.raises(EmulationError, match="divergent"):
            SimtEmulator().launch(kernel, 1, 4)

    def test_early_uniform_exit_allowed(self):
        """All threads returning before any barrier is legal."""

        def kernel(ctx):
            if False:
                yield
            return

        SimtEmulator().launch(kernel, 2, 4)


class TestSharedMemory:
    def test_shared_array_visible_within_block(self):
        result = np.zeros(3, dtype=np.float64)

        def kernel(ctx, result):
            acc = ctx.shared.array("acc", 1, np.float64, fill=0.0)
            atomic_add(acc, 0, 1.0)
            yield
            if ctx.tx == 0:
                result[ctx.bx] = acc[0]

        SimtEmulator().launch(kernel, 3, 7, result)
        assert np.all(result == 7.0)

    def test_shared_memory_not_shared_across_blocks(self):
        seen = []

        def kernel(ctx):
            marker = ctx.shared.array("m", 1, np.int64, fill=-1)
            if ctx.tx == 0:
                marker[0] = ctx.bx
            yield
            seen.append((ctx.bx, int(marker[0])))

        SimtEmulator().launch(kernel, 4, 2)
        for bx, value in seen:
            assert value == bx

    def test_fill_applied_once(self):
        def kernel(ctx, out):
            acc = ctx.shared.array("acc", 1, np.float64, fill=0.0)
            atomic_add(acc, 0, 1.0)
            # Re-request must return the same array, not re-fill it.
            again = ctx.shared.array("acc", 1, np.float64, fill=0.0)
            assert again is acc
            yield
            if ctx.tx == 0:
                out[ctx.bx] = acc[0]

        out = np.zeros(1)
        SimtEmulator().launch(kernel, 1, 4, out)
        assert out[0] == 4.0


class TestScheduling:
    def test_shuffled_schedule_same_result_for_order_free_kernel(self):
        data = np.random.default_rng(0).random(64).astype(np.float32)

        def kernel(ctx, data, out):
            for i in ctx.grid_stride(64):
                out[i] = data[i] * 2.0

        out_a = np.zeros(64, dtype=np.float32)
        out_b = np.zeros(64, dtype=np.float32)
        SimtEmulator().launch(kernel, 4, 8, data, out_a)
        SimtEmulator(schedule_seed=123).launch(kernel, 4, 8, data, out_b)
        assert np.array_equal(out_a, out_b)

    def test_invalid_launch_configuration(self):
        def kernel(ctx):
            pass

        with pytest.raises(KernelLaunchError):
            SimtEmulator().launch(kernel, 0, 4)
        with pytest.raises(KernelLaunchError):
            SimtEmulator().launch(kernel, 4, 0)
