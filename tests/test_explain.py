"""Tests for repro.obs.explain: attribution, diffing, triage, exports.

The load-bearing property is *conservation*: the cost ledger accrues
exact rationals, so regrouping the run any way (per kernel, per phase,
per component) re-sums to the run's modeled seconds bit-for-bit — not
approximately, ``==``.  Everything else (diff zeroes, triage naming
the lost cache, flamegraph weights) follows from that exactness.
"""

from __future__ import annotations

import copy
import json
from fractions import Fraction

import pytest

from repro.bench.baseline import QUICK_SEEDS, QuickWorkload, run_workload
from repro.bench.regress import compare_workload, run_regression_check
from repro.core import BACKENDS
from repro.fleet import FleetModel, default_fleet, fleet_report
from repro.obs import Tracer, use_tracer
from repro.obs.explain import (
    EXPLAIN_SCHEMA,
    attribute_run,
    attribution_record,
    collapsed_stacks,
    diff_attribution,
    diff_counters,
    explain_report,
    fleet_attribution,
    format_collapsed,
    speedscope_profile,
    validate_explain_report,
)
from repro.obs.explain.attribution import COMPONENTS
from repro.obs.explain.diff import (
    load_comparable,
    summarize_attribution,
    triage_lines,
)
from repro.obs.export import chrome_trace, validate_chrome_trace
from repro.params import ProclusParams
from repro.viz.explain import (
    render_attribution,
    render_diff,
    render_fleet_attribution,
)

EXPLAIN_BACKENDS = (
    "gpu",
    "gpu-fast",
    "gpu-fast-star",
    "fleet-gpu",
    "fleet-gpu-fast",
    "fleet-gpu-fast-star",
)


def _fit(backend, data, params, seed=0, tracer=None):
    kwargs = {}
    if backend.startswith("fleet-"):
        kwargs["fleet"] = default_fleet(2)
    with use_tracer(tracer if tracer is not None else Tracer(enabled=False)):
        engine = BACKENDS[backend](params=params, seed=seed, **kwargs)
        result = engine.fit(data)
    return engine, result


# ----------------------------------------------------------------------
# Conservation: the acceptance criterion of the attribution layer
# ----------------------------------------------------------------------
class TestConservation:
    @pytest.mark.parametrize("backend", EXPLAIN_BACKENDS)
    def test_bit_level_conservation(self, backend, small_dataset, small_params):
        """Per-kernel per-component seconds re-sum to modeled seconds ==."""
        data, _ = small_dataset
        engine, result = _fit(backend, data, small_params)
        attr = attribute_run(engine.model)
        regrouped = Fraction(0)
        for kernel in attr.kernels:
            for component, exact in kernel.exact.items():
                assert component in COMPONENTS
                regrouped += exact
        assert float(regrouped) == result.stats.modeled_seconds
        assert float(attr.total_exact) == result.stats.modeled_seconds

    @pytest.mark.parametrize("backend", EXPLAIN_BACKENDS)
    def test_record_conservation_witness(self, backend, small_dataset,
                                         small_params):
        data, _ = small_dataset
        engine, result = _fit(backend, data, small_params)
        record = attribution_record(attribute_run(engine.model))
        conservation = record["conservation"]
        assert conservation["exact"] is True
        assert conservation["attributed_seconds"] == result.stats.modeled_seconds
        assert conservation["modeled_seconds"] == result.stats.modeled_seconds

    def test_phase_and_pipeline_groupings_also_conserve(
        self, small_dataset, small_params
    ):
        data, _ = small_dataset
        engine, result = _fit("gpu-fast", data, small_params)
        attr = attribute_run(engine.model)
        for grouping in (attr.phase_exact, attr.pipeline_exact):
            total = sum(
                (value for bucket in grouping.values()
                 for value in bucket.values()),
                Fraction(0),
            )
            assert float(total) == result.stats.modeled_seconds
        flat = sum(attr.component_exact.values(), Fraction(0))
        assert float(flat) == result.stats.modeled_seconds

    def test_validate_explain_report_accepts_real_run(
        self, small_dataset, small_params
    ):
        data, _ = small_dataset
        engine, result = _fit("gpu-fast", data, small_params)
        record = attribution_record(attribute_run(engine.model))
        report = explain_report(record, label="gpu-fast",
                                counters=dict(result.stats.counters))
        assert report["schema"] == EXPLAIN_SCHEMA
        assert validate_explain_report(report) == []


class TestCacheAndOccupancy:
    def test_cache_savings_attributed(self, small_dataset, small_params):
        data, _ = small_dataset
        engine, _ = _fit("gpu-fast", data, small_params)
        cache = attribute_run(engine.model).cache
        assert cache["enabled"]
        assert cache["hits"] > 0
        assert 0.0 < cache["hit_rate"] <= 1.0
        assert cache["avoided_flops"] > 0
        assert cache["avoided_seconds_estimate"] > 0

    def test_cache_never_hits_without_dist_cache(self, small_dataset,
                                                 small_params):
        """Plain GPU PROCLUS recomputes every medoid row: 0% hit rate."""
        data, _ = small_dataset
        engine, _ = _fit("gpu", data, small_params)
        cache = attribute_run(engine.model).cache
        assert cache["hits"] == 0
        assert cache["hit_rate"] == 0.0
        assert cache["avoided_seconds_estimate"] == 0.0

    def test_occupancy_rollup(self, small_dataset, small_params):
        data, _ = small_dataset
        engine, _ = _fit("gpu-fast", data, small_params)
        occupancy = attribute_run(engine.model).occupancy
        assert occupancy is not None
        assert 0.0 < occupancy["weighted_achieved"] <= 1.0
        assert occupancy["kernels"]

    def test_fleet_occupancy_uses_logical_gpu(self, small_dataset,
                                              small_params):
        data, _ = small_dataset
        engine, _ = _fit("fleet-gpu-fast", data, small_params)
        occupancy = attribute_run(engine.model).occupancy
        assert occupancy is not None and occupancy["kernels"]


# ----------------------------------------------------------------------
# Differential attribution
# ----------------------------------------------------------------------
class TestDiff:
    def _record(self, small_dataset, small_params, backend="gpu-fast"):
        data, _ = small_dataset
        engine, _ = _fit(backend, data, small_params)
        return attribution_record(attribute_run(engine.model))

    def test_identical_runs_diff_to_exact_zero(self, small_dataset,
                                               small_params):
        a = self._record(small_dataset, small_params)
        b = self._record(small_dataset, small_params)
        diff = diff_attribution(a, b)
        assert diff["zero"] is True
        assert diff["delta_seconds"] == 0.0
        assert diff["kernels"] == []
        assert diff["components"] == []
        assert diff["pipeline_components"] == []

    def test_different_backends_attribute_the_gap(self, small_dataset,
                                                  small_params):
        slow = self._record(small_dataset, small_params, backend="gpu")
        fast = self._record(small_dataset, small_params, backend="gpu-fast")
        diff = diff_attribution(fast, slow)
        assert diff["zero"] is False
        assert diff["delta_seconds"] == pytest.approx(
            slow["total_seconds"] - fast["total_seconds"]
        )
        assert diff["kernels"]

    def test_diff_counters_zero_and_mover(self):
        assert diff_counters({"a": 1.0}, {"a": 1.0}) == []
        movers = diff_counters({"a": [1.0, 2.0]}, {"a": 5.0, "b": 1.0})
        names = {row["name"] for row in movers}
        assert names == {"a", "b"}

    def test_load_comparable_roundtrip(self, tmp_path, small_dataset,
                                       small_params):
        record = self._record(small_dataset, small_params)
        report = explain_report(record, label="x", counters={"gpu.flops": 1.0})
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report))
        loaded = load_comparable(path)
        assert loaded["label"] == "x"
        diff = diff_attribution(loaded["attribution"], record)
        assert diff["zero"] is True

    def test_load_comparable_rejects_garbage(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError):
            load_comparable(path)

    def test_summarize_attribution_is_idempotent(self, small_dataset,
                                                 small_params):
        record = self._record(small_dataset, small_params)
        summary = summarize_attribution(record)
        assert summarize_attribution(summary) == summary
        assert summary["total_seconds"] == record["total_seconds"]


# ----------------------------------------------------------------------
# Regression triage (the no-dist-cache negative control)
# ----------------------------------------------------------------------
class TestTriage:
    WORKLOAD = QuickWorkload(name="triage-tiny", backend="gpu-fast",
                             n=1024, d=10, n_clusters=4, subspace_dims=4,
                             k=5, l=4)

    def test_no_dist_cache_triage_names_cache_counters(self):
        """`--inject no-dist-cache` must be *explained*, not just flagged."""
        seeds = QUICK_SEEDS[:2]
        baseline = run_workload(self.WORKLOAD, seeds=seeds)
        injected = run_workload(self.WORKLOAD, seeds=seeds,
                                backend="gpu-fast-h-only")
        verdict = compare_workload(baseline, injected)
        assert not verdict["ok"]
        triage = verdict["triage"]
        counter_names = {row["name"] for row in triage["counters"]}
        assert "cache.dist_rows_hit" in counter_names
        assert "cache.dist_rows_missed" in counter_names
        joined = " ".join(triage["lines"])
        assert "cache.dist_rows" in joined or "pipeline" in joined
        # The attribution diff localizes the slowdown too.
        assert triage["attribution"]["zero"] is False

    def test_clean_rerun_triage_free(self):
        seeds = QUICK_SEEDS[:2]
        baseline = run_workload(self.WORKLOAD, seeds=seeds)
        fresh = run_workload(self.WORKLOAD, seeds=seeds)
        verdict = compare_workload(baseline, fresh)
        assert verdict["ok"]
        assert "triage" not in verdict

    def test_gate_verdict_carries_triage_headlines(self):
        seeds = QUICK_SEEDS[:2]
        baseline = run_workload(self.WORKLOAD, seeds=seeds)
        injected = run_workload(self.WORKLOAD, seeds=seeds,
                                backend="gpu-fast-h-only")
        verdict = run_regression_check(
            {self.WORKLOAD.name: baseline}, [injected]
        )
        assert verdict["exit_code"] == 1
        assert verdict["triage"]
        assert self.WORKLOAD.name in verdict["triage"][0]

    def test_triage_lines_render_counters_and_kernels(self):
        lines = triage_lines({
            "counters": [{"name": "cache.dist_rows_hit", "baseline": 512.0,
                          "fresh": 0.0, "delta": -512.0, "rel_delta": -1.0}],
            "attribution": {
                "zero": False,
                "pipeline_components": [
                    {"name": "evaluate/memory", "baseline": 1.0,
                     "fresh": 1.41, "delta": 0.41, "rel_delta": 0.41}],
                "kernels": [{"name": "compute_l.distances", "baseline": 1.0,
                             "fresh": 2.0, "delta": 1.0, "rel_delta": 1.0}],
                "components": [],
            },
        })
        joined = " ".join(lines)
        assert "cache.dist_rows_hit" in joined
        assert "512" in joined


# ----------------------------------------------------------------------
# Fleet attribution
# ----------------------------------------------------------------------
class TestFleetAttribution:
    def test_live_fleet_report_embeds_attribution(self, small_dataset,
                                                  small_params):
        data, _ = small_dataset
        engine, _ = _fit("fleet-gpu-fast", data, small_params)
        assert isinstance(engine.model, FleetModel)
        report = fleet_report(engine.model)
        attribution = report["attribution"]
        assert attribution["num_devices"] == 2
        assert attribution["straggler_index"] >= 1.0
        assert 0.0 <= attribution["comm_fraction"] <= 1.0
        assert attribution["imbalance"] >= 1.0
        assert attribution["straggler_device"] in (0, 1)
        # Per-device busy + sync + idle covers the makespan.
        for entry in attribution["devices"]:
            covered = (entry["busy_seconds"] + entry["sync_seconds"]
                       + entry["idle_seconds"])
            assert covered == pytest.approx(attribution["makespan_seconds"],
                                            rel=1e-9)

    def test_consistent_with_report_fields(self, small_dataset, small_params):
        data, _ = small_dataset
        engine, _ = _fit("fleet-gpu-fast", data, small_params)
        report = fleet_report(engine.model)
        attribution = report["attribution"]
        assert attribution["comm_seconds"] == report["comm_seconds"]
        assert attribution["makespan_seconds"] == report["total_seconds"]
        assert attribution["comm_fraction"] == pytest.approx(
            report["communication_fraction"]
        )

    def test_degenerate_inputs_never_raise(self):
        for report in ({}, {"devices": []}, {"devices": None},
                       {"total_seconds": 0.0, "devices": [{}]},
                       {"total_seconds": -1.0,
                        "devices": [{"busy_seconds": 2.0}]}):
            attribution = fleet_attribution(report)
            assert attribution["straggler_index"] >= 1.0
            assert attribution["imbalance"] >= 0.0

    def test_single_device_is_balanced(self):
        attribution = fleet_attribution({
            "total_seconds": 2.0,
            "comm_seconds": 0.0,
            "devices": [{"device": 0, "busy_seconds": 2.0,
                         "sync_seconds": 0.0}],
        })
        assert attribution["straggler_index"] == 1.0
        assert attribution["comm_fraction"] == 0.0


# ----------------------------------------------------------------------
# Chrome-trace validation of fleet comm tracks
# ----------------------------------------------------------------------
class TestFleetTraceRoundTrip:
    def _fleet_trace(self, small_dataset, small_params):
        data, _ = small_dataset
        tracer = Tracer()
        _fit("fleet-gpu-fast", data, small_params, tracer=tracer)
        return chrome_trace(tracer, label="fleet")

    def test_round_trip_validates_clean(self, small_dataset, small_params):
        trace = self._fleet_trace(small_dataset, small_params)
        assert validate_chrome_trace(trace) == []
        names = {
            event.get("args", {}).get("name")
            for event in trace["traceEvents"]
            if event.get("ph") == "M" and event.get("name") == "thread_name"
        }
        assert any(isinstance(n, str) and n.endswith(":comm") for n in names)

    def test_foreign_event_on_comm_track_flagged(self, small_dataset,
                                                 small_params):
        trace = copy.deepcopy(self._fleet_trace(small_dataset, small_params))
        for event in trace["traceEvents"]:
            if event.get("ph") == "X" and event["name"].startswith("comm."):
                event["name"] = "sneaky_kernel"
                break
        else:
            pytest.fail("no comm event found in fleet trace")
        problems = validate_chrome_trace(trace)
        assert any("comm track" in problem for problem in problems)

    def test_counter_time_reversal_flagged(self, small_dataset, small_params):
        trace = copy.deepcopy(self._fleet_trace(small_dataset, small_params))
        counters = [event for event in trace["traceEvents"]
                    if event.get("ph") == "C"]
        if len(counters) < 2:
            pytest.skip("trace exports no counter track")
        counters[-1]["ts"] = counters[0]["ts"] - 10.0
        assert validate_chrome_trace(trace) != []


# ----------------------------------------------------------------------
# Flamegraph export
# ----------------------------------------------------------------------
class TestFlamegraph:
    def _tracer(self, small_dataset, small_params):
        data, _ = small_dataset
        tracer = Tracer()
        _fit("gpu-fast", data, small_params, tracer=tracer)
        return tracer

    def test_collapsed_stacks_cover_kernels(self, small_dataset,
                                            small_params):
        tracer = self._tracer(small_dataset, small_params)
        stacks = collapsed_stacks(tracer)
        assert stacks
        assert all(weight > 0 for _, weight in stacks)
        joined = [";".join(frames) for frames, _ in stacks]
        assert any("greedy.distances" in line for line in joined)

    def test_format_collapsed_integer_weights(self, small_dataset,
                                              small_params):
        tracer = self._tracer(small_dataset, small_params)
        for line in format_collapsed(collapsed_stacks(tracer)).splitlines():
            frames, weight = line.rsplit(" ", 1)
            assert frames
            assert int(weight) >= 1

    def test_empty_tracer_placeholder(self):
        assert "no kernel events" in format_collapsed(
            collapsed_stacks(Tracer())
        )

    def test_speedscope_profile_shape(self, small_dataset, small_params):
        tracer = self._tracer(small_dataset, small_params)
        profile = speedscope_profile(tracer, name="gpu-fast")
        assert profile["$schema"].endswith("file-format-schema.json")
        run = profile["profiles"][0]
        assert run["type"] == "sampled"
        assert len(run["samples"]) == len(run["weights"])
        frame_count = len(profile["shared"]["frames"])
        assert all(0 <= index < frame_count
                   for sample in run["samples"] for index in sample)
        assert run["endValue"] == pytest.approx(sum(run["weights"]))


# ----------------------------------------------------------------------
# Report schema validation (negative cases)
# ----------------------------------------------------------------------
class TestValidateExplainReport:
    def _valid(self, small_dataset, small_params):
        data, _ = small_dataset
        engine, _ = _fit("gpu-fast", data, small_params)
        return explain_report(
            attribution_record(attribute_run(engine.model)), label="t"
        )

    def test_rejects_wrong_schema(self, small_dataset, small_params):
        report = self._valid(small_dataset, small_params)
        report["schema"] = "repro.other/1"
        assert validate_explain_report(report) != []

    def test_rejects_broken_conservation(self, small_dataset, small_params):
        report = copy.deepcopy(self._valid(small_dataset, small_params))
        report["attribution"]["conservation"]["exact"] = False
        assert any("conservation" in problem
                   for problem in validate_explain_report(report))

    def test_rejects_component_sum_mismatch(self, small_dataset,
                                            small_params):
        report = copy.deepcopy(self._valid(small_dataset, small_params))
        kernel = report["attribution"]["kernels"][0]
        kernel["components"]["memory"] = kernel["seconds"] * 10 + 1.0
        assert validate_explain_report(report) != []

    def test_rejects_unknown_component(self, small_dataset, small_params):
        report = copy.deepcopy(self._valid(small_dataset, small_params))
        report["attribution"]["components"]["warp_divergence"] = 1.0
        assert validate_explain_report(report) != []

    def test_rejects_non_dict(self):
        assert validate_explain_report([]) != []
        assert validate_explain_report({"schema": EXPLAIN_SCHEMA}) != []


# ----------------------------------------------------------------------
# Renderers: degenerate inputs must render, not raise
# ----------------------------------------------------------------------
class TestRenderers:
    def test_render_attribution_empty(self):
        out = render_attribution({})
        assert "empty run" in out

    def test_render_attribution_zero_seconds(self):
        out = render_attribution({
            "model": "x", "total_seconds": 0.0, "components": {},
            "kernels": [], "fusion": {}, "cache": {}, "occupancy": None,
        })
        assert isinstance(out, str)

    def test_render_attribution_real(self, small_dataset, small_params):
        data, _ = small_dataset
        engine, _ = _fit("gpu-fast", data, small_params)
        record = attribution_record(attribute_run(engine.model))
        out = render_attribution(record, top=3)
        assert "by component" in out
        assert "more kernels" in out
        assert "dist cache" in out

    def test_render_diff_zero_and_movers(self):
        zero = render_diff({"zero": True, "baseline_seconds": 1.0,
                            "fresh_seconds": 1.0, "delta_seconds": 0.0,
                            "rel_delta": 0.0, "kernels": [],
                            "components": [], "pipeline_components": []})
        assert "no difference" in zero
        moved = render_diff({"zero": False, "baseline_seconds": 1.0,
                             "fresh_seconds": 1.5, "delta_seconds": 0.5,
                             "rel_delta": 0.5,
                             "kernels": [{"name": "k", "baseline": 1.0,
                                          "fresh": 1.5, "delta": 0.5,
                                          "rel_delta": 0.5}],
                             "components": [], "pipeline_components": []})
        assert "k" in moved

    def test_render_fleet_empty_and_degenerate(self):
        assert "no per-device ledgers" in render_fleet_attribution({})
        out = render_fleet_attribution({
            "num_devices": 1, "makespan_seconds": 0.0, "comm_fraction": 0.0,
            "straggler_index": 1.0, "straggler_device": 0, "imbalance": 1.0,
            "devices": [{"device": 0, "busy_seconds": 0.0,
                         "sync_seconds": 0.0, "idle_seconds": 0.0}],
        })
        assert "gpu0" in out

    def test_fleet_utilization_chart_degenerate(self):
        from repro.viz import fleet_utilization_chart

        assert isinstance(fleet_utilization_chart({}), str)
        assert isinstance(
            fleet_utilization_chart({"devices": [{}], "total_seconds": 0.0}),
            str,
        )


# ----------------------------------------------------------------------
# Profiler back-compat + new component column
# ----------------------------------------------------------------------
class TestProfilerComponents:
    def test_components_match_attribution(self, small_dataset, small_params):
        from repro.gpu.profiler import profile_kernels

        data, _ = small_dataset
        engine, _ = _fit("gpu-fast", data, small_params)
        attr = attribute_run(engine.model)
        by_name = {kernel.name: kernel for kernel in attr.kernels}
        for profile in profile_kernels(engine.model):
            attributed = by_name[profile.name].component_seconds()
            for component, seconds in profile.components.items():
                assert seconds == pytest.approx(
                    attributed.get(component, 0.0), rel=1e-9
                )

    def test_top_folds_remainder(self, small_dataset, small_params):
        from repro.gpu.profiler import format_kernel_profile, profile_kernels

        data, _ = small_dataset
        engine, _ = _fit("gpu-fast", data, small_params)
        profiles = profile_kernels(engine.model)
        table = format_kernel_profile(profiles, top=2)
        assert f"(+{len(profiles) - 2} more)" in table
        # Folding must not change the grand total.
        full = format_kernel_profile(profiles)
        assert table.splitlines()[-1].split() == full.splitlines()[-1].split()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestExplainCli:
    ARGS = ("--n", "1200", "--clusters", "3", "--k", "4", "--l", "3",
            "--a", "20", "--b", "4")

    def _run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_explain_run_and_report(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        flame_path = tmp_path / "flame.txt"
        code, out = self._run(
            capsys, "explain", *self.ARGS, "--backend", "gpu-fast",
            "--json", str(report_path), "--flamegraph", str(flame_path),
        )
        assert code == 0
        assert "by component" in out
        report = json.loads(report_path.read_text())
        assert report["schema"] == EXPLAIN_SCHEMA
        assert validate_explain_report(report) == []
        assert flame_path.read_text().strip()

    def test_explain_fleet_reports_stragglers(self, capsys):
        code, out = self._run(
            capsys, "explain", *self.ARGS, "--backend", "fleet-gpu-fast",
            "--devices", "2",
        )
        assert code == 0
        assert "straggler index" in out
        assert "comm" in out

    def test_explain_diff_identical_is_zero(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            code, _ = self._run(
                capsys, "explain", *self.ARGS, "--backend", "gpu-fast",
                "--json", str(path),
            )
            assert code == 0
        code, out = self._run(capsys, "explain", "--diff", str(a), str(b))
        assert code == 0
        assert "no difference" in out
        assert "exact zero delta" in out

    def test_explain_diff_backends_shows_movers(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path, backend in ((a, "gpu"), (b, "gpu-fast")):
            self._run(capsys, "explain", *self.ARGS, "--backend", backend,
                      "--json", str(path))
        code, out = self._run(capsys, "explain", "--diff", str(a), str(b))
        assert code == 0
        assert "kernel movers" in out or "counter movers" in out

    def test_explain_unknown_workload_exits_2(self, capsys):
        code, _ = self._run(capsys, "explain", "--workload", "nope")
        assert code == 2

    def test_profile_top(self, capsys):
        code, out = self._run(
            capsys, "profile", *self.ARGS, "--backend", "gpu-fast",
            "--top", "2",
        )
        assert code == 0
        assert "more)" in out
        assert "components" in out

    def test_monitor_fleet_file(self, capsys, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({
            "total_seconds": 1.0, "comm_seconds": 0.25,
            "devices": [
                {"device": 0, "busy_seconds": 0.75, "sync_seconds": 0.0},
                {"device": 1, "busy_seconds": 0.25, "sync_seconds": 0.5},
            ],
        }))
        code, out = self._run(capsys, "monitor", "--fleet", str(path))
        assert code == 0
        assert "straggler index" in out

    def test_monitor_requires_dir_or_fleet(self, capsys):
        from repro.cli import main

        code = main(["monitor"])
        assert code == 2
