"""Unit tests for the shared randomness protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import RandomSource


class TestDeterminism:
    def test_same_seed_same_sample(self):
        a = RandomSource(42).sample_indices(1000, 50)
        b = RandomSource(42).sample_indices(1000, 50)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomSource(1).sample_indices(1000, 50)
        b = RandomSource(2).sample_indices(1000, 50)
        assert not np.array_equal(a, b)

    def test_full_protocol_sequence_reproducible(self):
        def run(seed):
            rng = RandomSource(seed)
            s = rng.sample_indices(500, 40)
            g = rng.greedy_seed(40)
            m = rng.initial_medoids(20, 5)
            r = rng.replacement_medoids(np.arange(15), 2)
            return s, g, m, r

        for x, y in zip(run(7), run(7)):
            assert np.array_equal(x, y)


class TestDrawProperties:
    def test_sample_indices_distinct_and_in_range(self):
        s = RandomSource(0).sample_indices(100, 100)
        assert sorted(s.tolist()) == list(range(100))

    def test_sample_indices_partial(self):
        s = RandomSource(0).sample_indices(1000, 10)
        assert len(np.unique(s)) == 10
        assert s.min() >= 0 and s.max() < 1000

    def test_greedy_seed_in_range(self):
        for seed in range(20):
            g = RandomSource(seed).greedy_seed(17)
            assert 0 <= g < 17

    def test_initial_medoids_distinct(self):
        m = RandomSource(0).initial_medoids(30, 30)
        assert sorted(m.tolist()) == list(range(30))

    def test_replacement_from_candidates_only(self):
        candidates = np.array([3, 8, 11, 40])
        r = RandomSource(5).replacement_medoids(candidates, 3)
        assert set(r.tolist()) <= set(candidates.tolist())
        assert len(np.unique(r)) == 3

    def test_draw_count_increments(self):
        rng = RandomSource(0)
        assert rng.draw_count == 0
        rng.sample_indices(10, 2)
        rng.greedy_seed(5)
        rng.initial_medoids(5, 2)
        rng.replacement_medoids([1, 2, 3], 1)
        assert rng.draw_count == 4


class TestSpawnAndWrap:
    def test_spawn_is_independent(self):
        parent = RandomSource(9)
        child = parent.spawn()
        a = child.sample_indices(100, 10)
        b = parent.sample_indices(100, 10)
        assert not np.array_equal(a, b)

    def test_spawned_children_deterministic(self):
        a = RandomSource(9).spawn().sample_indices(100, 10)
        b = RandomSource(9).spawn().sample_indices(100, 10)
        assert np.array_equal(a, b)

    def test_wraps_existing_generator(self):
        gen = np.random.default_rng(3)
        rng = RandomSource(gen)
        assert rng.generator is gen

    def test_none_seed_accepted(self):
        s = RandomSource(None).sample_indices(100, 5)
        assert len(s) == 5


class TestStateCapture:
    """get_state / set_state / from_state round-trips (checkpointing)."""

    def test_set_state_replays_the_stream(self):
        rng = RandomSource(5)
        rng.sample_indices(1000, 50)
        snapshot = rng.get_state()
        first = [rng.greedy_seed(500) for _ in range(5)]
        draws_after = rng.draw_count
        rng.set_state(snapshot)
        second = [rng.greedy_seed(500) for _ in range(5)]
        assert first == second
        assert rng.draw_count == draws_after

    def test_draw_count_round_trips(self):
        rng = RandomSource(5)
        rng.sample_indices(100, 5)
        rng.greedy_seed(50)
        snapshot = rng.get_state()
        assert snapshot["draw_count"] == 2
        fresh = RandomSource.from_state(snapshot)
        assert fresh.draw_count == 2

    def test_from_state_reproduces_future_draws(self):
        rng = RandomSource(12)
        rng.initial_medoids(40, 4)
        snapshot = rng.get_state()
        expected = rng.sample_indices(1000, 20)
        rebuilt = RandomSource.from_state(snapshot)
        assert np.array_equal(rebuilt.sample_indices(1000, 20), expected)

    def test_spawn_counter_round_trips(self):
        """A restored master spawns the same children it would have."""
        rng = RandomSource(3)
        rng.spawn()  # advance the spawn counter
        snapshot = rng.get_state()
        expected = rng.spawn().sample_indices(1000, 10)
        rebuilt = RandomSource.from_state(snapshot)
        assert np.array_equal(rebuilt.spawn().sample_indices(1000, 10), expected)

    def test_set_state_rewinds_the_spawn_counter(self):
        rng = RandomSource(3)
        snapshot = rng.get_state()
        expected = rng.spawn().sample_indices(1000, 10)
        rng.spawn()  # counter moved further ahead
        rng.set_state(snapshot)
        assert np.array_equal(rng.spawn().sample_indices(1000, 10), expected)

    def test_snapshot_is_json_serializable(self):
        import json

        rng = RandomSource(8)
        rng.spawn()
        rng.sample_indices(100, 5)
        payload = json.loads(json.dumps(rng.get_state()))
        rebuilt = RandomSource.from_state(payload)
        assert np.array_equal(
            rebuilt.sample_indices(1000, 10), rng.sample_indices(1000, 10)
        )

    def test_restore_into_wrong_generator_rejected(self):
        from repro.exceptions import ParameterError

        snapshot = RandomSource(0).get_state()
        other = RandomSource(np.random.Generator(np.random.MT19937(0)))
        with pytest.raises(ParameterError, match="cannot restore"):
            other.set_state(snapshot)

    def test_snapshot_is_isolated_from_the_source(self):
        rng = RandomSource(2)
        snapshot = rng.get_state()
        rng.sample_indices(100, 10)  # mutating the source ...
        fresh = RandomSource.from_state(snapshot)
        again = RandomSource.from_state(snapshot)
        # ... must not have touched the captured state
        assert np.array_equal(
            fresh.sample_indices(1000, 10), again.sample_indices(1000, 10)
        )
