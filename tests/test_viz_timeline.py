"""Tests for the ASCII timeline renderer (repro.viz.timeline)."""

from __future__ import annotations

import pytest

from repro import BACKENDS
from repro.obs import Tracer, use_tracer
from repro.viz import render_device_lanes, render_span_tree, render_timeline


@pytest.fixture(scope="module")
def traced(request):
    from repro.data.normalize import minmax_normalize
    from repro.data.synthetic import generate_subspace_data
    from repro.params import ProclusParams

    ds = generate_subspace_data(
        n=600, d=8, n_clusters=4, subspace_dims=4, std=2.0, seed=7
    )
    data = minmax_normalize(ds.data)
    tracer = Tracer()
    with use_tracer(tracer):
        BACKENDS["gpu-fast"](
            params=ProclusParams(k=4, l=3, a=30, b=5), seed=0
        ).fit(data)
    return tracer


class TestSpanTree:
    def test_empty_roots(self):
        assert render_span_tree([]) == "(no spans recorded)"

    def test_contains_phase_names_and_bars(self, traced):
        text = render_span_tree(traced.roots)
        assert "fit" in text
        assert "iterative" in text
        assert "refinement" in text
        assert "#" in text

    def test_elides_long_sibling_runs(self):
        tracer = Tracer()
        with tracer.span("root"):
            for index in range(10):
                with tracer.span("child", index=index):
                    pass
        text = render_span_tree(tracer.roots, max_children=3)
        assert "... 7 more sibling spans" in text
        assert text.count("child") == 3

    def test_max_depth_limits_recursion(self, traced):
        shallow = render_span_tree(traced.roots, max_depth=0)
        assert "iteration" not in shallow
        assert "fit" in shallow


class TestDeviceLanes:
    def test_no_modeled_events(self):
        assert "no modeled kernel launches" in render_device_lanes(Tracer())

    def test_one_lane_per_pipeline(self, traced):
        text = render_device_lanes(traced)
        for pipeline in ("compute_l", "assign_points", "evaluate", "outliers"):
            assert pipeline in text
        assert "launches" in text


class TestTimeline:
    def test_full_timeline_sections(self, traced):
        text = render_timeline(traced)
        assert "device timeline" in text
        assert "final counters" in text
        assert "cache hit-rate" in text

    def test_timeline_without_kernels_or_counters(self):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        text = render_timeline(tracer)
        assert "only" in text
        assert "device timeline" not in text
        assert "final counters" not in text
