"""Tests for the ASCII timeline renderer (repro.viz.timeline)."""

from __future__ import annotations

import pytest

from repro import BACKENDS
from repro.obs import Tracer, use_tracer
from repro.viz import render_device_lanes, render_span_tree, render_timeline


@pytest.fixture(scope="module")
def traced(request):
    from repro.data.normalize import minmax_normalize
    from repro.data.synthetic import generate_subspace_data
    from repro.params import ProclusParams

    ds = generate_subspace_data(
        n=600, d=8, n_clusters=4, subspace_dims=4, std=2.0, seed=7
    )
    data = minmax_normalize(ds.data)
    tracer = Tracer()
    with use_tracer(tracer):
        BACKENDS["gpu-fast"](
            params=ProclusParams(k=4, l=3, a=30, b=5), seed=0
        ).fit(data)
    return tracer


class TestSpanTree:
    def test_empty_roots(self):
        assert render_span_tree([]) == "(no spans recorded)"

    def test_contains_phase_names_and_bars(self, traced):
        text = render_span_tree(traced.roots)
        assert "fit" in text
        assert "iterative" in text
        assert "refinement" in text
        assert "#" in text

    def test_elides_long_sibling_runs(self):
        tracer = Tracer()
        with tracer.span("root"):
            for index in range(10):
                with tracer.span("child", index=index):
                    pass
        text = render_span_tree(tracer.roots, max_children=3)
        assert "... 7 more sibling spans" in text
        assert text.count("child") == 3

    def test_max_depth_limits_recursion(self, traced):
        shallow = render_span_tree(traced.roots, max_depth=0)
        assert "iteration" not in shallow
        assert "fit" in shallow


class TestDeviceLanes:
    def test_no_modeled_events(self):
        assert "no modeled kernel launches" in render_device_lanes(Tracer())

    def test_one_lane_per_pipeline(self, traced):
        text = render_device_lanes(traced)
        for pipeline in ("compute_l", "assign_points", "evaluate", "outliers"):
            assert pipeline in text
        assert "launches" in text


class TestTimeline:
    def test_full_timeline_sections(self, traced):
        text = render_timeline(traced)
        assert "device timeline" in text
        assert "final counters" in text
        assert "cache hit-rate" in text

    def test_timeline_without_kernels_or_counters(self):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        text = render_timeline(tracer)
        assert "only" in text
        assert "device timeline" not in text
        assert "final counters" not in text


class TestServeLanes:
    def test_empty_events(self):
        from repro.viz import render_serve_lanes

        assert render_serve_lanes([]) == "(no serve events recorded)"

    def test_synthetic_event_log(self):
        from repro.serve.events import ServeEvent
        from repro.viz import render_serve_lanes

        events = [
            ServeEvent(ts=0.0, kind="submit", queued=1, running=0),
            ServeEvent(ts=0.1, kind="admit", queued=2, running=0),
            ServeEvent(ts=0.2, kind="coalesce", queued=0, running=2),
            ServeEvent(ts=0.3, kind="cache_hit", queued=0, running=2),
            ServeEvent(ts=0.4, kind="reject", queued=0, running=2),
            ServeEvent(ts=0.5, kind="complete", queued=0, running=0),
        ]
        text = render_serve_lanes(events, width=30)
        lines = text.splitlines()
        assert "6 events" in lines[0]
        queued = next(line for line in lines if line.startswith("queued"))
        running = next(line for line in lines if line.startswith("running"))
        marks = next(line for line in lines if line.startswith("events"))
        assert "peak 2" in queued
        assert "2" in running.split("|")[1]
        assert "*" in marks and "h" in marks and "!" in marks
        assert "coalesce=1" in lines[-1]

    def test_accepts_dict_events_and_deep_queues(self):
        from repro.viz import render_serve_lanes

        events = [
            {"ts": float(index), "kind": "submit",
             "queued": index + 8, "running": 0}
            for index in range(6)
        ]
        text = render_serve_lanes(events, width=20)
        assert "+" in text  # depths >= 10 render as '+'
        assert "peak 13" in text

    def test_real_service_log_renders(self):
        import numpy as np

        from repro.serve import ClusterService
        from repro.viz import render_serve_lanes
        from repro.params import ProclusParams

        data = np.random.default_rng(1).random((200, 6)).astype(np.float32)
        with ClusterService(workers=1) as service:
            handle = service.submit(
                data=data, backend="fast",
                params=ProclusParams(k=3, l=3, a=20, b=4),
            )
            handle.result(timeout=120)
            text = render_serve_lanes(service.log.snapshot())
        assert "serve timeline" in text
        assert "running" in text
        assert "submit=1" in text
