"""Tests for the external clustering quality metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval.metrics import (
    adjusted_rand_index,
    confusion_matrix,
    normalized_mutual_information,
    purity,
    subspace_recovery,
)

labels_strategy = st.lists(st.integers(0, 4), min_size=2, max_size=60)


class TestConfusionMatrix:
    def test_identity(self):
        table = confusion_matrix([0, 0, 1, 1], [0, 0, 1, 1])
        assert np.array_equal(table, [[2, 0], [0, 2]])

    def test_outliers_excluded(self):
        table = confusion_matrix([0, 0, -1], [0, -1, 0])
        assert table.sum() == 1

    def test_label_values_irrelevant(self):
        a = confusion_matrix([5, 5, 9], [1, 1, 3])
        assert np.array_equal(a, [[2, 0], [0, 1]])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0, 1, 2])


class TestAri:
    def test_perfect_agreement(self):
        assert adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == pytest.approx(1.0)

    def test_worst_case_split(self):
        # Completely mixed clustering -> ARI near 0 (chance level).
        truth = [0] * 10 + [1] * 10
        pred = [0, 1] * 10
        assert abs(adjusted_rand_index(truth, pred)) < 0.2

    def test_single_point_degenerate(self):
        assert adjusted_rand_index([0], [0]) == 1.0

    def test_all_same_cluster(self):
        assert adjusted_rand_index([0, 0, 0], [0, 0, 0]) == 1.0

    @settings(max_examples=40, deadline=None)
    @given(labels_strategy)
    def test_self_agreement_is_one(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @settings(max_examples=40, deadline=None)
    @given(labels_strategy, st.integers(0, 100))
    def test_bounded(self, labels, seed):
        pred = np.random.default_rng(seed).integers(0, 3, len(labels))
        value = adjusted_rand_index(labels, pred)
        assert -1.0 <= value <= 1.0


class TestNmi:
    def test_perfect(self):
        assert normalized_mutual_information([0, 0, 1, 1], [1, 1, 0, 0]) == pytest.approx(1.0)

    def test_independent_labelings_low(self):
        rng = np.random.default_rng(0)
        truth = rng.integers(0, 4, 4000)
        pred = rng.integers(0, 4, 4000)
        assert normalized_mutual_information(truth, pred) < 0.05

    @settings(max_examples=40, deadline=None)
    @given(labels_strategy)
    def test_bounded_unit_interval(self, labels):
        pred = np.roll(labels, 1)
        v = normalized_mutual_information(labels, pred)
        assert 0.0 <= v <= 1.0

    def test_empty_after_outlier_filter(self):
        assert normalized_mutual_information([-1, -1], [0, 1]) == 0.0


class TestPurity:
    def test_pure_clusters(self):
        assert purity([0, 0, 1, 1], [0, 0, 1, 1]) == 1.0

    def test_mixed_cluster(self):
        assert purity([0, 1], [0, 0]) == 0.5

    def test_merging_keeps_majority(self):
        assert purity([0, 0, 0, 1], [0, 0, 0, 0]) == 0.75

    def test_empty(self):
        assert purity([-1], [-1]) == 0.0


class TestSubspaceRecovery:
    def test_exact_recovery(self):
        truth = ((0, 1), (2, 3))
        labels = np.array([0, 0, 1, 1])
        found = ((0, 1), (2, 3))
        assert subspace_recovery(truth, labels, found, labels) == pytest.approx(1.0)

    def test_partial_overlap(self):
        truth = ((0, 1),)
        labels = np.zeros(4, dtype=int)
        found = ((0, 2),)
        # Jaccard({0,1}, {0,2}) = 1/3
        assert subspace_recovery(truth, labels, found, labels) == pytest.approx(1 / 3)

    def test_weighted_by_cluster_size(self):
        truth = ((0,), (1,))
        labels = np.array([0, 0, 0, 1])
        found = ((0,), (2,))  # cluster 0 perfect, cluster 1 disjoint
        value = subspace_recovery(truth, labels, found, labels)
        assert value == pytest.approx(3 / 4)

    def test_empty_found_cluster_ignored(self):
        truth = ((0,),)
        labels_true = np.array([0, 0])
        found = ((0,), (1,))
        labels_pred = np.array([0, 0])  # cluster 1 empty
        assert subspace_recovery(truth, labels_true, found, labels_pred) == 1.0
