"""Tests for the public API (repro.proclus / repro.run_parameter_study)."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import BACKENDS, proclus, run_parameter_study
from repro.exceptions import ParameterError
from repro.params import ProclusParams


class TestProclusFunction:
    def test_default_backend_is_gpu_fast(self, small_dataset):
        data, _ = small_dataset
        r = proclus(data, k=4, l=3, seed=0)
        assert r.stats.backend == "gpu-fast-proclus"

    def test_unknown_backend_lists_options(self, small_dataset):
        data, _ = small_dataset
        with pytest.raises(ParameterError) as err:
            proclus(data, backend="quantum")
        assert "gpu-fast" in str(err.value)

    def test_k_l_shortcut_matches_params_object(self, small_dataset):
        data, _ = small_dataset
        a = proclus(data, k=4, l=3, backend="proclus", seed=1)
        b = proclus(
            data, params=ProclusParams(k=4, l=3), backend="proclus", seed=1
        )
        assert a.same_clustering(b)

    def test_explicit_params_override_k_l(self, small_dataset):
        data, _ = small_dataset
        r = proclus(
            data, k=9, l=7, params=ProclusParams(k=4, l=3, a=30, b=5),
            backend="proclus", seed=0,
        )
        assert r.k == 4

    def test_normalize_flag(self):
        rng = np.random.default_rng(0)
        raw = (rng.random((600, 6)) * 50.0 + 10.0).astype(np.float32)
        r = proclus(raw, k=3, l=3, backend="proclus", seed=0, normalize=True)
        assert r.k == 3

    def test_all_backends_registered(self):
        assert set(BACKENDS) == {
            "proclus", "fast", "fast-star",
            "gpu", "gpu-fast", "gpu-fast-star",
            "multicore", "multicore-fast", "multicore-fast-star",
            "fast-dist-only", "fast-h-only",
            "gpu-fast-dist-only", "gpu-fast-h-only",
            "fleet-gpu", "fleet-gpu-fast", "fleet-gpu-fast-star",
        }

    def test_backend_names_match_engine_backend_name(self, small_dataset):
        data, _ = small_dataset
        for name, cls in BACKENDS.items():
            assert cls.backend_name  # every engine declares its name


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_symbols_importable(self):
        for symbol in repro.__all__:
            assert hasattr(repro, symbol), symbol

    def test_run_parameter_study_normalize_flag(self):
        rng = np.random.default_rng(1)
        raw = (rng.random((800, 6)) * 9.0).astype(np.float32)
        from repro.params import ParameterGrid

        grid = ParameterGrid(ks=(3,), ls=(2,), base=ProclusParams(a=20, b=4))
        study = run_parameter_study(
            raw, grid=grid, backend="fast", level=0, seed=0, normalize=True
        )
        assert study.num_settings == 1
