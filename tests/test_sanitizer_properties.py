"""Property-based soundness/completeness tests for the kernel sanitizer.

Soundness: kernels that are race-free *by construction* — disjoint
ownership, atomics-only accumulation, barrier-separated phases — must
never be reported, whatever the launch geometry or schedule.

Completeness: a single injected conflict (two chosen threads touching
one chosen cell without synchronization) must always be reported, with
a race diagnostic naming that cell.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.atomics import atomic_add
from repro.gpu.sanitizer import (
    RACE_KINDS,
    RACE_WRITE_WRITE,
    sanitize_launch,
)

pytestmark = pytest.mark.sanitized

geometries = st.tuples(
    st.integers(1, 3),   # blocks
    st.integers(1, 8),   # threads per block
    st.sampled_from([None, 1, 2]),  # schedule seed
)


class TestNeverReportsOnRaceFreeKernels:
    @settings(max_examples=25, deadline=None)
    @given(geometries)
    def test_disjoint_ownership_is_silent(self, geo):
        """Every thread writes only the cell it owns; everyone reads a
        shared input — concurrent reads are never a race."""
        blocks, threads, seed = geo

        def owned_cells(ctx, data, out):
            out[ctx.global_id] = data[ctx.global_id] + data[0]

        data = np.arange(blocks * threads, dtype=np.float32)
        out = np.zeros(blocks * threads, dtype=np.float32)
        report = sanitize_launch(
            owned_cells, blocks, threads, data, out, schedule_seed=seed
        )
        assert report.ok, report.render()

    @settings(max_examples=25, deadline=None)
    @given(geometries)
    def test_atomic_accumulation_is_silent(self, geo):
        blocks, threads, seed = geo

        def accumulate(ctx, total):
            atomic_add(total, 0, 1.0)

        total = np.zeros(1, dtype=np.float64)
        report = sanitize_launch(
            accumulate, blocks, threads, total, schedule_seed=seed
        )
        assert report.ok, report.render()
        assert total[0] == blocks * threads

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 8), st.integers(1, 7), st.sampled_from([None, 1, 2]))
    def test_barrier_separated_exchange_is_silent(self, threads, shift, seed):
        """Write-your-own then read-a-neighbour's is race-free when a
        __syncthreads sits between the phases — for any shift."""

        def exchange(ctx, out):
            tile = ctx.shared.array(
                "tile", ctx.block_threads, dtype=np.float32, fill=0.0
            )
            tile[ctx.tx] = float(ctx.tx)
            yield
            out[ctx.global_id] = tile[(ctx.tx + shift) % ctx.block_threads]

        out = np.zeros(threads, dtype=np.float32)
        report = sanitize_launch(exchange, 1, threads, out, schedule_seed=seed)
        assert report.ok, report.render()


class TestAlwaysReportsInjectedConflicts:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(2, 8),           # threads per block
        st.data(),
    )
    def test_two_plain_writers_same_cell(self, threads, data):
        """Any chosen pair of threads plainly writing one chosen cell is
        reported as a write-write race on exactly that cell."""
        first = data.draw(st.integers(0, threads - 1), label="first")
        second = data.draw(
            st.integers(0, threads - 1).filter(lambda t: t != first),
            label="second",
        )
        cell = data.draw(st.integers(0, 3), label="cell")
        seed = data.draw(st.sampled_from([None, 1, 2]), label="seed")

        def injected(ctx, out):
            if ctx.tx in (first, second):
                out[cell] = float(ctx.tx)

        out = np.zeros(4, dtype=np.float32)
        report = sanitize_launch(injected, 1, threads, out, schedule_seed=seed)
        assert report.kinds == {RACE_WRITE_WRITE}
        diag = report.by_kind(RACE_WRITE_WRITE)[0]
        assert diag.location == (cell,)
        assert diag.array == "out"

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 8), st.integers(0, 3), st.sampled_from([None, 2]))
    def test_plain_write_racing_atomics(self, threads, plain_thread, seed):
        """One plain writer among atomic updaters is always flagged as
        an atomic/plain conflict, whichever thread it is."""

        def mixed(ctx, total):
            if ctx.tx == plain_thread % ctx.block_threads:
                total[0] = 1.0
            else:
                atomic_add(total, 0, 1.0)

        total = np.zeros(1, dtype=np.float64)
        report = sanitize_launch(mixed, 1, threads, total, schedule_seed=seed)
        assert not report.ok
        assert report.kinds <= set(RACE_KINDS)
