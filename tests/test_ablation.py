"""Tests for the strategy-ablation engines."""

from __future__ import annotations

import pytest

from repro import proclus
from repro.params import ProclusParams

ABLATIONS = ["fast-dist-only", "fast-h-only", "gpu-fast-dist-only", "gpu-fast-h-only"]


class TestAblationCorrectness:
    @pytest.mark.parametrize("backend", ABLATIONS)
    def test_identical_to_baseline(self, small_dataset, small_params, backend):
        data, _ = small_dataset
        base = proclus(data, backend="proclus", params=small_params, seed=2)
        other = proclus(data, backend=backend, params=small_params, seed=2)
        assert other.same_clustering(base)
        assert other.cost == base.cost


class TestAblationWorkOrdering:
    @pytest.fixture(scope="class")
    def times(self, medium_dataset):
        data, _ = medium_dataset
        params = ProclusParams(k=5, l=3, a=40, b=6)
        return {
            name: proclus(
                data, backend=name, params=params, seed=1
            ).stats.modeled_seconds
            for name in ("proclus", "fast-dist-only", "fast-h-only", "fast")
        }

    def test_each_strategy_alone_beats_baseline(self, times):
        assert times["fast-dist-only"] < times["proclus"]
        assert times["fast-h-only"] < times["proclus"]

    def test_combined_beats_each_alone(self, times):
        assert times["fast"] <= times["fast-dist-only"]
        assert times["fast"] <= times["fast-h-only"]

    def test_dist_cache_is_the_bigger_contributor(self, times):
        """The distance recomputation is the paper's dominant target."""
        gain_dist = times["proclus"] - times["fast-dist-only"]
        gain_h = times["proclus"] - times["fast-h-only"]
        assert gain_dist > gain_h


class TestAblationCounters:
    def test_dist_only_skips_distance_rows(self, medium_dataset):
        data, _ = medium_dataset
        params = ProclusParams(k=5, l=3, a=40, b=6)
        base = proclus(data, backend="gpu", params=params, seed=1)
        dist_only = proclus(
            data, backend="gpu-fast-dist-only", params=params, seed=1
        )
        assert (
            dist_only.stats.counters["gpu.flops"] < base.stats.counters["gpu.flops"]
        )

    def test_h_only_smaller_device_footprint_than_fast(
        self, medium_dataset
    ):
        data, _ = medium_dataset
        params = ProclusParams(k=5, l=3, a=40, b=6)
        h_only = proclus(data, backend="gpu-fast-h-only", params=params, seed=1)
        fast = proclus(data, backend="gpu-fast", params=params, seed=1)
        # No B*k x n Dist cache -> much smaller footprint.
        assert h_only.stats.peak_device_bytes < fast.stats.peak_device_bytes
