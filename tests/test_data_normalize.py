"""Tests for min-max normalization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.normalize import minmax_normalize
from repro.exceptions import DataValidationError


class TestBasic:
    def test_output_in_unit_interval(self):
        data = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        out = minmax_normalize(data)
        assert out.min() == 0.0
        assert out.max() == 1.0

    def test_column_wise(self):
        data = np.array([[0.0, 100.0], [10.0, 200.0]])
        out = minmax_normalize(data)
        assert np.allclose(out, [[0.0, 0.0], [1.0, 1.0]])

    def test_constant_dimension_maps_to_zero(self):
        data = np.array([[5.0, 1.0], [5.0, 2.0]])
        out = minmax_normalize(data)
        assert np.all(out[:, 0] == 0.0)
        assert np.allclose(out[:, 1], [0.0, 1.0])

    def test_input_not_modified(self):
        data = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        copy = data.copy()
        minmax_normalize(data)
        assert np.array_equal(data, copy)

    def test_returns_float32(self):
        out = minmax_normalize(np.array([[1, 2], [3, 4]], dtype=np.int64))
        assert out.dtype == np.float32

    def test_single_row(self):
        out = minmax_normalize(np.array([[3.0, 4.0]]))
        assert np.all(out == 0.0)

    def test_negative_values(self):
        out = minmax_normalize(np.array([[-10.0], [0.0], [10.0]]))
        assert np.allclose(out.ravel(), [0.0, 0.5, 1.0])


class TestValidation:
    def test_rejects_1d(self):
        with pytest.raises(DataValidationError):
            minmax_normalize(np.array([1.0, 2.0]))

    def test_rejects_3d(self):
        with pytest.raises(DataValidationError):
            minmax_normalize(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(DataValidationError):
            minmax_normalize(np.zeros((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(DataValidationError, match="NaN"):
            minmax_normalize(np.array([[1.0, np.nan]]))

    def test_rejects_inf(self):
        with pytest.raises(DataValidationError, match="NaN or infinite"):
            minmax_normalize(np.array([[1.0, np.inf]]))

    def test_rejects_strings(self):
        with pytest.raises(DataValidationError):
            minmax_normalize(np.array([["a", "b"]]))


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float32,
        shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=30),
        elements=st.floats(-1e6, 1e6, width=32),
    )
)
def test_property_output_bounded(data):
    out = minmax_normalize(data)
    assert out.shape == data.shape
    assert np.all(out >= 0.0)
    assert np.all(out <= 1.0)
    # Each non-constant column attains both 0 and 1.
    for j in range(data.shape[1]):
        col = data[:, j]
        if col.max() > col.min():
            assert out[:, j].min() == 0.0
            assert out[:, j].max() == 1.0
