"""Differential replay tests: crash bundles reproduce their failures.

The acceptance contract of the postmortem subsystem: for each terminal
failure class — solo OOM exhaustion, fleet device loss, and a loadgen
determinism violation — the dumped bundle alone must deterministically
re-execute the recorded job and reproduce the recorded error class
with a bit-identical resilience event log (modulo wall-clock fields),
or, for violations recorded without an error, the recorded solo bits.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import PostmortemError, ResilienceExhaustedError
from repro.obs import (
    FlightRecorder,
    analyze_bundle,
    comparable_events,
    load_bundle,
    replay_bundle,
    use_recorder,
    validate_postmortem,
)
from repro.params import ProclusParams
from repro.resilience import (
    FaultInjector,
    ResilientRunner,
    RetryPolicy,
    use_injector,
)


def _data(n: int = 500, d: int = 8, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, d))


def _crash(
    tmp_path,
    *,
    backend: str,
    schedule: tuple[str, ...],
    engine_kwargs: dict | None = None,
    policy: RetryPolicy | None = None,
) -> dict:
    """Run a fit to terminal failure under a recorder; load the bundle."""
    recorder = FlightRecorder(capacity=64, bundle_dir=tmp_path)
    policy = policy or RetryPolicy(max_retries=1, allow_degraded=False)
    runner = ResilientRunner(policy)
    injector = FaultInjector(schedule, seed=0)
    with use_recorder(recorder), use_injector(injector):
        with pytest.raises(ResilienceExhaustedError) as excinfo:
            runner.fit(
                _data(),
                backend=backend,
                params=ProclusParams(k=3, l=3, a=10, b=4),
                seed=7,
                engine_kwargs=engine_kwargs or {},
            )
    assert recorder.dump_count == 1
    bundle = load_bundle(tmp_path)
    bundle["_recorded_error"] = excinfo.value
    return bundle


class TestSoloOomExhaustion:
    @pytest.fixture(scope="class")
    def bundle(self, tmp_path_factory):
        return _crash(
            tmp_path_factory.mktemp("oom"),
            backend="gpu-fast",
            schedule=("oom#1+*",),
        )

    def test_bundle_validates(self, bundle):
        assert validate_postmortem(bundle) == []

    def test_bundle_records_the_failure_and_schedule(self, bundle):
        assert bundle["failure"]["reason"] == "resilience-exhausted"
        assert bundle["failure"]["error_type"] == "ResilienceExhaustedError"
        assert bundle["failure"]["last_error_type"] == "DeviceOutOfMemoryError"
        assert bundle["fault_schedule"]["specs"]
        assert bundle["job"]["backend"] == "gpu-fast"
        assert bundle["dataset"]["data_b64"]

    def test_analysis_names_the_oom_fault(self, bundle):
        analysis = analyze_bundle(bundle)
        assert analysis["reason"] == "resilience-exhausted"
        assert analysis["suspects"]["fault"]["kind"] == "oom"
        assert analysis["replayable"] is True

    def test_replay_reproduces_the_error_class_and_event_log(self, bundle):
        report = replay_bundle(bundle)
        assert report["reproduced"] is True, report["detail"]
        assert report["observed_error_type"] == "ResilienceExhaustedError"
        assert report["observed_last_error_type"] == "DeviceOutOfMemoryError"
        assert report["events_match"] is True

    def test_differential_recorded_vs_replayed_events(self, bundle):
        """The recorded exception's own event log equals the bundle's
        (the dump did not lose or reorder anything)."""
        recorded = comparable_events(
            [event.as_dict() for event in bundle["_recorded_error"].events]
        )
        assert recorded == comparable_events(bundle["failure"]["events"])

    def test_tampered_bundle_fails_to_reproduce(self, bundle):
        tampered = json.loads(
            json.dumps({k: v for k, v in bundle.items() if k != "_recorded_error"})
        )
        tampered["failure"]["error_type"] = "KernelTimeoutError"
        report = replay_bundle(tampered)
        assert report["reproduced"] is False
        assert "KernelTimeoutError" in report["detail"]


class TestFleetDeviceDown:
    @pytest.fixture(scope="class")
    def bundle(self, tmp_path_factory):
        return _crash(
            tmp_path_factory.mktemp("devdown"),
            backend="fleet-gpu-fast",
            schedule=("device-down@dev1",),
            engine_kwargs={"fleet": 2},
            policy=RetryPolicy(
                max_retries=1, allow_degraded=False, max_reshards=0
            ),
        )

    def test_bundle_validates(self, bundle):
        assert validate_postmortem(bundle) == []

    def test_analysis_names_the_lost_device(self, bundle):
        analysis = analyze_bundle(bundle)
        assert analysis["suspects"]["fault"]["kind"] == "device-down"
        assert analysis["suspects"]["device"] == "dev1"
        assert analysis["failure"]["last_error_type"] == "DeviceLostError"

    def test_replay_reproduces_the_device_loss(self, bundle):
        report = replay_bundle(bundle)
        assert report["reproduced"] is True, report["detail"]
        assert report["observed_error_type"] == "ResilienceExhaustedError"
        assert report["observed_last_error_type"] == "DeviceLostError"
        assert report["events_match"] is True

    def test_max_reshards_zero_made_the_loss_terminal(self, bundle):
        assert bundle["job"]["policy"]["max_reshards"] == 0


class TestDeterminismViolationReplay:
    @pytest.fixture(scope="class")
    def report_and_bundle(self, tmp_path_factory):
        """Force the loadgen oracle to flag every response as divergent
        (the service is actually deterministic, so the recorded solo
        digest is the truth the replay can reproduce)."""
        import repro.serve.loadgen as loadgen_module
        from repro.serve import run_loadgen

        directory = tmp_path_factory.mktemp("determinism")
        original = loadgen_module._identical
        loadgen_module._identical = lambda served, reference: False
        try:
            report = run_loadgen(
                num_requests=4,
                seed=0,
                workers=1,
                n=300,
                d=6,
                clusters=3,
                postmortem_dir=directory,
            )
        finally:
            loadgen_module._identical = original
        return report, load_bundle(directory)

    def test_loadgen_report_names_the_bundle(self, report_and_bundle):
        report, bundle = report_and_bundle
        assert report["ok"] is False
        assert report["determinism"]["violations"]
        assert report["postmortem_bundle"] == bundle["_path"]

    def test_bundle_validates_and_has_reference_digest(
        self, report_and_bundle
    ):
        _, bundle = report_and_bundle
        assert validate_postmortem(bundle) == []
        assert bundle["failure"]["reason"] == "determinism-violation"
        assert bundle["failure"]["error_type"] == ""  # no exception raised
        assert bundle["reference_digest"]
        assert bundle["fault_schedule"] is None

    def test_replay_reproduces_the_solo_bits(self, report_and_bundle):
        _, bundle = report_and_bundle
        report = replay_bundle(bundle)
        assert report["reproduced"] is True, report["detail"]
        assert report["digest_match"] is True
        assert report["observed_digest"] == bundle["reference_digest"]

    def test_corrupted_reference_digest_fails_the_replay(
        self, report_and_bundle
    ):
        _, bundle = report_and_bundle
        tampered = dict(bundle)
        tampered["reference_digest"] = "0" * 64
        report = replay_bundle(tampered)
        assert report["reproduced"] is False
        assert "digest" in report["detail"]


class TestBundleErrors:
    def test_load_missing_bundle_raises(self, tmp_path):
        with pytest.raises(PostmortemError, match="no postmortem"):
            load_bundle(tmp_path)

    def test_load_bad_json_raises(self, tmp_path):
        path = tmp_path / "postmortem-x-001.json"
        path.write_text("{nope")
        with pytest.raises(PostmortemError, match="not valid JSON"):
            load_bundle(path)

    def test_replay_without_job_context_raises(self, tmp_path):
        recorder = FlightRecorder(capacity=4, bundle_dir=tmp_path)
        recorder.record_failure("mystery")
        path = recorder.dump("mystery")
        bundle = load_bundle(path)
        assert validate_postmortem(bundle) == []
        with pytest.raises(PostmortemError, match="no replayable job"):
            replay_bundle(bundle)

    def test_analyze_rejects_invalid_bundles(self):
        with pytest.raises(PostmortemError, match="failed validation"):
            analyze_bundle({"schema": "repro.postmortem/1"})

    def test_dataset_fingerprint_mismatch_detected(self, tmp_path):
        bundle = _crash(
            tmp_path, backend="gpu-fast", schedule=("oom#1+*",)
        )
        tampered = json.loads(
            json.dumps(
                {k: v for k, v in bundle.items() if k != "_recorded_error"}
            )
        )
        payload = tampered["dataset"]["data_b64"]
        tampered["dataset"]["data_b64"] = payload[:-8] + payload[:8]
        with pytest.raises(PostmortemError):
            replay_bundle(tampered)
