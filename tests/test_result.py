"""Unit tests for ProclusResult and RunStats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.result import OUTLIER_LABEL, ProclusResult, RunStats


def make_result(labels, medoids=(3, 9), dims=((0, 1), (1, 2))):
    return ProclusResult(
        labels=np.asarray(labels),
        medoids=np.asarray(medoids),
        dimensions=tuple(tuple(d) for d in dims),
        cost=0.5,
        refined_cost=0.4,
        iterations=7,
        best_iteration=2,
        stats=RunStats(backend="test"),
    )


class TestProclusResult:
    def test_k_from_medoids(self):
        assert make_result([0, 1, 0, 1]).k == 2

    def test_outlier_count(self):
        r = make_result([0, -1, 1, -1, -1])
        assert r.n_outliers == 3

    def test_cluster_sizes_exclude_outliers(self):
        r = make_result([0, 0, 1, -1])
        assert r.cluster_sizes().tolist() == [2, 1]

    def test_cluster_sizes_include_empty_clusters(self):
        r = make_result([0, 0, 0])
        assert r.cluster_sizes().tolist() == [3, 0]

    def test_cluster_members(self):
        r = make_result([0, 1, 0, 1])
        assert r.cluster_members(0).tolist() == [0, 2]
        assert r.cluster_members(1).tolist() == [1, 3]

    def test_cluster_members_out_of_range(self):
        r = make_result([0, 1])
        with pytest.raises(IndexError):
            r.cluster_members(2)
        with pytest.raises(IndexError):
            r.cluster_members(-1)

    def test_same_clustering_true_for_identical(self):
        a = make_result([0, 1, -1])
        b = make_result([0, 1, -1])
        assert a.same_clustering(b)

    def test_same_clustering_detects_label_difference(self):
        assert not make_result([0, 1, 1]).same_clustering(make_result([0, 1, 0]))

    def test_same_clustering_detects_medoid_difference(self):
        a = make_result([0, 1], medoids=(3, 9))
        b = make_result([0, 1], medoids=(3, 8))
        assert not a.same_clustering(b)

    def test_same_clustering_detects_dimension_difference(self):
        a = make_result([0, 1], dims=((0, 1), (1, 2)))
        b = make_result([0, 1], dims=((0, 1), (0, 2)))
        assert not a.same_clustering(b)

    def test_summary_mentions_every_cluster(self):
        text = make_result([0, 1, 0]).summary()
        assert "cluster 0" in text and "cluster 1" in text
        assert "cost=" in text

    def test_outlier_label_is_minus_one(self):
        assert OUTLIER_LABEL == -1


class TestRunStats:
    def test_merge_sums_counters(self):
        a = RunStats(counters={"x": 1.0, "y": 2.0})
        b = RunStats(counters={"y": 3.0, "z": 4.0})
        merged = a.merge(b)
        assert merged.counters == {"x": 1.0, "y": 5.0, "z": 4.0}

    def test_merge_sums_phase_seconds(self):
        a = RunStats(phase_seconds={"p": 1.0})
        b = RunStats(phase_seconds={"p": 2.0, "q": 3.0})
        merged = a.merge(b)
        assert merged.phase_seconds == {"p": 3.0, "q": 3.0}

    def test_merge_sums_times_and_iterations(self):
        a = RunStats(modeled_seconds=1.0, wall_seconds=2.0, iterations=5)
        b = RunStats(modeled_seconds=3.0, wall_seconds=4.0, iterations=7)
        merged = a.merge(b)
        assert merged.modeled_seconds == 4.0
        assert merged.wall_seconds == 6.0
        assert merged.iterations == 12

    def test_merge_takes_max_peak(self):
        merged = RunStats(peak_device_bytes=10).merge(RunStats(peak_device_bytes=7))
        assert merged.peak_device_bytes == 10

    def test_merge_keeps_first_backend_name(self):
        merged = RunStats(backend="a").merge(RunStats(backend="b"))
        assert merged.backend == "a"

    def test_merge_does_not_mutate_inputs(self):
        a = RunStats(counters={"x": 1.0})
        b = RunStats(counters={"x": 2.0})
        a.merge(b)
        assert a.counters == {"x": 1.0}
        assert b.counters == {"x": 2.0}

    def test_merge_empty_backend_falls_through(self):
        merged = RunStats().merge(RunStats(backend="b"))
        assert merged.backend == "b"
