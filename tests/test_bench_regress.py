"""Tests for the baseline store and the performance-regression gate."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    QUICK_TIER,
    QuickWorkload,
    load_baselines,
    run_quick_tier,
    run_regression_check,
    write_baselines,
)
from repro.bench.baseline import (
    BASELINE_SCHEMA,
    EXACT_COUNTERS,
    bench_quick_record,
    quick_report,
    run_workload,
)
from repro.bench.regress import (
    EXIT_INVALID_BASELINE,
    EXIT_OK,
    EXIT_REGRESSION,
    compare_samples,
    compare_workload,
    sign_test_p,
)
from repro.obs import validate_bench_report

#: A tiny workload keeping the real-run tests to well under a second.
TINY = QuickWorkload(
    name="tiny", backend="gpu-fast", n=512, d=8, n_clusters=4,
    subspace_dims=3, k=4, l=3,
)
SEEDS = (0, 1, 2)


def _record(**overrides) -> dict:
    """A synthetic, well-formed baseline record (5 seeds: the sign test
    needs 5 all-slower pairs to reach significance)."""
    record = {
        "schema": BASELINE_SCHEMA,
        "version": 1,
        "created": "2026-01-01T00:00:00+00:00",
        "workload": {"name": "w", "backend": "gpu-fast", "n": 1024},
        "seeds": [0, 1, 2, 3, 4],
        "modeled_seconds": [1.0, 1.1, 0.9, 1.0, 1.0],
        "wall_seconds": [0.1, 0.1, 0.1, 0.1, 0.1],
        "cost": [10.0, 11.0, 9.0, 10.0, 10.0],
        "counters": {"gpu.flops": [100.0] * 5},
    }
    record.update(overrides)
    return record


class TestSignTest:
    def test_no_pairs_is_inconclusive(self):
        assert sign_test_p(0, 0) == 1.0

    def test_all_five_slower_is_significant(self):
        assert sign_test_p(5, 0) == pytest.approx(1 / 32)

    def test_four_of_five_is_not_significant(self):
        assert sign_test_p(4, 1) == pytest.approx(6 / 32)

    def test_balanced_pattern_is_chance(self):
        assert sign_test_p(1, 1) == pytest.approx(0.75)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            sign_test_p(-1, 2)


class TestCompareSamples:
    def test_identical_samples_all_ties_no_regression(self):
        verdict = compare_samples([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert verdict["ties"] == 3
        assert verdict["p_slower"] == 1.0
        assert not verdict["regression"]

    def test_consistent_slowdown_regresses(self):
        base = [1.0] * 5
        verdict = compare_samples(base, [1.05] * 5)
        assert verdict["slower"] == 5
        assert verdict["mean_rel_delta"] == pytest.approx(0.05)
        assert verdict["regression"]

    def test_consistent_but_negligible_slowdown_passes(self):
        # 0.01% mean slowdown: significant by sign test, below threshold.
        verdict = compare_samples([1.0] * 5, [1.0001] * 5)
        assert verdict["p_slower"] == pytest.approx(1 / 32)
        assert not verdict["regression"]

    def test_one_bad_seed_is_not_significant(self):
        # Huge mean delta from a single seed: fails the sign test.
        verdict = compare_samples([1.0] * 5, [3.0, 1.0, 1.0, 1.0, 1.0])
        assert verdict["mean_rel_delta"] > 0.1
        assert not verdict["regression"]

    def test_speedup_never_regresses(self):
        verdict = compare_samples([1.0] * 5, [0.5] * 5)
        assert verdict["mean_rel_delta"] < 0
        assert not verdict["regression"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ in length"):
            compare_samples([1.0], [1.0, 2.0])

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            compare_samples([], [])


class TestCompareWorkload:
    def test_identical_records_pass(self):
        verdict = compare_workload(_record(), _record())
        assert verdict["ok"]
        assert verdict["invalid"] == [] and verdict["regressions"] == []

    def test_wrong_schema_is_invalid(self):
        verdict = compare_workload(_record(schema="bogus/1"), _record())
        assert not verdict["ok"]
        assert any("schema" in issue for issue in verdict["invalid"])

    def test_workload_definition_drift_is_invalid(self):
        changed = _record(
            workload={"name": "w", "backend": "gpu-fast", "n": 2048}
        )
        verdict = compare_workload(_record(), changed)
        assert any("definitions differ" in issue for issue in verdict["invalid"])

    def test_seed_drift_is_invalid(self):
        verdict = compare_workload(_record(), _record(seeds=[0, 1]))
        assert any("seeds differ" in issue for issue in verdict["invalid"])

    def test_missing_key_is_invalid(self):
        broken = _record()
        del broken["counters"]
        verdict = compare_workload(broken, _record())
        assert any("counters" in issue for issue in verdict["invalid"])

    def test_exact_counter_mismatch_regresses(self):
        fresh = _record(counters={"gpu.flops": [100.0, 100.0, 200.0, 100.0, 100.0]})
        verdict = compare_workload(_record(), fresh)
        assert not verdict["ok"]
        assert any("gpu.flops" in line for line in verdict["regressions"])

    def test_cost_drift_regresses_as_determinism_change(self):
        fresh = _record(cost=[10.0, 11.0, 9.5, 10.0, 10.0])
        verdict = compare_workload(_record(), fresh)
        assert any(
            "determinism change" in line for line in verdict["regressions"]
        )

    def test_modeled_slowdown_names_the_metric(self):
        fresh = _record(modeled_seconds=[1.1, 1.21, 0.99, 1.1, 1.1])
        verdict = compare_workload(_record(), fresh)
        assert any(
            line.startswith("modeled_seconds") for line in verdict["regressions"]
        )


class TestRunRegressionCheck:
    def test_empty_store_exits_2(self):
        verdict = run_regression_check({}, [_record()])
        assert verdict["exit_code"] == EXIT_INVALID_BASELINE
        assert not verdict["ok"]
        assert any("store is empty" in issue for issue in verdict["invalid"])

    def test_missing_workload_baseline_exits_2(self):
        verdict = run_regression_check({"other": _record()}, [_record()])
        assert verdict["exit_code"] == EXIT_INVALID_BASELINE
        assert any("no committed baseline" in i for i in verdict["invalid"])

    def test_clean_match_exits_0(self):
        verdict = run_regression_check({"w": _record()}, [_record()])
        assert verdict["exit_code"] == EXIT_OK and verdict["ok"]
        assert validate_bench_report(verdict, "repro.regress/1") == []

    def test_regression_exits_1_and_names_workload(self):
        fresh = _record(modeled_seconds=[1.1, 1.21, 0.99, 1.1, 1.1])
        verdict = run_regression_check({"w": _record()}, [fresh])
        assert verdict["exit_code"] == EXIT_REGRESSION
        assert verdict["regressed"] == ["w"]


class TestRealTier:
    """End-to-end over a genuinely executed (tiny) workload."""

    def test_record_shape_and_determinism(self):
        record = run_workload(TINY, SEEDS)
        assert validate_bench_report(record, BASELINE_SCHEMA) == []
        assert record["seeds"] == list(SEEDS)
        assert len(record["modeled_seconds"]) == len(SEEDS)
        assert all(t > 0 for t in record["modeled_seconds"])
        assert set(record["counters"]) <= set(EXACT_COUNTERS)
        # A re-run is bit-identical in everything deterministic.
        again = run_workload(TINY, SEEDS)
        assert again["modeled_seconds"] == record["modeled_seconds"]
        assert again["cost"] == record["cost"]
        assert again["counters"] == record["counters"]

    def test_store_round_trip_and_clean_gate(self, tmp_path):
        records = run_quick_tier(SEEDS, tier=(TINY,))
        write_baselines(records, tmp_path)
        store = load_baselines(tmp_path)
        assert set(store) == {"tiny"}
        fresh = run_quick_tier(SEEDS, tier=(TINY,))
        verdict = run_regression_check(store, fresh)
        assert verdict["exit_code"] == EXIT_OK
        # Deterministic modeled time: a clean re-run is all ties.
        assert verdict["workloads"][0]["modeled"]["ties"] == len(SEEDS)

    def test_injected_backend_swap_is_caught(self, tmp_path):
        write_baselines(run_quick_tier(SEEDS, tier=(TINY,)), tmp_path)
        store = load_baselines(tmp_path)
        # Losing the Dist cache: run gpu-fast as gpu-fast-h-only.
        fresh = run_quick_tier(
            SEEDS, tier=(TINY,), backend_map={"gpu-fast": "gpu-fast-h-only"}
        )
        verdict = run_regression_check(store, fresh)
        assert verdict["exit_code"] == EXIT_REGRESSION
        lines = verdict["workloads"][0]["regressions"]
        assert any("cache.dist_rows_hit" in line for line in lines)

    def test_load_baselines_missing_dir_is_empty(self, tmp_path):
        assert load_baselines(tmp_path / "nope") == {}


class TestReporting:
    def test_quick_report_rows_and_key_numbers(self):
        record = run_workload(TINY, SEEDS)
        report = quick_report([record])
        assert "tiny" in report.render()
        assert "tiny_modeled_mean" in report.key_numbers

    def test_bench_quick_record_envelope(self):
        record = run_workload(TINY, SEEDS)
        payload = bench_quick_record([record], wall_seconds=1.5)
        assert validate_bench_report(payload, "repro.bench_quick/1") == []
        assert payload["ok"] is True
        summary = payload["workloads"][0]
        assert summary["name"] == "tiny"
        assert summary["modeled_mean"] == pytest.approx(
            sum(record["modeled_seconds"]) / len(SEEDS)
        )
        json.dumps(payload)


class TestCommittedStore:
    """The seeded store in benchmarks/baselines/ must stay valid."""

    def test_committed_baselines_cover_the_quick_tier(self):
        from pathlib import Path

        store_dir = Path(__file__).resolve().parents[1] / "benchmarks/baselines"
        store = load_baselines(store_dir)
        assert set(store) == {w.name for w in QUICK_TIER}
        for name, record in store.items():
            assert validate_bench_report(record, BASELINE_SCHEMA) == [], name
