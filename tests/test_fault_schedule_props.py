"""Property tests for the fault-schedule syntax (satellite: hypothesis).

The schedule grammar ``kind[@site][#at[+count|+*]][?prob][!nonsticky]``
is the wire format between the CLI, CI chaos jobs, and the injector.
These properties pin the round-trip contract: ``describe()`` of any
valid :class:`FaultSpec` parses back to an equal spec, and malformed
text raises the typed :class:`ParameterError` (never a raw
``ValueError``/``AttributeError``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.resilience import FAULT_KINDS, FaultSpec, parse_fault
from repro.resilience.faults import FOREVER

#: Characters legal inside a site pattern: anything but the ``#?!``
#: separators and whitespace.  Includes ``*`` (fnmatch), ``:`` (transfer
#: direction), and ``@`` (fleet device suffixes like ``kernel@dev1``).
SITE_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789_*.:@-"


@st.composite
def fault_specs(draw) -> FaultSpec:
    kind = draw(st.sampled_from(sorted(FAULT_KINDS)))
    site = draw(
        st.one_of(
            st.just("*"),
            st.text(alphabet=SITE_ALPHABET, min_size=1, max_size=12),
        )
    )
    probability = draw(
        st.one_of(
            st.none(),
            st.floats(
                min_value=0.0, max_value=1.0,
                exclude_min=True, allow_nan=False,
            ),
        )
    )
    if probability is None:
        at = draw(st.integers(min_value=1, max_value=99))
        count = draw(
            st.one_of(st.just(FOREVER), st.integers(min_value=1, max_value=99))
        )
    else:
        # The grammar makes ?prob and #at+count mutually exclusive.
        at, count = 1, 1
    sticky = True if kind != "transient" else draw(st.booleans())
    return FaultSpec(
        kind=kind, site=site, at=at, count=count,
        probability=probability, sticky=sticky,
    )


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(fault_specs())
    def test_parse_of_describe_is_identity(self, spec):
        assert parse_fault(spec.describe()) == spec

    @settings(max_examples=100, deadline=None)
    @given(fault_specs())
    def test_describe_is_a_fixed_point(self, spec):
        text = spec.describe()
        assert parse_fault(text).describe() == text

    @settings(max_examples=100, deadline=None)
    @given(fault_specs())
    def test_operation_is_always_known(self, spec):
        assert spec.operation in ("alloc", "launch", "transfer", "any")

    def test_device_shorthand_expands_only_for_device_down(self):
        assert parse_fault("device-down@dev3").site_pattern == "*@dev3"
        assert parse_fault("oom@dev3").site_pattern == "dev3"
        assert parse_fault("device-down@data*").site_pattern == "data*"


class TestMalformed:
    @pytest.mark.parametrize("text", [
        "",
        "   ",
        "#3",
        "@site",
        "oom@",
        "oom#",
        "oom#0",            # at must be >= 1
        "oom#zero",
        "oom#1+",
        "oom#1+0",          # count must be >= 1 or *
        "oom?",
        "oom?0",            # probability must be > 0
        "oom?1.5",          # probability must be <= 1
        "oom?0..5",
        "oom??0.5",
        "launch lunch",
        "LAUNCH",           # kinds are lowercase
        "explode",          # unknown kind
        "oom!nonsticky!",
        "oom#2?0.5#3",
    ])
    def test_raises_typed_error(self, text):
        with pytest.raises(ParameterError):
            parse_fault(text)

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=20))
    def test_arbitrary_text_never_raises_untyped(self, text):
        try:
            spec = parse_fault(text)
        except ParameterError:
            return
        # Whatever parsed must survive the round trip.
        assert parse_fault(spec.describe()) == spec
