"""Health-aware failover: DeviceHealth, speculation, quarantine serving,
event-log determinism, and graceful shutdown of a fleet-backed service.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import BACKENDS, proclus
from repro.exceptions import ParameterError, ServeError
from repro.fleet import DeviceHealth, Fleet, default_fleet
from repro.hardware.specs import GTX_1660_TI
from repro.params import ProclusParams
from repro.resilience import (
    FaultInjector,
    ResilientRunner,
    RetryPolicy,
    use_injector,
)

PARAMS = ProclusParams(k=4, l=3)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    return rng.normal(size=(400, 8)).astype(np.float32)


class TestDeviceHealth:
    def test_transient_threshold_quarantines(self):
        health = DeviceHealth(3, transient_threshold=3)
        assert health.record_transient(1) is False
        assert health.record_transient(1) is False
        assert health.record_transient(1) is True
        assert health.quarantined == frozenset({1})

    def test_success_resets_the_streak(self):
        health = DeviceHealth(2, transient_threshold=3)
        health.record_transient(0)
        health.record_transient(0)
        health.record_success(0)
        assert health.record_transient(0) is False
        assert health.quarantined == frozenset()

    def test_persistent_straggler_quarantined(self):
        health = DeviceHealth(3, straggler_threshold=1.5, straggler_strikes=3)
        block = {"straggler_device": "dev2", "straggler_index": 2.0}
        assert health.observe_attribution(block) is None
        assert health.observe_attribution(block) is None
        assert health.observe_attribution(block) == 2
        assert health.quarantined == frozenset({2})

    def test_straggling_must_be_persistent(self):
        health = DeviceHealth(3, straggler_strikes=2)
        health.observe_attribution(
            {"straggler_device": "dev2", "straggler_index": 2.0}
        )
        # A different straggler clears dev2's strike.
        health.observe_attribution(
            {"straggler_device": "dev0", "straggler_index": 2.0}
        )
        assert health.observe_attribution(
            {"straggler_device": "dev2", "straggler_index": 2.0}
        ) is None
        assert health.quarantined == frozenset()

    def test_mild_imbalance_never_strikes(self):
        health = DeviceHealth(2, straggler_threshold=1.5, straggler_strikes=1)
        quarantined = health.observe_attribution(
            {"straggler_device": "dev1", "straggler_index": 1.2}
        )
        assert quarantined is None
        assert health.quarantined == frozenset()

    def test_probation_then_readmission(self):
        health = DeviceHealth(2, transient_threshold=1, probation=2)
        health.record_transient(1)
        assert health.quarantined == frozenset({1})
        assert health.observe_round() == ()
        assert health.observe_round() == (1,)
        assert health.quarantined == frozenset()
        status = health.status()[1]
        assert status["consecutive_transients"] == 0
        assert status["quarantines"] == 1

    def test_healthy_fleet_drops_quarantined_weight(self):
        health = DeviceHealth(3, transient_threshold=1)
        fleet = default_fleet(3)
        assert health.healthy_fleet(fleet) is fleet
        health.record_transient(2)
        degraded = health.healthy_fleet(fleet)
        assert degraded.num_devices == 3
        assert degraded.effective_weights()[2] == 0.0

    def test_healthy_fleet_none_when_everyone_is_out(self):
        health = DeviceHealth(1, transient_threshold=1)
        health.record_transient(0)
        assert health.healthy_fleet(default_fleet(1)) is None

    def test_status_is_json_ready(self):
        health = DeviceHealth(2)
        payload = health.status()
        json.dumps(payload)
        assert [entry["device"] for entry in payload] == ["dev0", "dev1"]

    @pytest.mark.parametrize("kwargs", [
        {"devices": 0},
        {"devices": 2, "transient_threshold": 0},
        {"devices": 2, "straggler_threshold": 0.9},
        {"devices": 2, "straggler_strikes": 0},
        {"devices": 2, "probation": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            DeviceHealth(**kwargs)


class TestSpeculation:
    #: Equal weights on wildly unequal cards make the slower card's
    #: shard the persistent straggler.  A backup only wins when the
    #: fast member can replay the straggler's split (own launch + the
    #: backup launch) before the straggler finishes, which needs a
    #: speed gap well beyond real sibling cards — so the fast member is
    #: a synthetic 10x variant of the 1660 Ti.
    FAST = dataclasses.replace(
        GTX_1660_TI, name="synthetic-10x", sm_count=240,
        mem_bandwidth_bytes_per_s=2.88e12, atomic_ops_per_s=2.0e10,
    )
    UNBALANCED = Fleet(specs=(GTX_1660_TI, FAST), weights=(1.0, 1.0))

    @pytest.fixture(scope="class")
    def big_data(self):
        rng = np.random.default_rng(3)
        return rng.normal(size=(20000, 16)).astype(np.float32)

    def test_speculative_backups_fire_and_win(self, big_data):
        engine = BACKENDS["fleet-gpu-fast"](
            params=PARAMS, seed=0, fleet=self.UNBALANCED, speculation=1.15,
        )
        result = engine.fit(big_data)
        counters = result.stats.counters
        assert counters["fleet.speculative_launches"] >= 1
        assert counters["fleet.speculative_wins"] >= 1
        assert counters["fleet.speculative_saved_seconds"] > 0.0

    def test_speculation_never_changes_the_clustering(self, big_data):
        plain = BACKENDS["fleet-gpu-fast"](
            params=PARAMS, seed=0, fleet=self.UNBALANCED,
        ).fit(big_data)
        speculative = BACKENDS["fleet-gpu-fast"](
            params=PARAMS, seed=0, fleet=self.UNBALANCED, speculation=1.15,
        ).fit(big_data)
        assert np.array_equal(speculative.labels, plain.labels)
        assert speculative.dimensions == plain.dimensions
        assert speculative.cost == plain.cost
        exact = {
            name: value
            for name, value in plain.stats.counters.items()
            if name.startswith("gpu.")
        }
        for name, value in exact.items():
            assert speculative.stats.counters[name] == value

    def test_default_is_off(self, data):
        result = BACKENDS["fleet-gpu-fast"](
            params=PARAMS, seed=0, fleet=3,
        ).fit(data)
        assert "fleet.speculative_launches" not in result.stats.counters

    def test_threshold_validation(self, data):
        engine = BACKENDS["fleet-gpu-fast"](
            params=PARAMS, seed=0, fleet=2, speculation=0.5,
        )
        with pytest.raises(ParameterError, match="speculation"):
            engine.fit(data)


class TestQuarantineServing:
    def _service(self, tmp_path=None, devices=3):
        from repro.serve import ClusterService

        return ClusterService(
            fleet=default_fleet(devices),
            monitor_dir=None if tmp_path is None else tmp_path / "mon",
        )

    def test_sharded_jobs_reshard_around_quarantine(self, data):
        solo = proclus(data, params=PARAMS, backend="gpu-fast", seed=0)
        service = self._service()
        try:
            assert service.quarantine_device(1, reason="flaky") is True
            assert service.quarantined_devices == frozenset({1})
            handle = service.submit(
                data, backend="fleet-gpu-fast",
                k=PARAMS.k, l=PARAMS.l, seed=0,
            )
            result = handle.result(timeout=60)
            assert np.array_equal(result.labels, solo.labels)
            assert result.cost == solo.cost
            assert service.stats()["quarantined"] == ["dev1"]
        finally:
            service.close()

    def test_double_quarantine_and_blind_readmit_are_noops(self):
        service = self._service()
        try:
            assert service.quarantine_device(0) is True
            assert service.quarantine_device(0) is False
            assert service.readmit_device(2) is False
        finally:
            service.close()

    def test_cannot_quarantine_the_last_member(self):
        service = self._service(devices=2)
        try:
            service.quarantine_device(0)
            with pytest.raises(ServeError, match="would remain"):
                service.quarantine_device(1)
        finally:
            service.close()

    def test_quarantine_without_fleet_rejected(self):
        from repro.serve import ClusterService

        service = ClusterService()
        try:
            with pytest.raises(ServeError, match="no fleet"):
                service.quarantine_device(0)
        finally:
            service.close()

    def test_availability_and_mttr_reach_the_health_report(self, tmp_path):
        service = self._service(tmp_path)
        try:
            service.quarantine_device(1, reason="maintenance")
            report = service.monitor.flush(service._clock())
            by_name = {slo["name"]: slo for slo in report["slos"]}
            assert by_name["fleet-availability"]["value"] == pytest.approx(
                2 / 3
            )
            time.sleep(0.02)
            service.readmit_device(1)
        finally:
            health = service.shutdown()
        by_name = {slo["name"]: slo for slo in health["slos"]}
        assert by_name["fleet-availability"]["value"] == 1.0
        assert by_name["fleet-mttr"]["value"] > 0.0
        counters = health["service"]["counters"]
        assert counters["fleet.quarantined"] == 1
        assert counters["fleet.readmitted"] == 1

    def test_device_events_logged(self, tmp_path):
        from repro.obs.monitor import read_monitor_events

        service = self._service(tmp_path)
        try:
            service.quarantine_device(2, reason="ecc errors")
            service.readmit_device(2)
        finally:
            service.shutdown()
        records = read_monitor_events(tmp_path / "mon")
        kinds = [record["kind"] for record in records]
        assert "device_down" in kinds and "device_recovered" in kinds

    def test_record_recovery_feeds_mttr_directly(self, tmp_path):
        from repro.obs import ServiceMonitor

        monitor = ServiceMonitor(tmp_path)
        monitor.record_recovery(5.0, now=10.0)
        value = monitor.slo.metric_value(
            "fleet_mttr_seconds", window=3600.0, now=10.0
        )
        assert value == pytest.approx(5.0)
        registry = monitor.metrics.as_dict()["counters"]
        assert registry["fleet.recovery.mttr_seconds"] == pytest.approx(5.0)


class TestEventLogDeterminism:
    """Identical seeds + schedules produce identical resilience event
    logs — the satellite-4 contract.  ``recovery_s`` is wall-clock and
    explicitly excluded (zeroed before comparison)."""

    SCHEDULES = (
        ["device-down@dev1#8"],
        ["device-down@dev0#1", "device-down@dev1#4"],
        ["transient@*dev2*#3", "device-down@dev0#20"],
    )

    def _events(self, data, schedule):
        with use_injector(FaultInjector(schedule, seed=0)):
            outcome = ResilientRunner(RetryPolicy()).fit(
                data, backend="fleet-gpu-fast", params=PARAMS, seed=0,
                engine_kwargs={"fleet": 3},
            )
        payload = [event.as_dict() for event in outcome.events]
        for record in payload:
            record["recovery_s"] = 0.0
        return payload

    @pytest.mark.parametrize("schedule", SCHEDULES,
                             ids=["single-loss", "double-loss", "mixed"])
    def test_identical_runs_identical_logs(self, data, schedule):
        first = self._events(data, schedule)
        second = self._events(data, schedule)
        assert first == second
        assert any(record["kind"] == "reshard" for record in first)

    def test_logs_are_json_serializable(self, data):
        payload = self._events(data, ["device-down@dev2#5"])
        json.dumps(payload)


class TestServeSigterm:
    """SIGTERM mid-poll flushes the final monitor snapshot (satellite 3)."""

    def test_sigterm_is_graceful(self, tmp_path):
        from repro.obs import load_health
        from repro.serve.spool import read_response, write_request

        spool = tmp_path / "spool"
        monitor = tmp_path / "mon"
        env = dict(os.environ)
        repo = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(repo / "src")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(spool),
                "--devices", "2", "--monitor-dir", str(monitor),
                "--poll-seconds", "0.05",
            ],
            env=env, cwd=repo,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            # An in-flight sharded job must complete before shutdown.
            write_request(
                spool, "job-sigterm", backend="fleet-gpu-fast",
                k=4, l=3, seed=0,
                synthetic={"n": 600, "d": 8, "clusters": 4},
            )
            deadline = time.monotonic() + 120
            response = None
            while response is None and time.monotonic() < deadline:
                time.sleep(0.1)
                response = read_response(spool, "job-sigterm")
            assert response is not None, "serve never answered the request"
            assert response["ok"] is True

            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        # 130 is the documented interrupted-exit code; the finally
        # block in the CLI flushed the final health report on the way.
        assert process.returncode == 130
        health = load_health(monitor)
        assert health["final"] is True
        assert health["service"]["counters"]["serve.requests"] >= 1
        # The handled request was archived, not left in the live spool.
        assert not list((spool / "requests").glob("*.json"))
        assert list((spool / "done").glob("*.json"))
