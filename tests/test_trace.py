"""Tests for iteration-level tracing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fast import FastProclusEngine
from repro.core.proclus import ProclusEngine
from repro.core.trace import RunTrace
from repro.params import ProclusParams


@pytest.fixture(scope="module")
def traced(request):
    from repro.data.normalize import minmax_normalize
    from repro.data.synthetic import generate_subspace_data

    ds = generate_subspace_data(n=1500, d=8, n_clusters=4, subspace_dims=4, seed=2)
    data = minmax_normalize(ds.data)
    engine = ProclusEngine(
        params=ProclusParams(k=4, l=3, a=25, b=5), seed=1, collect_trace=True
    )
    result = engine.fit(data)
    return engine.trace_, result


class TestTraceContents:
    def test_one_record_per_iteration(self, traced):
        trace, result = traced
        assert len(trace) == result.iterations

    def test_first_iteration_always_improves(self, traced):
        trace, _ = traced
        assert trace.records[0].improved

    def test_best_cost_non_increasing(self, traced):
        trace, _ = traced
        best = trace.best_costs
        assert all(a >= b for a, b in zip(best, best[1:]))

    def test_final_best_matches_result_cost(self, traced):
        trace, result = traced
        assert trace.records[-1].best_cost == pytest.approx(result.cost)

    def test_improvements_where_best_cost_drops(self, traced):
        trace, _ = traced
        for r in trace.records:
            if r.improved:
                assert r.cost == r.best_cost

    def test_best_iteration_is_last_improvement(self, traced):
        trace, result = traced
        assert trace.improvements[-1] == result.best_iteration

    def test_cluster_sizes_sum_to_n(self, traced):
        trace, result = traced
        n = len(result.labels)
        for r in trace.records:
            assert sum(r.cluster_sizes) == n

    def test_medoid_positions_distinct(self, traced):
        trace, result = traced
        for r in trace.records:
            assert len(set(r.medoid_positions)) == result.k

    def test_churn_matches_bad_medoids(self, traced):
        """Churn at iteration t is at most |bad| of iteration t-1 plus
        the revert of a non-improving iteration's replacements."""
        trace, result = traced
        churn = trace.medoid_churn()
        assert churn[0] == 0
        k = result.k
        assert all(0 <= c <= k for c in churn)

    def test_tracing_off_by_default(self, traced):
        engine = ProclusEngine(params=ProclusParams(k=4, l=3, a=25, b=5), seed=1)
        assert engine.trace_ is None


class TestTraceUtilities:
    def test_summary_mentions_iterations(self, traced):
        trace, result = traced
        text = trace.summary()
        assert str(len(trace)) in text
        assert "improvements" in text

    def test_empty_trace_summary(self):
        assert RunTrace().summary() == "(empty trace)"

    def test_to_csv_round_trippable(self, traced, tmp_path):
        trace, _ = traced
        path = trace.to_csv(tmp_path / "trace.csv")
        lines = path.read_text().splitlines()
        assert len(lines) == len(trace) + 1
        assert lines[0].startswith("iteration,cost,improved")

    def test_trace_identical_across_variants(self):
        from repro.data.normalize import minmax_normalize
        from repro.data.synthetic import generate_subspace_data

        ds = generate_subspace_data(n=800, d=6, n_clusters=3, subspace_dims=3, seed=3)
        data = minmax_normalize(ds.data)
        params = ProclusParams(k=3, l=3, a=20, b=4)
        base = ProclusEngine(params=params, seed=5, collect_trace=True)
        base.fit(data)
        fast = FastProclusEngine(params=params, seed=5, collect_trace=True)
        fast.fit(data)
        assert base.trace_.costs == fast.trace_.costs
        assert [r.medoid_positions for r in base.trace_] == [
            r.medoid_positions for r in fast.trace_
        ]


class TestTraceSerialization:
    def test_json_round_trip(self, traced):
        trace, _ = traced
        rebuilt = RunTrace.from_json(trace.to_json())
        assert rebuilt == trace
        assert rebuilt.records[0].medoid_positions == trace.records[0].medoid_positions

    def test_empty_trace_round_trip(self):
        assert RunTrace.from_json(RunTrace().to_json()) == RunTrace()

    def test_as_dict_is_plain_data(self, traced):
        import json

        trace, _ = traced
        payload = trace.as_dict()
        json.dumps(payload)
        assert len(payload["records"]) == len(trace)

    def test_trace_persists_through_save_result(self, traced, tmp_path):
        from repro.core.serialization import load_result, save_result

        _, result = traced
        assert result.trace is not None
        path = save_result(result, tmp_path / "run.npz")
        loaded = load_result(path)
        assert loaded.trace is not None
        assert loaded.trace == result.trace

    def test_untraced_result_loads_with_none_trace(self, tmp_path):
        from repro.core.serialization import load_result, save_result
        from repro.data.normalize import minmax_normalize
        from repro.data.synthetic import generate_subspace_data

        ds = generate_subspace_data(n=400, d=6, n_clusters=3, subspace_dims=3, seed=4)
        engine = ProclusEngine(params=ProclusParams(k=3, l=3, a=20, b=4), seed=2)
        result = engine.fit(minmax_normalize(ds.data))
        assert result.trace is None
        loaded = load_result(save_result(result, tmp_path / "run.npz"))
        assert loaded.trace is None
