"""Tests for the schedule-independence checker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import atomics
from repro.gpu.atomics import atomic_add, atomic_inc, atomic_min
from repro.gpu.checker import check_schedule_independence
from repro.gpu.sanitizer import RACE_KINDS


def independent_kernel(ctx, data, out):
    for i in ctx.grid_stride(len(data)):
        out[i] = data[i] * 2.0


def racy_kernel(ctx, out):
    """Last writer wins — the classic race."""
    out[0] = ctx.global_id


def order_sensitive_float_kernel(ctx, out):
    """f64 += of values spanning magnitudes: order shows in the ulps."""
    atomic_add(out, 0, 10.0 ** (-(ctx.global_id % 13)) * 1.0000000001)


class TestChecker:
    def test_independent_kernel_passes(self):
        data = np.random.default_rng(0).random(64).astype(np.float32)
        out = np.zeros(64, dtype=np.float32)
        result = check_schedule_independence(
            independent_kernel, 4, 16, data, out
        )
        assert result.independent
        assert result.schedules_tried == 4

    def test_racy_kernel_detected(self):
        out = np.zeros(1, dtype=np.int64)
        result = check_schedule_independence(racy_kernel, 4, 8, out)
        assert not result.independent
        assert result.divergent_arguments == [0]
        assert result.max_differences[0] > 0

    def test_tolerance_mode_accepts_ulp_noise(self):
        out = np.zeros(1, dtype=np.float64)
        strict = check_schedule_independence(
            order_sensitive_float_kernel, 4, 16, out, exact=True,
            schedules=6,
        )
        lenient = check_schedule_independence(
            order_sensitive_float_kernel, 4, 16, out, exact=False,
            tolerance=1e-9, schedules=6,
        )
        assert not strict.independent
        assert lenient.independent

    def test_initial_contents_restored_per_trial(self):
        """Each schedule starts from the pristine buffer."""
        def incrementing(ctx, out):
            atomic_inc(out, ctx.tx)

        out = np.zeros(4, dtype=np.int64)
        result = check_schedule_independence(incrementing, 1, 4, out)
        assert result.independent  # would fail if trials accumulated

    def test_requires_two_schedules(self):
        with pytest.raises(ValueError):
            check_schedule_independence(racy_kernel, 1, 1,
                                        np.zeros(1), schedules=1)

    def test_shared_memory_divergence_detected(self):
        """A race confined to shared scratch is caught even though the
        kernel's output buffer is schedule-independent."""

        def shared_scratch_race(ctx, out):
            tile = ctx.shared.array("tile", 1, dtype=np.int64, fill=0)
            tile[0] = ctx.tx  # last writer wins; never read back
            yield
            out[ctx.tx] = ctx.tx  # output itself is deterministic

        out = np.zeros(8, dtype=np.int64)
        result = check_schedule_independence(shared_scratch_race, 1, 8, out)
        assert not result.independent
        assert result.divergent_arguments == []
        assert result.divergent_shared == ["block(0,)/tile"]

    def test_tiny_blocks_grow_schedule_count(self):
        """Blocks of <= 4 threads get more shuffles than requested."""
        data = np.arange(4, dtype=np.float32)
        out = np.zeros(4, dtype=np.float32)
        result = check_schedule_independence(
            independent_kernel, 2, 2, data, out
        )
        assert result.schedules_tried == 8
        assert result.independent

    def test_trials_do_not_inflate_atomic_counts(self):
        """Replayed trial launches run under isolated atomics state."""

        def one_atomic_each(ctx, out):
            atomic_inc(out, ctx.tx)

        out = np.zeros(8, dtype=np.int64)
        with atomics.count_atomics() as counter:
            atomic_add(out, 0, 0)
            check_schedule_independence(one_atomic_each, 1, 8, out)
        assert counter[0] == 1  # only the direct call outside the checker

    def test_sanitize_mode_reports_races(self):
        """sanitize=True surfaces access-level races the output diff
        could miss, and attaches the report to the result."""

        def benign_output_race(ctx, out):
            out[0] = 7  # every thread writes the same value

        out = np.zeros(1, dtype=np.int64)
        plain = check_schedule_independence(benign_output_race, 1, 8, out)
        assert plain.independent  # identical results under any order
        assert plain.sanitizer_report is None

        sanitized = check_schedule_independence(
            benign_output_race, 1, 8, out, sanitize=True
        )
        assert sanitized.sanitizer_report is not None
        assert not sanitized.sanitizer_report.ok
        assert sanitized.sanitizer_report.kinds <= set(RACE_KINDS)

    def test_sanitize_mode_clean_kernel_has_empty_report(self):
        data = np.arange(32, dtype=np.float32)
        out = np.zeros(32, dtype=np.float32)
        result = check_schedule_independence(
            independent_kernel, 2, 16, data, out, sanitize=True
        )
        assert result.independent
        assert result.sanitizer_report is not None
        assert result.sanitizer_report.ok
        assert result.sanitizer_report.launches == result.schedules_tried

    def test_project_kernels_are_schedule_independent(self):
        """The repository's own append-free kernels pass the checker."""
        from repro.gpu_impl.kernels.compute_l import _delta_kernel
        from repro.core.distance import euclidean_distances

        rng = np.random.default_rng(1)
        data = rng.random((40, 4), dtype=np.float32)
        mids = np.array([0, 5, 9])
        dist = euclidean_distances(data, data[mids])
        delta = np.full(3, np.inf, dtype=np.float32)
        result = check_schedule_independence(
            _delta_kernel, 3, 3, mids, dist, delta
        )
        assert result.independent
