"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestInfo:
    def test_lists_backends_and_datasets(self, capsys):
        code, out = run(capsys, "info")
        assert code == 0
        assert "gpu-fast" in out
        assert "pendigits" in out
        assert "GTX 1660 Ti" in out

    def test_lists_experiments(self, capsys):
        _, out = run(capsys, "info")
        for name in EXPERIMENTS:
            assert name in out


class TestCluster:
    def test_synthetic_run(self, capsys):
        code, out = run(
            capsys, "cluster", "--n", "1500", "--clusters", "3",
            "--k", "3", "--l", "3", "--a", "20", "--b", "4",
        )
        assert code == 0
        assert "PROCLUS clustering: k=3" in out
        assert "modeled time" in out
        assert "ARI" in out

    def test_named_dataset(self, capsys):
        code, out = run(
            capsys, "cluster", "--dataset", "glass",
            "--k", "4", "--l", "3", "--a", "10", "--b", "3",
        )
        assert code == 0
        assert "k=4" in out

    def test_backend_choice(self, capsys):
        code, out = run(
            capsys, "cluster", "--n", "1000", "--clusters", "3",
            "--k", "3", "--l", "3", "--a", "15", "--b", "3",
            "--backend", "proclus",
        )
        assert code == 0
        assert "i7-9750H" in out

    def test_save_labels(self, capsys, tmp_path):
        path = tmp_path / "labels.npy"
        code, _ = run(
            capsys, "cluster", "--n", "800", "--clusters", "3",
            "--k", "3", "--l", "3", "--a", "15", "--b", "3",
            "--save-labels", str(path),
        )
        assert code == 0
        labels = np.load(path)
        assert labels.shape == (800,)

    def test_invalid_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["cluster", "--backend", "nope"])


class TestStudy:
    def test_study_runs(self, capsys):
        code, out = run(
            capsys, "study", "--n", "2000", "--clusters", "4",
            "--ks", "4", "3", "--ls", "3", "2",
            "--a", "15", "--b", "3", "--level", "2",
        )
        assert code == 0
        assert "4 settings" in out
        assert "best: k=" in out


class TestBench:
    def test_bench_sec54(self, capsys):
        code, out = run(capsys, "bench", "sec54")
        assert code == 0
        assert "Nsight-style" in out

    def test_bench_csv_and_json_export(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        code, out = run(
            capsys, "bench", "sec54",
            "--csv", str(csv_path), "--json", str(json_path),
        )
        assert code == 0
        header = csv_path.read_text().splitlines()[0]
        assert "kernel" in header
        import json

        payload = json.loads(json_path.read_text())
        assert payload["experiment_id"] == "sec54"
        assert payload["rows"]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_every_registered_experiment_is_callable(self):
        for fn in EXPERIMENTS.values():
            assert callable(fn)


class TestProfile:
    def test_profile_gpu_backend(self, capsys):
        code, out = run(
            capsys, "profile", "--n", "1500", "--clusters", "3",
            "--k", "3", "--l", "3", "--a", "15", "--b", "3",
        )
        assert code == 0
        assert "greedy.distances" in out
        assert "bound by" in out

    def test_profile_rejects_cpu_backend(self):
        with pytest.raises(SystemExit):
            main(["profile", "--backend", "proclus"])


class TestValidate:
    def test_validate_passes(self, capsys):
        code, out = run(capsys, "validate", "--n", "500", "--runs", "1")
        assert code == 0
        assert "PASS" in out


class TestSanitize:
    def test_single_kernel_clean(self, capsys):
        code, out = run(capsys, "sanitize", "--kernel", "compute_l")
        assert code == 0
        assert "compute_l" in out
        assert "clean (0 diagnostics)" in out

    def test_all_kernels_json_export(self, capsys, tmp_path):
        import json

        path = tmp_path / "sanitize.json"
        code, out = run(
            capsys, "sanitize", "--all-kernels", "--json", str(path),
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["ok"] is True
        assert len(payload["kernels"]) == 7
        for entry in payload["kernels"]:
            assert entry["diagnostics"] == []
            assert entry["accesses"] > 0

    def test_unknown_kernel_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run(capsys, "sanitize", "--kernel", "nope")
        assert "invalid choice: 'nope'" in capsys.readouterr().err

    def test_diagnostics_fail_exit_code(self, capsys, monkeypatch):
        """A sweep that finds anything exits nonzero."""
        import repro.gpu_impl.sanitize as sweep_mod

        def racy(ctx, out):
            out[0] = ctx.global_id

        def drive_racy(rng, geo, em):
            em.launch(racy, 2, geo["tpb"], np.zeros(1, dtype=np.int64))

        monkeypatch.setitem(sweep_mod.KERNELS, "racy_demo", drive_racy)
        code, out = run(capsys, "sanitize", "--kernel", "racy_demo")
        assert code == 1
        assert "race-write-write" in out
        assert "FAILED" in out


class TestBenchAll:
    def test_bench_all_with_subset(self, capsys, tmp_path, monkeypatch):
        import repro.bench.runner as runner
        from repro.bench.figures import sec54_utilization

        monkeypatch.setattr(
            runner, "ALL_EXPERIMENTS", {"sec54": sec54_utilization}
        )
        code, out = run(capsys, "bench", "all", "--out", str(tmp_path))
        assert code == 0
        assert (tmp_path / "SUMMARY.md").exists()
        assert (tmp_path / "sec54.csv").exists()
        assert "running sec54" in out

    def test_bench_plot_flag(self, capsys, monkeypatch):
        # fig2ab records plot series; shrink its sweep first.
        from repro.bench import workloads

        monkeypatch.setattr(workloads, "n_sweep", lambda: [512, 1024])
        monkeypatch.setattr(workloads, "repeats", lambda: 1)
        code, out = run(capsys, "bench", "fig2ab", "--plot")
        assert code == 0
        assert "n (log)" in out


class TestCounters:
    def test_counters_flag_prints_table(self, capsys):
        code, out = run(
            capsys, "cluster", "--n", "800", "--clusters", "3",
            "--k", "3", "--l", "3", "--a", "15", "--b", "3",
            "--counters",
        )
        assert code == 0
        assert "work counters:" in out
        assert "cpu.vector_ops" in out or "gpu.flops" in out


class TestProfileJson:
    def test_json_to_stdout(self, capsys):
        import json

        code, out = run(
            capsys, "profile", "--n", "800", "--clusters", "3",
            "--k", "3", "--l", "3", "--a", "15", "--b", "3",
            "--json", "-",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["schema"] == "repro.kernel_profile/1"
        assert payload["backend"] == "gpu-fast"
        assert payload["kernels"]
        assert {"name", "calls", "bound_by", "share"} <= set(payload["kernels"][0])

    def test_json_to_file(self, capsys, tmp_path):
        import json

        path = tmp_path / "profile.json"
        code, out = run(
            capsys, "profile", "--n", "800", "--clusters", "3",
            "--k", "3", "--l", "3", "--a", "15", "--b", "3",
            "--json", str(path),
        )
        assert code == 0
        assert str(path) in out
        payload = json.loads(path.read_text())
        assert payload["modeled_seconds"] > 0


class TestTraceCommand:
    def test_trace_writes_valid_artifacts(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        code, out = run(
            capsys, "trace", "--n", "800", "--clusters", "3",
            "--k", "3", "--l", "3", "--a", "15", "--b", "3",
            "--out", str(tmp_path), "--label", "clitest",
        )
        assert code == 0
        assert "device timeline" in out
        assert "perfetto" in out.lower()
        trace = json.loads((tmp_path / "trace_gpu-fast.json").read_text())
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["label"] == "clitest"
        lines = (tmp_path / "telemetry.jsonl").read_text().splitlines()
        record = json.loads(lines[0])
        assert record["kind"] == "run"
        assert record["label"] == "clitest"

    def test_trace_study_mode(self, capsys, tmp_path):
        import json

        code, out = run(
            capsys, "trace", "--n", "600", "--d", "6", "--clusters", "3",
            "--a", "15", "--b", "3",
            "--backend", "gpu-fast", "--study-level", "3",
            "--ks", "4", "3", "--ls", "3",
            "--out", str(tmp_path),
        )
        assert code == 0
        record = json.loads(
            (tmp_path / "telemetry.jsonl").read_text().splitlines()[0]
        )
        assert record["kind"] == "study"
        assert record["settings"] == 2

    def test_trace_emulated_style_cpu_backend(self, capsys, tmp_path):
        """Tracing works for CPU backends too (host spans only)."""
        code, out = run(
            capsys, "trace", "--n", "600", "--clusters", "3",
            "--k", "3", "--l", "3", "--a", "15", "--b", "3",
            "--backend", "fast", "--out", str(tmp_path),
        )
        assert code == 0
        assert (tmp_path / "trace_fast.json").exists()
        assert "device timeline" not in out
