"""Tests for the resilient runner: retry, degradation, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro import proclus
from repro.exceptions import (
    DataValidationError,
    DeviceOutOfMemoryError,
    KernelLaunchError,
    KernelTimeoutError,
    ParameterError,
    ReproError,
    ResilienceExhaustedError,
    TransferCorruptionError,
    TransientDeviceError,
)
from repro.resilience import (
    DEFAULT_LADDERS,
    ErrorClass,
    FaultInjector,
    LadderStep,
    ResilientRunner,
    RetryPolicy,
    classify_error,
    default_ladder,
    resilient_fit,
    use_injector,
)

GPU_BACKENDS = ("gpu", "gpu-fast", "gpu-fast-star")

#: One representative schedule per fault class (all fire early in any
#: GPU run; a gpu-fast run at test scale issues only one transfer, so
#: ``corrupt`` must target the first).
FAULT_SCHEDULES = {
    "oom": ("oom#1",),
    "launch": ("launch#2",),
    "transient": ("transient#2",),
    "corrupt": ("corrupt#1",),
    "timeout": ("timeout#2",),
}


def assert_identical(a, b):
    """Bit-identical clustering results."""
    assert np.array_equal(a.labels, b.labels)
    assert np.array_equal(a.medoids, b.medoids)
    assert a.dimensions == b.dimensions  # ragged tuple: no array_equal
    assert a.cost == b.cost


class TestClassification:
    @pytest.mark.parametrize("error,expected", [
        (DeviceOutOfMemoryError(100, 10, 50), ErrorClass.CAPACITY),
        (TransientDeviceError("x"), ErrorClass.TRANSIENT),
        (TransferCorruptionError("x"), ErrorClass.TRANSIENT),
        (KernelTimeoutError("x"), ErrorClass.TRANSIENT),
        (KernelLaunchError("x"), ErrorClass.TRANSIENT),
        (DataValidationError("x"), ErrorClass.FATAL),
        (ParameterError("x"), ErrorClass.FATAL),
        (ReproError("x"), ErrorClass.FATAL),
        (RuntimeError("x"), ErrorClass.FATAL),
    ])
    def test_classify(self, error, expected):
        assert classify_error(error) is expected


class TestPolicy:
    def test_default_ladders_start_at_their_backend(self):
        for backend, ladder in DEFAULT_LADDERS.items():
            assert ladder[0].backend == backend
            assert ladder[0].engine_kwargs == {}

    def test_gpu_fast_ladder_is_the_documented_one(self):
        rungs = [step.describe() for step in default_ladder("gpu-fast")]
        assert rungs == [
            "gpu-fast",
            "gpu-fast(dist_chunks=2)",
            "gpu-fast(dist_chunks=4)",
            "gpu",
            "fast",
        ]

    def test_unknown_backend_gets_one_rung(self):
        assert default_ladder("proclus") == (LadderStep("proclus"),)

    def test_allow_degraded_false_is_one_rung(self):
        policy = RetryPolicy(allow_degraded=False)
        assert policy.ladder_for("gpu-fast") == (LadderStep("gpu-fast"),)

    def test_backoff_is_deterministic_exponential(self):
        policy = RetryPolicy(backoff_base=0.5)
        assert [policy.backoff_seconds(i) for i in (1, 2, 3)] == [0.5, 1.0, 2.0]
        assert RetryPolicy().backoff_seconds(3) == 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ParameterError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ParameterError):
            RetryPolicy(backoff_base=float("nan"))


class TestRecovery:
    def test_transient_retries_same_rung(self, small_dataset, small_params):
        data, _ = small_dataset
        reference = proclus(data, backend="gpu-fast", params=small_params, seed=0)
        injector = FaultInjector(["transient#2"])
        with use_injector(injector):
            outcome = resilient_fit(
                data, backend="gpu-fast", params=small_params, seed=0
            )
        assert outcome.attempts == 2
        assert outcome.backend == "gpu-fast"
        assert not outcome.degraded
        assert [event.kind for event in outcome.events] == ["retry"]
        assert outcome.events[0].error_class == "transient"
        assert_identical(outcome.result, reference)

    def test_oom_degrades_to_chunked_dist(self, small_dataset, small_params):
        data, _ = small_dataset
        reference = proclus(data, backend="gpu-fast", params=small_params, seed=0)
        injector = FaultInjector(["oom#1"])
        with use_injector(injector):
            outcome = resilient_fit(
                data, backend="gpu-fast", params=small_params, seed=0
            )
        assert outcome.degraded
        assert outcome.rung == "gpu-fast(dist_chunks=2)"
        degrade = [e for e in outcome.events if e.kind == "degrade"][0]
        assert degrade.error_class == "capacity"
        assert degrade.to_rung == "gpu-fast(dist_chunks=2)"
        assert_identical(outcome.result, reference)

    def test_persistent_oom_falls_back_to_cpu(self, small_dataset, small_params):
        data, _ = small_dataset
        reference = proclus(data, backend="gpu-fast", params=small_params, seed=0)
        injector = FaultInjector(["oom#1+*"])  # every allocation fails
        with use_injector(injector):
            outcome = resilient_fit(
                data, backend="gpu-fast", params=small_params, seed=0
            )
        assert outcome.backend == "fast"  # bottom of the ladder
        assert outcome.result.stats.backend != reference.stats.backend
        assert_identical(outcome.result, reference)

    def test_exhaustion_raises_with_history(self, small_dataset, small_params):
        data, _ = small_dataset
        injector = FaultInjector(["transient#1+*"])
        policy = RetryPolicy(max_retries=2, allow_degraded=False)
        with use_injector(injector):
            with pytest.raises(ResilienceExhaustedError) as info:
                resilient_fit(
                    data, backend="gpu-fast", params=small_params, seed=0,
                    policy=policy,
                )
        error = info.value
        assert isinstance(error.last_error, TransientDeviceError)
        assert len([e for e in error.events if e.kind == "retry"]) == 2

    def test_fatal_errors_pass_through(self, small_dataset, small_params):
        data, _ = small_dataset
        bad = data.copy()
        bad[0, 0] = np.nan
        with pytest.raises(DataValidationError):
            resilient_fit(bad, backend="gpu-fast", params=small_params, seed=0)

    def test_unknown_backend_rejected(self, small_dataset):
        data, _ = small_dataset
        with pytest.raises(ParameterError, match="unknown backend"):
            resilient_fit(data, backend="tpu", seed=0)

    def test_event_as_dict_is_json_ready(self, small_dataset, small_params):
        import json

        data, _ = small_dataset
        with use_injector(FaultInjector(["launch#2"])):
            outcome = resilient_fit(
                data, backend="gpu-fast", params=small_params, seed=0
            )
        payload = json.dumps([event.as_dict() for event in outcome.events])
        assert "retry" in payload


class TestDeterminismUnderFaults:
    """The acceptance criterion: every injected run across all three GPU
    backends recovers to the bit-identical fault-free clustering."""

    @pytest.mark.parametrize("backend", GPU_BACKENDS)
    @pytest.mark.parametrize("fault_class", sorted(FAULT_SCHEDULES))
    def test_differential(self, backend, fault_class, small_dataset, small_params):
        data, _ = small_dataset
        reference = proclus(data, backend=backend, params=small_params, seed=0)
        runner = ResilientRunner(RetryPolicy(max_retries=3))
        injector = FaultInjector(FAULT_SCHEDULES[fault_class], seed=0)
        with use_injector(injector):
            outcome = runner.fit(
                data, backend=backend, params=small_params, seed=0
            )
        assert injector.injected, "schedule never fired"
        rungs = [step.describe() for step in runner.policy.ladder_for(backend)]
        assert outcome.rung in rungs
        assert_identical(outcome.result, reference)

    def test_faults_leave_no_ambient_state(self, small_dataset, small_params):
        data, _ = small_dataset
        reference = proclus(data, backend="gpu-fast", params=small_params, seed=0)
        injector = FaultInjector(["transient#3"])
        with use_injector(injector):
            resilient_fit(data, backend="gpu-fast", params=small_params, seed=0)
        # A later, injector-free run is unaffected.
        again = proclus(data, backend="gpu-fast", params=small_params, seed=0)
        assert_identical(again, reference)
