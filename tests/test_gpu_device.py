"""Tests for the Device facade (allocation, transfer, launch accounting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.device import Device
from repro.hardware.specs import GTX_1660_TI, RTX_3090


@pytest.fixture
def device():
    return Device(GTX_1660_TI)


class TestMemory:
    def test_alloc_tracks_peak(self, device):
        device.alloc((1000,), np.float32, "a")
        device.alloc((1000,), np.float32, "b")
        assert device.peak_bytes == 8000

    def test_capacity_is_usable_memory(self, device):
        # The CUDA context / display reserve part of the card: the paper
        # reports only 4.2 GB free on the 6 GB GTX 1660 Ti.
        assert device.memory.capacity_bytes == GTX_1660_TI.usable_bytes
        assert device.memory.capacity_bytes < GTX_1660_TI.memory_bytes

    def test_to_device_copies_content(self, device):
        host = np.arange(12, dtype=np.float32).reshape(3, 4)
        d = device.to_device(host, "data")
        assert np.array_equal(d.data, host)
        host[0, 0] = 99.0
        assert d.data[0, 0] == 0.0  # device copy is independent

    def test_to_host_round_trip(self, device):
        host = np.arange(6, dtype=np.float32)
        d = device.to_device(host, "x")
        back = device.to_host(d)
        assert np.array_equal(back, host)

    def test_transfers_accounted(self, device):
        host = np.zeros(1000, dtype=np.float32)
        d = device.to_device(host, "x")
        device.to_host(d)
        c = device.model.counter
        assert c.get("gpu.h2d_bytes") == 4000
        assert c.get("gpu.d2h_bytes") == 4000
        assert device.model.phase_seconds["transfer"] > 0


class TestLaunch:
    def test_launch_returns_positive_seconds(self, device):
        seconds = device.launch(
            "k", "phase", grid_blocks=64, threads_per_block=256,
            flops=1e6, gmem_bytes=1e6,
        )
        assert seconds > 0

    def test_launch_overhead_floor(self, device):
        seconds = device.launch("k", "p", grid_blocks=1, threads_per_block=1)
        assert seconds >= GTX_1660_TI.kernel_launch_overhead_s

    def test_launch_records_counters(self, device):
        device.launch("k", "p", 10, 128, flops=100, gmem_bytes=200, atomic_ops=3)
        c = device.model.counter
        assert c.get("gpu.kernel_launches") == 1
        assert c.get("gpu.flops") == 100
        assert c.get("gpu.gmem_bytes") == 200
        assert c.get("gpu.atomic_ops") == 3

    def test_launch_accrues_phase_seconds(self, device):
        device.launch("k", "my_phase", 10, 128, gmem_bytes=1e7)
        assert device.model.phase_seconds["my_phase"] > 0
        assert device.total_seconds == pytest.approx(
            sum(device.model.phase_seconds.values())
        )

    def test_bigger_card_is_faster_for_big_kernels(self):
        small = Device(GTX_1660_TI).launch(
            "k", "p", 10_000, 1024, gmem_bytes=1e9
        )
        big = Device(RTX_3090).launch("k", "p", 10_000, 1024, gmem_bytes=1e9)
        assert big < small
