"""Tests for the serving CLI: repro serve / submit / loadgen."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.serve import read_response
from repro.serve.spool import REQUEST_SCHEMA, RESPONSE_SCHEMA


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


SMALL = ("--n", "600", "--d", "8", "--clusters", "4",
         "--k", "4", "--l", "3", "--a", "30", "--b", "5")


class TestSubmitAndServe:
    def test_roundtrip_through_the_spool(self, capsys, tmp_path):
        spool = str(tmp_path / "spool")
        code, out = run(
            capsys, "submit", spool, *SMALL, "--id", "job-a",
            "--backend", "gpu-fast",
        )
        assert code == 0
        assert "job-a" in out
        assert json.loads(
            (tmp_path / "spool/requests/job-a.json").read_text()
        )["schema"] == REQUEST_SCHEMA

        code, out = run(capsys, "serve", spool, "--once", "--timeline")
        assert code == 0
        assert "1 requests handled" in out
        assert "serve timeline" in out

        response = read_response(spool, "job-a")
        assert response["schema"] == RESPONSE_SCHEMA
        assert response["ok"] is True
        assert response["k"] == 4
        assert len(response["labels_sha256"]) == 64
        # Processed requests are moved aside, not deleted.
        assert not (tmp_path / "spool/requests/job-a.json").exists()
        assert (tmp_path / "spool/done/job-a.json").exists()

    def test_submit_npy_and_wait(self, capsys, tmp_path):
        data = np.random.default_rng(0).random((300, 6)).astype(np.float32)
        npy = tmp_path / "data.npy"
        np.save(npy, data)
        spool = str(tmp_path / "spool")
        code, _ = run(
            capsys, "submit", spool, "--npy", str(npy), "--id", "job-n",
            "--k", "3", "--l", "3", "--a", "20", "--b", "4",
            "--backend", "fast",
        )
        assert code == 0
        code, _ = run(capsys, "serve", spool, "--once")
        assert code == 0
        # --wait finds the already-written response immediately.
        code, out = run(
            capsys, "submit", spool, "--npy", str(npy), "--id", "job-n",
            "--k", "3", "--l", "3", "--a", "20", "--b", "4",
            "--backend", "fast", "--wait", "5",
        )
        assert code == 0
        assert "cost=" in out
        assert "labels sha256:" in out

    def test_wait_without_server_times_out(self, capsys, tmp_path):
        spool = str(tmp_path / "spool")
        code = main([
            "submit", spool, *SMALL, "--id", "job-w", "--wait", "0.1",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "no response" in captured.err

    def test_bad_request_yields_error_response(self, capsys, tmp_path):
        spool = str(tmp_path / "spool")
        code, _ = run(
            capsys, "submit", spool, *SMALL, "--id", "job-x",
            "--backend", "gpu-fast",
        )
        assert code == 0
        # Corrupt the request's backend after the fact.
        path = tmp_path / "spool/requests/job-x.json"
        document = json.loads(path.read_text())
        document["backend"] = "not-a-backend"
        path.write_text(json.dumps(document))
        code, _ = run(capsys, "serve", spool, "--once")
        assert code == 0  # the *server* survives bad requests
        response = read_response(spool, "job-x")
        assert response["ok"] is False
        assert "not-a-backend" in response["error"]


class TestLoadgenCli:
    def test_loadgen_writes_valid_report(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_serve.json"
        code, out = run(
            capsys, "loadgen", "--requests", "8", "--json", str(out_path),
        )
        assert code == 0
        assert "0 violations" in out
        assert "report written" in out
        from repro.obs import validate_serve_report

        report = json.loads(out_path.read_text())
        assert validate_serve_report(report) == []
        assert report["ok"] is True

    def test_loadgen_timeline_flag(self, capsys):
        code, out = run(
            capsys, "loadgen", "--requests", "6", "--timeline",
        )
        assert code == 0
        assert "serve timeline" in out
        assert "queued" in out

    def test_loadgen_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):
            main(["loadgen", "--backends", "nope"])


class TestPostmortemCli:
    def _crash_a_served_job(self, capsys, tmp_path) -> str:
        """Serve one fleet job with an injected terminal device loss."""
        spool = str(tmp_path / "spool")
        record = str(tmp_path / "pm")
        code, _ = run(
            capsys, "submit", spool, *SMALL, "--id", "job-x",
            "--backend", "fleet-gpu-fast",
        )
        assert code == 0
        code, out = run(
            capsys, "serve", spool, "--once", "--devices", "2",
            "--fault", "device-down@dev1", "--no-degrade",
            "--max-reshards", "0", "--record-dir", record,
        )
        assert code == 0
        assert "postmortem bundle" in out
        return record

    def test_injected_crash_dumps_a_bundle(self, capsys, tmp_path):
        record = self._crash_a_served_job(capsys, tmp_path)
        import glob

        bundles = glob.glob(record + "/postmortem-*.json")
        assert len(bundles) == 1
        bundle = json.loads(open(bundles[0]).read())
        assert bundle["schema"] == "repro.postmortem/1"
        assert bundle["failure"]["reason"] == "resilience-exhausted"

    def test_postmortem_analyze_and_replay(self, capsys, tmp_path):
        record = self._crash_a_served_job(capsys, tmp_path)
        analysis_path = str(tmp_path / "analysis.json")
        code, out = run(
            capsys, "postmortem", record, "--json", analysis_path,
            "--replay",
        )
        assert code == 0
        assert "replay REPRODUCED the failure" in out
        assert "dev1" in out
        analysis = json.loads(open(analysis_path).read())
        assert analysis["schema"] == "repro.postmortem_report/1"
        assert analysis["replay"]["reproduced"] is True
        assert analysis["suspects"]["device"] == "dev1"

    def test_postmortem_missing_bundle_exits_2(self, capsys, tmp_path):
        code = main(["postmortem", str(tmp_path)])
        assert code == 2

    def test_loadgen_postmortem_dir_flag(self, capsys, tmp_path, monkeypatch):
        import repro.serve.loadgen as loadgen_module

        monkeypatch.setattr(
            loadgen_module, "_identical", lambda served, reference: False
        )
        directory = str(tmp_path / "pm")
        code, out = run(
            capsys, "loadgen", "--requests", "4", "--workers", "1",
            "--n", "300", "--d", "6", "--clusters", "3",
            "--postmortem-dir", directory,
        )
        assert code == 1  # violations fail the loadgen gate
        assert "postmortem bundle:" in out
        code, out = run(capsys, "postmortem", directory, "--replay")
        assert code == 0
        assert "REPRODUCED the recorded solo bits" in out

    def test_sigterm_dump_via_keyboard_interrupt(self, tmp_path, monkeypatch):
        """The serve loop's interrupt path dumps a sigterm bundle."""
        import repro.cli as cli_module

        def fake_serve_spool(*args, **kwargs):
            raise KeyboardInterrupt

        import repro.serve as serve_module

        monkeypatch.setattr(serve_module, "serve_spool", fake_serve_spool)
        record = str(tmp_path / "pm")
        code = cli_module.main(
            ["serve", str(tmp_path / "spool"), "--once",
             "--record-dir", record]
        )
        assert code == 130  # conventional interrupt exit
        import glob

        bundles = glob.glob(record + "/postmortem-sigterm-*.json")
        assert len(bundles) == 1
        bundle = json.loads(open(bundles[0]).read())
        assert bundle["failure"]["reason"] == "sigterm"

    def test_env_var_installs_an_ambient_recorder(self, capsys, monkeypatch,
                                                  tmp_path):
        from repro.obs import current_recorder, set_current_recorder

        record = str(tmp_path / "pm")
        monkeypatch.setenv("REPRO_FLIGHT_RECORDER", record)
        code = main(["info"])
        assert code == 0
        recorder = current_recorder()
        assert recorder is not None
        assert str(recorder.bundle_dir) == record
        set_current_recorder(None)
