"""Tests for the stream-overlap what-if model."""

from __future__ import annotations

import pytest

from repro.gpu.streams import overlap_analysis
from repro.hardware.counters import KernelLaunch
from repro.hardware.specs import GTX_1660_TI


def launch(name="k", blocks=10, threads=10, **kw):
    return KernelLaunch(name=name, phase="p", grid_blocks=blocks,
                        threads_per_block=threads, **kw)


class TestOverlap:
    def test_single_kernel_groups_unchanged(self):
        plan = overlap_analysis(GTX_1660_TI, [[launch()], [launch()]])
        assert plan.overlapped_seconds == pytest.approx(plan.serial_seconds)
        assert plan.concurrent_groups == 0
        assert plan.speedup == pytest.approx(1.0)

    def test_two_small_kernels_overlap_fully(self):
        """Two k x k kernels (3% occupancy each) fit side by side."""
        plan = overlap_analysis(GTX_1660_TI, [[launch(), launch()]])
        # Overlapped: one group at the max of the two times.
        assert plan.overlapped_seconds < plan.serial_seconds
        assert plan.overlapped_seconds == pytest.approx(plan.serial_seconds / 2)
        assert plan.concurrent_groups == 1

    def test_saturating_kernels_serialize(self):
        """Two device-filling kernels cannot hide behind each other."""
        big = launch(blocks=100_000, threads=1024, gmem_bytes=1e9)
        plan = overlap_analysis(GTX_1660_TI, [[big, big]])
        # Demand is 2x the device: the group stretches back toward serial.
        assert plan.overlapped_seconds == pytest.approx(
            plan.serial_seconds, rel=0.01
        )

    def test_overlap_bounded_by_slowest_member(self):
        slow = launch(blocks=4096, threads=256, gmem_bytes=1e8)
        tiny = launch(blocks=1, threads=32)
        plan = overlap_analysis(GTX_1660_TI, [[slow, tiny]])
        model_serial = plan.serial_seconds
        assert plan.overlapped_seconds < model_serial
        assert plan.overlapped_seconds >= model_serial / 2

    def test_empty_groups_skipped(self):
        plan = overlap_analysis(GTX_1660_TI, [[], [launch()]])
        assert plan.serial_seconds > 0

    def test_saved_seconds_consistency(self):
        plan = overlap_analysis(GTX_1660_TI, [[launch(), launch(), launch()]])
        assert plan.saved_seconds == pytest.approx(
            plan.serial_seconds - plan.overlapped_seconds
        )

    def test_paper_scenario_delta_kernel_overlap(self):
        """Overlapping the low-occupancy delta kernel with an
        independent small kernel saves nearly a full launch."""
        delta = launch(name="compute_l.medoid_delta", blocks=10, threads=10,
                       gmem_bytes=400, atomic_ops=100)
        other = launch(name="bookkeeping", blocks=1, threads=32)
        plan = overlap_analysis(GTX_1660_TI, [[delta, other]])
        assert plan.speedup > 1.5
