"""Tests for CUDA-semantics atomic operations."""

from __future__ import annotations

import numpy as np

from repro.gpu.atomics import atomic_add, atomic_cas, atomic_inc, atomic_max, atomic_min


def test_atomic_add_returns_old():
    a = np.array([5.0])
    old = atomic_add(a, 0, 2.0)
    assert old == 5.0
    assert a[0] == 7.0


def test_atomic_min_updates_when_smaller():
    a = np.array([5.0])
    assert atomic_min(a, 0, 3.0) == 5.0
    assert a[0] == 3.0


def test_atomic_min_keeps_when_larger():
    a = np.array([5.0])
    atomic_min(a, 0, 9.0)
    assert a[0] == 5.0


def test_atomic_max_updates_when_larger():
    a = np.array([5.0])
    atomic_max(a, 0, 9.0)
    assert a[0] == 9.0


def test_atomic_max_keeps_when_smaller():
    a = np.array([5.0])
    atomic_max(a, 0, 1.0)
    assert a[0] == 5.0


def test_atomic_inc_returns_slot_sequence():
    a = np.zeros(1, dtype=np.int64)
    slots = [atomic_inc(a, 0) for _ in range(5)]
    assert slots == [0, 1, 2, 3, 4]
    assert a[0] == 5


def test_atomic_inc_multi_index():
    a = np.zeros((2, 2), dtype=np.int64)
    atomic_inc(a, (1, 0))
    assert a[1, 0] == 1


def test_atomic_cas_swaps_on_match():
    a = np.array([3.0])
    old = atomic_cas(a, 0, 3.0, 8.0)
    assert old == 3.0
    assert a[0] == 8.0


def test_atomic_cas_keeps_on_mismatch():
    a = np.array([3.0])
    atomic_cas(a, 0, 4.0, 8.0)
    assert a[0] == 3.0


def test_atomics_on_2d_indices():
    a = np.zeros((3, 3))
    atomic_add(a, (2, 1), 4.0)
    atomic_max(a, (2, 1), 9.0)
    atomic_min(a, (2, 1), 1.0)
    assert a[2, 1] == 1.0
