"""Tests for the load generator and its BENCH_serve.json report."""

from __future__ import annotations

import copy
import json

import pytest

from repro.exceptions import ParameterError
from repro.obs import validate_serve_report
from repro.serve import run_loadgen
from repro.serve.loadgen import SERVE_BENCH_SCHEMA


@pytest.fixture(scope="module")
def report():
    return run_loadgen(num_requests=12, seed=0, workers=2)


class TestLoadgenReport:
    def test_report_is_ok_and_valid(self, report):
        assert report["schema"] == SERVE_BENCH_SCHEMA
        assert report["ok"] is True
        assert validate_serve_report(report) == []

    def test_no_determinism_violations(self, report):
        assert report["determinism"]["checked"] == 12
        assert report["determinism"]["violations"] == []

    def test_coalesced_serving_strictly_saves_modeled_time(self, report):
        totals = report["totals"]
        assert totals["served_modeled_seconds"] > 0
        assert totals["served_modeled_seconds"] < (
            totals["naive_modeled_seconds"]
        )
        assert totals["saved_modeled_seconds"] == pytest.approx(
            totals["naive_modeled_seconds"]
            - totals["served_modeled_seconds"]
        )
        assert totals["speedup"] > 1.0

    def test_served_work_counters_do_not_exceed_naive(self, report):
        naive = report["totals"]["naive_counters"]
        served = report["totals"]["served_counters"]
        assert sum(served.values()) < sum(naive.values())

    def test_report_is_json_serializable(self, report, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps(report))
        assert validate_serve_report(json.loads(path.read_text())) == []

    def test_events_and_latency_recorded(self, report):
        kinds = {event["kind"] for event in report["events"]}
        assert {"submit", "complete"} <= kinds
        assert report["latency_seconds"]["p50"] > 0
        assert report["latency_seconds"]["max"] >= (
            report["latency_seconds"]["p95"]
        )

    def test_same_seed_reproduces_the_mix(self, report):
        again = run_loadgen(num_requests=12, seed=0, workers=2)
        assert again["unique_settings"] == report["unique_settings"]
        assert again["totals"]["naive_modeled_seconds"] == pytest.approx(
            report["totals"]["naive_modeled_seconds"]
        )

    def test_bad_arguments_rejected(self):
        with pytest.raises(ParameterError, match="num_requests"):
            run_loadgen(0)
        with pytest.raises(ParameterError, match="unknown backend"):
            run_loadgen(4, backends=("nope",))


class TestValidateServeReport:
    def test_rejects_non_objects_and_wrong_schema(self):
        assert validate_serve_report([]) != []
        problems = validate_serve_report({"schema": "other/1"})
        assert any("schema" in problem for problem in problems)

    def test_flags_missing_keys(self):
        problems = validate_serve_report({"schema": SERVE_BENCH_SCHEMA})
        assert any("totals" in problem for problem in problems)
        assert any("determinism" in problem for problem in problems)

    def test_flags_inconsistent_totals(self, report):
        broken = copy.deepcopy(report)
        broken["totals"]["saved_modeled_seconds"] += 1.0
        problems = validate_serve_report(broken)
        assert any("naive - served" in problem for problem in problems)

    def test_flags_ok_mismatch(self, report):
        broken = copy.deepcopy(report)
        broken["determinism"]["violations"] = [{"request": 0}]
        problems = validate_serve_report(broken)
        assert any("'ok'" in problem for problem in problems)

    def test_flags_negative_latency(self, report):
        broken = copy.deepcopy(report)
        broken["latency_seconds"]["p50"] = -1.0
        problems = validate_serve_report(broken)
        assert any("latency" in problem for problem in problems)
