"""Tests for the multi-parameter-setting driver (Section 3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import run_parameter_study
from repro.core.multiparam import ReuseLevel
from repro.exceptions import ParameterError
from repro.params import ParameterGrid, ProclusParams


@pytest.fixture(scope="module")
def grid():
    return ParameterGrid(ks=(5, 4), ls=(3, 2), base=ProclusParams(a=20, b=4))


@pytest.fixture(scope="module")
def data(request):
    from repro.data.normalize import minmax_normalize
    from repro.data.synthetic import generate_subspace_data

    ds = generate_subspace_data(n=1500, d=8, n_clusters=5, subspace_dims=4, seed=9)
    return minmax_normalize(ds.data)


class TestStudyStructure:
    def test_one_result_per_setting(self, data, grid):
        study = run_parameter_study(data, grid=grid, backend="fast", level=0, seed=0)
        assert study.num_settings == len(grid) == 4
        assert set(study.results) == {(5, 3), (5, 2), (4, 3), (4, 2)}

    def test_each_result_matches_its_setting(self, data, grid):
        study = run_parameter_study(data, grid=grid, backend="fast", level=0, seed=0)
        for (k, l), result in study.results.items():
            assert result.k == k
            assert sum(len(d) for d in result.dimensions) == k * l

    def test_total_stats_aggregates(self, data, grid):
        study = run_parameter_study(data, grid=grid, backend="fast", level=0, seed=0)
        per_setting = sum(r.stats.modeled_seconds for r in study.results.values())
        assert study.total_stats.modeled_seconds == pytest.approx(per_setting)
        assert study.average_seconds_per_setting == pytest.approx(per_setting / 4)

    def test_best_setting_has_lowest_cost(self, data, grid):
        study = run_parameter_study(data, grid=grid, backend="fast", level=0, seed=0)
        best = study.best_setting()
        assert study.results[best].cost == min(r.cost for r in study.results.values())

    def test_empty_study_best_setting_raises(self):
        from repro.core.multiparam import MultiParamResult

        with pytest.raises(ValueError):
            MultiParamResult().best_setting()

    def test_unknown_backend_rejected(self, data, grid):
        with pytest.raises(ParameterError, match="unknown backend"):
            run_parameter_study(data, grid=grid, backend="cuda", level=0)


class TestReuseLevels:
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_every_level_completes(self, data, grid, level):
        study = run_parameter_study(
            data, grid=grid, backend="gpu-fast", level=level, seed=0
        )
        assert study.num_settings == 4
        assert study.level == ReuseLevel(level)

    def test_level1_shares_medoids_across_settings(self, data, grid):
        study = run_parameter_study(data, grid=grid, backend="fast", level=1, seed=0)
        # With a shared M, every setting's medoids come from the same
        # B*k_max pool of point ids.
        all_medoids = np.concatenate(
            [r.medoids for r in study.results.values()]
        )
        pool = set()
        for r in study.results.values():
            pool.update(r.medoids.tolist())
        assert len(pool) <= grid.base.b * grid.max_k

    def test_level0_settings_sample_independently(self, data, grid):
        study = run_parameter_study(data, grid=grid, backend="fast", level=0, seed=0)
        # Independent sampling makes medoid pools effectively disjoint-ish;
        # just verify the study is not degenerate (different settings
        # produce different medoid sets).
        sets = [tuple(sorted(r.medoids.tolist())) for r in study.results.values()]
        assert len(set(sets)) > 1

    def test_higher_levels_not_slower(self, data, grid):
        times = {}
        for level in (0, 1, 2, 3):
            study = run_parameter_study(
                data, grid=grid, backend="gpu-fast", level=level, seed=0
            )
            times[level] = study.total_stats.modeled_seconds
        assert times[2] <= times[1]
        assert times[3] <= times[2] * 1.25  # warm start may add iterations
        assert times[3] < times[0]

    def test_level2_charges_greedy_once(self, data, grid):
        l1 = run_parameter_study(data, grid=grid, backend="fast", level=1, seed=0)
        l2 = run_parameter_study(data, grid=grid, backend="fast", level=2, seed=0)
        init1 = l1.total_stats.phase_seconds.get("initialization", 0.0)
        init2 = l2.total_stats.phase_seconds.get("initialization", 0.0)
        assert init2 < init1

    def test_warm_start_uses_subset_of_previous_best(self, data, grid):
        study = run_parameter_study(
            data, grid=grid, backend="fast", level=3, seed=0
        )
        assert study.num_settings == 4

    def test_k_max_too_large_rejected(self):
        small = np.random.default_rng(0).random((6, 5)).astype(np.float32)
        grid = ParameterGrid(ks=(8,), ls=(2,), base=ProclusParams(a=2, b=1))
        with pytest.raises(ParameterError):
            run_parameter_study(small, grid=grid, backend="fast", level=1)


class TestGpuStudySharing:
    def test_transfer_charged_once_for_shared_levels(self, data, grid):
        study0 = run_parameter_study(
            data, grid=grid, backend="gpu-fast", level=0, seed=0
        )
        study1 = run_parameter_study(
            data, grid=grid, backend="gpu-fast", level=1, seed=0
        )
        t0 = study0.total_stats.phase_seconds.get("transfer", 0.0)
        t1 = study1.total_stats.phase_seconds.get("transfer", 0.0)
        assert t1 < t0

    def test_results_identical_between_gpu_and_cpu_study(self, data, grid):
        cpu = run_parameter_study(data, grid=grid, backend="fast", level=1, seed=4)
        gpu = run_parameter_study(data, grid=grid, backend="gpu-fast", level=1, seed=4)
        for key in cpu.results:
            assert cpu.results[key].same_clustering(gpu.results[key])


class TestDuplicateGridEntries:
    """Regression: duplicated (k, l) grid entries used to run twice,
    silently double-counting their work in ``total_stats``."""

    @pytest.fixture(scope="class")
    def dup_grid(self):
        return ParameterGrid(ks=(5, 5, 4), ls=(3, 2, 2),
                             base=ProclusParams(a=20, b=4))

    @pytest.fixture(scope="class")
    def clean_grid(self):
        return ParameterGrid(ks=(5, 4), ls=(3, 2),
                             base=ProclusParams(a=20, b=4))

    def test_duplicates_warn_and_run_once(self, data, dup_grid, clean_grid):
        with pytest.warns(UserWarning, match="duplicate setting"):
            duplicated = run_parameter_study(
                data, grid=dup_grid, backend="fast", level=1, seed=0
            )
        clean = run_parameter_study(
            data, grid=clean_grid, backend="fast", level=1, seed=0
        )
        assert duplicated.num_settings == clean.num_settings == 4
        for key in clean.results:
            assert duplicated.results[key].same_clustering(clean.results[key])

    def test_duplicate_work_not_double_counted(self, data, dup_grid, clean_grid):
        with pytest.warns(UserWarning):
            duplicated = run_parameter_study(
                data, grid=dup_grid, backend="fast", level=1, seed=0
            )
        clean = run_parameter_study(
            data, grid=clean_grid, backend="fast", level=1, seed=0
        )
        assert duplicated.total_stats.modeled_seconds == pytest.approx(
            clean.total_stats.modeled_seconds
        )

    def test_duplicate_counter_emitted(self, data, dup_grid):
        from repro.obs import Tracer, use_tracer

        tracer = Tracer()
        with tracer.span("study-test"), use_tracer(tracer):
            with pytest.warns(UserWarning):
                run_parameter_study(
                    data, grid=dup_grid, backend="fast", level=1, seed=0
                )
        counters = tracer.metrics.as_dict()["counters"]
        # (5,5,4)x(3,2,2): 9 iterated combos, 4 unique -> 5 skips.
        assert counters["study.duplicate_settings"] == 5

    def test_warning_fires_once_per_study(self, data, dup_grid):
        """Regression: the dedupe warning used to fire once per skipped
        pair (5 times for this grid); it must fire once per study and
        name every skipped setting."""
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_parameter_study(
                data, grid=dup_grid, backend="fast", level=1, seed=0
            )
        dup_warnings = [
            w for w in caught if "duplicate setting" in str(w.message)
        ]
        assert len(dup_warnings) == 1, [str(w.message) for w in caught]
        message = str(dup_warnings[0].message)
        # All three distinct duplicated pairs are named in the one message.
        for pair in ("(k=5, l=3)", "(k=5, l=2)", "(k=4, l=2)"):
            assert pair in message, message
        assert "(k=4, l=3)" not in message  # never duplicated

    def test_resilient_warning_fires_once_per_study(self, data, dup_grid):
        import warnings

        from repro.resilience import run_resilient_study

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_resilient_study(
                data, grid=dup_grid, backend="fast", level=1, seed=0
            )
        dup_warnings = [
            w for w in caught if "duplicate setting" in str(w.message)
        ]
        assert len(dup_warnings) == 1, [str(w.message) for w in caught]

    def test_resilient_study_also_dedupes(self, data, dup_grid, clean_grid):
        from repro.resilience import run_resilient_study

        with pytest.warns(UserWarning, match="duplicate setting"):
            duplicated = run_resilient_study(
                data, grid=dup_grid, backend="fast", level=1, seed=0
            )
        clean = run_parameter_study(
            data, grid=clean_grid, backend="fast", level=1, seed=0
        )
        assert duplicated.num_settings == 4
        for key in clean.results:
            assert duplicated.results[key].same_clustering(clean.results[key])
