"""Deliberately buggy kernels: negative controls for the sanitizer.

Each kernel exhibits exactly one bug class from
:mod:`repro.gpu.sanitizer`.  They are test fixtures, not examples —
every pattern here is wrong on real hardware, and the tests assert the
sanitizer names the specific class (and that the matching *fixed*
variants stay silent).
"""

from __future__ import annotations

import numpy as np

from repro.gpu.atomics import atomic_add


def oob_write_kernel(ctx, out):
    """Classic off-by-one: the last thread writes one past the end."""
    out[ctx.global_id + 1] = 1.0


def oob_negative_read_kernel(ctx, data, out):
    """Thread 0 reads ``data[-1]`` — NumPy wraps, CUDA reads unowned
    memory; the sanitizer treats it as out-of-bounds."""
    out[ctx.global_id] = data[ctx.tx - 1]


def missing_sync_kernel(ctx, out):
    """Reads a neighbour's shared cell with no barrier after the write."""
    tile = ctx.shared.array("tile", ctx.block_threads, dtype=np.float32,
                            fill=0.0)
    tile[ctx.tx] = float(ctx.tx)
    out[ctx.global_id] = tile[(ctx.tx + 1) % ctx.block_threads]
    yield  # barrier comes too late: the race already happened


def fixed_sync_kernel(ctx, out):
    """The corrected neighbour exchange: __syncthreads between the
    write and the read puts them in different epochs."""
    tile = ctx.shared.array("tile", ctx.block_threads, dtype=np.float32,
                            fill=0.0)
    tile[ctx.tx] = float(ctx.tx)
    yield
    out[ctx.global_id] = tile[(ctx.tx + 1) % ctx.block_threads]


def atomic_plain_conflict_kernel(ctx, out):
    """One thread updates the accumulator with a plain store while the
    rest use atomicAdd — atomicity only protects atomics from each
    other."""
    if ctx.tx == 0:
        out[0] = 1.0
    else:
        atomic_add(out, 0, 1.0)


def atomic_only_kernel(ctx, out):
    """The corrected accumulator: every thread goes through atomicAdd."""
    atomic_add(out, 0, 1.0)


def uninit_shared_read_kernel(ctx, out):
    """Reads shared memory allocated without ``fill=`` before any
    thread has written it — ``__shared__`` garbage on hardware."""
    tile = ctx.shared.array("tile", ctx.block_threads, dtype=np.float32)
    out[ctx.global_id] = tile[ctx.tx]


def cross_block_race_kernel(ctx, out):
    """Blocks cannot synchronize within a launch; every block writing
    the same global cell is a write-write race."""
    if ctx.tx == 0:
        out[0] = float(ctx.bx)
