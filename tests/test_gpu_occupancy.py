"""Tests for the occupancy calculator against the paper's Sec. 5.4 readings."""

from __future__ import annotations

import pytest

from repro.gpu.occupancy import occupancy_report
from repro.hardware.specs import GTX_1660_TI, RTX_3090


class TestPaperReadings:
    """Nsight values the paper reports for the GTX 1660 Ti."""

    def test_evaluate_cluster_4m_points(self):
        # 50 blocks (k*l pairs) of 1024 threads.
        occ = occupancy_report(GTX_1660_TI, grid_blocks=50, threads_per_block=1024)
        theo, achieved = occ.as_percentages()
        assert theo == pytest.approx(100.0)
        assert achieved == pytest.approx(100.0, abs=0.1)  # paper: 99.99

    def test_evaluate_cluster_8k_points(self):
        # ~800 threads per block (8,000 points / 10 clusters).
        occ = occupancy_report(GTX_1660_TI, grid_blocks=50, threads_per_block=800)
        theo, achieved = occ.as_percentages()
        assert theo == pytest.approx(78.12, abs=0.01)
        assert achieved == pytest.approx(78.12, abs=0.2)  # paper: 77.98

    def test_delta_kernel_k_by_k(self):
        occ = occupancy_report(GTX_1660_TI, grid_blocks=10, threads_per_block=10)
        theo, achieved = occ.as_percentages()
        assert theo == pytest.approx(50.0)
        assert achieved == pytest.approx(3.12, abs=0.01)


class TestLimits:
    def test_block_limit_binds_for_tiny_blocks(self):
        occ = occupancy_report(GTX_1660_TI, grid_blocks=1000, threads_per_block=32)
        assert occ.limiter == "blocks"
        assert occ.resident_blocks_per_sm == 16

    def test_thread_limit_binds_for_large_blocks(self):
        occ = occupancy_report(GTX_1660_TI, grid_blocks=1000, threads_per_block=1024)
        assert occ.limiter == "threads"
        assert occ.resident_blocks_per_sm == 1

    def test_shared_memory_limit(self):
        occ = occupancy_report(
            GTX_1660_TI, grid_blocks=1000, threads_per_block=64,
            smem_bytes_per_block=48 * 1024,
        )
        assert occ.limiter == "shared memory"
        assert occ.resident_blocks_per_sm == 1

    def test_register_limit(self):
        occ = occupancy_report(
            GTX_1660_TI, grid_blocks=1000, threads_per_block=256,
            registers_per_thread=255,
        )
        assert occ.limiter == "registers"

    def test_occupancy_bounded_by_one(self):
        occ = occupancy_report(RTX_3090, grid_blocks=10_000, threads_per_block=512)
        assert 0.0 < occ.theoretical_occupancy <= 1.0
        assert 0.0 < occ.achieved_occupancy <= occ.theoretical_occupancy + 1e-12


class TestValidation:
    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            occupancy_report(GTX_1660_TI, grid_blocks=0, threads_per_block=32)

    def test_rejects_oversized_block(self):
        with pytest.raises(ValueError, match="exceeds device limit"):
            occupancy_report(GTX_1660_TI, grid_blocks=1, threads_per_block=2048)

    def test_partial_warp_rounds_up(self):
        occ = occupancy_report(GTX_1660_TI, grid_blocks=24, threads_per_block=33)
        # 33 threads occupy 2 warps.
        theo = occ.theoretical_occupancy
        assert theo == pytest.approx(16 * 2 * 32 / 1024)


class TestBestBlockSize:
    def test_large_launch_prefers_big_blocks(self):
        from repro.gpu.occupancy import best_block_size

        block, report = best_block_size(GTX_1660_TI, work_items=1_000_000)
        assert block == 1024
        assert report.achieved_occupancy == pytest.approx(1.0)

    def test_register_pressure_changes_choice(self):
        from repro.gpu.occupancy import best_block_size

        light, _ = best_block_size(GTX_1660_TI, 1_000_000,
                                   registers_per_thread=32)
        heavy, heavy_report = best_block_size(GTX_1660_TI, 1_000_000,
                                              registers_per_thread=128)
        # 128 regs x 1024 threads exceeds the 64k register file; a
        # smaller block keeps more warps resident.
        assert heavy < light
        assert heavy_report.achieved_occupancy > 0.4

    def test_tiny_work_prefers_largest_candidate_on_ties(self):
        from repro.gpu.occupancy import best_block_size

        block, _ = best_block_size(GTX_1660_TI, work_items=32)
        assert block in (64, 128, 256, 512, 1024)

    def test_invalid_work_items(self):
        from repro.gpu.occupancy import best_block_size

        with pytest.raises(ValueError):
            best_block_size(GTX_1660_TI, 0)
