"""Differential conformance: emulated kernels vs the vectorized math.

For each of the seven kernel pipelines, randomized small inputs are run
through the SIMT emulator (under the kernel sanitizer, in-order and
shuffled) and compared against the vectorized reference implementation
the engines use.  Comparisons are bit-exact except for the evaluate
kernel, whose float64 atomic accumulation of cost terms is documented
as order-sensitive in the last bits (compared with rel=1e-12).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.distance import (
    abs_diff_dim_sums,
    euclidean_distances,
    euclidean_to_point,
)
from repro.core.greedy import greedy_select
from repro.core.phases import (
    assign_points,
    evaluate_clusters,
    find_dimensions,
    find_outliers,
)
from repro.core.state import MedoidCache
from repro.gpu_impl.kernels import (
    assign_points_emulated,
    compute_l_emulated,
    evaluate_clusters_emulated,
    fast_compute_l_emulated,
    find_dimensions_emulated,
    find_outliers_emulated,
    greedy_select_emulated,
)

pytestmark = pytest.mark.sanitized

#: seed -> (n, d, k, l): deliberately awkward sizes (n not a block
#: multiple, k near d) so indexing corners get exercised.
CASES = {0: (17, 3, 3, 2), 1: (23, 4, 4, 3), 2: (34, 5, 4, 3)}


@pytest.fixture(params=sorted(CASES), ids=lambda s: f"seed{s}")
def case(request):
    n, d, k, l = CASES[request.param]
    rng = np.random.default_rng(request.param)
    data = rng.random((n, d), dtype=np.float32)
    medoid_ids = np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
    return data, medoid_ids, k, l


def _padded(sets: list[np.ndarray], n: int) -> tuple[np.ndarray, np.ndarray]:
    k = len(sets)
    padded = np.full((k, n), -1, dtype=np.int64)
    sizes = np.zeros(k, dtype=np.int64)
    for i, members in enumerate(sets):
        sizes[i] = len(members)
        padded[i, : len(members)] = members
    return padded, sizes


class TestGreedyConformance:
    def test_matches_vectorized(self, case, sanitized_emulator):
        data, medoid_ids, k, _ = case
        seed_idx = int(medoid_ids[0])
        ref = greedy_select(data, k + 2, seed_idx)
        got = greedy_select_emulated(
            data, k + 2, seed_idx, emulator=sanitized_emulator,
            threads_per_block=8,
        )
        assert np.array_equal(ref, got)


class TestComputeLConformance:
    def test_matches_vectorized(self, case, sanitized_emulator):
        data, medoid_ids, k, _ = case
        l_sets, delta, dist = compute_l_emulated(
            data, medoid_ids, emulator=sanitized_emulator,
            threads_per_block=8,
        )
        assert np.array_equal(dist, euclidean_distances(data, data[medoid_ids]))
        medoid_dist = dist[:, medoid_ids].copy()
        np.fill_diagonal(medoid_dist, np.inf)
        assert np.array_equal(delta, medoid_dist.min(axis=1))
        for i in range(k):
            expected = set(np.flatnonzero(dist[i] <= delta[i]).tolist())
            assert set(l_sets[i].tolist()) == expected


class TestFindDimensionsConformance:
    def test_matches_vectorized(self, case, sanitized_emulator):
        data, medoid_ids, k, l = case
        l_sets, delta, dist = compute_l_emulated(data, medoid_ids)
        padded, sizes = _padded(l_sets, data.shape[0])
        dims, x = find_dimensions_emulated(
            data, medoid_ids, padded, sizes, l,
            emulator=sanitized_emulator, threads_per_block=8,
        )
        for i in range(k):
            mask = dist[i] <= delta[i]
            expected = abs_diff_dim_sums(data[mask], data[medoid_ids[i]])
            assert np.array_equal(x[i], expected / mask.sum())
        assert dims == find_dimensions(x, l)


class TestAssignPointsConformance:
    def test_matches_vectorized(self, case, sanitized_emulator):
        data, medoid_ids, k, l = case
        l_sets, _, _ = compute_l_emulated(data, medoid_ids)
        padded, sizes = _padded(l_sets, data.shape[0])
        dims, _ = find_dimensions_emulated(data, medoid_ids, padded, sizes, l)
        labels, c_sets = assign_points_emulated(
            data, medoid_ids, dims, emulator=sanitized_emulator,
            threads_per_block=8,
        )
        ref_labels, _ = assign_points(data, data[medoid_ids], dims)
        assert np.array_equal(labels, ref_labels)
        assert sorted(np.concatenate(c_sets).tolist()) == list(
            range(data.shape[0])
        )


class TestEvaluateConformance:
    def test_matches_within_documented_tolerance(self, case, sanitized_emulator):
        data, medoid_ids, k, l = case
        l_sets, _, _ = compute_l_emulated(data, medoid_ids)
        padded, sizes = _padded(l_sets, data.shape[0])
        dims, _ = find_dimensions_emulated(data, medoid_ids, padded, sizes, l)
        labels, c_sets = assign_points_emulated(data, medoid_ids, dims)
        c_pad, c_sizes = _padded(c_sets, data.shape[0])
        cost = evaluate_clusters_emulated(
            data, c_pad, c_sizes, dims, emulator=sanitized_emulator,
            threads_per_block=8,
        )
        # float64 atomic accumulation: order-sensitive in the last bits.
        assert cost == pytest.approx(
            evaluate_clusters(data, labels, dims), rel=1e-12
        )


class TestOutliersConformance:
    def test_matches_vectorized(self, case, sanitized_emulator):
        data, medoid_ids, k, l = case
        l_sets, _, _ = compute_l_emulated(data, medoid_ids)
        padded, sizes = _padded(l_sets, data.shape[0])
        dims, _ = find_dimensions_emulated(data, medoid_ids, padded, sizes, l)
        _, segmental = assign_points(data, data[medoid_ids], dims)
        ref = find_outliers(segmental, data[medoid_ids], dims)
        got = find_outliers_emulated(
            data, medoid_ids, dims, emulator=sanitized_emulator,
            threads_per_block=8,
        )
        assert np.array_equal(ref, got)


def _fast_reference(
    data: np.ndarray,
    pool: np.ndarray,
    midx: np.ndarray,
    cache: MedoidCache,
) -> tuple[np.ndarray, np.ndarray]:
    """The vectorized FAST ComputeL+X round, mirroring
    FastProclusEngine._compute_l_and_x on an explicit cache."""
    d = data.shape[1]
    k = len(midx)
    medoid_ids = pool[midx]
    for mi in midx[~cache.dist_found[midx]]:
        cache.dist[mi] = euclidean_to_point(data, data[pool[mi]])
        cache.dist_found[mi] = True
    medoid_dist = cache.dist[midx][:, medoid_ids]
    np.fill_diagonal(medoid_dist, np.inf)
    delta = medoid_dist.min(axis=1)
    x = np.zeros((k, d), dtype=np.float64)
    sizes = np.zeros(k, dtype=np.int64)
    for i, mi in enumerate(midx):
        row = cache.dist[mi]
        previous = cache.prev_delta[mi]
        current = delta[i]
        if current >= previous:
            mask = (row > previous) & (row <= current)
            lam = 1
        else:
            mask = (row > current) & (row <= previous)
            lam = -1
        count = int(np.count_nonzero(mask))
        if count:
            point = data[pool[mi]]
            cache.h[mi] += lam * abs_diff_dim_sums(data[mask], point)
            cache.size_l[mi] += lam * count
        cache.prev_delta[mi] = current
        sizes[i] = cache.size_l[mi]
        x[i] = cache.h[mi] / cache.size_l[mi]
    return x, sizes


class TestFastComputeLConformance:
    def test_matches_vectorized_across_rounds(self, case, sanitized_emulator):
        """Two rounds over one persistent cache — the cold path (all
        distance rows missing) and the warm incremental path — stay
        bitwise identical to the vectorized FAST engine's state."""
        data, _, k, _ = case
        n, d = data.shape
        rng = np.random.default_rng(99)
        m = min(n, 2 * k)
        pool = np.sort(rng.choice(n, size=m, replace=False)).astype(np.int64)
        cache_em = MedoidCache.create(m, n, d)
        cache_ref = MedoidCache.create(m, n, d)
        rounds = (
            np.arange(k, dtype=np.int64),
            np.sort(rng.choice(m, size=k, replace=False)).astype(np.int64),
        )
        for midx in rounds:
            x_em, sizes_em = fast_compute_l_emulated(
                data, pool[midx], midx,
                cache_em.dist, cache_em.dist_found, cache_em.h,
                cache_em.prev_delta, cache_em.size_l,
                emulator=sanitized_emulator, threads_per_block=8,
            )
            x_ref, sizes_ref = _fast_reference(data, pool, midx, cache_ref)
            assert np.array_equal(x_em, x_ref)
            assert np.array_equal(sizes_em, sizes_ref)
            for fld in dataclasses.fields(MedoidCache):
                got = getattr(cache_em, fld.name)
                expected = getattr(cache_ref, fld.name)
                assert np.array_equal(got, expected), fld.name
