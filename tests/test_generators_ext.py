"""Tests for the extended synthetic generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import proclus
from repro.data import (
    generate_correlated_subspace_data,
    generate_imbalanced_subspace_data,
    generate_overlapping_subspace_data,
    minmax_normalize,
)
from repro.eval.metrics import adjusted_rand_index
from repro.exceptions import DataValidationError
from repro.params import ProclusParams


class TestOverlapping:
    def test_shared_dimensions_present_in_every_subspace(self):
        ds = generate_overlapping_subspace_data(
            n=600, d=10, n_clusters=4, subspace_dims=4, shared_dims=2, seed=0
        )
        common = set(ds.subspaces[0])
        for dims in ds.subspaces[1:]:
            common &= set(dims)
        assert len(common) >= 2

    def test_private_dimensions_differ(self):
        ds = generate_overlapping_subspace_data(
            n=600, d=12, n_clusters=4, subspace_dims=5, shared_dims=2, seed=1
        )
        assert len(set(ds.subspaces)) > 1

    def test_shapes(self):
        ds = generate_overlapping_subspace_data(n=500, d=8, n_clusters=3,
                                                subspace_dims=4, seed=2)
        assert ds.data.shape == (500, 8)
        assert ds.data.dtype == np.float32
        assert set(np.unique(ds.labels)) == {0, 1, 2}

    def test_zero_shared_dims_allowed(self):
        ds = generate_overlapping_subspace_data(
            n=300, d=10, n_clusters=3, subspace_dims=3, shared_dims=0, seed=0
        )
        assert ds.n_clusters == 3

    def test_validation(self):
        with pytest.raises(DataValidationError):
            generate_overlapping_subspace_data(shared_dims=6, subspace_dims=5)
        with pytest.raises(DataValidationError):
            generate_overlapping_subspace_data(d=4, subspace_dims=5)

    def test_proclus_still_recovers_clusters(self):
        ds = generate_overlapping_subspace_data(
            n=2500, d=12, n_clusters=4, subspace_dims=5, shared_dims=2,
            std=2.0, seed=3,
        )
        data = minmax_normalize(ds.data)
        params = ProclusParams(k=4, l=5, a=40, b=6)
        best = min(
            (proclus(data, backend="fast", params=params, seed=s) for s in range(4)),
            key=lambda r: r.cost,
        )
        assert adjusted_rand_index(ds.labels, best.labels) > 0.7


class TestCorrelated:
    def test_points_spread_along_manifold(self):
        ds = generate_correlated_subspace_data(
            n=2000, d=8, n_clusters=2, subspace_dims=3, std=1.0,
            extent=40.0, seed=4,
        )
        for i, dims in enumerate(ds.subspaces):
            members = ds.data[ds.labels == i][:, list(dims)]
            # Along the manifold the spread is ~extent, across it ~std:
            # the covariance must be strongly anisotropic.
            cov = np.cov(members.T)
            eigvals = np.sort(np.linalg.eigvalsh(cov))
            assert eigvals[-1] > 10 * eigvals[0]

    def test_shapes_and_truth(self):
        ds = generate_correlated_subspace_data(n=400, d=6, n_clusters=3,
                                               subspace_dims=3, seed=5)
        assert ds.data.shape == (400, 6)
        assert len(ds.subspaces) == 3

    def test_validation(self):
        with pytest.raises(DataValidationError):
            generate_correlated_subspace_data(d=3, subspace_dims=5)


class TestImbalanced:
    def test_power_law_sizes(self):
        ds = generate_imbalanced_subspace_data(
            n=3000, d=8, n_clusters=5, subspace_dims=3, imbalance=2.0, seed=6
        )
        sizes = np.bincount(ds.labels, minlength=5)
        assert sizes.sum() == 3000
        assert sizes[0] > 4 * sizes[-1]

    def test_zero_imbalance_is_uniform(self):
        ds = generate_imbalanced_subspace_data(
            n=1000, d=6, n_clusters=4, subspace_dims=3, imbalance=0.0, seed=7
        )
        sizes = np.bincount(ds.labels, minlength=4)
        assert sizes.max() - sizes.min() <= 1

    def test_small_cluster_triggers_bad_medoid_machinery(self):
        """With heavy imbalance the tiny clusters fall below minDev."""
        ds = generate_imbalanced_subspace_data(
            n=3000, d=8, n_clusters=5, subspace_dims=4, std=2.0,
            imbalance=2.0, seed=8,
        )
        data = minmax_normalize(ds.data)
        from repro.core.fast import FastProclusEngine

        engine = FastProclusEngine(
            params=ProclusParams(k=5, l=4, a=30, b=6), seed=0,
            collect_trace=True,
        )
        engine.fit(data)
        # At least one iteration must have replaced >1 medoid (several
        # clusters below the threshold at once).
        assert any(len(r.bad_medoids) > 1 for r in engine.trace_)

    def test_validation(self):
        with pytest.raises(DataValidationError):
            generate_imbalanced_subspace_data(imbalance=-1.0)
        with pytest.raises(DataValidationError):
            generate_imbalanced_subspace_data(d=3, subspace_dims=4)
