"""Tests for the exact-accumulation distance primitives.

The order-independence (exactness) of these sums is the property that
makes the paper's "all variants produce the same clustering" claim
bitwise-testable; these tests exercise it directly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distance import (
    MAX_EXACT_POINTS,
    abs_diff_dim_sums,
    euclidean_distances,
    euclidean_to_point,
    segmental_distances,
)

unit_floats = st.floats(0.0, 1.0, width=32)


def unit_matrix(max_n=40, max_d=8):
    return hnp.arrays(
        dtype=np.float32,
        shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1,
                               max_side=max_n).filter(lambda s: s[1] <= max_d),
        elements=unit_floats,
    )


class TestEuclidean:
    def test_distance_to_self_is_zero(self):
        data = np.random.default_rng(0).random((50, 6), dtype=np.float32)
        d = euclidean_to_point(data, data[13])
        assert d[13] == 0.0

    def test_matches_numpy_reference(self):
        data = np.random.default_rng(1).random((100, 5), dtype=np.float32)
        point = data[0]
        ref = np.linalg.norm(data.astype(np.float64) - point.astype(np.float64), axis=1)
        got = euclidean_to_point(data, point)
        assert np.allclose(got, ref, atol=1e-5)

    def test_returns_float32(self):
        data = np.random.default_rng(2).random((10, 3), dtype=np.float32)
        assert euclidean_to_point(data, data[0]).dtype == np.float32

    def test_euclidean_distances_stacks_rows(self):
        data = np.random.default_rng(3).random((30, 4), dtype=np.float32)
        points = data[:5]
        full = euclidean_distances(data, points)
        assert full.shape == (5, 30)
        for i in range(5):
            assert np.array_equal(full[i], euclidean_to_point(data, points[i]))

    def test_single_point_promoted_to_2d(self):
        data = np.random.default_rng(4).random((10, 3), dtype=np.float32)
        out = euclidean_distances(data, data[2])
        assert out.shape == (1, 10)

    @given(unit_matrix())
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, data):
        d_ab = euclidean_to_point(data, data[0])
        d_from_each = np.array(
            [euclidean_to_point(data[i : i + 1], data[0])[0] for i in range(len(data))]
        )
        assert np.array_equal(d_ab, d_from_each)


class TestExactness:
    """Sums of f32 terms in [0, 2) accumulate exactly in f64."""

    def test_dim_sums_order_independent(self):
        rng = np.random.default_rng(5)
        points = rng.random((500, 6), dtype=np.float32)
        medoid = points[0]
        full = abs_diff_dim_sums(points, medoid)
        # Any permutation must give the bitwise-identical sum.
        for seed in range(5):
            perm = np.random.default_rng(seed).permutation(len(points))
            assert np.array_equal(abs_diff_dim_sums(points[perm], medoid), full)

    def test_dim_sums_split_and_recombine(self):
        """The incremental-H identity: sum(A ∪ B) == sum(A) + sum(B)."""
        rng = np.random.default_rng(6)
        points = rng.random((301, 4), dtype=np.float32)
        medoid = rng.random(4, dtype=np.float32)
        for cut in (1, 57, 150, 300):
            a = abs_diff_dim_sums(points[:cut], medoid)
            b = abs_diff_dim_sums(points[cut:], medoid)
            assert np.array_equal(a + b, abs_diff_dim_sums(points, medoid))

    def test_dim_sums_removal_is_exact(self):
        """sum(A ∪ B) - sum(B) == sum(A): the shrink branch of Thm 3.2."""
        rng = np.random.default_rng(7)
        points = rng.random((200, 5), dtype=np.float32)
        medoid = rng.random(5, dtype=np.float32)
        whole = abs_diff_dim_sums(points, medoid)
        part = abs_diff_dim_sums(points[120:], medoid)
        assert np.array_equal(whole - part, abs_diff_dim_sums(points[:120], medoid))

    def test_empty_set_sums_to_zero(self):
        out = abs_diff_dim_sums(np.zeros((0, 4), dtype=np.float32), np.zeros(4, dtype=np.float32))
        assert out.shape == (4,)
        assert np.all(out == 0.0)

    @given(unit_matrix(max_n=30, max_d=5), st.integers(0, 29))
    @settings(max_examples=30, deadline=None)
    def test_property_split_identity(self, points, cut):
        cut = min(cut, points.shape[0])
        medoid = points[0]
        a = abs_diff_dim_sums(points[:cut], medoid)
        b = abs_diff_dim_sums(points[cut:], medoid)
        assert np.array_equal(a + b, abs_diff_dim_sums(points, medoid))

    def test_max_exact_points_documented_bound(self):
        assert MAX_EXACT_POINTS == 2**28


class TestSegmental:
    def test_segmental_is_mean_abs_difference(self):
        data = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]], dtype=np.float32)
        medoids = np.array([[0.0, 0.0, 0.0]], dtype=np.float32)
        seg = segmental_distances(data, medoids, ((0, 2),))
        assert seg.shape == (2, 1)
        assert seg[0, 0] == 0.0
        assert seg[1, 0] == pytest.approx(1.0)

    def test_uses_only_selected_dimensions(self):
        data = np.array([[0.0, 9.0], [0.0, 0.0]], dtype=np.float32)
        medoids = np.array([[0.0, 0.0]], dtype=np.float32)
        seg = segmental_distances(data, medoids, ((0,),))
        assert seg[0, 0] == 0.0  # dim 1's big difference is ignored

    def test_normalizes_by_subspace_size(self):
        data = np.array([[1.0, 1.0, 1.0, 1.0]], dtype=np.float32)
        medoids = np.array([[0.0, 0.0, 0.0, 0.0]], dtype=np.float32)
        one = segmental_distances(data, medoids, ((0,),))[0, 0]
        four = segmental_distances(data, medoids, ((0, 1, 2, 3),))[0, 0]
        assert one == pytest.approx(four)

    def test_multiple_medoids_different_subspaces(self):
        data = np.random.default_rng(8).random((20, 5), dtype=np.float32)
        medoids = data[:2]
        seg = segmental_distances(data, medoids, ((0, 1), (2, 3, 4)))
        assert seg.shape == (20, 2)
        assert seg[0, 0] == 0.0
        assert seg[1, 1] == 0.0
