"""Cross-variant equivalence: the paper's central correctness claim.

"GPU-PROCLUS and all the algorithmic strategies produce the same
clustering as PROCLUS" — with the shared randomness protocol and exact
accumulation, the clusterings are *bitwise identical*, which these
tests verify across datasets, parameters, and seeds, including with
property-based generation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import BACKENDS, proclus
from repro.data.normalize import minmax_normalize
from repro.data.synthetic import generate_subspace_data
from repro.params import ProclusParams

ALL = sorted(BACKENDS)


def run_all(data, params, seed):
    return {
        name: proclus(data, backend=name, params=params, seed=seed)
        for name in ALL
    }


class TestIdenticalClusterings:
    def test_all_backends_identical_small(self, small_dataset, small_params):
        data, _ = small_dataset
        results = run_all(data, small_params, seed=0)
        base = results["proclus"]
        for name, r in results.items():
            assert r.same_clustering(base), f"{name} diverged from baseline"
            assert r.cost == base.cost
            assert r.refined_cost == base.refined_cost
            assert r.iterations == base.iterations
            assert r.best_iteration == base.best_iteration

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_identical_across_seeds(self, small_dataset, small_params, seed):
        data, _ = small_dataset
        results = run_all(data, small_params, seed=seed)
        base = results["proclus"]
        for name, r in results.items():
            assert r.same_clustering(base), f"{name} diverged at seed {seed}"

    @pytest.mark.parametrize(
        "params",
        [
            ProclusParams(k=2, l=2, a=20, b=3),
            ProclusParams(k=6, l=4, a=20, b=8),
            ProclusParams(k=3, l=5, a=50, b=2, min_deviation=0.9),
            ProclusParams(k=4, l=3, a=30, b=5, patience=2),
            ProclusParams(k=4, l=3, a=30, b=5, min_deviation=0.3),
        ],
    )
    def test_identical_across_parameters(self, medium_dataset, params):
        data, _ = medium_dataset  # d = 12
        results = run_all(data, params, seed=7)
        base = results["proclus"]
        for name, r in results.items():
            assert r.same_clustering(base), f"{name} diverged for {params}"

    def test_rng_consumption_identical(self, small_dataset, small_params):
        """All variants must draw randomness the same number of times."""
        from repro.rng import RandomSource

        data, _ = small_dataset
        counts = {}
        for name in ALL:
            rng = RandomSource(3)
            proclus(data, backend=name, params=small_params, seed=rng)
            counts[name] = rng.draw_count
        assert len(set(counts.values())) == 1, counts


class TestPropertyBasedEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(80, 400),
        d=st.integers(4, 10),
        clusters=st.integers(2, 5),
        seed=st.integers(0, 1_000),
        algo_seed=st.integers(0, 1_000),
    )
    def test_cpu_variants_identical_on_random_data(
        self, n, d, clusters, seed, algo_seed
    ):
        ds = generate_subspace_data(
            n=n, d=d, n_clusters=clusters,
            subspace_dims=min(3, d), seed=seed,
        )
        data = minmax_normalize(ds.data)
        params = ProclusParams(k=clusters, l=min(3, d), a=15, b=4)
        base = proclus(data, backend="proclus", params=params, seed=algo_seed)
        for name in ("fast", "fast-star", "gpu", "gpu-fast", "gpu-fast-star"):
            other = proclus(data, backend=name, params=params, seed=algo_seed)
            assert other.same_clustering(base)
            assert other.cost == base.cost

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_duplicate_points_do_not_break_equivalence(self, seed):
        """Duplicate rows create zero distances and exact ties."""
        rng = np.random.default_rng(seed)
        base_points = rng.random((40, 5), dtype=np.float32)
        data = np.vstack([base_points, base_points, base_points])
        params = ProclusParams(k=3, l=3, a=10, b=3)
        ref = proclus(data, backend="proclus", params=params, seed=seed)
        for name in ("fast", "fast-star", "gpu-fast"):
            assert proclus(data, backend=name, params=params, seed=seed).same_clustering(ref)


class TestWorkReduction:
    """FAST must perform strictly less distance work than the baseline."""

    def test_fast_computes_fewer_distance_rows(self, medium_dataset):
        data, _ = medium_dataset
        params = ProclusParams(k=5, l=3, a=40, b=6)
        base = proclus(data, backend="proclus", params=params, seed=1)
        fast = proclus(data, backend="fast", params=params, seed=1)
        # Same iterations, identical clustering...
        assert fast.same_clustering(base)
        # ...but fewer vector ops (distance recomputation avoided).
        assert (
            fast.stats.counters["cpu.vector_ops"]
            < base.stats.counters["cpu.vector_ops"]
        )

    def test_fast_never_computes_more_rows_than_potential_medoids(
        self, medium_dataset
    ):
        from repro.core.fast import FastProclusEngine

        data, _ = medium_dataset
        params = ProclusParams(k=5, l=3, a=40, b=6)
        engine = FastProclusEngine(params=params, seed=1)
        engine.fit(data)
        # Every potential medoid's distances are computed at most once.
        assert engine._cache.dist_found.sum() <= params.num_potential_medoids

    def test_gpu_fast_modeled_time_not_slower_than_gpu(self, medium_dataset):
        data, _ = medium_dataset
        params = ProclusParams(k=5, l=3, a=40, b=6)
        gpu = proclus(data, backend="gpu", params=params, seed=1)
        fast = proclus(data, backend="gpu-fast", params=params, seed=1)
        assert fast.stats.modeled_seconds <= gpu.stats.modeled_seconds
