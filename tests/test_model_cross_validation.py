"""Cross-validation: the cost model's accounting vs the emulator's reality.

The performance model charges each simulated launch with flop/byte/
atomic counts derived from formulas; the emulator actually *executes*
the kernels.  These tests run both on identical inputs and check that
the accounted quantities match what the emulated kernels really did —
the strongest internal-consistency check the substitution admits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.greedy import greedy_select
from repro.data.normalize import minmax_normalize
from repro.data.synthetic import generate_subspace_data
from repro.gpu.atomics import count_atomics
from repro.gpu.emulator import SimtEmulator
from repro.gpu_impl.kernels import (
    assign_points_emulated,
    compute_l_emulated,
    find_dimensions_emulated,
)


@pytest.fixture(scope="module")
def setting():
    ds = generate_subspace_data(n=200, d=6, n_clusters=3, subspace_dims=3, seed=9)
    data = minmax_normalize(ds.data)
    mids = greedy_select(data, 8, 2)[:4]
    return data, mids


class TestAtomicTrafficMatchesAccounting:
    def test_build_l_appends_once_per_sphere_member(self, setting):
        """Accounting charges `appended + k` atomics for build_l; the
        emulated kernel performs exactly |L_i| atomicIncs."""
        data, mids = setting
        with count_atomics() as counter:
            l_sets, delta, dist = compute_l_emulated(data, mids)
        appended = sum(len(s) for s in l_sets)
        # Atomics executed: delta kernel k*(k-1) atomicMins + appends.
        k = len(mids)
        assert counter[0] == appended + k * (k - 1)

    def test_assign_appends_once_per_point(self, setting):
        data, mids = setting
        l_sets, _, _ = compute_l_emulated(data, mids)
        n = data.shape[0]
        l_pad = np.full((4, n), -1, dtype=np.int64)
        l_sz = np.zeros(4, dtype=np.int64)
        for i, s in enumerate(l_sets):
            l_pad[i, : len(s)] = s
            l_sz[i] = len(s)
        dims, _ = find_dimensions_emulated(data, mids, l_pad, l_sz, 3)
        with count_atomics() as counter:
            labels, c_sets = assign_points_emulated(data, mids, dims)
        # Per point: k shared-memory atomicMins + 1 append.
        assert counter[0] == n * len(mids) + n
        assert sum(len(c) for c in c_sets) == n

    def test_x_sums_one_atomic_per_nonzero_block_thread(self, setting):
        """The paper's 'one atomic per thread at the end' strategy: the
        x-sums kernel performs at most (threads x k x d) atomics, far
        fewer than the sum's term count."""
        data, mids = setting
        l_sets, _, _ = compute_l_emulated(data, mids)
        n = data.shape[0]
        l_pad = np.full((4, n), -1, dtype=np.int64)
        l_sz = np.zeros(4, dtype=np.int64)
        for i, s in enumerate(l_sets):
            l_pad[i, : len(s)] = s
            l_sz[i] = len(s)
        threads = 32
        with count_atomics() as counter:
            find_dimensions_emulated(
                data, mids, l_pad, l_sz, 3, threads_per_block=threads
            )
        d = data.shape[1]
        k = len(mids)
        terms = sum(l_sz) * d
        # Far fewer atomics than terms (the local-partial strategy)...
        assert counter[0] < terms / 2
        # ...and bounded by one per (block, thread) plus the Z kernel's
        # 2 per (medoid, dimension).
        assert counter[0] <= k * d * threads + 2 * k * d


class TestEmulatorLaunchCounts:
    def test_greedy_launch_count_matches_accounting(self, setting):
        """Accounting records 2 launches per pick; the emulated greedy
        performs exactly that (one distance pass + one arg-max check,
        with the first pick needing no check)."""
        from repro.gpu_impl.kernels import greedy_select_emulated

        data, _ = setting
        em = SimtEmulator()
        greedy_select_emulated(data, 6, 0, emulator=em)
        # 1 initial distance launch + 5 x (argmax + distance update).
        assert em.launches == 1 + 2 * 5

    def test_compute_l_is_three_kernels(self, setting):
        data, mids = setting
        em = SimtEmulator()
        compute_l_emulated(data, mids, emulator=em)
        assert em.launches == 3
