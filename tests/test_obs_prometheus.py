"""Tests for Prometheus exposition and its scrape-side parser."""

from __future__ import annotations

import math

import pytest

from repro.obs import MetricsRegistry, parse_prometheus_text, prometheus_text
from repro.obs.prometheus import prometheus_name


class TestNameSanitization:
    def test_dots_become_underscores_with_prefix(self):
        assert prometheus_name("serve.cache.hits") == "repro_serve_cache_hits"

    def test_arbitrary_chars_sanitized(self):
        assert prometheus_name("gpu flops/s%") == "repro_gpu_flops_s_"

    def test_leading_digit_guarded(self):
        assert prometheus_name("1660ti.util", prefix="") == "_1660ti_util"

    def test_empty_prefix(self):
        assert prometheus_name("runs", prefix="") == "runs"


class TestExposition:
    def test_counter_gains_total_suffix_and_type_line(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(3)
        text = prometheus_text(registry)
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 3.0" in text

    def test_gauge_exposed_plain(self):
        registry = MetricsRegistry()
        registry.gauge("cache.hit_rate").set(0.75)
        text = prometheus_text(registry)
        assert "# TYPE repro_cache_hit_rate gauge" in text
        assert "repro_cache_hit_rate 0.75" in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for value in (1.0, 2.0, 5.0, 1e9):
            hist.observe(value)
        text = prometheus_text(registry)
        assert '# TYPE repro_latency histogram' in text
        assert 'repro_latency_bucket{le="+Inf"} 4' in text
        assert "repro_latency_count 4" in text
        assert f"repro_latency_sum {hist.total!r}" in text

    def test_output_ends_with_newline(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        assert prometheus_text(registry).endswith("\n")


class TestRoundTrip:
    def test_full_registry_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(7)
        registry.counter("gpu.flops").inc(1e9)
        registry.gauge("queue.depth").set(3.0)
        hist = registry.histogram("serve.latency_seconds")
        for value in (0.0005, 0.003, 0.003, 0.9, 42.0):
            hist.observe(value)

        scraped = parse_prometheus_text(prometheus_text(registry))

        assert scraped["counters"]["repro_serve_requests"] == 7.0
        assert scraped["counters"]["repro_gpu_flops"] == 1e9
        assert scraped["gauges"]["repro_queue_depth"] == 3.0
        parsed = scraped["histograms"]["repro_serve_latency_seconds"]
        assert parsed["count"] == 5
        assert parsed["sum"] == pytest.approx(hist.total)
        assert parsed["buckets"][-1] == (math.inf, 5)

    def test_bucket_counts_match_registry(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (0.1, 0.2, 30.0):
            hist.observe(value)
        scraped = parse_prometheus_text(prometheus_text(registry))
        assert scraped["histograms"]["repro_h"]["buckets"] == list(
            hist.bucket_pairs()
        )

    def test_empty_registry_round_trips_to_empty(self):
        scraped = parse_prometheus_text(prometheus_text(MetricsRegistry()))
        assert scraped == {"counters": {}, "gauges": {}, "histograms": {}}


class TestParserStrictness:
    def test_sample_without_type_line_rejected(self):
        with pytest.raises(ValueError, match="no preceding # TYPE"):
            parse_prometheus_text("repro_orphan 1.0\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus_text("# TYPE repro_x summary\nrepro_x 1.0\n")

    def test_counter_without_total_suffix_rejected(self):
        text = "# TYPE repro_requests counter\nrepro_requests 5.0\n"
        with pytest.raises(ValueError, match="_total suffix"):
            parse_prometheus_text(text)

    def test_malformed_value_rejected(self):
        text = "# TYPE repro_x_total counter\nrepro_x_total banana\n"
        with pytest.raises(ValueError, match="malformed sample value"):
            parse_prometheus_text(text)

    def test_non_cumulative_buckets_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="1.0"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            parse_prometheus_text(text)

    def test_missing_inf_bucket_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 2\n'
            "repro_h_sum 0.1\n"
            "repro_h_count 2\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf bucket"):
            parse_prometheus_text(text)

    def test_count_disagreeing_with_inf_bucket_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 4\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 9\n"
        )
        with pytest.raises(ValueError, match="disagrees"):
            parse_prometheus_text(text)

    def test_bucket_without_le_label_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{job="x"} 4\n'
        )
        with pytest.raises(ValueError, match="without le label"):
            parse_prometheus_text(text)

    def test_blank_lines_and_comments_ignored(self):
        text = (
            "\n# HELP repro_x_total whatever\n"
            "# TYPE repro_x_total counter\n\n"
            "repro_x_total 2.0\n"
        )
        assert parse_prometheus_text(text)["counters"] == {"repro_x": 2.0}


class TestLabelEscaping:
    """Satellite: exposition-spec label escaping and its exact inverse."""

    def test_escapes_backslash_quote_newline(self):
        from repro.obs import escape_label_value

        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_unescape_is_exact_inverse(self):
        from repro.obs import escape_label_value, unescape_label_value

        nasty = 'slash\\ quote" newline\n mixed\\n"\\"\n\\'
        assert unescape_label_value(escape_label_value(nasty)) == nasty

    def test_unescape_rejects_bad_escapes(self):
        from repro.obs import unescape_label_value

        with pytest.raises(ValueError, match="dangling"):
            unescape_label_value("oops\\")
        with pytest.raises(ValueError, match="invalid escape"):
            unescape_label_value("\\t")

    def test_format_parse_round_trip(self):
        from repro.obs import format_labels, parse_labels

        labels = {"le": "+Inf", "path": 'C:\\x\n"y"'}
        text = format_labels(labels)
        assert text.startswith("{") and text.endswith("}")
        assert parse_labels(text[1:-1]) == labels

    def test_empty_labels_format_to_empty_string(self):
        from repro.obs import format_labels, parse_labels

        assert format_labels({}) == ""
        assert parse_labels("") == {}

    def test_format_rejects_bad_label_names(self):
        from repro.obs import format_labels

        with pytest.raises(ValueError, match="label name"):
            format_labels({"bad name": "x"})

    def test_parse_rejects_malformed_bodies(self):
        from repro.obs import parse_labels

        for bad in ('le="x', 'le=x"', 'le="a" le="b"', '="x"', 'le="a"extra'):
            with pytest.raises(ValueError):
                parse_labels(bad)

    def test_exposition_uses_escaped_le_label(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(1.0)
        text = prometheus_text(registry)
        assert 'repro_lat_bucket{le="1.0"}' in text
        parsed = parse_prometheus_text(text)
        assert parsed["histograms"]["repro_lat"]["count"] == 1

    def test_parser_rejects_unquoted_label_values(self):
        bad = (
            "# TYPE repro_lat histogram\n"
            "repro_lat_bucket{le=+Inf} 1\n"
            "repro_lat_sum 1.0\nrepro_lat_count 1\n"
        )
        with pytest.raises(ValueError, match="malformed sample line"):
            parse_prometheus_text(bad)


class TestLabelRoundTripProperties:
    """Hypothesis: parse_labels is format_labels' exact inverse over
    adversarial values (quotes, backslashes, newlines, unicode)."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    _names = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,10}", fullmatch=True)
    _values = st.text(
        alphabet=st.characters(
            codec="utf-8", exclude_categories=("Cs",)
        ),
        max_size=40,
    )

    @settings(max_examples=200, deadline=None)
    @given(labels=st.dictionaries(_names, _values, max_size=5))
    def test_round_trip(self, labels):
        from repro.obs import format_labels, parse_labels

        text = format_labels(labels)
        body = text[1:-1] if text else ""
        assert parse_labels(body) == labels

    @settings(max_examples=100, deadline=None)
    @given(value=_values)
    def test_escape_unescape_inverse(self, value):
        from repro.obs import escape_label_value, unescape_label_value

        escaped = escape_label_value(value)
        assert "\n" not in escaped
        assert unescape_label_value(escaped) == value
