"""Elastic fleet recovery: device loss, live re-sharding, bit-identity.

The tentpole contract: killing any fleet member at any stage of a run
must yield the clustering of the fault-free *solo* run, bit for bit —
labels, medoids, dimensions, cost, and the exact-work counters — via a
live re-shard over the surviving members (or, when nobody survives, a
degradation along the documented ladder).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import proclus
from repro.exceptions import DeviceLostError, ParameterError
from repro.fleet import (
    Fleet,
    RecoveryPlan,
    active_devices,
    dead_device_indices,
    default_fleet,
    degraded_fleet,
    plan_recovery,
)
from repro.hardware.specs import GTX_1660_TI
from repro.params import ProclusParams
from repro.resilience import (
    ErrorClass,
    FaultInjector,
    LadderStep,
    ResilientRunner,
    RetryPolicy,
    classify_error,
    reshard_ladder,
    use_injector,
)

PARAMS = ProclusParams(k=4, l=3)
FLEET_BACKENDS = ("fleet-gpu-fast", "fleet-gpu", "fleet-gpu-fast-star")

#: Stage name -> which matching operation the device dies on.  #1 is
#: the very first touch (the data upload); #8 lands inside the
#: iterative phase's sharded kernels.
STAGES = {"upload": 1, "iterate": 8}


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    return rng.normal(size=(300, 8)).astype(np.float32)


@pytest.fixture(scope="module")
def solo_reference(data):
    cache = {}

    def get(backend: str):
        if backend not in cache:
            cache[backend] = proclus(
                data, params=PARAMS, backend=backend, seed=0
            )
        return cache[backend]

    return get


def _exact_counters(stats):
    return {
        name: value
        for name, value in stats.counters.items()
        if name.startswith("gpu.")
    }


class TestRecoveryPlanning:
    def test_dead_device_indices_parses_tags(self):
        assert dead_device_indices(["dev1", "dev0", "dev1"]) == (0, 1)

    def test_solo_tag_is_ignored(self):
        assert dead_device_indices(["device"]) == ()
        assert dead_device_indices([]) == ()

    def test_degraded_fleet_zeroes_in_place(self):
        fleet = default_fleet(3)
        survivors = degraded_fleet(fleet, [1])
        assert survivors is not None
        # Numbering is stable: the dead member keeps its slot.
        assert survivors.num_devices == 3
        assert survivors.effective_weights()[1] == 0.0
        assert survivors.effective_weights()[0] > 0.0

    def test_degraded_fleet_none_when_all_dead(self):
        fleet = default_fleet(2)
        assert degraded_fleet(fleet, [0, 1]) is None

    def test_plan_recovery_shard_plan_covers_all_rows(self):
        plan = plan_recovery(default_fleet(3), [2])
        assert isinstance(plan, RecoveryPlan)
        assert plan.active == 2
        shard = plan.shard_plan(101)
        assert sum(shard.counts) == 101
        assert shard.counts[2] == 0

    def test_describe_names_the_dead(self):
        plan = plan_recovery(default_fleet(3), [0])
        assert "dev0" in plan.describe()
        assert "2 of 3" in plan.describe()

    def test_active_devices_counts_positive_weights(self):
        fleet = Fleet(specs=(GTX_1660_TI,) * 3, weights=(1.0, 0.0, 2.0))
        assert active_devices(fleet) == 2


class TestErrorClassification:
    def test_device_lost_classifies_as_device_loss(self):
        error = DeviceLostError("gone", device="dev1")
        assert classify_error(error) is ErrorClass.DEVICE_LOSS
        assert error.device == "dev1"

    def test_reshard_ladder_shrinks_then_goes_solo(self):
        ladder = reshard_ladder("fleet-gpu-fast", 4)
        assert ladder[0] == LadderStep("fleet-gpu-fast", {"fleet": 4})
        assert ladder[1] == LadderStep("fleet-gpu-fast", {"fleet": 3})
        assert ladder[2] == LadderStep("fleet-gpu-fast", {"fleet": 2})
        # Tail: the default ladder minus its fleet rungs.
        assert all(
            not step.backend.startswith("fleet-") for step in ladder[3:]
        )
        assert ladder[-1].backend == "fast"

    def test_reshard_ladder_rejects_non_fleet_backend(self):
        with pytest.raises(ParameterError):
            reshard_ladder("gpu-fast", 2)


class TestDeviceDownDifferential:
    """Kill each device at each stage x D in {2..4} x every backend."""

    @pytest.mark.parametrize("backend", FLEET_BACKENDS)
    @pytest.mark.parametrize("devices", [2, 3, 4])
    @pytest.mark.parametrize("stage", sorted(STAGES))
    def test_any_loss_is_bit_identical_to_solo(
        self, data, solo_reference, backend, devices, stage
    ):
        solo = solo_reference(backend.removeprefix("fleet-"))
        for dead in range(devices):
            schedule = [f"device-down@dev{dead}#{STAGES[stage]}"]
            injector = FaultInjector(schedule, seed=0)
            with use_injector(injector):
                outcome = ResilientRunner(RetryPolicy()).fit(
                    data, backend=backend, params=PARAMS, seed=0,
                    engine_kwargs={"fleet": devices},
                )
            assert len(injector.injected) >= 1, (backend, devices, dead)
            assert np.array_equal(outcome.result.labels, solo.labels)
            assert np.array_equal(outcome.result.medoids, solo.medoids)
            assert outcome.result.dimensions == solo.dimensions
            assert outcome.result.cost == solo.cost
            assert _exact_counters(outcome.result.stats) == _exact_counters(
                solo.stats
            )
            reshards = [
                event for event in outcome.events if event.kind == "reshard"
            ]
            assert len(reshards) == 1
            assert reshards[0].to_rung == (
                f"{backend}[{devices - 1}/{devices} devices]"
            )
            # The outcome reports the shard plan that actually produced
            # the result, matching the docs/robustness.md example.
            assert outcome.rung == reshards[0].to_rung
            assert f"dev{dead}" in reshards[0].detail
            assert reshards[0].recovery_s > 0.0

    def test_two_devices_lost_reshards_twice(self, data, solo_reference):
        solo = solo_reference("gpu-fast")
        schedule = ["device-down@dev0#1", "device-down@dev2#4"]
        with use_injector(FaultInjector(schedule, seed=0)) as injector:
            outcome = ResilientRunner(RetryPolicy()).fit(
                data, backend="fleet-gpu-fast", params=PARAMS, seed=0,
                engine_kwargs={"fleet": 3},
            )
        assert np.array_equal(outcome.result.labels, solo.labels)
        assert outcome.result.cost == solo.cost
        kinds = [event.kind for event in outcome.events]
        assert kinds.count("reshard") == 2
        assert len(injector.injected) == 2

    def test_all_devices_lost_degrades_to_solo_rung(self, data, solo_reference):
        solo = solo_reference("gpu-fast")
        schedule = ["device-down@dev0#1", "device-down@dev1#1"]
        with use_injector(FaultInjector(schedule, seed=0)):
            outcome = ResilientRunner(RetryPolicy()).fit(
                data, backend="fleet-gpu-fast", params=PARAMS, seed=0,
                engine_kwargs={"fleet": 2},
            )
        assert np.array_equal(outcome.result.labels, solo.labels)
        assert outcome.result.cost == solo.cost
        # Nothing left to re-shard onto: the run left the fleet rungs.
        assert not outcome.backend.startswith("fleet-")

    def test_recovery_counters_recorded(self, data):
        from repro.obs.tracer import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            with use_injector(FaultInjector(["device-down@dev1#1"], seed=0)):
                ResilientRunner(RetryPolicy()).fit(
                    data, backend="fleet-gpu-fast", params=PARAMS, seed=0,
                    engine_kwargs={"fleet": 3},
                )
        counters = tracer.metrics.as_dict()["counters"]
        assert counters["fleet.recovery.reshards"] == 1
        assert counters["fleet.recovery.devices_lost"] == 1
        assert counters["fleet.recovery.mttr_seconds"] > 0.0
        assert counters["resilience.faults.device-loss"] == 1

    def test_reshard_emits_resilience_span(self, data):
        from repro.obs.tracer import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            with use_injector(FaultInjector(["device-down@dev1#1"], seed=0)):
                ResilientRunner(RetryPolicy()).fit(
                    data, backend="fleet-gpu-fast", params=PARAMS, seed=0,
                    engine_kwargs={"fleet": 3},
                )
        spans = [
            span for span in tracer.all_spans() if span.name == "reshard"
        ]
        assert len(spans) == 1
        assert spans[0].category == "resilience"


class TestDeviceDownPermanence:
    def test_every_op_on_dead_device_raises(self):
        injector = FaultInjector(["device-down@dev1#1"], seed=0)
        with pytest.raises(DeviceLostError) as info:
            injector.on_transfer("h2d", "data@dev1", 100)
        assert info.value.device == "dev1"
        # Permanent: a context reset does not revive the member ...
        injector.device_reset()
        with pytest.raises(DeviceLostError):
            injector.on_launch("assign_points@dev1", "iter")
        with pytest.raises(DeviceLostError):
            injector.on_alloc("X@dev1", 64, 10**9, 10**9)
        # ... other members are untouched ...
        injector.on_launch("assign_points@dev0", "iter")
        # ... and only revive() brings it back.
        injector.revive("dev1")
        injector.on_launch("assign_points@dev1", "iter")

    def test_dead_devices_exposed(self):
        injector = FaultInjector(["device-down@dev2#1"], seed=0)
        assert injector.dead_devices == frozenset()
        with pytest.raises(DeviceLostError):
            injector.on_launch("kernel@dev2", "iter")
        assert injector.dead_devices == frozenset({"dev2"})
