"""Tests for the sklearn-style PROCLUS estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimator import PROCLUS
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def raw_data():
    """Unnormalized data (the estimator normalizes internally)."""
    from repro.data.synthetic import generate_subspace_data

    ds = generate_subspace_data(
        n=1500, d=8, n_clusters=4, subspace_dims=4, std=2.0, seed=0
    )
    return ds.data, ds


def make(**kw):
    defaults = dict(n_clusters=4, n_dimensions=3, a=25, b=5,
                    backend="fast", random_state=0)
    defaults.update(kw)
    return PROCLUS(**defaults)


class TestFit:
    def test_fit_exposes_attributes(self, raw_data):
        x, _ = raw_data
        model = make().fit(x)
        assert model.labels_.shape == (1500,)
        assert len(model.medoid_indices_) == 4
        assert len(model.cluster_subspaces_) == 4
        assert model.cost_ > 0
        assert model.n_iter_ >= 1
        assert model.n_outliers_ >= 0

    def test_fit_predict_equals_labels(self, raw_data):
        x, _ = raw_data
        model = make()
        labels = model.fit_predict(x)
        assert np.array_equal(labels, model.labels_)

    def test_fit_returns_self(self, raw_data):
        x, _ = raw_data
        model = make()
        assert model.fit(x) is model

    def test_multiple_runs_never_worse(self, raw_data):
        x, _ = raw_data
        single = make(n_runs=1).fit(x)
        multi = make(n_runs=4).fit(x)
        assert multi.cost_ <= single.cost_

    def test_deterministic_given_random_state(self, raw_data):
        x, _ = raw_data
        a = make(random_state=3).fit(x)
        b = make(random_state=3).fit(x)
        assert np.array_equal(a.labels_, b.labels_)

    def test_quality_on_planted_structure(self, raw_data):
        from repro.eval.metrics import adjusted_rand_index

        x, ds = raw_data
        model = make(n_runs=4, n_dimensions=4).fit(x)
        assert adjusted_rand_index(ds.labels, model.labels_) > 0.7


class TestPredict:
    def test_predict_training_points_consistent(self, raw_data):
        x, _ = raw_data
        model = make().fit(x)
        relabeled = model.predict(x)
        mask = model.labels_ >= 0
        assert np.mean(relabeled[mask] == model.labels_[mask]) > 0.99

    def test_predict_uses_fit_normalization(self, raw_data):
        """New points outside the training range get clipped, not
        renormalized — the feature space stays the fitted one."""
        x, _ = raw_data
        model = make().fit(x)
        out_of_range = x[:5] * 1000.0
        labels = model.predict(out_of_range)
        assert labels.shape == (5,)

    def test_predict_before_fit_raises(self, raw_data):
        x, _ = raw_data
        with pytest.raises(ParameterError, match="not fitted"):
            make().predict(x)


class TestSklearnProtocol:
    def test_get_params_round_trip(self):
        model = make(n_clusters=7, backend="gpu-fast")
        params = model.get_params()
        clone = PROCLUS(**params)
        assert clone.get_params() == params

    def test_set_params_chains(self):
        model = make()
        assert model.set_params(n_clusters=3).n_clusters == 3

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ParameterError, match="unknown parameter"):
            make().set_params(gamma=1.0)

    def test_repr_lists_hyperparameters(self):
        text = repr(make(n_clusters=6))
        assert "n_clusters=6" in text
        assert "backend='fast'" in text

    def test_invalid_backend_at_fit(self, raw_data):
        x, _ = raw_data
        with pytest.raises(ParameterError, match="unknown backend"):
            make(backend="tpu").fit(x)

    def test_invalid_n_runs(self, raw_data):
        x, _ = raw_data
        with pytest.raises(ParameterError, match="n_runs"):
            make(n_runs=0).fit(x)

    def test_normalize_false_expects_prenormalized(self, raw_data):
        x, _ = raw_data
        from repro.data.normalize import minmax_normalize

        model = make(normalize=False)
        model.fit(minmax_normalize(x))
        assert model.labels_.shape == (1500,)
