"""Execute the machine-checkable paper-claim registry.

The full registry (including the million-point real-time check) runs in
the benchmark suite; here the structural and mid-scale claims keep the
test suite quick while still pinning the reproduction's headline
behaviours.
"""

from __future__ import annotations

import pytest

from repro.bench.claims import CLAIMS, ClaimResult, check_all, format_results

#: Claims cheap enough for the unit-test suite.
_FAST_IDS = {
    "occupancy",
    "oom-8m",
    "space-hierarchy",
    "identical-clusterings",
}

_FAST_CLAIMS = tuple(c for c in CLAIMS if c.claim_id in _FAST_IDS)


@pytest.mark.parametrize("claim", _FAST_CLAIMS, ids=lambda c: c.claim_id)
def test_fast_claims(claim):
    passed, measured = claim.check()
    assert passed, f"{claim.claim_id}: {measured}"


def test_registry_covers_the_headline_sections():
    sources = " ".join(c.source for c in CLAIMS)
    for section in ("5.1", "5.3", "5.4", "Fig. 1", "Fig. 3f", "Abstract"):
        assert section in sources


def test_every_claim_has_distinct_id():
    ids = [c.claim_id for c in CLAIMS]
    assert len(ids) == len(set(ids))


def test_format_results_renders_status():
    results = check_all(_FAST_CLAIMS[:1])
    text = format_results(results)
    assert "PASS" in text or "FAIL" in text
    assert _FAST_CLAIMS[0].claim_id in text
