"""Property tests for the fleet's partitioner and all-reduce merge.

These two primitives carry the determinism contract of
:mod:`repro.fleet` (see ``docs/fleet.md``): `split_exact` must
apportion points with zero drift, and merging per-shard partial sums
must reproduce the single-pass statistics *bit for bit* for any
partition and any shard order.  The float-exactness argument is the
repository's accumulation doctrine: float32 terms in ``[0, 2)`` summed
into float64 accumulators round nowhere, so sums are associative in
practice; data is quantized onto a ``2**-12`` grid here to keep every
intermediate exactly representable by construction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import abs_diff_dim_sums, euclidean_to_point
from repro.exceptions import ParameterError
from repro.fleet import ShardPlan, split_exact, tree_merge

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
weights_strategy = st.lists(
    st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-3, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=8,
).filter(lambda ws: sum(ws) > 0)


@st.composite
def quantized_data(draw, max_n=64, max_d=6):
    """float32 arrays on the 2**-12 grid in [0, 1] — exactly summable."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    d = draw(st.integers(min_value=1, max_value=max_d))
    grid = draw(
        st.lists(
            st.integers(min_value=0, max_value=4096),
            min_size=n * d, max_size=n * d,
        )
    )
    return (np.array(grid, dtype=np.float32) / 4096.0).reshape(n, d)


@st.composite
def partition_of(draw, n, max_parts=5):
    """Uneven cut points of range(n) into 1..max_parts contiguous parts."""
    parts = draw(st.integers(min_value=1, max_value=max_parts))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n),
                min_size=parts - 1, max_size=parts - 1,
            )
        )
    )
    bounds = [0, *cuts, n]
    return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]


# ----------------------------------------------------------------------
# split_exact
# ----------------------------------------------------------------------
class TestSplitExact:
    @given(total=st.integers(min_value=0, max_value=100_000),
           weights=weights_strategy)
    def test_counts_sum_to_total_exactly(self, total, weights):
        counts = split_exact(total, weights)
        assert sum(counts) == total
        assert len(counts) == len(weights)
        assert all(count >= 0 for count in counts)

    @given(total=st.integers(min_value=0, max_value=100_000),
           weights=weights_strategy)
    def test_zero_weights_get_zero_points(self, total, weights):
        counts = split_exact(total, weights)
        for weight, count in zip(weights, counts):
            if weight == 0.0:
                assert count == 0

    @given(total=st.integers(min_value=0, max_value=100_000),
           weights=weights_strategy,
           scale=st.floats(min_value=1e-3, max_value=1e3,
                           allow_nan=False, allow_infinity=False))
    def test_scale_invariance(self, total, weights, scale):
        scaled = [weight * scale for weight in weights]
        assert split_exact(total, scaled) == split_exact(total, weights)

    @given(total=st.integers(min_value=0, max_value=100_000),
           weights=weights_strategy)
    def test_quota_property(self, total, weights):
        """Largest remainder stays within one item of the ideal share."""
        counts = split_exact(total, weights)
        total_weight = sum(weights)
        for weight, count in zip(weights, counts):
            ideal = total * weight / total_weight
            assert np.floor(ideal) <= count <= np.ceil(ideal)

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ParameterError):
            split_exact(10, [0.0, 0.0])

    def test_plan_ranges_are_contiguous(self):
        plan = ShardPlan(n=10, counts=(4, 0, 6))
        assert plan.ranges() == ((0, 4), (4, 4), (4, 10))


# ----------------------------------------------------------------------
# tree_merge vs single-pass statistics
# ----------------------------------------------------------------------
class TestMergeExactness:
    @given(data=st.data())
    @settings(max_examples=60)
    def test_dim_sums_merge_any_partition(self, data):
        """Per-part abs-diff sums tree-merge to the solo bits for any
        uneven partition of the rows."""
        points = data.draw(quantized_data())
        medoid = points[data.draw(
            st.integers(min_value=0, max_value=len(points) - 1)
        )]
        parts = data.draw(partition_of(len(points)))
        solo = abs_diff_dim_sums(points, medoid)
        partials = [
            abs_diff_dim_sums(points[start:stop], medoid)
            for start, stop in parts
            if stop > start
        ]
        merged = tree_merge(partials)
        assert merged.dtype == solo.dtype
        assert np.array_equal(merged, solo)

    @given(data=st.data())
    @settings(max_examples=60)
    def test_dim_sums_merge_any_shard_permutation(self, data):
        """The merged statistic is independent of shard order."""
        points = data.draw(quantized_data())
        medoid = points[0]
        parts = [
            part for part in data.draw(partition_of(len(points)))
            if part[1] > part[0]
        ]
        partials = [
            abs_diff_dim_sums(points[start:stop], medoid)
            for start, stop in parts
        ]
        permutation = data.draw(st.permutations(range(len(partials))))
        merged = tree_merge([partials[i] for i in permutation])
        assert np.array_equal(merged, tree_merge(partials))

    @given(data=st.data())
    @settings(max_examples=60)
    def test_per_row_kernels_concatenate(self, data):
        """Per-row outputs (distances) concatenate to the solo bits —
        the row-partition side of the contract."""
        points = data.draw(quantized_data())
        medoid = points[-1]
        parts = data.draw(partition_of(len(points)))
        solo = euclidean_to_point(points, medoid)
        pieces = [
            euclidean_to_point(points[start:stop], medoid)
            for start, stop in parts
            if stop > start
        ]
        assert np.array_equal(np.concatenate(pieces), solo)

    def test_tree_merge_fixed_topology(self):
        """Adjacent-pairs reduction, not a running left fold."""
        parts = [np.array([float(i)]) for i in range(5)]
        assert tree_merge(parts)[0] == 10.0
        single = tree_merge([np.array([7.0])])
        assert single[0] == 7.0
