"""Tests for the synthetic subspace-cluster generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.synthetic import SyntheticDataset, default_dataset, generate_subspace_data
from repro.exceptions import DataValidationError


class TestShapes:
    def test_shapes_and_dtypes(self):
        ds = generate_subspace_data(n=500, d=10, n_clusters=4, seed=0)
        assert ds.data.shape == (500, 10)
        assert ds.data.dtype == np.float32
        assert ds.labels.shape == (500,)
        assert len(ds.subspaces) == 4

    def test_properties(self):
        ds = generate_subspace_data(n=200, d=7, n_clusters=3, subspace_dims=2, seed=0)
        assert ds.n == 200
        assert ds.d == 7
        assert ds.n_clusters == 3

    def test_every_point_labeled(self):
        ds = generate_subspace_data(n=300, d=5, n_clusters=5, subspace_dims=3, seed=1)
        assert set(np.unique(ds.labels)) == set(range(5))

    def test_values_within_range(self):
        ds = generate_subspace_data(n=400, d=6, seed=2, n_clusters=4,
                                    subspace_dims=3, value_range=(0.0, 100.0))
        assert ds.data.min() >= 0.0
        assert ds.data.max() <= 100.0

    def test_subspaces_sorted_unique_in_range(self):
        ds = generate_subspace_data(n=300, d=9, n_clusters=5, subspace_dims=4, seed=3)
        for dims in ds.subspaces:
            assert list(dims) == sorted(set(dims))
            assert all(0 <= j < 9 for j in dims)
            assert len(dims) == 4


class TestStructure:
    def test_clusters_concentrated_in_their_subspace(self):
        """Within the true subspace the per-cluster std must be ~std,
        far below the uniform-noise std in other dimensions."""
        ds = generate_subspace_data(
            n=2000, d=10, n_clusters=3, subspace_dims=4, std=2.0, seed=4
        )
        for i, dims in enumerate(ds.subspaces):
            members = ds.data[ds.labels == i]
            in_std = members[:, list(dims)].std(axis=0).mean()
            other = [j for j in range(10) if j not in dims]
            out_std = members[:, other].std(axis=0).mean()
            assert in_std < 6.0
            assert out_std > 20.0  # uniform over [0, 100] has std ~28.9

    def test_noise_fraction_produces_outlier_labels(self):
        ds = generate_subspace_data(
            n=1000, d=6, n_clusters=3, subspace_dims=3, noise_fraction=0.2, seed=5
        )
        n_noise = int(np.count_nonzero(ds.labels == -1))
        assert n_noise == 200

    def test_point_order_shuffled(self):
        ds = generate_subspace_data(n=500, d=5, n_clusters=2, subspace_dims=2, seed=6)
        # Labels must not be sorted (a sorted layout would leak the truth).
        assert not np.all(np.diff(ds.labels) >= 0)

    def test_deterministic_given_seed(self):
        a = generate_subspace_data(n=200, d=5, seed=42, n_clusters=3, subspace_dims=2)
        b = generate_subspace_data(n=200, d=5, seed=42, n_clusters=3, subspace_dims=2)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.labels, b.labels)
        assert a.subspaces == b.subspaces

    def test_different_seeds_differ(self):
        a = generate_subspace_data(n=200, d=5, seed=1, n_clusters=3, subspace_dims=2)
        b = generate_subspace_data(n=200, d=5, seed=2, n_clusters=3, subspace_dims=2)
        assert not np.array_equal(a.data, b.data)

    def test_accepts_generator_instance(self):
        gen = np.random.default_rng(0)
        ds = generate_subspace_data(n=100, d=4, n_clusters=2, subspace_dims=2, seed=gen)
        assert ds.n == 100

    def test_default_dataset_matches_paper_shape(self):
        ds = default_dataset(n=1000, seed=0)
        assert ds.d == 15
        assert ds.n_clusters == 10
        assert all(len(dims) == 5 for dims in ds.subspaces)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0},
            {"d": 0},
            {"n_clusters": 0},
            {"n": 10, "n_clusters": 11},
            {"subspace_dims": 0},
            {"d": 5, "subspace_dims": 6},
            {"std": 0.0},
            {"std": -1.0},
            {"noise_fraction": -0.1},
            {"noise_fraction": 1.0},
            {"value_range": (5.0, 5.0)},
            {"value_range": (10.0, 1.0)},
        ],
    )
    def test_rejects_invalid_arguments(self, kwargs):
        base = dict(n=100, d=5, n_clusters=3, subspace_dims=2, seed=0)
        base.update(kwargs)
        with pytest.raises(DataValidationError):
            generate_subspace_data(**base)

    def test_rejects_excessive_noise(self):
        with pytest.raises(DataValidationError, match="too much noise"):
            generate_subspace_data(
                n=10, d=4, n_clusters=8, subspace_dims=2,
                noise_fraction=0.5, seed=0,
            )

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(10, 400),
        d=st.integers(2, 12),
        clusters=st.integers(1, 5),
    )
    def test_sizes_always_sum_to_n(self, n, d, clusters):
        if clusters > n:
            return
        sub = min(2, d)
        ds = generate_subspace_data(
            n=n, d=d, n_clusters=clusters, subspace_dims=sub, seed=0
        )
        assert ds.data.shape == (n, d)
        sizes = np.bincount(ds.labels, minlength=clusters)
        assert sizes.sum() == n
        assert (sizes >= 1).all()
