"""Tests for the span-based tracer (repro.obs.tracer)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    Tracer,
    current_tracer,
    set_current_tracer,
    use_tracer,
)
from repro.obs.tracer import _NOOP_SPAN


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("fit"):
            with tracer.span("iterative"):
                with tracer.span("iteration"):
                    pass
                with tracer.span("iteration"):
                    pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "fit"
        assert [c.name for c in root.children] == ["iterative"]
        assert [c.name for c in root.children[0].children] == [
            "iteration", "iteration",
        ]

    def test_span_ids_are_unique(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        ids = [s.span_id for s in tracer.all_spans()]
        assert len(ids) == len(set(ids)) == 3

    def test_durations_non_negative_and_ordered(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert outer.duration >= inner.duration >= 0.0

    def test_attrs_set_and_links(self):
        tracer = Tracer()
        with tracer.span("a", k=4) as a:
            pass
        with tracer.span("b") as b:
            b.set(cost=1.5).link(a.span_id).link(None)
        assert a.attrs == {"k": 4}
        assert b.attrs == {"cost": 1.5}
        assert b.links == [a.span_id]

    def test_signature_ignores_timing_and_attrs(self):
        one, two = Tracer(), Tracer()
        for tracer, attr in ((one, 1), (two, 99)):
            with tracer.span("fit", value=attr):
                with tracer.span("phase"):
                    pass
        assert one.roots[0].signature() == two.roots[0].signature()

    def test_find_spans(self):
        tracer = Tracer()
        with tracer.span("fit"):
            with tracer.span("iteration"):
                pass
            with tracer.span("iteration"):
                pass
        assert len(tracer.find_spans("iteration")) == 2
        assert tracer.find_spans("missing") == []

    def test_as_dict_is_json_serializable(self):
        import json

        tracer = Tracer()
        with tracer.span("fit", backend="gpu-fast") as span:
            pass
        payload = json.dumps(span.as_dict())
        assert "gpu-fast" in payload

    def test_exception_unwinds_spans(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.current_span_id() is None
        for span in tracer.all_spans():
            assert span.end is not None

    def test_threads_get_separate_stacks(self):
        tracer = Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("worker-root"):
                done.wait(timeout=5)

        thread = threading.Thread(target=worker)
        with tracer.span("main-root"):
            thread.start()
            while len(tracer.roots) < 2:
                pass
        done.set()
        thread.join()
        names = {root.name for root in tracer.roots}
        assert names == {"main-root", "worker-root"}


class TestDisabledTracer:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything")
        assert span is _NOOP_SPAN
        assert span is tracer.span("other")
        with span as inner:
            assert inner.set(a=1) is inner
            assert inner.link(3) is inner
        assert span.span_id is None
        assert tracer.roots == []

    def test_disabled_kernel_and_counter_record_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.kernel("k", "pipe", "phase", 0.0, 1.0)
        tracer.counter("track", 1.0, 0.0)
        assert tracer.kernel_events == []
        assert tracer.counter_samples == []


class TestAmbientTracer:
    def test_default_is_disabled_null_tracer(self):
        assert current_tracer() is NULL_TRACER
        assert not current_tracer().enabled

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_set_current_tracer_none_restores_null(self):
        tracer = Tracer()
        set_current_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            set_current_tracer(None)
        assert current_tracer() is NULL_TRACER


class TestKernelEvents:
    def test_kernel_event_captures_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("fit") as fit:
            tracer.kernel("k1", "compute_l", "compute_l", 0.0, 1e-6)
        tracer.kernel("k2", "compute_l", "compute_l", 1e-6, 1e-6)
        first, second = tracer.kernel_events
        assert first.span_id == fit.span_id
        assert second.span_id is None

    def test_counter_samples_recorded(self):
        tracer = Tracer()
        tracer.counter("cache hit-rate", 0.5, 1.0)
        sample = tracer.counter_samples[0]
        assert (sample.track, sample.ts, sample.value) == (
            "cache hit-rate", 1.0, 0.5,
        )


class TestDisabledOverhead:
    """Satellite: pin the <=2% disabled-overhead claim of the tracer."""

    def test_disabled_span_returns_shared_singleton(self):
        from repro.obs.tracer import _NOOP_SPAN

        tracer = Tracer(enabled=False)
        spans = {id(tracer.span(f"phase.{i}", x=i)) for i in range(50)}
        assert spans == {id(_NOOP_SPAN)}

    def test_disabled_paths_allocate_no_per_call_garbage(self):
        import tracemalloc

        tracer = Tracer(enabled=False)
        # Warm up interned strings / bytecode caches first.
        for _ in range(10):
            with tracer.span("warmup"):
                pass
            tracer.counter("warmup", 0.0, 1.0)
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for index in range(1000):
            with tracer.span("phase.assign"):
                pass
            tracer.counter("gpu.flops", float(index), 1.0)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        grown = sum(
            stat.size_diff
            for stat in after.compare_to(before, "filename")
            if stat.size_diff > 0
        )
        # No per-call garbage: total growth over 2000 no-op calls stays
        # within tracemalloc's own bookkeeping noise, far below even one
        # small object per call.
        assert grown < 16_000

    def test_disabled_span_cost_is_within_two_percent_of_quick_tier(self):
        import time

        import numpy as np

        from repro import proclus
        from repro.obs import use_tracer

        data = np.random.default_rng(0).normal(size=(600, 8))
        tracer = Tracer(enabled=False)
        with use_tracer(tracer):
            start = time.perf_counter()
            proclus(data, backend="gpu-fast", k=3, l=3, seed=0)
            workload = time.perf_counter() - start

        # Count the instrumentation calls the same workload actually
        # makes when tracing is ON: every span, kernel stamp, and
        # counter sample is one call into the tracer.
        enabled = Tracer()
        with use_tracer(enabled):
            proclus(data, backend="gpu-fast", k=3, l=3, seed=0)

        def count_spans(spans):
            return sum(1 + count_spans(span.children) for span in spans)

        calls_made = (
            count_spans(enabled.roots)
            + len(enabled.kernel_events)
            + len(enabled.counter_samples)
        )
        assert calls_made > 0

        calls = 200_000
        start = time.perf_counter()
        for _ in range(calls):
            span = tracer.span("phase.assign")
            span.__enter__()
            span.__exit__(None, None, None)
        per_call = (time.perf_counter() - start) / calls
        overhead = per_call * calls_made
        assert overhead < 0.02 * workload, (
            f"disabled span costs {per_call * 1e9:.1f}ns/call; the "
            f"{calls_made} instrumentation calls of this workload would "
            f"be {overhead / workload:.2%} of its {workload * 1e3:.1f}ms"
        )
