"""Tests for the trace exporters (repro.obs.export)."""

from __future__ import annotations

import json

import pytest

from repro import BACKENDS
from repro.obs import (
    PIPELINES,
    Tracer,
    chrome_trace,
    kernel_pipeline,
    read_jsonl,
    run_record,
    study_record,
    use_tracer,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


@pytest.fixture(scope="module")
def traced_run(request):
    """One traced gpu-fast run on a small dataset."""
    from repro.data.normalize import minmax_normalize
    from repro.data.synthetic import generate_subspace_data
    from repro.params import ProclusParams

    ds = generate_subspace_data(
        n=600, d=8, n_clusters=4, subspace_dims=4, std=2.0, seed=7
    )
    data = minmax_normalize(ds.data)
    tracer = Tracer()
    with use_tracer(tracer):
        engine = BACKENDS["gpu-fast"](
            params=ProclusParams(k=4, l=3, a=30, b=5), seed=0
        )
        result = engine.fit(data)
    return tracer, result


class TestKernelPipeline:
    def test_known_prefixes(self):
        assert kernel_pipeline("compute_l.distances") == "compute_l"
        assert kernel_pipeline("evaluate_cluster.centroids") == "evaluate"
        assert kernel_pipeline("update_iteration.bad_medoids") == "update"
        assert kernel_pipeline("remove_outliers.thresholds") == "outliers"
        assert kernel_pipeline("refinement.x_sums") == "find_dimensions"

    def test_unknown_prefix_passes_through(self):
        assert kernel_pipeline("custom.thing") == "custom"


class TestChromeTrace:
    def test_trace_from_real_run_is_valid(self, traced_run):
        tracer, _ = traced_run
        trace = chrome_trace(tracer, label="test")
        assert validate_chrome_trace(trace) == []

    def test_all_seven_pipelines_have_device_events(self, traced_run):
        tracer, _ = traced_run
        trace = chrome_trace(tracer)
        device_pids = {
            event["pid"]
            for event in trace["traceEvents"]
            if event.get("cat") == "kernel"
        }
        assert device_pids == {2}
        named_tracks = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M"
            and event["name"] == "thread_name"
            and event["pid"] == 2
        }
        for pipeline in PIPELINES:
            assert pipeline in named_tracks
        kernel_pipelines = {e.pipeline for e in tracer.kernel_events}
        assert set(PIPELINES) <= kernel_pipelines

    def test_counter_tracks_present(self, traced_run):
        tracer, _ = traced_run
        trace = chrome_trace(tracer)
        counter_names = {
            event["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "C"
        }
        assert "cache hit-rate" in counter_names
        assert "bandwidth (GB/s)" in counter_names

    def test_hit_rate_values_are_rates(self, traced_run):
        tracer, _ = traced_run
        for sample in tracer.counter_samples:
            if sample.track == "cache hit-rate":
                assert 0.0 <= sample.value <= 1.0

    def test_trace_round_trips_through_json(self, traced_run, tmp_path):
        tracer, _ = traced_run
        path = write_chrome_trace(tracer, tmp_path / "trace.json", label="x")
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        assert loaded["otherData"]["label"] == "x"
        assert loaded["otherData"]["kernel_events"] == len(tracer.kernel_events)


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"notEvents": []}) != []

    def test_rejects_missing_ts(self):
        trace = {"traceEvents": [{"ph": "X", "name": "k", "dur": 1.0}]}
        problems = validate_chrome_trace(trace)
        assert any("bad 'ts'" in p for p in problems)

    def test_rejects_negative_duration(self):
        trace = {
            "traceEvents": [
                {"ph": "X", "name": "k", "ts": 0.0, "dur": -1.0, "pid": 1, "tid": 1}
            ]
        }
        problems = validate_chrome_trace(trace)
        assert any("negative 'dur'" in p for p in problems)

    def test_rejects_unmatched_begin_end(self):
        trace = {
            "traceEvents": [
                {"ph": "E", "name": "a", "ts": 1.0, "pid": 1, "tid": 1},
                {"ph": "B", "name": "b", "ts": 2.0, "pid": 1, "tid": 1},
            ]
        }
        problems = validate_chrome_trace(trace)
        assert any("E without matching B" in p for p in problems)
        assert any("never closed" in p for p in problems)

    def test_rejects_partial_overlap_on_one_track(self):
        trace = {
            "traceEvents": [
                {"ph": "X", "name": "a", "ts": 0.0, "dur": 10.0, "pid": 1, "tid": 1},
                {"ph": "X", "name": "b", "ts": 5.0, "dur": 10.0, "pid": 1, "tid": 1},
            ]
        }
        problems = validate_chrome_trace(trace)
        assert any("partially overlaps" in p for p in problems)

    def test_accepts_nested_and_disjoint(self):
        trace = {
            "traceEvents": [
                {"ph": "X", "name": "outer", "ts": 0.0, "dur": 10.0, "pid": 1, "tid": 1},
                {"ph": "X", "name": "inner", "ts": 2.0, "dur": 3.0, "pid": 1, "tid": 1},
                {"ph": "X", "name": "later", "ts": 20.0, "dur": 5.0, "pid": 1, "tid": 1},
            ]
        }
        assert validate_chrome_trace(trace) == []

    def test_rejects_non_numeric_counter(self):
        trace = {
            "traceEvents": [
                {"ph": "C", "name": "c", "ts": 0.0, "pid": 1, "tid": 0,
                 "args": {"value": "high"}},
            ]
        }
        problems = validate_chrome_trace(trace)
        assert any("numeric args" in p for p in problems)


class TestTelemetry:
    def test_run_record_fields(self, traced_run):
        tracer, result = traced_run
        record = run_record(
            result, tracer, label="smoke", seed=0, n=600, d=8
        )
        assert record["schema"] == "repro.telemetry/1"
        assert record["kind"] == "run"
        assert record["backend"] == "gpu-fast-proclus"
        assert record["k"] == 4
        assert record["spans"] > 0
        assert record["kernel_events"] == len(tracer.kernel_events)
        json.dumps(record)

    def test_study_record_fields(self):
        from repro.core.multiparam import run_study
        from repro.data.normalize import minmax_normalize
        from repro.data.synthetic import generate_subspace_data
        from repro.params import ParameterGrid, ProclusParams

        ds = generate_subspace_data(
            n=400, d=6, n_clusters=3, subspace_dims=3, seed=5
        )
        data = minmax_normalize(ds.data)
        grid = ParameterGrid(
            ks=(4, 3), ls=(3,), base=ProclusParams(k=4, l=3, a=20, b=4)
        )
        tracer = Tracer()
        with use_tracer(tracer):
            study = run_study(
                data, BACKENDS["gpu-fast"], grid=grid, level=3, seed=1
            )
        record = study_record(study, tracer, label="grid", seed=1)
        assert record["kind"] == "study"
        assert record["settings"] == 2
        assert record["level"] == 3
        json.dumps(record)

    def test_jsonl_round_trip(self, tmp_path):
        records = [{"a": 1}, {"b": [1, 2]}]
        path = write_jsonl(tmp_path / "telemetry.jsonl", records)
        assert read_jsonl(path) == records
        write_jsonl(path, [{"c": 3}], append=True)
        assert read_jsonl(path) == records + [{"c": 3}]
