"""Differential shard-equivalence suite for the fleet backends.

The fleet's contract is absolute: sharding a job across D modeled
devices must not change a single bit of the output — labels,
dimensions, cost, *and* the deterministic work counters — versus the
solo run, for every GPU backend, every device count, heterogeneous
fleets, and even when faults strike a single shard mid-run.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.bench.baseline import EXACT_COUNTERS
from repro.core.api import BACKENDS
from repro.data.normalize import minmax_normalize
from repro.data.synthetic import generate_subspace_data
from repro.fleet import Fleet, FleetModel, default_fleet, fleet_report, mixed_fleet
from repro.hardware.specs import GTX_1660_TI, RTX_3090
from repro.params import ProclusParams
from repro.resilience import ResilientRunner, RetryPolicy
from repro.resilience.faults import FaultInjector, use_injector

GPU_BACKENDS = ("gpu", "gpu-fast", "gpu-fast-star")
DEVICE_COUNTS = (1, 2, 3, 4)

#: Per-device ledger entries whose sum must equal the solo counter
#: (work splits exactly; kernel_launches is inherently D-fold for
#: sharded kernels and is excluded on purpose).
WORK_COUNTERS = ("flops", "gmem_bytes", "atomic_ops", "h2d_bytes")


@pytest.fixture(scope="module")
def data():
    dataset = generate_subspace_data(n=1500, d=10, n_clusters=4, seed=11)
    return minmax_normalize(dataset.data)


@pytest.fixture(scope="module")
def params():
    return ProclusParams(k=6, l=4)


@pytest.fixture(scope="module")
def solo(data, params):
    results = {}
    for backend in GPU_BACKENDS:
        engine = BACKENDS[backend](params=params, seed=0)
        results[backend] = engine.fit(data)
    return results


def run_fleet(data, params, backend, fleet):
    engine = BACKENDS[f"fleet-{backend}"](params=params, seed=0, fleet=fleet)
    return engine, engine.fit(data)


def assert_identical(result, reference):
    assert np.array_equal(result.labels, reference.labels)
    assert result.dimensions == reference.dimensions
    assert result.cost == reference.cost


def assert_counters_identical(result, reference):
    for name in EXACT_COUNTERS:
        assert result.stats.counters.get(name) == pytest.approx(
            reference.stats.counters.get(name), abs=0
        ), name


class TestShardEquivalence:
    @pytest.mark.parametrize("backend", GPU_BACKENDS)
    @pytest.mark.parametrize("devices", DEVICE_COUNTS)
    def test_bit_identical_to_solo(self, data, params, solo, backend, devices):
        _, result = run_fleet(data, params, backend, default_fleet(devices))
        assert_identical(result, solo[backend])
        assert_counters_identical(result, solo[backend])

    @pytest.mark.parametrize("backend", GPU_BACKENDS)
    def test_single_device_fleet_is_an_exact_anchor(
        self, data, params, solo, backend
    ):
        """D=1 issues the solo stream: no collectives, equal modeled time
        (to float round-off of the per-launch accrual order)."""
        engine, result = run_fleet(data, params, backend, default_fleet(1))
        assert result.stats.modeled_seconds == pytest.approx(
            solo[backend].stats.modeled_seconds, rel=1e-12
        )
        report = fleet_report(engine.model)
        assert report["allreduce_steps"] == 0
        assert report["broadcast_steps"] == 0
        assert report["comm_seconds"] == 0.0

    @pytest.mark.parametrize("backend", GPU_BACKENDS)
    def test_heterogeneous_fleet(self, data, params, solo, backend):
        """1660 Ti + 3090: uneven shards, NVLink/PCIe mix, same bits."""
        _, result = run_fleet(
            data, params, backend, mixed_fleet(small=1, large=1)
        )
        assert_identical(result, solo[backend])
        assert_counters_identical(result, solo[backend])

    @pytest.mark.parametrize("backend", GPU_BACKENDS)
    def test_per_device_work_sums_to_solo(self, data, params, solo, backend):
        """The physical ledgers split the solo work exactly (no double
        counting, nothing dropped)."""
        engine, _ = run_fleet(data, params, backend, default_fleet(3))
        assert isinstance(engine.model, FleetModel)
        report = fleet_report(engine.model)
        assert len(report["devices"]) == 3
        for name in WORK_COUNTERS:
            sharded = sum(entry[name] for entry in report["devices"])
            solo_value = solo[backend].stats.counters.get(f"gpu.{name}", 0.0)
            if float(solo_value).is_integer():
                # Integral work splits with largest-remainder: exact.
                assert sharded == pytest.approx(solo_value, abs=0), name
            else:
                # Derated flop counts are fractional and split
                # proportionally: exact to float round-off.
                assert sharded == pytest.approx(solo_value, rel=1e-12), name

    def test_communication_is_modeled(self, data, params):
        """D>1 runs charge collective steps, and only then."""
        engine, _ = run_fleet(data, params, "gpu-fast", default_fleet(4))
        report = fleet_report(engine.model)
        assert report["allreduce_steps"] > 0
        assert report["broadcast_steps"] > 0
        assert report["comm_bytes"] > 0
        assert 0.0 < report["communication_fraction"] < 1.0
        assert report["comm_seconds"] > 0.0
        # Collectives are barriers: somebody waited at them.
        assert sum(entry["sync_seconds"] for entry in report["devices"]) > 0.0


class TestFaultedShards:
    """Faults on one shard must not change the answer."""

    @pytest.mark.parametrize("backend", GPU_BACKENDS)
    def test_transient_fault_on_one_shard(self, data, params, solo, backend):
        runner = ResilientRunner(RetryPolicy())
        with use_injector(
            FaultInjector([f"transient@assign_points@dev1#1"])
        ):
            outcome = runner.fit(
                data,
                backend=f"fleet-{backend}",
                params=params,
                seed=0,
                engine_kwargs={"fleet": default_fleet(2)},
            )
        assert outcome.attempts == 2
        assert [event.kind for event in outcome.events] == ["retry"]
        assert outcome.backend == f"fleet-{backend}"
        assert_identical(outcome.result, solo[backend])
        assert_counters_identical(outcome.result, solo[backend])

    def test_sticky_capacity_fault_degrades_off_the_fleet(
        self, data, params, solo
    ):
        """A persistent per-shard OOM walks the documented ladder down
        to the solo card — and the answer still matches bit-for-bit."""
        runner = ResilientRunner(RetryPolicy())
        with use_injector(FaultInjector(["oom@data@dev0#1+*"])):
            outcome = runner.fit(
                data,
                backend="fleet-gpu-fast",
                params=params,
                seed=0,
                engine_kwargs={"fleet": default_fleet(2)},
            )
        assert outcome.degraded
        assert outcome.backend == "gpu-fast"
        assert_identical(outcome.result, solo["gpu-fast"])

    def test_fault_site_targets_only_the_named_shard(self, data, params):
        """`*@dev1` leaves shard 0 untouched: a D=1 fleet (only dev0
        active) never trips the injector."""
        injector = FaultInjector(["transient@assign_points@dev1#1"])
        with use_injector(injector):
            engine = BACKENDS["fleet-gpu-fast"](
                params=params, seed=0, fleet=default_fleet(1)
            )
            engine.fit(data)
        assert injector.injected == []


class TestFleetValidation:
    def test_engine_accepts_int_shorthand(self, data, params, solo):
        engine = BACKENDS["fleet-gpu-fast"](params=params, seed=0, fleet=3)
        result = engine.fit(data)
        assert_identical(result, solo["gpu-fast"])
        assert len(engine.fleet.specs) == 3

    def test_zero_capacity_member_holds_no_points(self, data, params, solo):
        dead = replace(GTX_1660_TI, memory_bytes=GTX_1660_TI.reserved_bytes)
        fleet = Fleet(specs=(GTX_1660_TI, dead, RTX_3090))
        assert fleet.shard_plan(len(data)).counts[1] == 0
        _, result = run_fleet(data, params, "gpu-fast", fleet)
        assert_identical(result, solo["gpu-fast"])
