"""Tests for the timing harness, speedup tables, and bench plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import ExperimentReport, format_seconds
from repro.bench import workloads
from repro.data.synthetic import generate_subspace_data
from repro.eval.speedup import format_speedup_table, speedup_table
from repro.eval.timing import TimingResult, time_backend, time_parameter_study
from repro.params import ParameterGrid, ProclusParams


def factory(seed):
    return generate_subspace_data(n=400, d=6, n_clusters=3, subspace_dims=3, seed=seed)


PARAMS = ProclusParams(k=3, l=3, a=20, b=4)


class TestTimeBackend:
    def test_averages_over_repeats(self):
        t = time_backend("proclus", factory, params=PARAMS, repeats=3)
        assert t.repeats == 3
        assert len(t.per_run_seconds) == 3
        assert t.modeled_seconds == pytest.approx(np.mean(t.per_run_seconds))
        assert t.modeled_milliseconds == pytest.approx(t.modeled_seconds * 1e3)

    def test_different_datasets_per_repeat(self):
        t = time_backend("proclus", factory, params=PARAMS, repeats=3)
        # Different generated datasets give different run times.
        assert len(set(t.per_run_seconds)) > 1

    def test_gpu_backend_accepts_spec_kwarg(self):
        from repro.hardware.specs import RTX_3090

        t = time_backend(
            "gpu-fast", factory, params=PARAMS, repeats=1, gpu_spec=RTX_3090
        )
        assert t.modeled_seconds > 0

    def test_parameter_study_timing(self):
        grid = ParameterGrid(ks=(3,), ls=(3, 2), base=PARAMS)
        t = time_parameter_study("fast", factory, grid=grid, level=1, repeats=2)
        assert "multi-param 1" in t.backend
        assert t.modeled_seconds > 0


class TestSpeedupTable:
    def make(self, name, secs):
        return TimingResult(
            backend=name, modeled_seconds=secs, wall_seconds=0.0,
            peak_bytes=0, iterations=1, repeats=1,
        )

    def test_speedups_relative_to_reference(self):
        rows = speedup_table(
            [self.make("a", 10.0), self.make("b", 2.0)], reference="a"
        )
        by_name = {r.backend: r.speedup for r in rows}
        assert by_name["a"] == pytest.approx(1.0)
        assert by_name["b"] == pytest.approx(5.0)

    def test_unknown_reference_rejected(self):
        with pytest.raises(ValueError, match="reference backend"):
            speedup_table([self.make("a", 1.0)], reference="zzz")

    def test_format_contains_backends(self):
        rows = speedup_table(
            [self.make("alpha", 2.0), self.make("beta", 0.001)], reference="alpha"
        )
        text = format_speedup_table(rows, title="T")
        assert "alpha" in text and "beta" in text and "T" in text
        assert "ms" in text  # sub-second formatting


class TestReporting:
    def test_add_row_validates_width(self):
        report = ExperimentReport("x", "t", columns=["a", "b"])
        report.add_row(1, 2)
        with pytest.raises(ValueError):
            report.add_row(1, 2, 3)

    def test_render_includes_everything(self):
        report = ExperimentReport(
            "figX", "Title", columns=["n", "time"],
            paper_reference="paper says 42",
        )
        report.add_row(100, "1 ms")
        report.key_numbers["speedup"] = 7
        text = report.render()
        assert "figX" in text and "Title" in text
        assert "100" in text and "1 ms" in text
        assert "paper says 42" in text
        assert "speedup=7" in text

    def test_render_empty_rows(self):
        report = ExperimentReport("x", "t", columns=["a"])
        assert "x" in report.render()

    @pytest.mark.parametrize(
        "seconds,expected",
        [(2.5, "s"), (0.005, "ms"), (2e-6, "us")],
    )
    def test_format_seconds_units(self, seconds, expected):
        assert expected in format_seconds(seconds)


class TestWorkloadScales:
    def test_default_scale_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert workloads.bench_scale() == "small"
        assert workloads.default_n() == 16_384
        assert workloads.repeats() == 2

    def test_paper_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert workloads.bench_scale() == "paper"
        assert workloads.default_n() == 64_000
        assert workloads.repeats() == 10
        assert max(workloads.n_sweep()) == 2**20
        assert max(workloads.multiparam_n_sweep()) == 2**23
        assert "sky-5x5" in workloads.realworld_names()

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            workloads.bench_scale()

    def test_small_sweeps_are_subset_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert max(workloads.n_sweep()) <= 2**15
        assert "sky-5x5" not in workloads.realworld_names()
        assert all(n >= 2**9 for n in workloads.n_sweep())


class TestReportSeries:
    def make_report(self):
        from repro.bench.reporting import ExperimentReport

        r = ExperimentReport("x", "t", columns=["n", "time"])
        for n, t in ((512, 0.04), (2048, 0.2), (8192, 0.43)):
            r.add_series("proclus", n, t)
            r.add_series("gpu", n, t / 300)
        return r

    def test_series_accumulate_points(self):
        r = self.make_report()
        xs, ys = r.series["proclus"]
        assert xs == [512, 2048, 8192]
        assert ys == [0.04, 0.2, 0.43]

    def test_render_plot_contains_series_names(self):
        chart = self.make_report().render_plot()
        assert "proclus" in chart and "gpu" in chart
        assert "n (log)" in chart

    def test_render_plot_without_series(self):
        from repro.bench.reporting import ExperimentReport

        r = ExperimentReport("x", "t", columns=["n"])
        assert "no plot series" in r.render_plot()

    def test_linear_fallback_for_nonpositive_values(self):
        from repro.bench.reporting import ExperimentReport

        r = ExperimentReport("x", "t", columns=["n", "v"])
        r.add_series("s", 1, 0.0)  # zero breaks the log chart
        r.add_series("s", 2, 1.0)
        chart = r.render_plot(log=True)
        assert "s" in chart  # fell back to the linear chart
