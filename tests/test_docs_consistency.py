"""Meta-tests keeping the documentation honest.

Docs that reference modules, backends, experiments, or examples drift
silently; these tests pin the cross-references so a rename or an added
experiment fails loudly until the docs follow.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro import BACKENDS
from repro.bench.runner import ALL_EXPERIMENTS
from repro.cli import EXPERIMENTS as CLI_EXPERIMENTS

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestReadme:
    def test_mentions_every_deliverable_file(self):
        text = read("README.md")
        for name in ("DESIGN.md", "EXPERIMENTS.md"):
            assert name in text

    def test_backend_table_covers_registry(self):
        text = read("README.md")
        for backend in BACKENDS:
            base = backend.replace("-star", "")  # rendered as \* variants
            assert base.split("-")[0] in text

    def test_every_example_listed(self):
        text = read("README.md")
        for script in sorted((ROOT / "examples").glob("*.py")):
            assert script.name in text, f"{script.name} missing from README"


class TestDesignDoc:
    def test_every_benchmark_file_in_index(self):
        text = read("DESIGN.md")
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            if bench.stem == "bench_paper_claims":
                continue  # the claims registry is documented separately
            assert bench.name in text, f"{bench.name} missing from DESIGN.md"

    def test_substitution_table_present(self):
        text = read("DESIGN.md")
        assert "Substitutions" in text
        assert "GTX 1660 Ti" in text


class TestExperimentsDoc:
    def test_every_experiment_discussed(self):
        text = read("EXPERIMENTS.md")
        for exp_id in ALL_EXPERIMENTS:
            token = exp_id.replace("fig", "Fig").replace("sec", "Section ")
            assert (exp_id in text) or (token.split("_")[0] in text), exp_id

    def test_deviations_are_documented(self):
        text = read("EXPERIMENTS.md")
        assert "Deviation" in text  # honest reporting, not just wins


class TestCliConsistency:
    def test_cli_and_runner_expose_same_experiments(self):
        assert set(CLI_EXPERIMENTS) == set(ALL_EXPERIMENTS)

    def test_every_experiment_has_a_benchmark_file(self):
        stems = {p.stem for p in (ROOT / "benchmarks").glob("bench_*.py")}
        for exp_id in ALL_EXPERIMENTS:
            assert any(exp_id.replace("fig", "fig") in s for s in stems), exp_id


class TestDocsDirectory:
    @pytest.mark.parametrize(
        "doc", ["algorithm.md", "architecture.md", "performance_model.md",
                "usage.md", "reproducing.md", "faq.md", "observability.md",
                "robustness.md", "serving.md", "fleet.md"]
    )
    def test_docs_exist_and_nonempty(self, doc):
        path = ROOT / "docs" / doc
        assert path.exists()
        assert len(path.read_text()) > 500

    def test_referenced_modules_exist(self):
        """Every `repro/...py` path mentioned in docs/ must exist."""
        pattern = re.compile(r"`(repro/[A-Za-z0-9_/]+\.py)`")
        for doc in (ROOT / "docs").glob("*.md"):
            for match in pattern.findall(doc.read_text()):
                assert (ROOT / "src" / match).exists(), f"{doc.name}: {match}"

    def test_usage_examples_reference_real_symbols(self):
        import repro

        text = read("docs/usage.md")
        for symbol in ("proclus", "run_parameter_study", "assign_new_points",
                       "ParameterGrid", "ReuseLevel"):
            assert symbol in text
            assert hasattr(repro, symbol)


class TestServingDoc:
    def test_cli_subcommands_documented(self):
        text = read("docs/serving.md")
        for subcommand in ("serve", "submit", "loadgen"):
            assert f"repro {subcommand}" in text

    def test_schemas_match_the_code(self):
        from repro.serve.loadgen import SERVE_BENCH_SCHEMA
        from repro.serve.spool import REQUEST_SCHEMA, RESPONSE_SCHEMA

        text = read("docs/serving.md")
        for schema in (SERVE_BENCH_SCHEMA, REQUEST_SCHEMA, RESPONSE_SCHEMA):
            assert schema.split("/")[0] in text

    def test_usage_and_architecture_point_here(self):
        assert "serving.md" in read("docs/usage.md")
        assert "serving.md" in read("docs/architecture.md")
        assert "ClusterService" in read("docs/usage.md")


class TestFleetDoc:
    def test_every_fleet_backend_documented(self):
        text = read("docs/fleet.md")
        for backend in BACKENDS:
            if backend.startswith("fleet-"):
                assert backend in text, backend

    def test_cli_surfaces_documented(self):
        text = read("docs/fleet.md")
        for surface in ("repro fleet", "repro bench fleet",
                        "BENCH_fleet.json", "--check"):
            assert surface in text, surface

    def test_interconnect_model_documented(self):
        from repro.fleet import allreduce_seconds, broadcast_seconds

        text = read("docs/fleet.md")
        assert "all-reduce" in text and "broadcast" in text
        assert "interconnect_bandwidth_bytes_per_s" in text
        assert "interconnect_latency_s" in text
        assert allreduce_seconds is not None and broadcast_seconds is not None

    def test_determinism_contract_section_present(self):
        text = read("docs/fleet.md")
        assert "Determinism contract" in text
        # The honest caveat: evaluation math is never re-derived from
        # per-shard partial sums.
        assert "evaluate_clusters" in text

    def test_entry_points_exist(self):
        import repro.fleet as fleet

        for symbol in ("Fleet", "default_fleet", "mixed_fleet",
                       "fleet_report", "run_fleet_bench"):
            assert hasattr(fleet, symbol), symbol

    def test_readme_architecture_and_usage_point_here(self):
        assert "fleet" in read("README.md")
        assert "fleet.md" in read("docs/architecture.md")
        assert "fleet.md" in read("docs/usage.md")

    def test_ci_runs_the_fleet_smoke(self):
        text = read(".github/workflows/ci.yml")
        assert "repro bench fleet" in text
        assert "BENCH_fleet.json" in text


class TestFleetRecoveryDoc:
    def test_robustness_doc_covers_fleet_recovery(self):
        text = read("docs/robustness.md")
        assert "## Fleet recovery" in text
        assert "device-down" in text
        assert "DeviceLostError" in text
        assert "reshard" in text
        assert "recovery_s" in text

    def test_fleet_doc_covers_device_loss_and_quarantine(self):
        text = read("docs/fleet.md")
        assert "## Device loss & quarantine" in text
        for surface in ("quarantine_device", "readmit_device",
                        "DeviceHealth", "speculation",
                        "fleet-availability", "fleet-mttr",
                        "repro chaos --fleet", "--devices"):
            assert surface in text, surface

    def test_entry_points_exist(self):
        import repro.fleet as fleet
        import repro.resilience as resilience

        for symbol in ("DeviceHealth", "RecoveryPlan", "plan_recovery",
                       "degraded_fleet", "active_devices",
                       "dead_device_indices"):
            assert hasattr(fleet, symbol), symbol
        assert hasattr(resilience, "reshard_ladder")

    def test_fault_table_lists_every_kind(self):
        from repro.resilience import FAULT_KINDS

        text = read("docs/robustness.md")
        for kind in FAULT_KINDS:
            assert f"`{kind}`" in text, kind

    def test_observability_doc_names_the_fleet_slos(self):
        text = read("docs/observability.md")
        assert "fleet-mttr" in text
        assert "fleet-availability" in text
        assert "record_recovery" in text

    def test_ci_runs_the_fleet_chaos_sweep(self):
        text = read(".github/workflows/ci.yml")
        assert "chaos --fleet" in text
        assert "fleet_chaos_events.json" in text


class TestMonitoringDoc:
    def test_cli_surfaces_documented(self):
        text = read("docs/observability.md") + read("docs/usage.md")
        for surface in ("repro monitor", "repro regress",
                        "repro bench quick", "--save-baseline",
                        "--monitor-dir"):
            assert surface in text, surface

    def test_schemas_match_the_code(self):
        from repro.bench.baseline import BASELINE_SCHEMA, BENCH_QUICK_SCHEMA
        from repro.bench.regress import REGRESS_SCHEMA
        from repro.obs.monitor import HEALTH_SCHEMA

        text = read("docs/observability.md")
        for schema in (BASELINE_SCHEMA, BENCH_QUICK_SCHEMA,
                       REGRESS_SCHEMA, HEALTH_SCHEMA):
            assert schema in text, schema

    def test_default_slos_documented_by_name(self):
        from repro.obs import default_slos

        text = read("docs/observability.md")
        for objective in default_slos():
            assert objective.name in text, objective.name

    def test_baseline_store_location_matches_the_code(self):
        from repro.bench.baseline import DEFAULT_BASELINE_DIR

        assert DEFAULT_BASELINE_DIR in read("docs/observability.md")
        assert DEFAULT_BASELINE_DIR in read("README.md")
        assert (ROOT / DEFAULT_BASELINE_DIR).is_dir()

    def test_injection_choices_documented(self):
        from repro.cli import REGRESS_INJECTIONS

        text = read("docs/observability.md") + read("docs/usage.md")
        for name in REGRESS_INJECTIONS:
            assert name in text, name

    def test_readme_health_snippet_matches_renderer(self):
        # The README shows a `repro monitor --once` transcript; keep its
        # header line in sync with the actual renderer.
        assert "service health @" in read("README.md")
        from repro.viz import render_health

        assert render_health is not None

    def test_ci_runs_the_gate_and_the_health_check(self):
        text = read(".github/workflows/ci.yml")
        assert "repro regress" in text
        assert "repro monitor" in text
        assert "--monitor-dir" in text


class TestExplainDoc:
    """docs stay honest about the attribution & triage layer."""

    def test_schema_and_components_documented(self):
        from repro.obs.explain import EXPLAIN_SCHEMA
        from repro.obs.explain.attribution import COMPONENTS

        text = read("docs/observability.md")
        assert EXPLAIN_SCHEMA in text
        for component in COMPONENTS:
            assert f"`{component}`" in text or component in text, component

    def test_attribution_section_present(self):
        text = read("docs/observability.md")
        assert "Attribution & triage" in text
        for topic in ("fusion headroom", "dist-cache savings", "occupancy",
                      "conservation", "repro explain", "--diff",
                      "--flamegraph", "--speedscope", "speedscope"):
            assert topic in text, topic

    def test_fleet_doc_covers_straggler_analysis(self):
        text = read("docs/fleet.md")
        for topic in ("straggler index", "imbalance", "comm fraction",
                      "busy", "sync", "idle", "repro explain",
                      "repro monitor --fleet"):
            assert topic in text, topic

    def test_usage_and_readme_show_explain(self):
        usage = read("docs/usage.md")
        readme = read("README.md")
        for text in (usage, readme):
            assert "repro explain" in text
        assert "--diff" in usage
        assert "--workload gpu-fast-n8k" in usage
        assert "cache.dist_rows_hit" in readme
        assert "repro.explain/1" in readme

    def test_diffable_workload_examples_exist(self):
        # The documented diff example must reference a real committed
        # baseline file and a real quick-tier workload name.
        from repro.bench.baseline import DEFAULT_BASELINE_DIR, QUICK_TIER

        usage = read("docs/usage.md")
        names = {workload.name for workload in QUICK_TIER}
        documented = set(re.findall(r"--workload (\S+)", usage))
        assert documented and documented <= names
        for name in documented:
            assert (ROOT / DEFAULT_BASELINE_DIR / f"{name}.json").is_file()

    def test_ci_runs_the_explain_smoke_and_triage_control(self):
        text = read(".github/workflows/ci.yml")
        assert "explain-smoke" in text
        assert "repro explain" in text
        assert "--flamegraph" in text
        assert "validate_explain_report" in text
        assert "--inject no-dist-cache" in text
        assert "cache.dist_rows" in text
        # The diff step must target a committed baseline.
        assert "benchmarks/baselines/gpu-fast-n8k.json" in text


class TestPostmortemDoc:
    """docs stay honest about the flight recorder & postmortem layer."""

    def test_schemas_match_the_code(self):
        from repro.obs import POSTMORTEM_REPORT_SCHEMA, POSTMORTEM_SCHEMA

        text = read("docs/observability.md")
        assert POSTMORTEM_SCHEMA in text
        assert POSTMORTEM_REPORT_SCHEMA in text
        assert POSTMORTEM_SCHEMA in read("README.md")

    def test_every_recorder_stream_documented(self):
        from repro.obs import RECORDER_STREAMS

        text = read("docs/observability.md")
        for stream in RECORDER_STREAMS:
            assert f"`{stream}`" in text, stream

    def test_cli_surfaces_documented(self):
        text = read("docs/observability.md") + read("docs/usage.md")
        for surface in ("repro postmortem", "--replay", "--record-dir",
                        "--postmortem-dir", "--fault", "--no-degrade",
                        "--max-reshards", "REPRO_FLIGHT_RECORDER"):
            assert surface in text, surface

    def test_replay_contract_documented(self):
        from repro.obs.postmortem import WALL_CLOCK_EVENT_FIELDS

        text = read("docs/observability.md")
        assert "from the bundle alone" in text
        for field in WALL_CLOCK_EVENT_FIELDS:
            assert field in text, field

    def test_readme_shows_the_postmortem_loop(self):
        text = read("README.md")
        assert "repro postmortem" in text
        assert "--replay" in text
        assert "REPRO_FLIGHT_RECORDER" in text

    def test_rotation_and_escaping_documented(self):
        text = read("docs/observability.md")
        assert "max_log_bytes" in text
        assert "log_segments" in text
        assert "escape_label_value" in text
        assert "parse_labels" in text

    def test_ci_runs_the_postmortem_smoke(self):
        text = read(".github/workflows/ci.yml")
        assert "postmortem-smoke" in text
        assert "repro postmortem" in text
        assert "--replay" in text
        assert "device-down@dev1" in text
        assert "REPRO_FLIGHT_RECORDER" in text
