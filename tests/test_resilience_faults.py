"""Tests for the fault-injection substrate (repro.resilience.faults)."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    DeviceOutOfMemoryError,
    KernelLaunchError,
    KernelTimeoutError,
    ParameterError,
    TransferCorruptionError,
    TransientDeviceError,
)
from repro.resilience import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    current_injector,
    parse_fault,
    use_injector,
)


class TestParseFault:
    @pytest.mark.parametrize("text", [
        "oom",
        "oom@Dist",
        "launch@assign_points#3",
        "launch#2+2",
        "oom#2+*",
        "transient@compute_*#2",
        "transient!nonsticky",
        "corrupt@d2h:*",
        "timeout?0.25",
    ])
    def test_round_trips_through_describe(self, text):
        spec = parse_fault(text)
        assert parse_fault(spec.describe()) == spec

    def test_defaults(self):
        spec = parse_fault("oom")
        assert spec == FaultSpec(kind="oom")
        assert spec.site == "*"
        assert spec.at == 1 and spec.count == 1
        assert spec.probability is None and spec.sticky

    def test_count_forever(self):
        assert parse_fault("oom#3+*").count == -1

    def test_nonsticky(self):
        assert parse_fault("transient!nonsticky").sticky is False
        assert parse_fault("transient").sticky is True

    @pytest.mark.parametrize("text", [
        "", "#3", "oom@", "oom#zero", "oom#1+", "launch lunch",
    ])
    def test_unparseable_raises_typed(self, text):
        with pytest.raises(ParameterError):
            parse_fault(text)

    def test_unknown_kind_raises(self):
        with pytest.raises(ParameterError, match="unknown fault kind"):
            parse_fault("explode")

    @pytest.mark.parametrize("kwargs", [
        {"kind": "oom", "at": 0},
        {"kind": "oom", "count": 0},
        {"kind": "oom", "count": -2},
        {"kind": "oom", "probability": 0.0},
        {"kind": "oom", "probability": 1.5},
    ])
    def test_spec_validation(self, kwargs):
        with pytest.raises(ParameterError):
            FaultSpec(**kwargs)

    def test_every_kind_maps_to_an_operation(self):
        assert set(FAULT_KINDS) == {
            "oom", "launch", "transient", "corrupt", "timeout",
            "device-down",
        }
        for kind in FAULT_KINDS:
            assert parse_fault(kind).operation in (
                "alloc", "launch", "transfer", "any"
            )


class TestScheduleSemantics:
    def test_fires_on_nth_matching_operation(self):
        injector = FaultInjector(["oom@Dist#2"])
        injector.on_alloc("Dist", 100, 1000, 1000)  # 1st: no fire
        with pytest.raises(DeviceOutOfMemoryError) as info:
            injector.on_alloc("Dist", 100, 1000, 1000)  # 2nd: fires
        assert info.value.injected is True
        injector.on_alloc("Dist", 100, 1000, 1000)  # window passed

    def test_site_pattern_filters(self):
        injector = FaultInjector(["launch@assign*"])
        injector.on_launch("compute_l", "iter")  # no match
        with pytest.raises(KernelLaunchError):
            injector.on_launch("assign_points", "iter")

    def test_count_window(self):
        injector = FaultInjector(["launch#2+2"])
        injector.on_launch("k", "p")  # 1: below window
        for _ in range(2):  # 2 and 3: inside window
            with pytest.raises(KernelLaunchError):
                injector.on_launch("k", "p")
        injector.on_launch("k", "p")  # 4: past window

    def test_forever(self):
        injector = FaultInjector(["oom#2+*"])
        injector.on_alloc("x", 1, 10, 10)
        for _ in range(5):
            with pytest.raises(DeviceOutOfMemoryError):
                injector.on_alloc("x", 1, 10, 10)

    def test_transfer_sites_include_direction(self):
        injector = FaultInjector(["corrupt@h2d:data"])
        injector.on_transfer("d2h", "data", 64)  # wrong direction
        with pytest.raises(TransferCorruptionError):
            injector.on_transfer("h2d", "data", 64)

    def test_timeout_kind(self):
        injector = FaultInjector(["timeout"])
        with pytest.raises(KernelTimeoutError):
            injector.on_launch("slow_kernel", "iter")

    def test_emulated_launch_shares_launch_schedule(self):
        injector = FaultInjector(["launch#2"])
        injector.on_launch("a", "iter")  # counts toward the same spec
        with pytest.raises(KernelLaunchError):
            injector.on_emulated_launch("b")

    def test_probability_is_seed_deterministic(self):
        def firing_pattern(seed):
            injector = FaultInjector(["launch?0.3"], seed=seed)
            pattern = []
            for _ in range(50):
                try:
                    injector.on_launch("k", "p")
                    pattern.append(False)
                except KernelLaunchError:
                    pattern.append(True)
            return pattern

        assert firing_pattern(7) == firing_pattern(7)
        assert any(firing_pattern(7))
        assert firing_pattern(7) != firing_pattern(8)

    def test_injection_records(self):
        injector = FaultInjector(["launch@assign*#2"])
        injector.on_launch("assign_points", "iter")
        with pytest.raises(KernelLaunchError):
            injector.on_launch("assign_cost", "iter")
        assert len(injector.injected) == 1
        record = injector.injected[0]
        assert record.kind == "launch"
        assert record.operation == "launch"
        assert record.site == "assign_cost"
        assert record.sequence == 2
        assert record.spec == "launch@assign*#2"


class TestStickyErrors:
    def test_sticky_transient_poisons_the_context(self):
        injector = FaultInjector(["transient"])
        with pytest.raises(TransientDeviceError) as info:
            injector.on_launch("k", "p")
        assert info.value.sticky
        assert injector.sticky_failed
        # Every subsequent operation fails until a device reset.
        with pytest.raises(TransientDeviceError):
            injector.on_alloc("x", 1, 10, 10)
        with pytest.raises(TransientDeviceError):
            injector.on_transfer("h2d", "x", 1)
        injector.device_reset()
        assert not injector.sticky_failed
        injector.on_alloc("x", 1, 10, 10)  # healthy again

    def test_nonsticky_transient_does_not_poison(self):
        injector = FaultInjector(["transient!nonsticky"])
        with pytest.raises(TransientDeviceError) as info:
            injector.on_launch("k", "p")
        assert not info.value.sticky
        assert not injector.sticky_failed
        injector.on_launch("k", "p")  # context survived


class TestAmbientInstallation:
    def test_use_injector_scopes_the_contextvar(self):
        assert current_injector() is None
        injector = FaultInjector([])
        with use_injector(injector) as installed:
            assert installed is injector
            assert current_injector() is injector
        assert current_injector() is None

    def test_schedule_accepts_strings_and_specs(self):
        injector = FaultInjector(["oom@Dist", FaultSpec(kind="launch")])
        assert injector.schedule[0] == FaultSpec(kind="oom", site="Dist")
        assert injector.schedule[1] == FaultSpec(kind="launch")
