"""Tests for assign_new_points, scaling fits, validation, kernel profiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro import assign_new_points, proclus
from repro.data.normalize import minmax_normalize
from repro.data.synthetic import generate_subspace_data
from repro.eval.scaling import extrapolate_speedup, fit_linear_scaling
from repro.eval.validation import validate_equivalence
from repro.exceptions import DataValidationError
from repro.gpu.profiler import format_kernel_profile, profile_kernels
from repro.params import ProclusParams


@pytest.fixture(scope="module")
def fitted():
    ds = generate_subspace_data(
        n=2500, d=10, n_clusters=4, subspace_dims=5, std=2.0, seed=10
    )
    data = minmax_normalize(ds.data)
    params = ProclusParams(k=4, l=4, a=30, b=5)
    result = min(
        (proclus(data, backend="fast", params=params, seed=s) for s in range(3)),
        key=lambda r: r.cost,
    )
    return data, ds, result


class TestAssignNewPoints:
    def test_training_points_get_consistent_labels(self, fitted):
        data, _, result = fitted
        relabeled = assign_new_points(result, data, data)
        # Non-outlier training points must land in their original cluster
        # (the assignment rule is the refinement phase's).
        mask = result.labels >= 0
        agreement = np.mean(relabeled[mask] == result.labels[mask])
        assert agreement > 0.99

    def test_new_points_near_medoid_join_its_cluster(self, fitted):
        data, _, result = fitted
        jitter = np.random.default_rng(0).normal(0, 1e-4, (result.k, data.shape[1]))
        near = np.clip(data[result.medoids] + jitter.astype(np.float32), 0, 1)
        labels = assign_new_points(result, data, near.astype(np.float32))
        assert np.array_equal(labels, np.arange(result.k))

    def test_far_points_flagged_outliers(self, fitted):
        data, _, result = fitted
        # A point maximally distant from everything in every dimension.
        far = np.full((1, data.shape[1]), 12.0, dtype=np.float32)
        labels = assign_new_points(result, data, far)
        assert labels[0] == -1

    def test_outlier_detection_optional(self, fitted):
        data, _, result = fitted
        far = np.full((1, data.shape[1]), 12.0, dtype=np.float32)
        labels = assign_new_points(result, data, far, detect_outliers=False)
        assert 0 <= labels[0] < result.k

    def test_dimension_mismatch_rejected(self, fitted):
        data, _, result = fitted
        with pytest.raises(DataValidationError, match="dimensions"):
            assign_new_points(result, data, np.zeros((3, 2), dtype=np.float32))

    def test_wrong_training_data_rejected(self, fitted):
        data, _, result = fitted
        tiny = data[:5]
        with pytest.raises(DataValidationError, match="medoid index"):
            assign_new_points(result, tiny, data[:3])


class TestScalingFits:
    def test_perfect_linear_data(self):
        fit = fit_linear_scaling([100, 200, 400], [1.0, 2.0, 4.0])
        assert fit.slope == pytest.approx(0.01)
        assert fit.intercept == pytest.approx(0.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.is_linear
        assert fit.predict(800) == pytest.approx(8.0)

    def test_affine_with_overhead(self):
        fit = fit_linear_scaling([10, 20, 40], [1.1, 1.2, 1.4])
        assert fit.intercept == pytest.approx(1.0)
        assert fit.predict(0) == pytest.approx(1.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_linear_scaling([10], [1.0])

    def test_extrapolated_speedup_grows_with_n(self):
        sizes = [1_000, 4_000, 16_000]
        base = [0.1 * n / 1000 for n in sizes]  # pure linear
        fast = [0.001 + 1e-6 * n / 1000 for n in sizes]  # overhead-dominated
        speedup, base_fit, fast_fit = extrapolate_speedup(
            sizes, base, fast, target_n=1_000_000
        )
        small_speedup = base[0] / fast[0]
        assert speedup > small_speedup
        assert base_fit.is_linear

    def test_real_measurements_fit_linearly(self):
        """Modeled baseline times really are affine in n."""
        from repro.eval.timing import time_backend

        sizes = [1024, 4096, 16384]
        times = []
        for n in sizes:
            def factory(seed, n=n):
                return generate_subspace_data(n=n, d=10, seed=seed, n_clusters=5)

            times.append(
                time_backend(
                    "proclus", factory,
                    params=ProclusParams(k=5, l=4, a=20, b=4), repeats=1,
                ).modeled_seconds
            )
        fit = fit_linear_scaling(sizes, times)
        assert fit.r_squared > 0.95


class TestValidation:
    def test_all_backends_pass(self):
        report = validate_equivalence(n=600, d=8, seeds=(0, 1))
        assert report.passed
        assert report.runs == 2 * len(report.backends) + 2 - 2
        assert "PASS" in report.render()

    def test_subset_of_backends(self):
        report = validate_equivalence(
            n=500, d=8, seeds=(0,), backends=("proclus", "fast", "gpu-fast")
        )
        assert report.passed
        assert report.backends == ("proclus", "fast", "gpu-fast")


class TestKernelProfiler:
    @pytest.fixture(scope="class")
    def model(self):
        from repro.gpu_impl.gpu_fast import GpuFastProclusEngine

        ds = generate_subspace_data(n=3000, d=10, n_clusters=4,
                                    subspace_dims=4, seed=0)
        data = minmax_normalize(ds.data)
        engine = GpuFastProclusEngine(
            params=ProclusParams(k=4, l=3, a=25, b=5), seed=0
        )
        engine.fit(data)
        return engine.model

    def test_profiles_sorted_by_total_time(self, model):
        profiles = profile_kernels(model)
        totals = [p.total_seconds for p in profiles]
        assert totals == sorted(totals, reverse=True)

    def test_totals_match_model(self, model):
        profiles = profile_kernels(model)
        grand = sum(p.total_seconds for p in profiles)
        # All phase time except host<->device transfers is kernel time.
        kernel_time = model.total_seconds - model.phase_seconds.get("transfer", 0)
        assert grand == pytest.approx(kernel_time, rel=1e-9)

    def test_call_counts_match_launches(self, model):
        profiles = profile_kernels(model)
        assert sum(p.calls for p in profiles) == len(model.counter.kernel_launches)

    def test_bound_by_labels_valid(self, model):
        for p in profile_kernels(model):
            assert p.bound_by in ("launch", "memory", "compute", "atomics")

    def test_format_contains_kernels(self, model):
        text = format_kernel_profile(profile_kernels(model))
        assert "greedy.distances" in text
        assert "total" in text

    def test_empty_profile(self):
        assert "(no kernel launches" in format_kernel_profile([])
