"""Tests for the real-world stand-in datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.realworld import REAL_WORLD_SIZES, dataset_names, load_dataset
from repro.exceptions import DataValidationError

SMALL = ["glass", "vowel", "pendigits"]


class TestCatalog:
    def test_published_sizes(self):
        assert REAL_WORLD_SIZES["glass"] == (214, 9)
        assert REAL_WORLD_SIZES["vowel"] == (990, 10)
        assert REAL_WORLD_SIZES["pendigits"] == (7_494, 16)
        assert REAL_WORLD_SIZES["sky-1x1"] == (30_390, 17)
        assert REAL_WORLD_SIZES["sky-2x2"] == (133_095, 17)
        assert REAL_WORLD_SIZES["sky-5x5"] == (934_073, 17)

    def test_names_sorted_by_size(self):
        names = dataset_names()
        sizes = [REAL_WORLD_SIZES[n][0] for n in names]
        assert sizes == sorted(sizes)

    def test_unknown_name_rejected(self):
        with pytest.raises(DataValidationError, match="unknown dataset"):
            load_dataset("mnist")


class TestStandins:
    @pytest.mark.parametrize("name", SMALL)
    def test_shape_matches_catalog(self, name):
        ds = load_dataset(name, seed=0)
        assert (ds.n, ds.d) == REAL_WORLD_SIZES[name]
        assert ds.name == name

    @pytest.mark.parametrize("name", SMALL)
    def test_deterministic(self, name):
        a = load_dataset(name, seed=1)
        b = load_dataset(name, seed=1)
        assert np.array_equal(a.data, b.data)

    def test_seed_changes_data(self):
        a = load_dataset("glass", seed=1)
        b = load_dataset("glass", seed=2)
        assert not np.array_equal(a.data, b.data)

    def test_sky_shape_and_coordinates(self):
        ds = load_dataset("sky-1x1", seed=0)
        assert (ds.n, ds.d) == (30_390, 17)
        # First two features are the sky coordinates; subspaces refer to
        # the photometric features only (offset by 2).
        for dims in ds.subspaces:
            assert all(j >= 2 for j in dims)

    def test_sky_contains_noise_tail(self):
        ds = load_dataset("sky-1x1", seed=0)
        assert np.count_nonzero(ds.labels == -1) > 0

    def test_uci_standins_have_classes(self):
        ds = load_dataset("glass", seed=0)
        classes = set(np.unique(ds.labels)) - {-1}
        assert len(classes) == 6

    def test_data_finite(self):
        ds = load_dataset("vowel", seed=0)
        assert np.all(np.isfinite(ds.data))
