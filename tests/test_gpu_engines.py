"""Tests for the GPU engine variants: device residency, footprint, OOM."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import proclus
from repro.bench.figures import gpu_variant_footprint
from repro.exceptions import DeviceOutOfMemoryError
from repro.gpu_impl.gpu_fast import GpuFastProclusEngine
from repro.gpu_impl.gpu_fast_star import GpuFastStarProclusEngine
from repro.gpu_impl.gpu_proclus import GpuProclusEngine
from repro.hardware.specs import GTX_1660_TI, RTX_3090
from repro.params import ProclusParams

ENGINES = {
    "gpu": GpuProclusEngine,
    "gpu-fast": GpuFastProclusEngine,
    "gpu-fast-star": GpuFastStarProclusEngine,
}


class TestDeviceLifecycle:
    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_device_memory_freed_after_fit(self, small_dataset, small_params, name):
        data, _ = small_dataset
        engine = ENGINES[name](params=small_params, seed=0)
        engine.fit(data)
        assert engine.device.memory.allocated_bytes == 0
        assert engine.device.peak_bytes > 0

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_peak_matches_analytic_footprint(self, small_dataset, small_params, name):
        data, _ = small_dataset
        engine = ENGINES[name](params=small_params, seed=0)
        result = engine.fit(data)
        expected = gpu_variant_footprint(
            name, data.shape[0], data.shape[1], small_params
        )
        assert result.stats.peak_device_bytes == expected

    def test_gpu_spec_override(self, small_dataset, small_params):
        data, _ = small_dataset
        r = proclus(
            data, backend="gpu-fast", params=small_params, seed=0,
            gpu_spec=RTX_3090,
        )
        assert r.stats.hardware == "GeForce RTX 3090"

    def test_default_spec_for_small_problem(self, small_dataset, small_params):
        data, _ = small_dataset
        r = proclus(data, backend="gpu", params=small_params, seed=0)
        assert r.stats.hardware == "GeForce GTX 1660 Ti"


class TestSpaceHierarchy:
    def test_fast_uses_more_memory_than_fast_star(self, small_dataset, small_params):
        data, _ = small_dataset
        peaks = {}
        for name, cls in ENGINES.items():
            engine = cls(params=small_params, seed=0)
            peaks[name] = engine.fit(data).stats.peak_device_bytes
        assert peaks["gpu-fast"] > peaks["gpu-fast-star"]
        # FAST* is close to plain GPU-PROCLUS (paper: "similar").
        assert peaks["gpu"] <= peaks["gpu-fast-star"] < 1.1 * peaks["gpu"]

    def test_footprint_linear_in_n(self):
        p = ProclusParams()
        f1 = gpu_variant_footprint("gpu-fast", 100_000, 15, p)
        f2 = gpu_variant_footprint("gpu-fast", 200_000, 15, p)
        # Linear with a constant offset: doubling n roughly doubles it.
        assert 1.9 < f2 / f1 < 2.1

    def test_footprint_rejects_cpu_backend(self):
        with pytest.raises(ValueError):
            gpu_variant_footprint("proclus", 100, 5, ProclusParams())

    def test_paper_oom_point(self):
        """GPU-FAST at 2^23 points must exceed the 6 GB card (Fig. 3e)."""
        bytes_needed = gpu_variant_footprint(
            "gpu-fast", 2**23, 15, ProclusParams(k=12)
        )
        # "exceeding the 4.2 GB of free memory on our relatively small GPU"
        assert bytes_needed > GTX_1660_TI.usable_bytes
        assert bytes_needed < RTX_3090.usable_bytes  # but fits the 3090


class TestOutOfMemory:
    def test_fit_raises_on_tiny_card(self, small_dataset, small_params):
        data, _ = small_dataset
        tiny_card = dataclasses.replace(
            GTX_1660_TI, memory_bytes=16 * 1024, reserved_bytes=0
        )
        engine = GpuFastProclusEngine(
            params=small_params, seed=0, gpu_spec=tiny_card
        )
        with pytest.raises(DeviceOutOfMemoryError):
            engine.fit(data)

    def test_fit_succeeds_on_sufficient_card(self, small_dataset, small_params):
        data, _ = small_dataset
        card = dataclasses.replace(
            GTX_1660_TI, memory_bytes=64 * 1024**2, reserved_bytes=0
        )
        engine = GpuFastProclusEngine(params=small_params, seed=0, gpu_spec=card)
        engine.fit(data)


class TestKernelAccounting:
    def test_every_phase_launches_kernels(self, small_dataset, small_params):
        data, _ = small_dataset
        engine = GpuProclusEngine(params=small_params, seed=0)
        engine.fit(data)
        names = {launch.name for launch in engine.model.counter.kernel_launches}
        expected = {
            "greedy.distances",
            "greedy.argmax_check",
            "compute_l.distances",
            "compute_l.medoid_delta",
            "compute_l.build_l",
            "find_dimensions.x_sums",
            "find_dimensions.z",
            "find_dimensions.select",
            "assign_points",
            "evaluate_cluster",
            "update_iteration",
            "refinement.x_sums",
            "remove_outliers.medoid_delta",
            "remove_outliers.check",
        }
        assert expected <= names

    def test_launch_count_scales_with_iterations(self, small_dataset, small_params):
        data, _ = small_dataset
        engine = GpuProclusEngine(params=small_params, seed=0)
        result = engine.fit(data)
        launches = result.stats.counters["gpu.kernel_launches"]
        # Greedy: 2 per pick; each iteration: ~10 kernels.
        m = small_params.effective_num_potential(data.shape[0])
        assert launches >= 2 * m + 8 * result.iterations

    def test_gpu_fast_distance_flops_lower(self, small_dataset, small_params):
        data, _ = small_dataset
        flops = {}
        for name in ("gpu", "gpu-fast"):
            r = proclus(data, backend=name, params=small_params, seed=0)
            flops[name] = r.stats.counters["gpu.flops"]
        assert flops["gpu-fast"] < flops["gpu"]
