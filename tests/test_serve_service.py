"""Unit tests for the serving layer (repro.serve) components.

The end-to-end determinism contract lives in
``test_serve_coalescing.py``; these tests cover the parts: registry,
request keys, scheduler admission/coalescing, the result cache, the
event log, and the service's caching/dedup/observability behavior.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import AdmissionError, ParameterError, ServeError
from repro.hardware.specs import GTX_1660_TI
from repro.params import ProclusParams
from repro.serve import (
    ClusterRequest,
    ClusterService,
    DatasetRegistry,
    JobScheduler,
    ResultCache,
    estimate_device_bytes,
)
from repro.serve.request import Job


def small_params(**changes) -> ProclusParams:
    base = dict(k=4, l=3, a=30, b=5)
    base.update(changes)
    return ProclusParams(**base)


def make_job(job_id=0, fingerprint="f" * 64, backend="gpu-fast",
             seed=0, priority=1, estimated_bytes=0, **params):
    request = ClusterRequest(
        fingerprint=fingerprint, backend=backend,
        params=small_params(**params), seed=seed, priority=priority,
    )
    return Job(request=request, job_id=job_id,
               estimated_bytes=estimated_bytes)


class TestDatasetRegistry:
    def test_register_is_idempotent_and_canonical(self):
        registry = DatasetRegistry()
        data = np.random.default_rng(0).random((40, 5))
        fingerprint = registry.register(data)
        assert registry.register(data.astype(np.float32)) == fingerprint
        assert len(registry) == 1
        stored = registry.get(fingerprint)
        assert stored.dtype == np.float32
        assert not stored.flags.writeable

    def test_unknown_fingerprint_rejected(self):
        with pytest.raises(ServeError, match="unknown dataset"):
            DatasetRegistry().get("0" * 64)


class TestRequestKeys:
    def test_share_key_ignores_l(self):
        a = ClusterRequest("f" * 64, "gpu-fast", small_params(l=3))
        b = ClusterRequest("f" * 64, "gpu-fast", small_params(l=4))
        assert a.share_key == b.share_key
        assert a.cache_key != b.cache_key

    def test_share_key_separates_seed_backend_and_k(self):
        base = ClusterRequest("f" * 64, "gpu-fast", small_params())
        for other in (
            ClusterRequest("f" * 64, "gpu-fast", small_params(), seed=1),
            ClusterRequest("f" * 64, "gpu", small_params()),
            ClusterRequest("f" * 64, "gpu-fast", small_params(k=5, l=3)),
            ClusterRequest("e" * 64, "gpu-fast", small_params()),
        ):
            assert other.share_key != base.share_key

    def test_fingerprint_validated(self):
        with pytest.raises(ParameterError):
            ClusterRequest("", "gpu-fast", small_params())


class TestEstimateDeviceBytes:
    def test_cpu_backends_are_free(self):
        assert estimate_device_bytes(10_000, 15, small_params(), "fast") == 0

    def test_scales_with_n_and_k(self):
        params = small_params()
        small = estimate_device_bytes(1_000, 10, params, "gpu-fast")
        bigger_n = estimate_device_bytes(100_000, 10, params, "gpu-fast")
        bigger_k = estimate_device_bytes(
            1_000, 10, small_params(k=8, l=3), "gpu-fast"
        )
        assert small < bigger_n
        assert small < bigger_k

    def test_paper_space_limit_on_the_6gb_card(self):
        # Section 5: on the 6 GB GTX 1660 Ti space becomes the limit in
        # the millions of points; a k=20 run at 8M points must exceed
        # the usable VRAM while the 1M run still fits.
        params = ProclusParams(k=20, l=5)
        needed = estimate_device_bytes(8_000_000, 15, params, "gpu-fast")
        assert needed > GTX_1660_TI.usable_bytes
        fits = estimate_device_bytes(1_000_000, 15, params, "gpu-fast")
        assert fits < GTX_1660_TI.usable_bytes

    def test_variants_differ(self):
        params = small_params()
        star = estimate_device_bytes(50_000, 10, params, "gpu-fast-star")
        fast = estimate_device_bytes(50_000, 10, params, "gpu-fast")
        plain = estimate_device_bytes(50_000, 10, params, "gpu")
        assert len({star, fast, plain}) == 3


class TestJobScheduler:
    def test_priority_order_with_fifo_tiebreak(self):
        scheduler = JobScheduler(coalesce=False)
        scheduler.push(make_job(0, seed=0, priority=2))
        scheduler.push(make_job(1, seed=1, priority=1))
        scheduler.push(make_job(2, seed=2, priority=1))
        order = [scheduler.pop_group()[0].job_id for _ in range(3)]
        assert order == [1, 2, 0]
        assert scheduler.pop_group() == []

    def test_pop_group_coalesces_share_key_siblings(self):
        scheduler = JobScheduler()
        scheduler.push(make_job(0, l=3, seed=0))
        scheduler.push(make_job(1, l=4, seed=1))  # different share key
        scheduler.push(make_job(2, l=4, seed=0))
        scheduler.push(make_job(3, l=5, seed=0))
        group = scheduler.pop_group()
        assert [job.job_id for job in group] == [0, 2, 3]
        assert scheduler.depth == 1
        assert [job.job_id for job in scheduler.pop_group()] == [1]

    def test_queue_depth_admission(self):
        scheduler = JobScheduler(max_queue_depth=1)
        scheduler.admit(make_job(0))
        scheduler.push(make_job(0))
        with pytest.raises(AdmissionError) as info:
            scheduler.admit(make_job(1))
        assert info.value.reason == "queue"

    def test_memory_admission(self):
        scheduler = JobScheduler(capacity_bytes=1_000)
        scheduler.admit(make_job(0, estimated_bytes=999))
        with pytest.raises(AdmissionError) as info:
            scheduler.admit(make_job(1, estimated_bytes=1_001))
        assert info.value.reason == "memory"

    def test_backlog_admission_uses_observed_ewma(self):
        scheduler = JobScheduler(max_backlog_seconds=1.0)
        scheduler.observe("gpu-fast", 0.7)
        scheduler.admit(make_job(0))
        scheduler.push(make_job(0))
        assert scheduler.backlog_seconds() == pytest.approx(0.7)
        with pytest.raises(AdmissionError) as info:
            scheduler.admit(make_job(1))
        assert info.value.reason == "backlog"

    def test_coalesce_off_pops_singletons(self):
        scheduler = JobScheduler(coalesce=False)
        scheduler.push(make_job(0, l=3))
        scheduler.push(make_job(1, l=4))
        assert len(scheduler.pop_group()) == 1
        assert len(scheduler.pop_group()) == 1


class TestResultCache:
    def test_lru_eviction_and_counters(self):
        cache = ResultCache(max_entries=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": now "b" is oldest
        evicted = cache.put("c", 3)
        assert evicted == ["b"]
        assert cache.get("b") is None
        assert cache.stats() == {
            "entries": 2, "max_entries": 2,
            "hits": 1, "misses": 2, "evictions": 1,
        }

    def test_zero_entries_disables_caching(self):
        cache = ResultCache(max_entries=0)
        assert cache.put("a", 1) == []
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ParameterError):
            ResultCache(max_entries=-1)


@pytest.fixture(scope="module")
def served(small_dataset):
    """One service lifecycle shared by the behavior assertions below."""
    data, _ = small_dataset
    params = ProclusParams(k=4, l=3, a=30, b=5)
    with ClusterService(workers=2, cache_entries=4) as service:
        first = service.submit(data=data, backend="gpu-fast", params=params)
        first.result(timeout=120)
        repeat = service.submit(data=data, backend="gpu-fast", params=params)
        repeat.result(timeout=120)
        other = service.submit(
            data=data, backend="gpu-fast", params=params.with_(l=4)
        )
        other.result(timeout=120)
        stats = service.stats()
        events = service.log.as_dicts()
    return first, repeat, other, stats, events


class TestClusterService:
    def test_repeat_request_is_a_cache_hit(self, served):
        first, repeat, _, stats, _ = served
        assert not first.cached
        assert repeat.cached
        assert stats["cache"]["hits"] == 1
        assert np.array_equal(
            first.result().labels, repeat.result().labels
        )

    def test_events_and_counters_recorded(self, served):
        *_, stats, events = served
        kinds = {event["kind"] for event in events}
        assert {"submit", "admit", "start", "complete", "cache_hit"} <= kinds
        assert stats["counters"]["serve.requests"] == 3
        assert stats["counters"]["serve.completed"] == 2
        assert stats["executed_modeled_seconds"] > 0
        assert stats["peak_reserved_bytes"] > 0

    def test_latency_and_status(self, served):
        first, repeat, other, _, _ = served
        for handle in (first, repeat, other):
            assert handle.done()
            assert handle.status == "done"
            assert handle.latency >= 0.0

    def test_submit_requires_exactly_one_data_source(self, small_dataset):
        data, _ = small_dataset
        with ClusterService(workers=1) as service:
            with pytest.raises(ServeError):
                service.submit()
            with pytest.raises(ServeError):
                service.submit(data=data, fingerprint="a" * 64)
            with pytest.raises(ServeError, match="unknown dataset"):
                service.submit(fingerprint="a" * 64)

    def test_submit_by_fingerprint_after_register(self, small_dataset):
        data, _ = small_dataset
        with ClusterService(workers=1) as service:
            fingerprint = service.register(data)
            handle = service.submit(
                fingerprint=fingerprint, backend="fast",
                params=ProclusParams(k=4, l=3, a=30, b=5),
            )
            assert handle.result(timeout=120).k == 4

    def test_infeasible_memory_request_rejected(self, small_dataset):
        import dataclasses

        data, _ = small_dataset
        # A card whose usable VRAM cannot even hold this tiny dataset.
        tiny_card = dataclasses.replace(
            GTX_1660_TI, name="tiny", memory_bytes=16_384,
            reserved_bytes=8_192,
        )
        with ClusterService(workers=1, gpu_spec=tiny_card) as service:
            with pytest.raises(AdmissionError) as info:
                service.submit(
                    data=data, backend="gpu-fast",
                    params=ProclusParams(k=4, l=3, a=30, b=5),
                )
            assert info.value.reason == "memory"
            assert service.log.count("reject") == 1
            stats = service.stats()
            assert stats["counters"]["serve.rejected"] == 1
            assert stats["counters"]["serve.rejected.memory"] == 1

    def test_close_fails_pending_handles(self, small_dataset):
        data, _ = small_dataset
        service = ClusterService(workers=1)
        handle = service.submit(
            data=data, backend="fast",
            params=ProclusParams(k=4, l=3, a=30, b=5),
        )
        service.close(drain=False)
        if handle.status == "failed":
            with pytest.raises(ServeError, match="closed"):
                handle.result(timeout=1)
        else:
            assert handle.result(timeout=1).k == 4

    def test_closed_service_refuses_submissions(self, small_dataset):
        data, _ = small_dataset
        service = ClusterService(workers=1)
        service.close()
        with pytest.raises(ServeError):
            service.submit(
                data=data, backend="fast",
                params=ProclusParams(k=4, l=3, a=30, b=5),
            )
