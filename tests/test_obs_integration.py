"""Integration tests for the tracing subsystem.

The two acceptance properties of the observability layer:

* every engine variant emits the *same* span tree for the same input —
  asserted differentially between the vectorized GPU engine and the
  SIMT-emulated engine (whose kernels execute thread by thread);
* instrumentation costs nothing measurable when tracing is disabled.
"""

from __future__ import annotations

import time

import pytest

from repro import BACKENDS
from repro.gpu_impl.emulated_engine import EmulatedGpuFastProclusEngine
from repro.obs import Tracer, use_tracer


def _signatures(tracer: Tracer) -> tuple:
    return tuple(root.signature() for root in tracer.roots)


class TestDifferentialSpanTree:
    def test_emulated_and_vectorized_trees_identical(
        self, tiny_dataset, tiny_params
    ):
        """Same names, same nesting, same counts — only timing differs."""
        data, _ = tiny_dataset
        trees = {}
        costs = {}
        for name, factory in (
            ("vectorized", BACKENDS["gpu-fast"]),
            ("emulated", EmulatedGpuFastProclusEngine),
        ):
            tracer = Tracer()
            with use_tracer(tracer):
                result = factory(params=tiny_params, seed=3).fit(data)
            trees[name] = _signatures(tracer)
            costs[name] = result.cost
        assert trees["vectorized"] == trees["emulated"]
        assert costs["vectorized"] == pytest.approx(costs["emulated"])

    def test_emulated_kernels_on_wall_clock(self, tiny_dataset, tiny_params):
        data, _ = tiny_dataset
        tracer = Tracer()
        with use_tracer(tracer):
            EmulatedGpuFastProclusEngine(params=tiny_params, seed=3).fit(data)
        clocks = {event.clock for event in tracer.kernel_events}
        assert clocks == {"wall"}
        for event in tracer.kernel_events:
            assert event.duration >= 0.0
            assert event.grid_blocks >= 1
            assert event.threads_per_block >= 1

    def test_vectorized_kernels_on_modeled_clock(
        self, tiny_dataset, tiny_params
    ):
        data, _ = tiny_dataset
        tracer = Tracer()
        with use_tracer(tracer):
            BACKENDS["gpu-fast"](params=tiny_params, seed=3).fit(data)
        assert {e.clock for e in tracer.kernel_events} == {"modeled"}

    def test_emulated_engine_collects_run_trace(
        self, tiny_dataset, tiny_params
    ):
        data, _ = tiny_dataset
        engine = EmulatedGpuFastProclusEngine(
            params=tiny_params, seed=3, collect_trace=True
        )
        result = engine.fit(data)
        assert result.trace is not None
        assert len(result.trace) == result.iterations
        assert result.trace.records[-1].best_cost == pytest.approx(result.cost)


class TestExplicitTracer:
    def test_engine_accepts_tracer_argument(self, small_dataset, small_params):
        data, _ = small_dataset
        tracer = Tracer()
        engine = BACKENDS["fast"](params=small_params, seed=0, tracer=tracer)
        engine.fit(data)
        assert tracer.find_spans("fit")
        assert tracer.find_spans("iteration")

    def test_cpu_backend_emits_spans_but_no_kernels(
        self, small_dataset, small_params
    ):
        data, _ = small_dataset
        tracer = Tracer()
        with use_tracer(tracer):
            BACKENDS["proclus"](params=small_params, seed=0).fit(data)
        assert tracer.find_spans("refinement")
        assert tracer.kernel_events == []

    def test_metrics_absorbed_after_fit(self, small_dataset, small_params):
        data, _ = small_dataset
        tracer = Tracer()
        with use_tracer(tracer):
            BACKENDS["gpu-fast"](params=small_params, seed=0).fit(data)
        snapshot = tracer.metrics.as_dict()
        assert snapshot["counters"]["runs"] == 1
        assert any(
            name.startswith("phase_seconds.") for name in snapshot["counters"]
        )
        assert any(
            name.startswith("kernel.") for name in snapshot["histograms"]
        )


class TestMultiParamLinks:
    @pytest.fixture(scope="class")
    def traced_study(self):
        from repro.core.multiparam import run_study
        from repro.data.normalize import minmax_normalize
        from repro.data.synthetic import generate_subspace_data
        from repro.params import ParameterGrid, ProclusParams

        ds = generate_subspace_data(
            n=500, d=6, n_clusters=3, subspace_dims=3, seed=5
        )
        data = minmax_normalize(ds.data)
        grid = ParameterGrid(
            ks=(4, 3), ls=(3,), base=ProclusParams(k=4, l=3, a=20, b=4)
        )
        tracer = Tracer()
        with use_tracer(tracer):
            run_study(data, BACKENDS["gpu-fast"], grid=grid, level=3, seed=1)
        return tracer

    def test_study_contains_one_setting_span_per_combination(
        self, traced_study
    ):
        assert len(traced_study.find_spans("study")) == 1
        assert len(traced_study.find_spans("setting")) == 2
        assert len(traced_study.find_spans("shared_state")) == 1

    def test_settings_link_to_shared_state(self, traced_study):
        shared_id = traced_study.find_spans("shared_state")[0].span_id
        for setting in traced_study.find_spans("setting"):
            assert shared_id in setting.links

    def test_warm_started_setting_links_to_previous(self, traced_study):
        settings = traced_study.find_spans("setting")
        first, second = settings
        assert first.attrs["warm_start"] is False
        assert second.attrs["warm_start"] is True
        assert first.span_id in second.links

    def test_fit_spans_nest_under_settings(self, traced_study):
        for setting in traced_study.find_spans("setting"):
            assert [c.name for c in setting.children] == ["fit"]


class TestDisabledOverhead:
    def test_disabled_tracing_overhead_under_two_percent(
        self, small_dataset, small_params
    ):
        """Per-span cost of the disabled path, scaled by the spans one
        fit opens, must stay under 2 % of that fit's wall time."""
        data, _ = small_dataset

        started = time.perf_counter()
        engine = BACKENDS["gpu-fast"](params=small_params, seed=0)
        result = engine.fit(data)
        fit_seconds = time.perf_counter() - started

        # Spans an identical traced fit would open.
        tracer = Tracer()
        with use_tracer(tracer):
            BACKENDS["gpu-fast"](params=small_params, seed=0).fit(data)
        spans_per_fit = len(tracer.all_spans())

        # Measure the disabled per-span cost directly.
        disabled = Tracer(enabled=False)
        reps = 20_000
        started = time.perf_counter()
        for _ in range(reps):
            with disabled.span("x"):
                pass
        per_span = (time.perf_counter() - started) / reps

        overhead = per_span * spans_per_fit
        assert overhead < 0.02 * fit_seconds, (
            f"disabled tracing would cost {overhead * 1e6:.1f}us over "
            f"{spans_per_fit} spans vs {fit_seconds * 1e3:.1f}ms fit"
        )
        assert result.iterations > 0
