"""Differential suite: coalesced serving is bit-identical to solo runs.

The serving layer's central contract (the paper's multi-parameter
sharing, Section 3.1, applied to concurrent requests): requests that
agree on ``(dataset, backend, seed, k, A, B)`` execute as one group —
sharing the sample, the greedy medoid pick, and the FAST caches — yet
every response must be **bit-identical** to running that request alone.
Checked here both at the driver level (:func:`run_coalesced_group`,
deterministic) and end-to-end through the threaded service, across the
three GPU variants of the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BACKENDS, proclus
from repro.core.multiparam import run_coalesced_group
from repro.exceptions import ParameterError
from repro.params import ProclusParams
from repro.serve import ClusterService

GPU_VARIANTS = ("gpu", "gpu-fast", "gpu-fast-star")


def identical(a, b) -> bool:
    return (
        np.array_equal(a.labels, b.labels)
        and np.array_equal(a.medoids, b.medoids)
        and a.dimensions == b.dimensions
        and a.cost == b.cost
        and a.refined_cost == b.refined_cost
        and a.iterations == b.iterations
        and a.best_iteration == b.best_iteration
    )


@pytest.fixture(scope="module")
def base_params():
    return ProclusParams(k=4, l=3, a=30, b=5)


class TestDriverLevel:
    @pytest.mark.parametrize("backend", GPU_VARIANTS)
    def test_group_matches_solo_runs(self, small_dataset, base_params, backend):
        data, _ = small_dataset
        settings = [base_params.with_(l=l) for l in (3, 4, 5)]
        group = run_coalesced_group(
            data, BACKENDS[backend], settings, seed=0
        )
        for params, result in zip(settings, group):
            solo = proclus(data, backend=backend, params=params, seed=0)
            assert identical(result, solo), (backend, params.l)

    def test_group_saves_modeled_time(self, small_dataset, base_params):
        data, _ = small_dataset
        settings = [base_params.with_(l=l) for l in (3, 4, 5)]
        group = run_coalesced_group(
            data, BACKENDS["gpu-fast"], settings, seed=0
        )
        solo_total = sum(
            proclus(
                data, backend="gpu-fast", params=params, seed=0
            ).stats.modeled_seconds
            for params in settings
        )
        group_total = sum(result.stats.modeled_seconds for result in group)
        assert group_total < solo_total

    def test_mismatched_k_a_b_rejected(self, small_dataset, base_params):
        data, _ = small_dataset
        with pytest.raises(ParameterError, match="share"):
            run_coalesced_group(
                data, BACKENDS["gpu-fast"],
                [base_params, base_params.with_(k=5)], seed=0,
            )


class TestServiceLevel:
    @pytest.mark.parametrize("backend", GPU_VARIANTS)
    def test_concurrent_requests_bit_identical(
        self, small_dataset, tiny_dataset, base_params, backend
    ):
        data, _ = small_dataset
        blocker_data, _ = tiny_dataset
        ls = (3, 4, 5)
        with ClusterService(workers=1, cache_entries=0) as service:
            # The blocker occupies the single worker so the sibling
            # requests queue up and are dequeued as one coalesced group.
            blocker = service.submit(
                data=blocker_data, backend=backend,
                params=ProclusParams(k=3, l=3, a=20, b=4), seed=9,
            )
            handles = [
                service.submit(
                    data=data, backend=backend,
                    params=base_params.with_(l=l), seed=0,
                )
                for l in ls
            ]
            results = [handle.result(timeout=120) for handle in handles]
            blocker.result(timeout=120)
            coalesced = service.obs.metrics.as_dict()["counters"].get(
                "serve.coalesced", 0
            )
        # At least two siblings must have shared one dispatch (all three
        # when no sibling slipped in before the blocker started).
        assert coalesced >= 1
        assert sum(handle.coalesced for handle in handles) >= 2
        for l, result in zip(ls, results):
            solo = proclus(
                data, backend=backend,
                params=base_params.with_(l=l), seed=0,
            )
            assert identical(result, solo), (backend, l)

    def test_mixed_share_keys_still_all_identical(
        self, small_dataset, base_params
    ):
        data, _ = small_dataset
        specs = [
            ("gpu-fast", 0, 3), ("gpu-fast", 0, 4),  # one share group
            ("gpu-fast", 1, 3),                      # different seed
            ("gpu", 0, 3),                           # different backend
        ]
        with ClusterService(workers=2, cache_entries=0) as service:
            handles = [
                service.submit(
                    data=data, backend=backend,
                    params=base_params.with_(l=l), seed=seed,
                )
                for backend, seed, l in specs
            ]
            results = [handle.result(timeout=120) for handle in handles]
        for (backend, seed, l), result in zip(specs, results):
            solo = proclus(
                data, backend=backend,
                params=base_params.with_(l=l), seed=seed,
            )
            assert identical(result, solo), (backend, seed, l)
