"""Tests for stability analysis and the batch experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.figures import sec54_utilization
from repro.bench.runner import run_all_experiments, write_summary
from repro.eval.stability import stability_analysis
from repro.params import ProclusParams


@pytest.fixture(scope="module")
def workload():
    from repro.data.normalize import minmax_normalize
    from repro.data.synthetic import generate_subspace_data

    ds = generate_subspace_data(n=1200, d=8, n_clusters=4, subspace_dims=4, seed=0)
    return minmax_normalize(ds.data)


class TestStability:
    @pytest.fixture(scope="class")
    def report(self, workload):
        return stability_analysis(
            workload,
            params=ProclusParams(k=4, l=3, a=20, b=4),
            seeds=tuple(range(5)),
        )

    def test_one_run_per_seed(self, report):
        assert len(report.costs) == 5
        assert len(report.results) == 5

    def test_cost_statistics_consistent(self, report):
        assert report.best_cost <= report.mean_cost <= report.worst_cost
        assert report.std_cost >= 0
        assert report.relative_spread >= 0

    def test_best_result_has_best_cost(self, report):
        assert report.best_result().cost == report.best_cost

    def test_pairwise_agreement_bounded(self, report):
        assert -1.0 <= report.pairwise_agreement() <= 1.0

    def test_seeds_to_reach_monotone_in_tolerance(self, report):
        loose = report.seeds_to_reach(tolerance=1.0)
        tight = report.seeds_to_reach(tolerance=0.0)
        assert 1 <= loose <= tight <= 5

    def test_single_seed_agreement_is_one(self, workload):
        report = stability_analysis(
            workload, params=ProclusParams(k=4, l=3, a=20, b=4), seeds=(0,)
        )
        assert report.pairwise_agreement() == 1.0

    def test_render_mentions_statistics(self, report):
        text = report.render()
        assert "best" in text and "spread" in text


class TestRunner:
    def test_single_experiment_with_artifacts(self, tmp_path):
        runs = run_all_experiments(
            out_dir=tmp_path,
            experiments={"sec54": sec54_utilization},
        )
        assert len(runs) == 1
        run = runs[0]
        assert run.csv_path.exists()
        assert run.json_path.exists()
        assert run.wall_seconds > 0
        summary = (tmp_path / "SUMMARY.md").read_text()
        assert "sec54" in summary
        assert "Nsight" in summary

    def test_no_artifacts_without_out_dir(self):
        runs = run_all_experiments(experiments={"sec54": sec54_utilization})
        assert runs[0].csv_path is None

    def test_progress_callback(self, tmp_path):
        seen = []
        run_all_experiments(
            experiments={"sec54": sec54_utilization}, progress=seen.append
        )
        assert seen == ["running sec54 ..."]

    def test_write_summary_standalone(self, tmp_path):
        runs = run_all_experiments(experiments={"sec54": sec54_utilization})
        path = write_summary(runs, tmp_path / "S.md")
        assert "Reproduction summary" in path.read_text()
