"""Unit tests for ProclusParams and ParameterGrid validation."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ParameterError
from repro.params import ParameterGrid, ProclusParams


class TestProclusParamsDefaults:
    def test_paper_defaults(self):
        p = ProclusParams()
        assert (p.k, p.l, p.a, p.b) == (10, 5, 100, 10)
        assert p.min_deviation == 0.7
        assert p.patience == 5

    def test_sample_size_is_a_times_k(self):
        assert ProclusParams(k=7, a=50).sample_size == 350

    def test_num_potential_medoids_is_b_times_k(self):
        assert ProclusParams(k=7, b=4).num_potential_medoids == 28

    def test_total_dimensions_is_k_times_l(self):
        assert ProclusParams(k=6, l=4).total_dimensions == 24

    def test_frozen(self):
        with pytest.raises(Exception):
            ProclusParams().k = 3  # type: ignore[misc]


class TestProclusParamsValidation:
    @pytest.mark.parametrize("k", [0, -1, -100])
    def test_rejects_nonpositive_k(self, k):
        with pytest.raises(ParameterError, match="k must be"):
            ProclusParams(k=k)

    @pytest.mark.parametrize("l", [0, 1, -5])
    def test_rejects_l_below_two(self, l):
        with pytest.raises(ParameterError, match="l must be"):
            ProclusParams(l=l)

    def test_rejects_b_below_one(self):
        with pytest.raises(ParameterError, match="B must be"):
            ProclusParams(b=0)

    def test_rejects_a_smaller_than_b(self):
        with pytest.raises(ParameterError, match="A must be >= B"):
            ProclusParams(a=5, b=10)

    @pytest.mark.parametrize("dev", [0.0, -0.1, 1.5])
    def test_rejects_bad_min_deviation(self, dev):
        with pytest.raises(ParameterError, match="min_deviation"):
            ProclusParams(min_deviation=dev)

    def test_rejects_nonpositive_patience(self):
        with pytest.raises(ParameterError, match="patience"):
            ProclusParams(patience=0)

    def test_rejects_nonpositive_max_iterations(self):
        with pytest.raises(ParameterError, match="max_iterations"):
            ProclusParams(max_iterations=0)

    def test_a_equal_b_allowed(self):
        assert ProclusParams(a=10, b=10).a == 10

    def test_min_deviation_one_allowed(self):
        assert ProclusParams(min_deviation=1.0).min_deviation == 1.0


class TestEffectiveSizes:
    def test_sample_capped_at_n(self):
        p = ProclusParams(k=10, a=100)
        assert p.effective_sample_size(512) == 512
        assert p.effective_sample_size(10_000) == 1000

    def test_potential_medoids_capped_at_sample(self):
        p = ProclusParams(k=10, b=10)
        assert p.effective_num_potential(50) == 50
        assert p.effective_num_potential(10_000) == 100

    def test_validate_rejects_k_exceeding_potential(self):
        p = ProclusParams(k=10)
        with pytest.raises(ParameterError, match="exceeds the number"):
            p.validate_against_data(n=5, d=20)

    def test_validate_rejects_l_exceeding_d(self):
        with pytest.raises(ParameterError, match="exceeds data dimensionality"):
            ProclusParams(l=5).validate_against_data(n=1000, d=3)

    def test_validate_accepts_feasible(self):
        ProclusParams().validate_against_data(n=10_000, d=15)

    @given(
        k=st.integers(1, 20),
        a=st.integers(1, 200),
        n=st.integers(1, 100_000),
    )
    def test_effective_sample_never_exceeds_n_or_ak(self, k, a, n):
        p = ProclusParams(k=k, l=2, a=a, b=1)
        eff = p.effective_sample_size(n)
        assert eff <= n
        assert eff <= a * k
        assert eff == min(n, a * k)

    def test_with_replaces_fields(self):
        p = ProclusParams().with_(k=3, l=2)
        assert (p.k, p.l) == (3, 2)
        assert p.a == 100  # untouched

    def test_with_validates(self):
        with pytest.raises(ParameterError):
            ProclusParams().with_(k=0)


class TestParameterGrid:
    def test_default_grid_has_nine_combinations(self):
        assert len(ParameterGrid()) == 9

    def test_iterates_largest_k_first(self):
        ks = [p.k for p in ParameterGrid(ks=(4, 8, 6), ls=(3,))]
        assert ks == [8, 6, 4]

    def test_max_k(self):
        assert ParameterGrid(ks=(4, 12, 8)).max_k == 12

    def test_all_settings_carry_base_fields(self):
        base = ProclusParams(a=40, b=4, min_deviation=0.5)
        for p in ParameterGrid(ks=(4,), ls=(3, 2), base=base):
            assert p.a == 40
            assert p.b == 4
            assert p.min_deviation == 0.5

    def test_rejects_empty_grid(self):
        with pytest.raises(ParameterError):
            ParameterGrid(ks=(), ls=(3,))
        with pytest.raises(ParameterError):
            ParameterGrid(ks=(4,), ls=())

    def test_rejects_invalid_k_values(self):
        with pytest.raises(ParameterError):
            ParameterGrid(ks=(0, 4), ls=(3,))

    def test_rejects_invalid_l_values(self):
        with pytest.raises(ParameterError):
            ParameterGrid(ks=(4,), ls=(1,))

    @given(
        ks=st.lists(st.integers(1, 30), min_size=1, max_size=4, unique=True),
        ls=st.lists(st.integers(2, 10), min_size=1, max_size=4, unique=True),
    )
    def test_length_is_product(self, ks, ls):
        grid = ParameterGrid(ks=tuple(ks), ls=tuple(ls))
        assert len(list(grid)) == len(ks) * len(ls) == len(grid)
