"""Tests for the flight recorder: rings, correlation, forwarding.

The recorder is the capture side of the postmortem story (replay is
covered in ``test_postmortem_replay.py``): bounded per-stream rings
with exact recorded/dropped bookkeeping, a correlation ID threaded
through spans/faults/resilience events, and passive forwarding from
the tracer / fault injector / resilient runner — passive meaning the
modeled result is bit-identical with the recorder on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.obs import (
    RECORDER_STREAMS,
    FlightRecorder,
    Tracer,
    current_correlation,
    current_recorder,
    new_correlation,
    use_correlation,
    use_recorder,
    use_tracer,
    validate_postmortem,
)
from repro.obs.tracer import KernelEvent


class TestRings:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ParameterError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_unknown_stream_rejected(self):
        recorder = FlightRecorder(capacity=4)
        with pytest.raises(ParameterError, match="unknown recorder stream"):
            recorder.record("bogus", {"x": 1})

    def test_ring_keeps_only_the_newest_records(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(10):
            recorder.record("spans", {"index": index})
        snapshot = recorder.snapshot()
        kept = [record["index"] for record in snapshot["streams"]["spans"]]
        assert kept == [7, 8, 9]
        assert snapshot["recorded"]["spans"] == 10
        assert snapshot["dropped"]["spans"] == 7

    @settings(max_examples=10, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=64),
        events=st.lists(
            st.sampled_from(RECORDER_STREAMS), min_size=0, max_size=500
        ),
    )
    def test_bounded_memory_under_stress(self, capacity, events):
        recorder = FlightRecorder(capacity=capacity)
        for sequence, stream in enumerate(events):
            recorder.record(stream, {"sequence": sequence})
        snapshot = recorder.snapshot()
        for stream in RECORDER_STREAMS:
            ring = snapshot["streams"][stream]
            assert len(ring) <= capacity
            total = events.count(stream)
            assert snapshot["recorded"][stream] == total
            assert snapshot["dropped"][stream] == total - len(ring)
            # The kept window is the contiguous tail of the stream.
            kept = [record["sequence"] for record in ring]
            assert kept == sorted(kept)

    def test_ten_thousand_events_obey_the_capacity(self):
        recorder = FlightRecorder(capacity=16)
        for sequence in range(10_000):
            recorder.record(
                RECORDER_STREAMS[sequence % len(RECORDER_STREAMS)],
                {"sequence": sequence},
            )
        snapshot = recorder.snapshot()
        assert len(recorder) <= 16 * len(RECORDER_STREAMS)
        assert (
            sum(snapshot["recorded"].values()) == 10_000
            == sum(snapshot["dropped"].values())
            + sum(len(r) for r in snapshot["streams"].values())
        )

    def test_comm_kernels_route_to_the_collectives_stream(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record_kernel(
            KernelEvent("assign", "gpu0:compute", "assign", 0.0, 1e-3)
        )
        recorder.record_kernel(
            KernelEvent("comm.allreduce@dev0", "fleet", "comm", 0.0, 1e-4)
        )
        snapshot = recorder.snapshot()
        assert [r["name"] for r in snapshot["streams"]["kernels"]] == ["assign"]
        assert [r["name"] for r in snapshot["streams"]["collectives"]] == [
            "comm.allreduce@dev0"
        ]


class TestCorrelation:
    def test_default_is_none(self):
        assert current_correlation() is None

    def test_new_correlation_is_unique_and_prefixed(self):
        first, second = new_correlation("job"), new_correlation("job")
        assert first != second and first.startswith("job-")

    def test_use_correlation_installs_and_restores(self):
        with use_correlation("job-7"):
            assert current_correlation() == "job-7"
            with use_correlation("job-7:r0a1"):
                assert current_correlation() == "job-7:r0a1"
            assert current_correlation() == "job-7"
        assert current_correlation() is None

    def test_records_are_stamped_with_the_ambient_correlation(self):
        recorder = FlightRecorder(capacity=4)
        with use_correlation("job-3"):
            recorder.record("resilience", {"kind": "retry"})
        recorder.record("resilience", {"kind": "degrade"})
        ring = recorder.snapshot()["streams"]["resilience"]
        assert ring[0]["corr"] == "job-3"
        assert "corr" not in ring[1]

    def test_explicit_corr_wins_over_ambient(self):
        recorder = FlightRecorder(capacity=4)
        with use_correlation("ambient"):
            recorder.record("serve", {"kind": "submit", "corr": "explicit"})
        assert recorder.snapshot()["streams"]["serve"][0]["corr"] == "explicit"


class TestAmbientRecorder:
    def test_default_is_none(self):
        assert current_recorder() is None

    def test_use_recorder_installs_and_restores(self):
        recorder = FlightRecorder(capacity=4)
        with use_recorder(recorder):
            assert current_recorder() is recorder
        assert current_recorder() is None

    def test_enabled_tracer_forwards_to_the_recorder(self):
        recorder = FlightRecorder(capacity=32)
        tracer = Tracer()
        with use_recorder(recorder):
            with tracer.span("phase.assign", category="phase"):
                tracer.kernel(
                    "assign", pipeline="gpu0:compute", phase="assign",
                    start=0.0, duration=1e-3,
                )
                tracer.counter("gpu.flops", 0.0, 1e9)
        snapshot = recorder.snapshot()
        assert [r["name"] for r in snapshot["streams"]["spans"]] == [
            "phase.assign"
        ]
        assert len(snapshot["streams"]["kernels"]) == 1
        assert snapshot["streams"]["counters"][0]["track"] == "gpu.flops"

    def test_disabled_tracer_forwards_nothing(self):
        recorder = FlightRecorder(capacity=8)
        tracer = Tracer(enabled=False)
        with use_recorder(recorder):
            with tracer.span("phase.assign"):
                tracer.counter("gpu.flops", 0.0, 1e9)
        assert len(recorder) == 0

    def test_fault_injections_are_recorded(self):
        from repro.resilience.faults import FaultInjector, use_injector

        from repro.exceptions import DeviceOutOfMemoryError

        recorder = FlightRecorder(capacity=8)
        injector = FaultInjector(("oom#1",), seed=0)
        with use_recorder(recorder), use_injector(injector):
            with pytest.raises(DeviceOutOfMemoryError):
                injector.on_alloc("dist@dev0", 1 << 20, 1 << 30, 1 << 30)
        faults = recorder.snapshot()["streams"]["faults"]
        assert len(faults) == 1
        assert faults[0]["kind"] == "oom"
        assert faults[0]["site"] == "dist@dev0"
        assert faults[0]["sequence"] == 1


class TestPassiveOverhead:
    def test_recorder_does_not_change_the_modeled_result(self):
        """Acceptance: the recorder is passive — bit-identical results
        and identical modeled seconds with the recorder on."""
        from repro import proclus

        data = np.random.default_rng(0).normal(size=(500, 8))

        def run(with_recorder: bool):
            tracer = Tracer()
            recorder = FlightRecorder(capacity=64)
            if with_recorder:
                context = use_recorder(recorder)
            else:
                from contextlib import nullcontext

                context = nullcontext()
            with use_tracer(tracer), context:
                result = proclus(
                    data, backend="gpu-fast", k=3, l=3, seed=0
                )
            return result, recorder

        plain, _ = run(with_recorder=False)
        recorded, recorder = run(with_recorder=True)
        assert np.array_equal(plain.labels, recorded.labels)
        assert plain.cost == recorded.cost
        assert (
            plain.stats.modeled_seconds == recorded.stats.modeled_seconds
        )
        assert len(recorder) > 0  # and it actually captured the run


class TestBundleDump:
    def test_dump_writes_a_valid_unique_bundle(self, tmp_path):
        recorder = FlightRecorder(capacity=8, bundle_dir=tmp_path)
        recorder.record("spans", {"name": "phase.assign"})
        recorder.record_failure("test-failure", detail="synthetic")
        first = recorder.dump("test-failure")
        second = recorder.dump("test-failure")
        assert first != second and first.exists() and second.exists()
        from repro.obs import load_bundle

        bundle = load_bundle(first)
        assert validate_postmortem(bundle) == []
        assert bundle["failure"]["reason"] == "test-failure"
        assert recorder.dump_count == 2

    def test_auto_dump_without_bundle_dir_is_a_noop(self):
        recorder = FlightRecorder(capacity=8)
        assert recorder.auto_dump("whatever") is None

    def test_auto_dump_deduplicates_by_error_identity(self, tmp_path):
        recorder = FlightRecorder(capacity=8, bundle_dir=tmp_path)
        error = RuntimeError("boom")
        assert recorder.auto_dump("first", error) is not None
        assert recorder.auto_dump("second", error) is None
        assert recorder.dump_count == 1
