"""Tests for the monitoring/regression CLI: bench quick, regress, monitor."""

from __future__ import annotations

import json

from repro.cli import REGRESS_INJECTIONS, main
from repro.obs import validate_bench_report


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


SMALL_LOAD = ("loadgen", "--requests", "6", "--workers", "2",
              "--backends", "gpu-fast")


class TestBenchQuickCli:
    def test_quick_tier_saves_baselines_and_gate_passes(self, capsys, tmp_path):
        store = tmp_path / "baselines"
        report = tmp_path / "BENCH_bench_quick.json"
        code, out = run(
            capsys, "bench", "quick", "--save-baseline",
            "--baseline-dir", str(store), "--json", str(report),
        )
        assert code == 0
        assert "baseline files written" in out
        assert len(list(store.glob("*.json"))) == 7
        payload = json.loads(report.read_text())
        assert validate_bench_report(payload, "repro.bench_quick/1") == []

        # A fresh run against the store we just wrote is all-ties: exit 0.
        verdict_path = tmp_path / "BENCH_regress.json"
        code, out = run(
            capsys, "regress", "--baseline-dir", str(store),
            "--json", str(verdict_path),
        )
        assert code == 0
        assert "no regression" in out
        verdict = json.loads(verdict_path.read_text())
        assert validate_bench_report(verdict, "repro.regress/1") == []
        assert verdict["exit_code"] == 0


class TestRegressCli:
    def test_missing_store_exits_2(self, capsys, tmp_path):
        code = main([
            "regress", "--baseline-dir", str(tmp_path / "nothing"),
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "store is empty" in captured.err

    def test_injections_cover_headline_backends(self):
        remap = REGRESS_INJECTIONS["no-dist-cache"]
        assert remap["gpu-fast"] == "gpu-fast-h-only"
        assert "fast" in remap


class TestMonitorCli:
    def _monitor_dir(self, capsys, tmp_path):
        mon = tmp_path / "mon"
        code, _ = run(capsys, *SMALL_LOAD, "--monitor-dir", str(mon))
        assert code == 0
        return mon

    def test_once_renders_final_health(self, capsys, tmp_path):
        mon = self._monitor_dir(capsys, tmp_path)
        code, out = run(capsys, "monitor", str(mon), "--once")
        assert code == 0
        assert "service health" in out
        assert "queued-latency-p95" in out
        assert "OK" in out

    def test_once_json_to_stdout(self, capsys, tmp_path):
        mon = self._monitor_dir(capsys, tmp_path)
        code, out = run(capsys, "monitor", str(mon), "--once", "--json", "-")
        assert code == 0
        health = json.loads(out)
        assert health["schema"] == "repro.health/1"
        assert health["final"] is True

    def test_once_missing_dir_exits_2(self, capsys, tmp_path):
        code = main(["monitor", str(tmp_path / "nope"), "--once"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no health report" in captured.err

    def test_live_mode_exits_on_final_snapshot(self, capsys, tmp_path):
        mon = self._monitor_dir(capsys, tmp_path)
        code, out = run(
            capsys, "monitor", str(mon), "--interval", "0.01",
            "--max-updates", "3",
        )
        assert code == 0
        assert "final snapshot" in out

    def test_live_mode_gives_up_without_service(self, capsys, tmp_path):
        code = main([
            "monitor", str(tmp_path / "empty"), "--interval", "0.01",
            "--max-updates", "2",
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "no health report ever appeared" in captured.err


class TestLoadgenMonitoring:
    def test_loadgen_report_embeds_health(self, capsys, tmp_path):
        mon = tmp_path / "mon"
        out_path = tmp_path / "BENCH_serve.json"
        code, out = run(
            capsys, *SMALL_LOAD, "--monitor-dir", str(mon),
            "--json", str(out_path),
        )
        assert code == 0
        assert "service health" in out  # rendered in the CLI output
        report = json.loads(out_path.read_text())
        assert validate_bench_report(report, "repro.serve_bench/1") == []
        health = report["health"]
        assert health["final"] is True and health["ok"] is True
        assert (mon / "metrics.prom").exists()
        # The scrape is parseable and carries the serve counters.
        from repro.obs import parse_prometheus_text

        scraped = parse_prometheus_text((mon / "metrics.prom").read_text())
        assert scraped["counters"]["repro_serve_requests"] == 6.0


class TestServeMonitoring:
    def test_serve_once_flushes_monitor_dir(self, capsys, tmp_path):
        spool = str(tmp_path / "spool")
        mon = tmp_path / "mon"
        code, _ = run(
            capsys, "submit", spool, "--n", "600", "--d", "8",
            "--clusters", "4", "--k", "4", "--l", "3", "--a", "30",
            "--b", "5", "--id", "job-m", "--backend", "gpu-fast",
        )
        assert code == 0
        code, out = run(
            capsys, "serve", spool, "--once", "--monitor-dir", str(mon),
        )
        assert code == 0
        assert "monitor" in out
        health = json.loads((mon / "health.json").read_text())
        assert health["final"] is True
        assert health["service"]["counters"]["serve.requests"] >= 1
