"""Tests for the unified metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import pytest

from repro.hardware.counters import KernelLaunch, WorkCounter
from repro.hardware.cost_model import GpuModel
from repro.hardware.specs import GTX_1660_TI
from repro.obs import MetricsRegistry
from repro.result import RunStats


def _launch(name: str = "compute_l.distances") -> KernelLaunch:
    return KernelLaunch(
        name=name, phase="compute_l", grid_blocks=16, threads_per_block=256,
        flops=1e6, gmem_bytes=1e6,
    )


class TestInstruments:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("flops").inc(10)
        registry.counter("flops").inc(5)
        assert registry.counter("flops").value == 15
        assert len(registry) == 1

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("hit_rate").set(0.2)
        registry.gauge("hit_rate").set(0.9)
        assert registry.gauge("hit_rate").value == 0.9

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("seconds")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)

    def test_empty_histogram_as_dict(self):
        hist = MetricsRegistry().histogram("empty")
        assert hist.as_dict() == {
            "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "p50": 0.0, "p95": 0.0,
        }


class TestHistogramPercentiles:
    """Bucket-estimation edge cases: exact where exactness is possible."""

    def test_empty_histogram_percentile_is_zero(self):
        hist = MetricsRegistry().histogram("h")
        for q in (0, 50, 95, 100):
            assert hist.percentile(q) == 0.0

    def test_single_sample_is_exact_at_every_quantile(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(3.3)
        for q in (0, 1, 50, 95, 100):
            assert hist.percentile(q) == 3.3

    def test_all_equal_samples_are_exact(self):
        hist = MetricsRegistry().histogram("h")
        for _ in range(100):
            hist.observe(7.0)
        for q in (0, 50, 99, 100):
            assert hist.percentile(q) == 7.0

    def test_percentiles_clamped_to_observed_range(self):
        hist = MetricsRegistry().histogram("h")
        for value in (0.0011, 0.0012, 0.9, 1.7):
            hist.observe(value)
        for q in (0, 10, 50, 90, 100):
            assert 0.0011 <= hist.percentile(q) <= 1.7
        assert hist.percentile(100) == 1.7

    def test_percentiles_monotone_in_q(self):
        hist = MetricsRegistry().histogram("h")
        for value in (1e-6, 5e-5, 3e-4, 0.002, 0.002, 0.4, 12.0):
            hist.observe(value)
        values = [hist.percentile(q) for q in range(0, 101, 5)]
        assert values == sorted(values)

    def test_out_of_range_quantile_rejected(self):
        hist = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            hist.percentile(-1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_overflow_bucket_catches_values_above_all_bounds(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(1e6)  # far above the last default bound
        pairs = hist.bucket_pairs()
        assert pairs[-1] == (float("inf"), 1)
        assert all(count == 0 for _, count in pairs[:-1])
        assert hist.percentile(50) == 1e6  # clamped to max: still exact

    def test_bucket_pairs_are_cumulative_and_end_at_count(self):
        hist = MetricsRegistry().histogram("h")
        for value in (1e-6, 2e-6, 0.3, 0.9, 50.0, 1e9):
            hist.observe(value)
        pairs = hist.bucket_pairs()
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)  # cumulative
        assert pairs[-1][0] == float("inf")
        assert pairs[-1][1] == hist.count

    def test_as_dict_reports_p50_p95(self):
        hist = MetricsRegistry().histogram("h")
        for value in (1.0, 1.0, 1.0, 1.0):
            hist.observe(value)
        summary = hist.as_dict()
        assert summary["p50"] == 1.0
        assert summary["p95"] == 1.0


class TestAdapters:
    def test_absorb_work_counter(self):
        counter = WorkCounter()
        counter.add("cpu.flops", 100)
        counter.record_launch(_launch())
        registry = MetricsRegistry()
        registry.absorb_work_counter(counter)
        assert registry.counter("cpu.flops").value == 100
        assert registry.counter("kernel.compute_l.distances.launches").value == 1

    def test_absorb_phase_seconds(self):
        registry = MetricsRegistry()
        registry.absorb_phase_seconds({"compute_l": 0.5, "evaluate": 0.25})
        assert registry.counter("phase_seconds.compute_l").value == 0.5
        assert registry.counter("phase_seconds.evaluate").value == 0.25

    def test_absorb_run_stats_accumulates_across_runs(self):
        stats = RunStats(
            counters={"gpu.flops": 10.0},
            phase_seconds={"compute_l": 0.1},
            modeled_seconds=0.1,
            wall_seconds=0.2,
            iterations=7,
            backend="gpu-fast",
        )
        registry = MetricsRegistry()
        registry.absorb_run_stats(stats)
        registry.absorb_run_stats(stats)
        assert registry.counter("runs").value == 2
        assert registry.counter("iterations").value == 14
        assert registry.counter("gpu.flops").value == 20.0
        assert registry.histogram("run.modeled_seconds").count == 2

    def test_absorb_kernel_times_from_gpu_model(self):
        model = GpuModel(GTX_1660_TI)
        model.launch(_launch())
        model.launch(_launch())
        registry = MetricsRegistry()
        registry.absorb_kernel_times(model)
        hist = registry.histogram("kernel.compute_l.distances.seconds")
        assert hist.count == 2
        assert hist.total > 0

    def test_absorb_kernel_times_ignores_cpu_models(self):
        class NoLaunchTime:
            pass

        registry = MetricsRegistry()
        registry.absorb_kernel_times(NoLaunchTime())
        assert len(registry) == 0


class TestExport:
    def test_as_dict_is_json_serializable_and_sorted(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(1.0)
        snapshot = registry.as_dict()
        json.dumps(snapshot)
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["gauges"] == {"g": 0.5}
        assert snapshot["histograms"]["h"]["count"] == 1
