"""Tests for the unified metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import pytest

from repro.hardware.counters import KernelLaunch, WorkCounter
from repro.hardware.cost_model import GpuModel
from repro.hardware.specs import GTX_1660_TI
from repro.obs import MetricsRegistry
from repro.result import RunStats


def _launch(name: str = "compute_l.distances") -> KernelLaunch:
    return KernelLaunch(
        name=name, phase="compute_l", grid_blocks=16, threads_per_block=256,
        flops=1e6, gmem_bytes=1e6,
    )


class TestInstruments:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("flops").inc(10)
        registry.counter("flops").inc(5)
        assert registry.counter("flops").value == 15
        assert len(registry) == 1

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("hit_rate").set(0.2)
        registry.gauge("hit_rate").set(0.9)
        assert registry.gauge("hit_rate").value == 0.9

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("seconds")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)

    def test_empty_histogram_as_dict(self):
        hist = MetricsRegistry().histogram("empty")
        assert hist.as_dict() == {
            "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }


class TestAdapters:
    def test_absorb_work_counter(self):
        counter = WorkCounter()
        counter.add("cpu.flops", 100)
        counter.record_launch(_launch())
        registry = MetricsRegistry()
        registry.absorb_work_counter(counter)
        assert registry.counter("cpu.flops").value == 100
        assert registry.counter("kernel.compute_l.distances.launches").value == 1

    def test_absorb_phase_seconds(self):
        registry = MetricsRegistry()
        registry.absorb_phase_seconds({"compute_l": 0.5, "evaluate": 0.25})
        assert registry.counter("phase_seconds.compute_l").value == 0.5
        assert registry.counter("phase_seconds.evaluate").value == 0.25

    def test_absorb_run_stats_accumulates_across_runs(self):
        stats = RunStats(
            counters={"gpu.flops": 10.0},
            phase_seconds={"compute_l": 0.1},
            modeled_seconds=0.1,
            wall_seconds=0.2,
            iterations=7,
            backend="gpu-fast",
        )
        registry = MetricsRegistry()
        registry.absorb_run_stats(stats)
        registry.absorb_run_stats(stats)
        assert registry.counter("runs").value == 2
        assert registry.counter("iterations").value == 14
        assert registry.counter("gpu.flops").value == 20.0
        assert registry.histogram("run.modeled_seconds").count == 2

    def test_absorb_kernel_times_from_gpu_model(self):
        model = GpuModel(GTX_1660_TI)
        model.launch(_launch())
        model.launch(_launch())
        registry = MetricsRegistry()
        registry.absorb_kernel_times(model)
        hist = registry.histogram("kernel.compute_l.distances.seconds")
        assert hist.count == 2
        assert hist.total > 0

    def test_absorb_kernel_times_ignores_cpu_models(self):
        class NoLaunchTime:
            pass

        registry = MetricsRegistry()
        registry.absorb_kernel_times(NoLaunchTime())
        assert len(registry) == 0


class TestExport:
    def test_as_dict_is_json_serializable_and_sorted(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(1.0)
        snapshot = registry.as_dict()
        json.dumps(snapshot)
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["gauges"] == {"g": 0.5}
        assert snapshot["histograms"]["h"]["count"] == 1
