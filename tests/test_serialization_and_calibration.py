"""Tests for result persistence and the calibration solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro import proclus
from repro.core.serialization import load_result, save_result
from repro.exceptions import DataValidationError
from repro.hardware.calibration import Anchor, collect_op_counts, solve_rates
from repro.hardware.cost_model import ScalarCpuModel
from repro.hardware.specs import INTEL_I7_9750H
from repro.params import ProclusParams


@pytest.fixture(scope="module")
def result(request):
    from repro.data.normalize import minmax_normalize
    from repro.data.synthetic import generate_subspace_data

    ds = generate_subspace_data(n=800, d=8, n_clusters=3, subspace_dims=3, seed=0)
    data = minmax_normalize(ds.data)
    return proclus(data, params=ProclusParams(k=3, l=3, a=20, b=4),
                   backend="gpu-fast", seed=1)


class TestResultSerialization:
    def test_round_trip_clustering(self, result, tmp_path):
        path = save_result(result, tmp_path / "run.npz")
        loaded = load_result(path)
        assert loaded.same_clustering(result)
        assert loaded.cost == result.cost
        assert loaded.refined_cost == result.refined_cost
        assert loaded.iterations == result.iterations
        assert loaded.best_iteration == result.best_iteration

    def test_round_trip_stats(self, result, tmp_path):
        loaded = load_result(save_result(result, tmp_path / "r.npz"))
        assert loaded.stats.backend == result.stats.backend
        assert loaded.stats.hardware == result.stats.hardware
        assert loaded.stats.modeled_seconds == result.stats.modeled_seconds
        assert loaded.stats.counters == result.stats.counters
        assert loaded.stats.peak_device_bytes == result.stats.peak_device_bytes

    def test_extension_appended(self, result, tmp_path):
        path = save_result(result, tmp_path / "bare")
        assert path.suffix == ".npz"

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataValidationError, match="not found"):
            load_result(tmp_path / "nope.npz")

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, other=np.arange(3))
        with pytest.raises(
            DataValidationError, match="not a readable saved result"
        ):
            load_result(path)

    def test_truncated_archive_rejected(self, result, tmp_path):
        path = save_result(result, tmp_path / "t.npz")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(
            DataValidationError, match="not a readable saved result"
        ):
            load_result(path)

    def test_non_archive_bytes_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"\x00not a zip archive\x00")
        with pytest.raises(
            DataValidationError, match="not a readable saved result"
        ):
            load_result(path)

    def test_wrong_format_version_rejected(self, tmp_path):
        import json

        path = tmp_path / "v.npz"
        meta = json.dumps({"version": 99})
        np.savez(path, labels=np.zeros(3, dtype=np.int32),
                 medoids=np.zeros(1, dtype=np.int64), meta=np.array(meta))
        with pytest.raises(DataValidationError, match="format version"):
            load_result(path)

    def test_incomplete_metadata_rejected(self, tmp_path):
        import json

        path = tmp_path / "m.npz"
        meta = json.dumps({"version": 1, "dimensions": []})
        np.savez(path, labels=np.zeros(3, dtype=np.int32),
                 medoids=np.zeros(1, dtype=np.int64), meta=np.array(meta))
        with pytest.raises(
            DataValidationError, match="incomplete or malformed"
        ) as info:
            load_result(path)
        assert str(path) in str(info.value)

    def test_loaded_result_usable_for_prediction(self, result, tmp_path):
        from repro import assign_new_points
        from repro.data.normalize import minmax_normalize
        from repro.data.synthetic import generate_subspace_data

        ds = generate_subspace_data(n=800, d=8, n_clusters=3, subspace_dims=3, seed=0)
        data = minmax_normalize(ds.data)
        loaded = load_result(save_result(result, tmp_path / "p.npz"))
        labels = assign_new_points(loaded, data, data[:50])
        assert labels.shape == (50,)


class TestCalibration:
    ANCHOR_PARAMS = ProclusParams(k=3, l=3, a=15, b=3)

    def _modeled_seconds(self, spec, anchor):
        scalar, vector = collect_op_counts(anchor, spec)
        return scalar / spec.scalar_ops_per_s + vector / spec.vector_ops_per_s

    def test_single_anchor_exact_match(self):
        anchor = Anchor(n=600, d=8, seconds=0.5, params=self.ANCHOR_PARAMS)
        solved = solve_rates([anchor], INTEL_I7_9750H)
        spec = solved.apply_to(INTEL_I7_9750H)
        assert self._modeled_seconds(spec, anchor) == pytest.approx(0.5, rel=1e-9)
        # Ratio preserved.
        assert spec.vector_ops_per_s / spec.scalar_ops_per_s == pytest.approx(
            INTEL_I7_9750H.vector_ops_per_s / INTEL_I7_9750H.scalar_ops_per_s
        )

    def test_two_anchors_recover_planted_rates(self):
        """Generate anchor times from known rates; the solver recovers them."""
        import dataclasses

        truth = dataclasses.replace(
            INTEL_I7_9750H, scalar_ops_per_s=5e7, vector_ops_per_s=3e8
        )
        anchors = []
        for n, d in ((600, 8), (1500, 12)):
            probe = Anchor(n=n, d=d, seconds=1.0, params=self.ANCHOR_PARAMS)
            seconds = self._modeled_seconds(truth, probe)
            anchors.append(
                Anchor(n=n, d=d, seconds=seconds, params=self.ANCHOR_PARAMS)
            )
        solved = solve_rates(anchors, INTEL_I7_9750H)
        assert solved.scalar_ops_per_s == pytest.approx(5e7, rel=0.02)
        assert solved.vector_ops_per_s == pytest.approx(3e8, rel=0.02)
        assert solved.max_relative_error < 0.01

    def test_empty_anchors_rejected(self):
        with pytest.raises(ValueError):
            solve_rates([], INTEL_I7_9750H)

    def test_nonpositive_seconds_rejected(self):
        with pytest.raises(ValueError):
            solve_rates(
                [Anchor(n=600, d=8, seconds=0.0, params=self.ANCHOR_PARAMS)],
                INTEL_I7_9750H,
            )

    def test_counts_independent_of_rates(self):
        import dataclasses

        anchor = Anchor(n=600, d=8, seconds=1.0, params=self.ANCHOR_PARAMS)
        a = collect_op_counts(anchor, INTEL_I7_9750H)
        other = dataclasses.replace(
            INTEL_I7_9750H, scalar_ops_per_s=1e9, vector_ops_per_s=1e10
        )
        b = collect_op_counts(anchor, other)
        assert a == b
