"""Property tests for the stable dataset fingerprint (repro.data.fingerprint).

The fingerprint must identify the *clustering-relevant content* of an
array: anything :func:`repro.core.base.validate_data` canonicalizes to
the same float32 buffer must fingerprint the same, and any value or
shape difference must change the digest.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro import dataset_fingerprint
from repro.exceptions import DataValidationError

unit = st.floats(0.0, 1.0, width=32)


def matrices(min_n=2, max_n=20, min_d=1, max_d=6):
    return hnp.arrays(
        dtype=np.float32,
        shape=st.tuples(
            st.integers(min_n, max_n), st.integers(min_d, max_d)
        ),
        elements=unit,
    )


class TestCanonicalInvariance:
    @settings(max_examples=30, deadline=None)
    @given(matrices())
    def test_memory_order_invariant(self, data):
        fortran = np.asfortranarray(data)
        assert dataset_fingerprint(fortran) == dataset_fingerprint(data)

    @settings(max_examples=30, deadline=None)
    @given(matrices())
    def test_double_transpose_and_slice_copy(self, data):
        expected = dataset_fingerprint(data)
        assert dataset_fingerprint(data.T.T) == expected
        padded = np.concatenate([data, np.ones_like(data)], axis=0)
        assert dataset_fingerprint(padded[: data.shape[0]]) == expected

    @settings(max_examples=30, deadline=None)
    @given(matrices())
    def test_dtype_widening_is_invariant(self, data):
        assert dataset_fingerprint(data.astype(np.float64)) == (
            dataset_fingerprint(data)
        )

    def test_integer_data_matches_float32_form(self):
        ints = np.arange(24, dtype=np.int64).reshape(6, 4)
        assert dataset_fingerprint(ints) == dataset_fingerprint(
            ints.astype(np.float32)
        )


class TestSensitivity:
    @settings(max_examples=30, deadline=None)
    @given(matrices(min_n=2), st.data())
    def test_any_value_change_changes_digest(self, data, draw):
        row = draw.draw(st.integers(0, data.shape[0] - 1))
        col = draw.draw(st.integers(0, data.shape[1] - 1))
        mutated = data.copy()
        mutated[row, col] = mutated[row, col] + 1.0
        assert dataset_fingerprint(mutated) != dataset_fingerprint(data)

    def test_shape_is_part_of_the_digest(self):
        flat = np.arange(12, dtype=np.float32)
        assert dataset_fingerprint(flat.reshape(3, 4)) != (
            dataset_fingerprint(flat.reshape(4, 3))
        )
        assert dataset_fingerprint(flat.reshape(3, 4)) != (
            dataset_fingerprint(flat)
        )

    def test_digest_is_stable_hex(self):
        data = np.zeros((4, 2), dtype=np.float32)
        digest = dataset_fingerprint(data)
        assert digest == dataset_fingerprint(data.copy())
        assert len(digest) == 64
        int(digest, 16)

    def test_non_numeric_rejected(self):
        with pytest.raises(DataValidationError):
            dataset_fingerprint(np.array([["a", "b"]]))


class TestConsumers:
    def test_checkpoint_uses_the_same_fingerprint(self):
        from repro.resilience.checkpoint import data_fingerprint

        assert data_fingerprint is dataset_fingerprint

    def test_serve_registry_keys_by_fingerprint(self):
        from repro.serve import DatasetRegistry

        registry = DatasetRegistry()
        data = np.random.default_rng(0).random((30, 4)).astype(np.float32)
        fingerprint = registry.register(data)
        assert fingerprint == dataset_fingerprint(data)
        assert registry.register(np.asfortranarray(data)) == fingerprint
        assert len(registry) == 1
        assert np.array_equal(registry.get(fingerprint), data)
