"""Integration at the paper's default workload scale (n = 64,000).

Slower than unit tests (a few seconds each) but exactly the regime the
paper's default experiments run in — the numbers here are the ones the
abstract summarizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import proclus
from repro.data.normalize import minmax_normalize
from repro.data.synthetic import generate_subspace_data
from repro.params import ProclusParams


@pytest.fixture(scope="module")
def paper_default():
    """The paper's default synthetic workload."""
    ds = generate_subspace_data(n=64_000, d=15, n_clusters=10,
                                subspace_dims=5, std=5.0, seed=0)
    return minmax_normalize(ds.data), ds


class TestPaperDefaultWorkload:
    @pytest.fixture(scope="class")
    def runs(self, paper_default):
        data, _ = paper_default
        return {
            name: proclus(data, k=10, l=5, backend=name, seed=0)
            for name in ("proclus", "fast", "gpu", "gpu-fast")
        }

    def test_identical_at_scale(self, runs):
        base = runs["proclus"]
        for name, r in runs.items():
            assert r.same_clustering(base), name

    def test_gpu_speedup_in_paper_band(self, runs):
        speedup = (
            runs["proclus"].stats.modeled_seconds
            / runs["gpu"].stats.modeled_seconds
        )
        # Paper: three orders of magnitude overall, ~2000x peak for the
        # parallelization alone; our model sits inside [500, 2500] here.
        assert 500 <= speedup <= 2500, f"gpu speedup {speedup:.0f}x"

    def test_fast_speedup_in_paper_band(self, runs):
        ratio = (
            runs["proclus"].stats.modeled_seconds
            / runs["fast"].stats.modeled_seconds
        )
        assert 1.1 <= ratio <= 1.6, f"fast ratio {ratio:.2f}"

    def test_gpu_fast_ratio_in_paper_band(self, runs):
        ratio = (
            runs["gpu"].stats.modeled_seconds
            / runs["gpu-fast"].stats.modeled_seconds
        )
        assert 1.15 <= ratio <= 1.6, f"gpu-fast ratio {ratio:.2f}"

    def test_gpu_run_is_milliseconds(self, runs):
        assert runs["gpu-fast"].stats.modeled_seconds < 0.05

    def test_quality_at_scale(self, paper_default, runs):
        from repro.eval.metrics import adjusted_rand_index

        _, ds = paper_default
        ari = adjusted_rand_index(ds.labels, runs["gpu-fast"].labels)
        assert ari > 0.5  # single seed; the planted k=10 structure shows

    def test_fast_cache_hit_rate_at_scale(self, paper_default):
        """Most iterations reuse cached rows: far fewer distance rows
        are computed than k x iterations."""
        from repro.core.fast import FastProclusEngine

        data, _ = paper_default
        engine = FastProclusEngine(params=ProclusParams(), seed=0)
        result = engine.fit(data)
        rows_computed = int(engine._cache.dist_found.sum())
        assert rows_computed < 10 * result.iterations
        assert rows_computed <= 100  # at most the B*k pool
