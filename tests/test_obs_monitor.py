"""Tests for SLO tracking and the on-disk service monitor."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    ServiceMonitor,
    SloObjective,
    SloTracker,
    default_slos,
    load_health,
    parse_prometheus_text,
    validate_bench_report,
)
from repro.obs.monitor import HEALTH_SCHEMA, read_monitor_events
from repro.serve.events import ServeEvent


def _event(kind: str, ts: float, job_id: int = 1, **kwargs) -> ServeEvent:
    return ServeEvent(ts=ts, kind=kind, job_id=job_id, **kwargs)


class TestSloObjective:
    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="op must be"):
            SloObjective(name="x", metric="m", op="<", threshold=1.0)

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError, match="window_seconds"):
            SloObjective(
                name="x", metric="m", op="<=", threshold=1.0,
                window_seconds=0.0,
            )

    def test_le_and_eq_semantics(self):
        budget = SloObjective(name="b", metric="m", op="<=", threshold=0.1)
        assert budget.met(0.1) and budget.met(0.0) and not budget.met(0.2)
        hard = SloObjective(name="h", metric="m", op="==", threshold=0.0)
        assert hard.met(0.0) and not hard.met(1.0)

    def test_default_slos_cover_the_objectives(self):
        names = {obj.name for obj in default_slos()}
        assert names == {
            "queued-latency-p95", "rejection-rate",
            "determinism-violations", "error-budget-burn",
            "fleet-mttr", "fleet-availability",
        }

    def test_ge_semantics(self):
        floor = SloObjective(name="f", metric="m", op=">=", threshold=0.5)
        assert floor.met(0.5) and floor.met(1.0) and not floor.met(0.4)


class TestSloTracker:
    def test_queued_latency_from_submit_to_start(self):
        tracker = SloTracker()
        tracker.observe(_event("submit", ts=1.0, job_id=7))
        tracker.observe(_event("start", ts=1.4, job_id=7))
        value = tracker.metric_value(
            "queued_latency_p95_seconds", window=60.0, now=2.0
        )
        assert value == pytest.approx(0.4)

    def test_cache_hit_counts_as_zero_wait(self):
        tracker = SloTracker()
        tracker.observe(_event("submit", ts=1.0, job_id=7))
        tracker.observe(_event("cache_hit", ts=1.0, job_id=7))
        value = tracker.metric_value(
            "queued_latency_p95_seconds", window=60.0, now=2.0
        )
        assert value == 0.0

    def test_rejection_rate(self):
        tracker = SloTracker()
        for job_id in range(4):
            tracker.observe(_event("submit", ts=1.0, job_id=job_id))
        tracker.observe(_event("reject", ts=1.1, job_id=3, detail="shed"))
        rate = tracker.metric_value("rejection_rate", window=60.0, now=2.0)
        assert rate == pytest.approx(0.25)

    def test_rate_metrics_respect_the_window(self):
        tracker = SloTracker()
        tracker.observe(_event("submit", ts=1.0, job_id=1))
        tracker.observe(_event("reject", ts=1.0, job_id=1))
        tracker.observe(_event("submit", ts=100.0, job_id=2))
        tracker.observe(_event("start", ts=100.0, job_id=2))
        # At t=100 with a 10 s window the early rejection is gone.
        rate = tracker.metric_value("rejection_rate", window=10.0, now=100.0)
        assert rate == 0.0

    def test_error_budget_burn(self):
        tracker = SloTracker(error_budget=0.1)
        for ts, ok in ((1.0, True), (2.0, True), (3.0, True), (4.0, False)):
            tracker.observe(_event("complete" if ok else "fail", ts=ts))
        burn = tracker.metric_value("error_budget_burn", window=60.0, now=5.0)
        assert burn == pytest.approx(0.25 / 0.1)

    def test_violations_are_window_independent(self):
        tracker = SloTracker()
        tracker.record_violations(2)
        value = tracker.metric_value(
            "determinism_violations", window=1.0, now=1e9
        )
        assert value == 2.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO metric"):
            SloTracker().metric_value("nope", window=1.0, now=0.0)

    def test_invalid_error_budget_rejected(self):
        with pytest.raises(ValueError, match="error_budget"):
            SloTracker(error_budget=0.0)

    def test_evaluate_defaults_to_last_event_ts(self):
        tracker = SloTracker()
        tracker.observe(_event("submit", ts=5.5, job_id=1))
        tracker.observe(_event("start", ts=5.5, job_id=1))
        report = tracker.evaluate()
        assert report.now == 5.5
        assert report.ok

    def test_evaluate_fails_on_violation(self):
        tracker = SloTracker()
        tracker.record_violations()
        report = tracker.evaluate(now=1.0)
        assert not report.ok
        by_name = {r.objective.name: r for r in report.results}
        assert not by_name["determinism-violations"].ok
        assert by_name["determinism-violations"].value == 1.0

    def test_report_as_dict_is_json_serializable(self):
        tracker = SloTracker()
        tracker.observe(_event("submit", ts=1.0))
        payload = tracker.evaluate(now=1.0).as_dict()
        json.dumps(payload)
        assert payload["ok"] is True
        assert len(payload["slos"]) == 6


class TestServiceMonitor:
    def _drive(self, monitor: ServiceMonitor) -> None:
        monitor.on_event(_event("submit", ts=0.1, job_id=1))
        monitor.on_event(_event("start", ts=0.2, job_id=1))
        monitor.on_event(_event("complete", ts=0.5, job_id=1))

    def test_writes_all_four_files(self, tmp_path):
        monitor = ServiceMonitor(tmp_path / "mon")
        self._drive(monitor)
        monitor.flush(now=1.0)
        names = {path.name for path in (tmp_path / "mon").iterdir()}
        assert {"events.jsonl", "snapshots.jsonl", "metrics.prom",
                "health.json"} <= names

    def test_event_log_carries_trace_and_span_ids(self, tmp_path):
        monitor = ServiceMonitor(tmp_path)
        monitor.on_event(_event("submit", ts=0.1, job_id=1, span_id=42))
        records = read_monitor_events(tmp_path)
        assert len(records) == 1
        assert records[0]["schema"] == "repro.monitor_event/1"
        assert records[0]["trace_id"] == monitor.trace_id
        assert records[0]["span_id"] == 42
        assert records[0]["kind"] == "submit"

    def test_health_report_envelope_and_content(self, tmp_path):
        monitor = ServiceMonitor(tmp_path)
        self._drive(monitor)
        report = monitor.flush(now=1.0)
        assert report["schema"] == HEALTH_SCHEMA
        assert validate_bench_report(report, HEALTH_SCHEMA) == []
        assert report["final"] is True
        assert report["ok"] is True
        assert report["events"] == 3
        assert len(report["slos"]) == 6
        assert report == load_health(tmp_path)

    def test_violations_flip_health_to_failing(self, tmp_path):
        monitor = ServiceMonitor(tmp_path)
        self._drive(monitor)
        monitor.record_violations(2)
        report = monitor.flush(now=1.0)
        assert report["ok"] is False
        value = monitor.metrics.counter("serve.determinism.violations").value
        assert value == 2

    def test_scrape_file_parses_and_reflects_registry(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(5)
        monitor = ServiceMonitor(tmp_path, metrics=registry)
        monitor.flush(now=0.0)
        scraped = parse_prometheus_text(
            (tmp_path / "metrics.prom").read_text()
        )
        assert scraped["counters"]["repro_serve_requests"] == 5.0

    def test_snapshot_throttling(self, tmp_path):
        monitor = ServiceMonitor(tmp_path, snapshot_every=10.0)
        assert monitor.maybe_snapshot(0.0) is True
        assert monitor.maybe_snapshot(5.0) is False
        assert monitor.maybe_snapshot(10.0) is True

    def test_health_only_surfaces_serve_counters(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(1)
        registry.counter("gpu.flops").inc(1e9)
        monitor = ServiceMonitor(tmp_path, metrics=registry)
        report = monitor.flush(now=0.0)
        assert "serve.requests" in report["service"]["counters"]
        assert "gpu.flops" not in report["service"]["counters"]

    def test_init_truncates_previous_lifetime_logs(self, tmp_path):
        first = ServiceMonitor(tmp_path)
        first.on_event(_event("submit", ts=0.1))
        ServiceMonitor(tmp_path)
        assert read_monitor_events(tmp_path) == []

    def test_custom_objectives(self, tmp_path):
        strict = (
            SloObjective(
                name="no-queueing", metric="queued_latency_p95_seconds",
                op="<=", threshold=0.0,
            ),
        )
        monitor = ServiceMonitor(tmp_path, objectives=strict)
        monitor.on_event(_event("submit", ts=1.0, job_id=1))
        monitor.on_event(_event("start", ts=1.5, job_id=1))
        report = monitor.flush()
        assert report["ok"] is False
        assert [slo["name"] for slo in report["slos"]] == ["no-queueing"]


class TestReaderSide:
    def test_load_health_missing_raises_with_hint(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no health report"):
            load_health(tmp_path)

    def test_read_monitor_events_missing_dir(self, tmp_path):
        assert read_monitor_events(tmp_path / "nope") == []


class TestServiceIntegration:
    """ClusterService wired to a monitor directory."""

    def _run_service(self, tmp_path, violations: int = 0):
        import numpy as np

        from repro.serve import ClusterService

        rng = np.random.default_rng(0)
        data = rng.normal(size=(400, 6))
        service = ClusterService(monitor_dir=tmp_path / "mon")
        handle = service.submit(data, backend="gpu-fast", k=3, l=3, seed=0)
        handle.result(timeout=60)
        service.drain()
        if violations:
            service.record_violations(violations)
        return service, service.shutdown()

    def test_shutdown_flushes_final_health(self, tmp_path):
        service, health = self._run_service(tmp_path)
        assert health is not None and health["final"] is True
        assert health == load_health(tmp_path / "mon")
        assert health["ok"] is True
        assert health["service"]["counters"]["serve.requests"] >= 1

    def test_events_logged_with_span_ids(self, tmp_path):
        self._run_service(tmp_path)
        records = read_monitor_events(tmp_path / "mon")
        kinds = [record["kind"] for record in records]
        assert "submit" in kinds and "complete" in kinds
        assert all(record["span_id"] is not None for record in records)
        assert len({record["trace_id"] for record in records}) == 1

    def test_recorded_violations_reach_the_health_report(self, tmp_path):
        _, health = self._run_service(tmp_path, violations=3)
        assert health["ok"] is False
        by_name = {slo["name"]: slo for slo in health["slos"]}
        assert by_name["determinism-violations"]["value"] == 3.0

    def test_service_without_monitor_dir_shutdown_returns_none(self):
        import numpy as np

        from repro.serve import ClusterService

        rng = np.random.default_rng(0)
        data = rng.normal(size=(200, 5))
        service = ClusterService()
        handle = service.submit(data, backend="gpu-fast", k=3, l=3, seed=0)
        handle.result(timeout=60)
        assert service.shutdown() is None


class TestLogRotation:
    def _flood(self, monitor: ServiceMonitor, count: int) -> None:
        for index in range(count):
            monitor.on_event(_event("submit", ts=float(index), job_id=index))

    def test_long_run_keeps_directory_under_the_cap(self, tmp_path):
        cap = 8192
        monitor = ServiceMonitor(
            tmp_path, max_log_bytes=cap, log_segments=4, snapshot_every=1e9
        )
        self._flood(monitor, 2000)
        total = sum(
            path.stat().st_size for path in tmp_path.glob("events.jsonl*")
        )
        # Each segment may overshoot its budget by at most one record.
        longest = max(
            len(line) + 1
            for path in tmp_path.glob("events.jsonl*")
            for line in path.read_text().splitlines()
        )
        assert total <= cap + 4 * longest
        assert list(tmp_path.glob("events.jsonl.*"))  # rotation happened

    def test_read_monitor_events_spans_rotated_segments(self, tmp_path):
        monitor = ServiceMonitor(
            tmp_path, max_log_bytes=4096, log_segments=4, snapshot_every=1e9
        )
        self._flood(monitor, 300)
        assert list(tmp_path.glob("events.jsonl.*"))
        ids = [record["job_id"] for record in read_monitor_events(tmp_path)]
        # Oldest-first across segments, newest record present, and the
        # kept window is a contiguous tail of the stream.
        assert ids and ids[-1] == 299
        assert ids == list(range(ids[0], 300))

    def test_snapshots_rotate_too(self, tmp_path):
        monitor = ServiceMonitor(
            tmp_path, max_log_bytes=2048, log_segments=2, snapshot_every=0.0
        )
        for index in range(100):
            monitor.snapshot(now=float(index))
        total = sum(
            path.stat().st_size for path in tmp_path.glob("snapshots.jsonl*")
        )
        longest = max(
            len(line) + 1
            for path in tmp_path.glob("snapshots.jsonl*")
            for line in path.read_text().splitlines()
        )
        assert total <= 2048 + 2 * longest

    def test_single_segment_rotation_truncates_in_place(self, tmp_path):
        monitor = ServiceMonitor(
            tmp_path, max_log_bytes=1024, log_segments=1, snapshot_every=1e9
        )
        self._flood(monitor, 200)
        assert list(tmp_path.glob("events.jsonl.*")) == []
        assert (tmp_path / "events.jsonl").stat().st_size <= 1024 + 256

    def test_init_unlinks_rotated_segments_from_previous_lifetime(
        self, tmp_path
    ):
        monitor = ServiceMonitor(
            tmp_path, max_log_bytes=2048, log_segments=3, snapshot_every=1e9
        )
        self._flood(monitor, 200)
        assert list(tmp_path.glob("events.jsonl.*"))
        ServiceMonitor(tmp_path)
        assert list(tmp_path.glob("events.jsonl.*")) == []
        assert read_monitor_events(tmp_path) == []

    def test_rejects_bad_rotation_config(self, tmp_path):
        with pytest.raises(ValueError, match="max_log_bytes"):
            ServiceMonitor(tmp_path, max_log_bytes=0)
        with pytest.raises(ValueError, match="log_segments"):
            ServiceMonitor(tmp_path, log_segments=0)


class TestUnhealthyHook:
    def test_hook_fires_on_failing_report_outside_the_lock(self, tmp_path):
        monitor = ServiceMonitor(tmp_path, snapshot_every=0.0)
        seen = []
        monitor.on_unhealthy = seen.append
        monitor.record_violations(1)
        monitor.snapshot(now=1.0)
        assert len(seen) == 1 and seen[0]["ok"] is False
        # A hook that itself snapshots must not deadlock.
        monitor.on_unhealthy = lambda report: monitor.snapshot(now=2.0)

    def test_hook_not_called_while_healthy(self, tmp_path):
        monitor = ServiceMonitor(tmp_path, snapshot_every=0.0)
        monitor.on_unhealthy = lambda report: (_ for _ in ()).throw(
            AssertionError("must not fire")
        )
        monitor.on_event(_event("submit", ts=0.1))
        monitor.on_event(_event("start", ts=0.2))
        monitor.snapshot(now=1.0)

    def test_hook_exceptions_are_swallowed(self, tmp_path):
        monitor = ServiceMonitor(tmp_path, snapshot_every=0.0)

        def explode(report):
            raise RuntimeError("hook bug")

        monitor.on_unhealthy = explode
        monitor.record_violations(1)
        report = monitor.snapshot(now=1.0)
        assert report["ok"] is False  # snapshot survived the hook bug
