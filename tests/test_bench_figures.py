"""Structural tests for the figure experiment functions.

The full sweeps run in the benchmark suite; here the workload module is
monkeypatched down to tiny sizes so every experiment function's
*structure* (rows, columns, key numbers, paper references) is exercised
inside the unit-test budget.
"""

from __future__ import annotations

import pytest

from repro.bench import figures, workloads


@pytest.fixture(autouse=True)
def tiny_scales(monkeypatch):
    monkeypatch.setattr(workloads, "default_n", lambda: 1_024)
    monkeypatch.setattr(workloads, "repeats", lambda: 1)
    monkeypatch.setattr(workloads, "n_sweep", lambda: [512, 1_024])
    monkeypatch.setattr(workloads, "multiparam_n_sweep", lambda: [2_048])
    monkeypatch.setattr(workloads, "d_sweep", lambda: [6, 10])
    monkeypatch.setattr(workloads, "data_cluster_sweep", lambda: [2, 4])
    monkeypatch.setattr(workloads, "stddev_sweep", lambda: [2.0, 8.0])
    monkeypatch.setattr(workloads, "realworld_names", lambda: ["glass"])


class TestFigureStructure:
    def test_fig1_rows_per_size(self):
        report = figures.fig1_strategy_speedup()
        assert report.experiment_id == "fig1"
        assert len(report.rows) == 2
        assert "gpu_fast_vs_gpu" in report.key_numbers

    def test_fig2ab_all_variants_and_series(self):
        report = figures.fig2ab_scale_n()
        assert len(report.rows) == 2
        assert len(report.columns) == len(figures.ALL_VARIANTS) + 2
        assert "max_speedup" in report.key_numbers
        assert "proclus" in report.series and "gpu-fast" in report.series

    def test_fig2cd_rows_per_dimension(self):
        report = figures.fig2cd_scale_d()
        assert [row[0] for row in report.rows] == [6, 10]

    def test_fig2e_rows_per_cluster_count(self):
        report = figures.fig2e_data_clusters()
        assert [row[0] for row in report.rows] == [2, 4]

    def test_fig2f_rows_per_std(self):
        report = figures.fig2f_stddev()
        assert [row[0] for row in report.rows] == [2.0, 8.0]

    def test_fig2gk_covers_all_five_parameters(self):
        report = figures.fig2gk_params()
        figures_seen = {row[0] for row in report.rows}
        assert figures_seen == {"fig2g", "fig2h", "fig2i", "fig2j", "fig2k"}

    def test_fig3ae_includes_footprint_note(self):
        report = figures.fig3ae_multiparam_scale()
        assert "gpu_fast_bytes_at_8M" in report.key_numbers
        assert "out of memory" in report.paper_reference
        assert "gpu-fast mp3" in report.series

    def test_fig3f_ratio_column(self):
        report = figures.fig3f_space()
        assert report.key_numbers["fast_over_fast_star"] > 1.5

    def test_fig3g_runs_on_standins(self):
        report = figures.fig3g_realworld()
        assert [row[0] for row in report.rows] == ["glass"]
        assert "best_realworld_speedup" in report.key_numbers

    def test_sec53_four_levels(self):
        report = figures.sec53_multiparam_levels()
        assert [row[0] for row in report.rows] == [0, 1, 2, 3]
        assert report.key_numbers["level0_speedup"] == 1.0

    def test_ablation_columns(self):
        report = figures.ablation_strategies()
        assert len(report.rows) == 2
        assert "dist-cache only" in report.columns

    def test_every_report_renders(self):
        for fn in (
            figures.fig1_strategy_speedup,
            figures.fig3f_space,
            figures.sec54_utilization,
        ):
            report = fn()
            text = report.render()
            assert report.experiment_id in text
            assert "paper:" in text
