"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ConvergenceError,
    DataValidationError,
    DeviceError,
    DeviceOutOfMemoryError,
    EmulationError,
    KernelLaunchError,
    ParameterError,
    ReproError,
)


@pytest.mark.parametrize(
    "exc",
    [
        ParameterError,
        DataValidationError,
        DeviceError,
        DeviceOutOfMemoryError,
        KernelLaunchError,
        EmulationError,
        ConvergenceError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_parameter_error_is_value_error():
    assert issubclass(ParameterError, ValueError)


def test_data_validation_error_is_value_error():
    assert issubclass(DataValidationError, ValueError)


def test_device_errors_are_runtime_errors():
    assert issubclass(DeviceError, RuntimeError)
    assert issubclass(DeviceOutOfMemoryError, DeviceError)
    assert issubclass(KernelLaunchError, DeviceError)


def test_oom_carries_sizes():
    err = DeviceOutOfMemoryError(requested=100, free=10, total=50)
    assert err.requested == 100
    assert err.free == 10
    assert err.total == 50
    assert "100" in str(err) and "50" in str(err)
