"""Tests for the full-dimensional baselines (CLARANS, k-means)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import clarans, kmeans
from repro.data.normalize import minmax_normalize
from repro.data.synthetic import generate_subspace_data
from repro.eval.metrics import adjusted_rand_index
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def fulldim_blobs():
    """Well-separated full-dimensional blobs (easy for both baselines)."""
    rng = np.random.default_rng(0)
    centers = np.array([[0.2] * 5, [0.8] * 5, [0.2, 0.8, 0.2, 0.8, 0.2]])
    data = np.vstack(
        [rng.normal(c, 0.03, size=(150, 5)) for c in centers]
    ).astype(np.float32)
    labels = np.repeat([0, 1, 2], 150)
    order = rng.permutation(len(data))
    return np.clip(data[order], 0, 1), labels[order]


class TestClarans:
    def test_recovers_separated_blobs(self, fulldim_blobs):
        data, truth = fulldim_blobs
        result = clarans(data, k=3, num_local=2, max_neighbor=200, seed=0)
        assert adjusted_rand_index(truth, result.labels) > 0.95

    def test_result_shape(self, fulldim_blobs):
        data, _ = fulldim_blobs
        result = clarans(data, k=3, seed=0)
        assert result.k == 3
        assert result.labels.shape == (data.shape[0],)
        assert len(np.unique(result.medoids)) == 3
        assert result.cost > 0
        assert result.nodes_examined > 0

    def test_deterministic(self, fulldim_blobs):
        data, _ = fulldim_blobs
        a = clarans(data, k=3, max_neighbor=100, seed=7)
        b = clarans(data, k=3, max_neighbor=100, seed=7)
        assert np.array_equal(a.labels, b.labels)
        assert a.cost == b.cost

    def test_labels_point_to_nearest_medoid(self, fulldim_blobs):
        data, _ = fulldim_blobs
        result = clarans(data, k=3, max_neighbor=100, seed=0)
        for i, mid in enumerate(result.medoids):
            assert result.labels[mid] == i

    def test_more_restarts_never_worse(self, fulldim_blobs):
        data, _ = fulldim_blobs
        one = clarans(data, k=3, num_local=1, max_neighbor=50, seed=3)
        many = clarans(data, k=3, num_local=4, max_neighbor=50, seed=3)
        assert many.cost <= one.cost

    @pytest.mark.parametrize("kwargs", [
        {"k": 0}, {"k": 10_000}, {"num_local": 0}, {"max_neighbor": 0},
    ])
    def test_validation(self, fulldim_blobs, kwargs):
        data, _ = fulldim_blobs
        base = dict(k=3, seed=0)
        base.update(kwargs)
        with pytest.raises(ParameterError):
            clarans(data, **base)


class TestKMeans:
    def test_recovers_separated_blobs(self, fulldim_blobs):
        data, truth = fulldim_blobs
        result = kmeans(data, k=3, seed=0)
        assert adjusted_rand_index(truth, result.labels) > 0.95

    def test_inertia_decreases_with_more_clusters(self, fulldim_blobs):
        data, _ = fulldim_blobs
        i2 = kmeans(data, k=2, seed=0).inertia
        i6 = kmeans(data, k=6, seed=0).inertia
        assert i6 < i2

    def test_centroid_is_cluster_mean(self, fulldim_blobs):
        data, _ = fulldim_blobs
        result = kmeans(data, k=3, seed=0)
        for i in range(3):
            members = data[result.labels == i]
            assert np.allclose(result.centroids[i], members.mean(axis=0), atol=1e-5)

    def test_deterministic(self, fulldim_blobs):
        data, _ = fulldim_blobs
        a = kmeans(data, k=3, seed=5)
        b = kmeans(data, k=3, seed=5)
        assert np.array_equal(a.labels, b.labels)

    def test_k_equals_n_degenerate(self):
        data = np.random.default_rng(0).random((10, 3)).astype(np.float32)
        result = kmeans(data, k=10, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_duplicate_points_handled(self):
        data = np.zeros((20, 3), dtype=np.float32)
        result = kmeans(data, k=3, seed=0)
        assert result.inertia == pytest.approx(0.0)

    @pytest.mark.parametrize("kwargs", [{"k": 0}, {"max_iterations": 0}])
    def test_validation(self, fulldim_blobs, kwargs):
        data, _ = fulldim_blobs
        base = dict(k=3, seed=0)
        base.update(kwargs)
        with pytest.raises(ParameterError):
            kmeans(data, **base)


class TestMotivatingClaim:
    """The paper's premise: full-dim methods fail on subspace clusters."""

    def test_proclus_beats_fulldim_on_subspace_data(self):
        from repro import proclus
        from repro.params import ProclusParams

        ds = generate_subspace_data(
            n=2000, d=30, n_clusters=4, subspace_dims=4, std=2.0, seed=13
        )
        data = minmax_normalize(ds.data)
        km_ari = adjusted_rand_index(
            ds.labels, kmeans(data, k=4, seed=0).labels
        )
        params = ProclusParams(k=4, l=4, a=40, b=6)
        pr = min(
            (proclus(data, backend="fast", params=params, seed=s)
             for s in range(4)),
            key=lambda r: r.cost,
        )
        pr_ari = adjusted_rand_index(ds.labels, pr.labels)
        assert pr_ari > km_ari + 0.3
