"""Tests for the structured paper-number registry."""

from __future__ import annotations

import pytest

from repro.bench.paper_data import (
    DEFAULT_PARAMETERS,
    DEFAULT_SYNTHETIC,
    HARDWARE,
    PAPER_NUMBERS,
    REAL_WORLD_DATASETS,
    lookup,
)
from repro.data.realworld import REAL_WORLD_SIZES
from repro.params import ProclusParams


def test_default_parameters_match_library_defaults():
    p = ProclusParams()
    assert DEFAULT_PARAMETERS == {
        "k": p.k, "l": p.l, "A": p.a, "B": p.b,
        "minDev": p.min_deviation, "itrPat": p.patience,
    }


def test_real_world_sizes_consistent_with_standins():
    assert REAL_WORLD_DATASETS == REAL_WORLD_SIZES


def test_default_synthetic_matches_generator_defaults():
    from inspect import signature

    from repro.data.synthetic import generate_subspace_data

    params = signature(generate_subspace_data).parameters
    assert params["n"].default == DEFAULT_SYNTHETIC["n"]
    assert params["d"].default == DEFAULT_SYNTHETIC["d"]
    assert params["n_clusters"].default == DEFAULT_SYNTHETIC["clusters"]
    assert params["subspace_dims"].default == DEFAULT_SYNTHETIC["subspace_dims"]
    assert params["std"].default == DEFAULT_SYNTHETIC["std"]


def test_hardware_matches_spec_names():
    from repro.hardware.specs import GTX_1660_TI, INTEL_I7_9750H, RTX_3090

    assert INTEL_I7_9750H.name in HARDWARE["small"][0]
    assert GTX_1660_TI.name.replace("GeForce ", "") in HARDWARE["small"][1]
    assert RTX_3090.name.replace("GeForce ", "") in HARDWARE["large"][1]


def test_every_number_has_provenance():
    for number in PAPER_NUMBERS:
        assert number.source
        assert number.quote
        assert number.unit


def test_keys_unique_and_lookup_works():
    keys = [n.key for n in PAPER_NUMBERS]
    assert len(keys) == len(set(keys))
    assert lookup("overall-speedup").value == 1000.0


def test_unknown_key_lists_alternatives():
    with pytest.raises(KeyError, match="overall-speedup"):
        lookup("nope")


def test_occupancy_numbers_match_calculator():
    """The transcribed Sec. 5.4 occupancies agree with our calculator."""
    from repro.gpu.occupancy import occupancy_report
    from repro.hardware.specs import GTX_1660_TI

    theo, achieved, _ = lookup("evaluate-occupancy-4m").value
    occ = occupancy_report(GTX_1660_TI, 50, 1024).as_percentages()
    assert occ[0] == theo
    theo8k, _, _ = lookup("evaluate-occupancy-8k").value
    assert occupancy_report(GTX_1660_TI, 50, 800).as_percentages()[0] == theo8k


def test_oom_free_memory_matches_spec_reserve():
    from repro.hardware.specs import GTX_1660_TI

    free_gb = GTX_1660_TI.usable_bytes / 1024**3
    assert free_gb == pytest.approx(lookup("oom-free-memory").value, abs=0.01)
