"""Edge-case tests for the kernel profiler and the stream planner."""

from __future__ import annotations

import pytest

from repro.gpu.profiler import (
    KernelProfile,
    format_kernel_profile,
    kernel_profile_records,
    profile_kernels,
)
from repro.gpu.streams import overlap_analysis
from repro.hardware.counters import KernelLaunch
from repro.hardware.cost_model import GpuModel
from repro.hardware.specs import GTX_1660_TI


def _launch(name="k", blocks=4, threads=128, flops=0.0, gmem=0.0):
    return KernelLaunch(
        name=name, phase="compute_l", grid_blocks=blocks,
        threads_per_block=threads, flops=flops, gmem_bytes=gmem,
    )


class TestProfilerEdgeCases:
    def test_empty_launch_list(self):
        model = GpuModel(GTX_1660_TI)
        profiles = profile_kernels(model)
        assert profiles == []
        assert format_kernel_profile(profiles) == "(no kernel launches recorded)"
        assert kernel_profile_records(profiles) == []

    def test_zero_work_launch_is_launch_bound(self):
        model = GpuModel(GTX_1660_TI)
        model.launch(_launch(flops=0.0, gmem=0.0))
        (profile,) = profile_kernels(model)
        assert profile.bound_by == "launch"
        assert profile.total_seconds > 0  # launch overhead still accrues

    def test_zero_duration_profile_formats(self):
        """A synthetic zero-time profile must not divide by zero."""
        profile = KernelProfile(
            name="noop", calls=0, total_seconds=0.0, total_flops=0.0,
            total_bytes=0.0, total_atomics=0.0, bound_by="launch",
        )
        assert profile.average_seconds == 0.0
        text = format_kernel_profile([profile])
        assert "noop" in text
        records = kernel_profile_records([profile])
        assert records[0]["share"] == 0.0
        assert records[0]["average_seconds"] == 0.0

    def test_records_match_profiles(self):
        model = GpuModel(GTX_1660_TI)
        model.launch(_launch(name="a", flops=1e8))
        model.launch(_launch(name="b", gmem=1e8))
        profiles = profile_kernels(model)
        records = kernel_profile_records(profiles)
        assert [r["name"] for r in records] == [p.name for p in profiles]
        assert sum(r["share"] for r in records) == pytest.approx(1.0)
        for record, profile in zip(records, profiles):
            assert record["calls"] == profile.calls
            assert record["bound_by"] == profile.bound_by


class TestOverlapAnalysisEdgeCases:
    def test_empty_plan(self):
        plan = overlap_analysis(GTX_1660_TI, [])
        assert plan.serial_seconds == 0.0
        assert plan.overlapped_seconds == 0.0
        assert plan.concurrent_groups == 0
        assert plan.speedup == 1.0

    def test_single_kernel_groups_never_overlap(self):
        groups = [[_launch(name="a")], [_launch(name="b")]]
        plan = overlap_analysis(GTX_1660_TI, groups)
        assert plan.concurrent_groups == 0
        assert plan.overlapped_seconds == pytest.approx(plan.serial_seconds)
        assert plan.saved_seconds == pytest.approx(0.0)

    def test_empty_group_is_skipped(self):
        plan = overlap_analysis(GTX_1660_TI, [[], [_launch()]])
        assert plan.serial_seconds > 0

    def test_overlap_emits_span_when_traced(self):
        from repro.obs import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            overlap_analysis(GTX_1660_TI, [[_launch("a"), _launch("b")]])
        (span,) = tracer.find_spans("overlap_analysis")
        assert span.attrs["groups"] == 1
        assert span.attrs["serial_seconds"] >= span.attrs["overlapped_seconds"]
