"""Tests for the FAST cache state and the incremental-H machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import abs_diff_dim_sums, euclidean_to_point
from repro.core.state import NEVER_USED_DELTA, MedoidCache, SharedStudyState


class TestMedoidCache:
    def test_create_shapes(self):
        cache = MedoidCache.create(m=12, n=100, d=7)
        assert cache.dist.shape == (12, 100)
        assert cache.dist_found.shape == (12,)
        assert cache.h.shape == (12, 7)
        assert cache.prev_delta.shape == (12,)
        assert cache.size_l.shape == (12,)
        assert cache.m == 12

    def test_initial_state(self):
        cache = MedoidCache.create(m=3, n=10, d=2)
        assert not cache.dist_found.any()
        assert np.all(cache.prev_delta == NEVER_USED_DELTA)
        assert np.all(cache.size_l == 0)
        assert np.all(cache.h == 0)

    def test_reset_row(self):
        cache = MedoidCache.create(m=3, n=10, d=2)
        cache.dist_found[1] = True
        cache.h[1] = 5.0
        cache.prev_delta[1] = 0.7
        cache.size_l[1] = 4
        cache.reset_row(1)
        assert not cache.dist_found[1]
        assert np.all(cache.h[1] == 0)
        assert cache.prev_delta[1] == NEVER_USED_DELTA
        assert cache.size_l[1] == 0

    def test_reset_row_leaves_others(self):
        cache = MedoidCache.create(m=3, n=10, d=2)
        cache.h[0] = 1.0
        cache.reset_row(1)
        assert np.all(cache.h[0] == 1.0)

    def test_nbytes_positive_and_scales(self):
        small = MedoidCache.create(m=2, n=10, d=2).nbytes()
        big = MedoidCache.create(m=20, n=10, d=2).nbytes()
        assert big > small > 0

    def test_never_used_sentinel_below_any_radius(self):
        assert NEVER_USED_DELTA < 0.0


class TestSharedStudyState:
    def test_holds_sample_and_medoids(self):
        state = SharedStudyState(
            sample_indices=np.arange(50),
            medoid_ids=np.arange(10),
            cache=MedoidCache.create(10, 100, 4),
        )
        assert state.num_potential_medoids == 10
        assert not state.data_uploaded


class TestIncrementalHInvariant:
    """Theorem 3.2: H maintained via DeltaL equals the full recomputation."""

    @pytest.fixture
    def setting(self):
        rng = np.random.default_rng(0)
        data = rng.random((400, 6), dtype=np.float32)
        medoid = data[7]
        dist = euclidean_to_point(data, medoid)
        return data, medoid, dist

    def simulate(self, data, medoid, dist, radii):
        """Update H through a radius sequence and compare to recompute."""
        h = np.zeros(data.shape[1], dtype=np.float64)
        size = 0
        prev = np.float32(NEVER_USED_DELTA)
        for radius in radii:
            radius = np.float32(radius)
            if radius >= prev:
                mask = (dist > prev) & (dist <= radius)
                lam = 1
            else:
                mask = (dist > radius) & (dist <= prev)
                lam = -1
            if mask.any():
                h += lam * abs_diff_dim_sums(data[mask], medoid)
                size += lam * int(mask.sum())
            prev = radius
            # Full recomputation for comparison.
            full_mask = dist <= radius
            expected_h = abs_diff_dim_sums(data[full_mask], medoid)
            assert size == int(full_mask.sum())
            assert np.array_equal(h, expected_h), f"radius {radius}"

    def test_growing_radii(self, setting):
        self.simulate(*setting, radii=[0.1, 0.3, 0.5, 0.9])

    def test_shrinking_radii(self, setting):
        self.simulate(*setting, radii=[0.9, 0.5, 0.3, 0.1])

    def test_oscillating_radii(self, setting):
        self.simulate(*setting, radii=[0.4, 0.8, 0.2, 0.6, 0.1, 0.9, 0.5])

    def test_repeated_radius_is_noop(self, setting):
        self.simulate(*setting, radii=[0.5, 0.5, 0.5])

    def test_zero_radius_keeps_self(self, setting):
        data, medoid, dist = setting
        # radius 0 keeps exactly the points at distance 0 (the medoid).
        mask = dist <= np.float32(0.0)
        assert mask.sum() >= 1
        self.simulate(data, medoid, dist, radii=[0.0, 0.7, 0.0])
