"""Emulated CUDA kernels (Algorithms 2-6) vs the vectorized phase math.

These are the reproduction's kernel-correctness tests: each of the
paper's kernels, executed thread by thread on the SIMT emulator (with
shuffled scheduling to expose ordering bugs), must produce exactly the
results of the vectorized implementations the engines run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import abs_diff_dim_sums, euclidean_distances
from repro.core.greedy import greedy_select
from repro.core.phases import (
    assign_points,
    evaluate_clusters,
    find_dimensions,
    find_outliers,
)
from repro.gpu.emulator import SimtEmulator
from repro.gpu.sanitizer import Sanitizer
from repro.gpu_impl.kernels import (
    assign_points_emulated,
    compute_l_emulated,
    evaluate_clusters_emulated,
    find_dimensions_emulated,
    find_outliers_emulated,
    greedy_select_emulated,
)

pytestmark = pytest.mark.sanitized

K = 4
L = 3


@pytest.fixture(scope="module")
def setting(tiny_dataset_module):
    data, _ = tiny_dataset_module
    medoid_ids = greedy_select(data, 8, 3)[:K]
    return data, medoid_ids


@pytest.fixture(scope="module")
def tiny_dataset_module():
    from repro.data.normalize import minmax_normalize
    from repro.data.synthetic import generate_subspace_data

    ds = generate_subspace_data(n=150, d=6, n_clusters=3, subspace_dims=3, seed=11)
    return minmax_normalize(ds.data), ds


@pytest.fixture(params=[None, 1, 2], ids=["inorder", "shuffle1", "shuffle2"])
def emulator(request):
    em = SimtEmulator(schedule_seed=request.param, sanitizer=Sanitizer())
    yield em
    report = em.sanitizer.report
    assert report.ok, report.render()


class TestGreedyKernel:
    def test_matches_vectorized(self, tiny_dataset_module, emulator):
        data, _ = tiny_dataset_module
        ref = greedy_select(data, 10, 5)
        got = greedy_select_emulated(data, 10, 5, emulator=emulator)
        assert np.array_equal(ref, got)

    def test_different_seed_point(self, tiny_dataset_module):
        data, _ = tiny_dataset_module
        for seed_idx in (0, 42, 149):
            assert np.array_equal(
                greedy_select(data, 6, seed_idx),
                greedy_select_emulated(data, 6, seed_idx),
            )


class TestComputeLKernel:
    def test_distances_match(self, setting, emulator):
        data, mids = setting
        _, _, dist = compute_l_emulated(data, mids, emulator=emulator)
        assert np.array_equal(dist, euclidean_distances(data, data[mids]))

    def test_delta_is_min_medoid_distance(self, setting, emulator):
        data, mids = setting
        _, delta, dist = compute_l_emulated(data, mids, emulator=emulator)
        md = dist[:, mids].copy()
        np.fill_diagonal(md, np.inf)
        assert np.allclose(delta, md.min(axis=1))

    def test_l_sets_match_sphere_membership(self, setting, emulator):
        data, mids = setting
        l_sets, delta, dist = compute_l_emulated(data, mids, emulator=emulator)
        for i in range(K):
            expected = set(np.flatnonzero(dist[i] <= delta[i]).tolist())
            assert set(l_sets[i].tolist()) == expected

    def test_medoid_inside_own_sphere(self, setting):
        data, mids = setting
        l_sets, _, _ = compute_l_emulated(data, mids)
        for i, mid in enumerate(mids):
            assert mid in set(l_sets[i].tolist())


def _padded_l(data, mids):
    l_sets, delta, dist = compute_l_emulated(data, mids)
    n = data.shape[0]
    padded = np.full((len(mids), n), -1, dtype=np.int64)
    sizes = np.zeros(len(mids), dtype=np.int64)
    for i, s in enumerate(l_sets):
        padded[i, : len(s)] = s
        sizes[i] = len(s)
    return padded, sizes, delta, dist


class TestFindDimensionsKernel:
    def test_x_bitwise_equal_to_reference(self, setting, emulator):
        data, mids = setting
        padded, sizes, delta, dist = _padded_l(data, mids)
        _, x = find_dimensions_emulated(data, mids, padded, sizes, L, emulator=emulator)
        for i in range(K):
            mask = dist[i] <= delta[i]
            expected = abs_diff_dim_sums(data[mask], data[mids[i]]) / mask.sum()
            assert np.array_equal(x[i], expected)

    def test_selection_matches_reference(self, setting, emulator):
        data, mids = setting
        padded, sizes, delta, dist = _padded_l(data, mids)
        dims, x = find_dimensions_emulated(
            data, mids, padded, sizes, L, emulator=emulator
        )
        assert dims == find_dimensions(x, L)

    def test_budget(self, setting):
        data, mids = setting
        padded, sizes, _, _ = _padded_l(data, mids)
        dims, _ = find_dimensions_emulated(data, mids, padded, sizes, L)
        assert sum(len(d) for d in dims) == K * L
        assert all(len(d) >= 2 for d in dims)


class TestAssignAndEvaluateKernels:
    @pytest.fixture()
    def dims(self, setting):
        data, mids = setting
        padded, sizes, _, _ = _padded_l(data, mids)
        d, _ = find_dimensions_emulated(data, mids, padded, sizes, L)
        return d

    def test_assignment_matches(self, setting, dims, emulator):
        data, mids = setting
        labels_em, _ = assign_points_emulated(data, mids, dims, emulator=emulator)
        labels_ref, _ = assign_points(data, data[mids], dims)
        assert np.array_equal(labels_em, labels_ref)

    def test_c_sets_partition_points(self, setting, dims):
        data, mids = setting
        _, c_sets = assign_points_emulated(data, mids, dims)
        all_points = np.concatenate(c_sets)
        assert sorted(all_points.tolist()) == list(range(data.shape[0]))

    def test_cost_matches_reference(self, setting, dims, emulator):
        data, mids = setting
        labels, c_sets = assign_points_emulated(data, mids, dims)
        n = data.shape[0]
        c_pad = np.full((K, n), -1, dtype=np.int64)
        c_sz = np.zeros(K, dtype=np.int64)
        for i, s in enumerate(c_sets):
            c_pad[i, : len(s)] = s
            c_sz[i] = len(s)
        cost_em = evaluate_clusters_emulated(data, c_pad, c_sz, dims, emulator=emulator)
        cost_ref = evaluate_clusters(data, labels, dims)
        assert cost_em == pytest.approx(cost_ref, rel=1e-12)


class TestOutlierKernel:
    def test_matches_reference(self, setting, emulator):
        data, mids = setting
        padded, sizes, _, _ = _padded_l(data, mids)
        dims, _ = find_dimensions_emulated(data, mids, padded, sizes, L)
        _, seg = assign_points(data, data[mids], dims)
        ref = find_outliers(seg, data[mids], dims)
        got = find_outliers_emulated(data, mids, dims, emulator=emulator)
        assert np.array_equal(ref, got)
