"""Tests for checkpoint/resume: study-level and engine-level."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    BACKENDS,
    ParameterGrid,
    ProclusParams,
    load_engine_state,
    proclus,
    run_parameter_study,
    save_engine_state,
)
from repro.exceptions import CheckpointError, TransientDeviceError
from repro.resilience import (
    FaultInjector,
    RetryPolicy,
    StudyCheckpoint,
    data_fingerprint,
    use_injector,
)

from tests.test_resilience_runner import assert_identical


@pytest.fixture
def study_grid(small_params):
    return ParameterGrid(ks=(5, 4), ls=(4, 3), base=small_params.with_(k=5))


def assert_studies_identical(a, b):
    assert set(a.results) == set(b.results)
    for key in a.results:
        assert_identical(a.results[key], b.results[key])


class TestDataFingerprint:
    def test_stable_and_sensitive(self, small_dataset):
        data, _ = small_dataset
        assert data_fingerprint(data) == data_fingerprint(data.copy())
        modified = data.copy()
        modified[0, 0] += 1e-6
        assert data_fingerprint(data) != data_fingerprint(modified)


class TestStudyCheckpoint:
    def test_checkpointed_study_equals_plain(self, small_dataset, study_grid,
                                             tmp_path):
        data, _ = small_dataset
        plain = run_parameter_study(
            data, grid=study_grid, backend="gpu-fast", level=3, seed=0
        )
        checkpointed = run_parameter_study(
            data, grid=study_grid, backend="gpu-fast", level=3, seed=0,
            checkpoint_dir=tmp_path / "ckpt",
        )
        assert_studies_identical(plain, checkpointed)
        checkpoint = StudyCheckpoint(tmp_path / "ckpt")
        assert checkpoint.exists()
        manifest = checkpoint.load_manifest()
        assert len(manifest["completed"]) == len(study_grid)

    def test_kill_and_resume_is_identical(self, small_dataset, study_grid,
                                          tmp_path):
        data, _ = small_dataset
        reference = run_parameter_study(
            data, grid=study_grid, backend="gpu-fast", level=3, seed=0
        )
        # Kill the study partway: from two thirds of the study's
        # launches on, every operation fails and degradation is
        # disallowed, so the driver raises after a few settings have
        # been checkpointed.
        probe = FaultInjector(["launch#999999999"])
        with use_injector(probe):
            run_parameter_study(
                data, grid=study_grid, backend="gpu-fast", level=3, seed=0
            )
        kill_at = probe._matches[0] * 2 // 3
        directory = tmp_path / "ckpt"
        injector = FaultInjector([f"transient#{kill_at}+*"])
        policy = RetryPolicy(max_retries=0, allow_degraded=False)
        from repro.exceptions import ResilienceExhaustedError

        with use_injector(injector):
            with pytest.raises(ResilienceExhaustedError):
                run_parameter_study(
                    data, grid=study_grid, backend="gpu-fast", level=3,
                    seed=0, checkpoint_dir=directory, resilience=policy,
                )
        checkpoint = StudyCheckpoint(directory)
        done = checkpoint.load_manifest()["completed"]
        assert 0 < len(done) < len(study_grid), "kill point missed"

        resumed = run_parameter_study(
            data, grid=study_grid, backend="gpu-fast", level=3, seed=0,
            checkpoint_dir=directory, resume=True,
        )
        assert_studies_identical(resumed, reference)
        assert any(event.kind == "resume" for event in resumed.events)
        # The settings persisted before the kill are bit-identical to
        # the ones a fresh checkpointed run would save.
        for (k, l) in map(tuple, done):
            saved = checkpoint.load_setting(k, l)
            assert_identical(saved, reference.results[(k, l)])

    def test_resume_of_complete_study_runs_nothing(self, small_dataset,
                                                   study_grid, tmp_path):
        data, _ = small_dataset
        first = run_parameter_study(
            data, grid=study_grid, backend="gpu-fast", level=3, seed=0,
            checkpoint_dir=tmp_path / "ckpt",
        )
        again = run_parameter_study(
            data, grid=study_grid, backend="gpu-fast", level=3, seed=0,
            checkpoint_dir=tmp_path / "ckpt", resume=True,
        )
        assert_studies_identical(first, again)

    def test_resume_rejects_different_data(self, small_dataset, study_grid,
                                           tmp_path):
        data, _ = small_dataset
        run_parameter_study(
            data, grid=study_grid, backend="gpu-fast", level=3, seed=0,
            checkpoint_dir=tmp_path / "ckpt",
        )
        other = data.copy()
        other[0, 0] = 0.123
        with pytest.raises(CheckpointError, match="fingerprint"):
            run_parameter_study(
                other, grid=study_grid, backend="gpu-fast", level=3, seed=0,
                checkpoint_dir=tmp_path / "ckpt", resume=True,
            )

    def test_resume_rejects_different_grid_backend_level(
        self, small_dataset, study_grid, tmp_path
    ):
        data, _ = small_dataset
        run_parameter_study(
            data, grid=study_grid, backend="gpu-fast", level=3, seed=0,
            checkpoint_dir=tmp_path / "ckpt",
        )
        other_grid = ParameterGrid(ks=(5,), ls=(4, 3), base=study_grid.base)
        with pytest.raises(CheckpointError, match="grid"):
            run_parameter_study(
                data, grid=other_grid, backend="gpu-fast", level=3, seed=0,
                checkpoint_dir=tmp_path / "ckpt", resume=True,
            )
        with pytest.raises(CheckpointError, match="backend"):
            run_parameter_study(
                data, grid=study_grid, backend="gpu", level=3, seed=0,
                checkpoint_dir=tmp_path / "ckpt", resume=True,
            )
        with pytest.raises(CheckpointError, match="level"):
            run_parameter_study(
                data, grid=study_grid, backend="gpu-fast", level=2, seed=0,
                checkpoint_dir=tmp_path / "ckpt", resume=True,
            )

    def test_corrupt_manifest_rejected(self, tmp_path):
        checkpoint = StudyCheckpoint(tmp_path)
        with pytest.raises(CheckpointError, match="no checkpoint manifest"):
            checkpoint.load_manifest()
        checkpoint.manifest_path.write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            checkpoint.load_manifest()
        checkpoint.manifest_path.write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(CheckpointError, match="schema"):
            checkpoint.load_manifest()

    def test_missing_setting_file_rejected(self, tmp_path):
        checkpoint = StudyCheckpoint(tmp_path)
        with pytest.raises(CheckpointError, match="missing"):
            checkpoint.load_setting(4, 3)


class TestEngineCheckpoint:
    def _kill_point(self, data, params):
        """Two thirds of the launches a full gpu-fast run issues."""
        probe = FaultInjector(["launch#999999999"])
        with use_injector(probe):
            proclus(data, backend="gpu-fast", params=params, seed=0)
        return probe._matches[0] * 2 // 3

    def test_killed_run_resumes_bit_identically(self, small_dataset,
                                                small_params, tmp_path):
        data, _ = small_dataset
        reference = proclus(data, backend="gpu-fast", params=small_params, seed=0)
        path = tmp_path / "engine.npz"
        injector = FaultInjector([f"transient#{self._kill_point(data, small_params)}+*"])
        engine = BACKENDS["gpu-fast"](
            params=small_params, seed=0,
            checkpoint_every=1, checkpoint_path=path,
        )
        with use_injector(injector):
            with pytest.raises(TransientDeviceError):
                engine.fit(data)
        assert path.exists()

        resumed = BACKENDS["gpu-fast"](
            params=small_params, seed=0, resume_from=path
        ).fit(data)
        assert_identical(resumed, reference)
        assert resumed.iterations == reference.iterations

    @pytest.mark.parametrize("resume_backend",
                             ["gpu-fast", "gpu", "gpu-fast-star", "fast",
                              "proclus"])
    def test_checkpoints_are_backend_agnostic(self, resume_backend,
                                              small_dataset, small_params,
                                              tmp_path):
        """A checkpoint written by gpu-fast resumes on any backend with
        the identical final clustering (FAST caches are rebuilt, not
        stored, so the snapshot carries no backend state)."""
        data, _ = small_dataset
        reference = proclus(data, backend="gpu-fast", params=small_params, seed=0)
        path = tmp_path / "engine.npz"
        injector = FaultInjector([f"transient#{self._kill_point(data, small_params)}+*"])
        with use_injector(injector):
            with pytest.raises(TransientDeviceError):
                BACKENDS["gpu-fast"](
                    params=small_params, seed=0,
                    checkpoint_every=1, checkpoint_path=path,
                ).fit(data)
        resumed = BACKENDS[resume_backend](
            params=small_params, seed=0, resume_from=path
        ).fit(data)
        assert_identical(resumed, reference)

    def test_state_round_trip(self, small_dataset, small_params, tmp_path):
        data, _ = small_dataset
        path = tmp_path / "engine.npz"
        kill = self._kill_point(data, small_params)
        with use_injector(FaultInjector([f"transient#{kill}+*"])):
            with pytest.raises(TransientDeviceError):
                BACKENDS["gpu-fast"](
                    params=small_params, seed=0,
                    checkpoint_every=1, checkpoint_path=path,
                ).fit(data)
        state = load_engine_state(path)
        copied = tmp_path / "copy.npz"
        save_engine_state(state, copied)
        again = load_engine_state(copied)
        assert state.n == again.n and state.d == again.d
        assert state.k == again.k and state.l == again.l
        assert state.total == again.total and state.stale == again.stale
        assert state.cost_best == again.cost_best
        assert np.array_equal(state.medoid_ids, again.medoid_ids)
        assert np.array_equal(state.mcur, again.mcur)
        assert np.array_equal(state.mbest, again.mbest)
        assert np.array_equal(state.labels_best, again.labels_best)
        assert np.array_equal(state.sizes_best, again.sizes_best)
        assert state.rng_state == again.rng_state

    def test_load_errors_are_typed(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_engine_state(tmp_path / "missing.npz")
        bogus = tmp_path / "bogus.npz"
        bogus.write_bytes(b"not a zip archive")
        with pytest.raises(CheckpointError):
            load_engine_state(bogus)

    def test_resume_rejects_mismatched_shape_and_params(
        self, small_dataset, small_params, tmp_path
    ):
        data, _ = small_dataset
        path = tmp_path / "engine.npz"
        BACKENDS["gpu-fast"](
            params=small_params, seed=0,
            checkpoint_every=1, checkpoint_path=path,
        ).fit(data)
        with pytest.raises(CheckpointError, match="dataset"):
            BACKENDS["gpu-fast"](
                params=small_params, seed=0, resume_from=path
            ).fit(data[:-10])
        with pytest.raises(CheckpointError, match="k="):
            BACKENDS["gpu-fast"](
                params=small_params.with_(k=3), seed=0, resume_from=path
            ).fit(data)

    def test_checkpoint_every_validation(self, small_params):
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError, match="checkpoint_path"):
            BACKENDS["gpu-fast"](params=small_params, checkpoint_every=1)
        with pytest.raises(ParameterError):
            BACKENDS["gpu-fast"](params=small_params, checkpoint_every=-1)
        with pytest.raises(ParameterError):
            BACKENDS["gpu-fast"](params=small_params, checkpoint_every=True)


class TestCorruptionHardening:
    """Corrupt/truncated checkpoint artifacts raise CheckpointError
    naming the file — never a raw JSONDecodeError/KeyError/BadZipFile."""

    @pytest.fixture
    def written_checkpoint(self, small_dataset, study_grid, tmp_path):
        data, _ = small_dataset
        run_parameter_study(
            data, grid=study_grid, backend="gpu-fast", level=3, seed=0,
            checkpoint_dir=tmp_path / "ckpt",
        )
        return data, StudyCheckpoint(tmp_path / "ckpt")

    def test_incomplete_manifest_refuses_resume(self, written_checkpoint,
                                                study_grid):
        data, checkpoint = written_checkpoint
        manifest = checkpoint.load_manifest()
        del manifest["grid"]
        checkpoint.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="incomplete"):
            checkpoint.validate_resume(data, study_grid, "gpu-fast", 3)

    def test_truncated_shared_state(self, written_checkpoint):
        _, checkpoint = written_checkpoint
        assert checkpoint.shared_path.exists()
        blob = checkpoint.shared_path.read_bytes()
        checkpoint.shared_path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="shared-state snapshot"):
            checkpoint.load_shared()

    def test_shared_state_missing_arrays(self, written_checkpoint):
        import numpy as np

        _, checkpoint = written_checkpoint
        np.savez(checkpoint.shared_path, other=np.arange(3))
        with pytest.raises(CheckpointError, match="unreadable or incomplete"):
            checkpoint.load_shared()

    def test_corrupt_setting_file(self, written_checkpoint, study_grid):
        _, checkpoint = written_checkpoint
        k, l = study_grid.ks[0], study_grid.ls[0]
        checkpoint.setting_path(k, l).write_bytes(b"\x00garbage\x00")
        with pytest.raises(CheckpointError, match="corrupt"):
            checkpoint.load_setting(k, l)

    def test_truncated_engine_checkpoint(self, small_dataset, small_params,
                                         tmp_path):
        data, _ = small_dataset
        path = tmp_path / "engine.npz"
        BACKENDS["gpu-fast"](
            params=small_params, seed=0,
            checkpoint_every=1, checkpoint_path=path,
        ).fit(data)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="readable"):
            load_engine_state(path)

    def test_engine_checkpoint_missing_arrays(self, tmp_path):
        path = tmp_path / "engine.npz"
        meta = json.dumps({"schema": "repro.engine_state/1"})
        np.savez(path, meta=np.array(meta))
        with pytest.raises(CheckpointError, match="readable"):
            load_engine_state(path)

    def test_engine_checkpoint_malformed_metadata(self, tmp_path):
        path = tmp_path / "engine.npz"
        meta = json.dumps({"schema": "repro.engine_state/1", "n": 10})
        arrays = {
            name: np.arange(4)
            for name in (
                "medoid_ids", "mcur", "mbest", "labels_best", "sizes_best",
            )
        }
        np.savez(path, meta=np.array(meta), **arrays)
        with pytest.raises(
            CheckpointError, match="incomplete or malformed"
        ) as info:
            load_engine_state(path)
        assert str(path) in str(info.value)
