"""Behavioral tests for the engine variants (validity invariants)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BACKENDS, proclus
from repro.exceptions import DataValidationError
from repro.params import ProclusParams
from repro.result import OUTLIER_LABEL

CPU_BACKENDS = ["proclus", "fast", "fast-star"]


def run(small_dataset, small_params, backend="proclus", seed=0, **kw):
    data, _ = small_dataset
    return proclus(data, backend=backend, params=small_params, seed=seed, **kw)


class TestResultValidity:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_labels_in_range(self, small_dataset, small_params, backend):
        r = run(small_dataset, small_params, backend)
        assert r.labels.shape == (small_dataset[0].shape[0],)
        assert r.labels.min() >= OUTLIER_LABEL
        assert r.labels.max() < small_params.k

    def test_medoids_distinct_points(self, small_dataset, small_params):
        r = run(small_dataset, small_params)
        assert len(np.unique(r.medoids)) == small_params.k
        assert r.medoids.min() >= 0
        assert r.medoids.max() < small_dataset[0].shape[0]

    def test_dimension_budget(self, small_dataset, small_params):
        r = run(small_dataset, small_params)
        assert len(r.dimensions) == small_params.k
        assert sum(len(d) for d in r.dimensions) == small_params.total_dimensions
        for dims in r.dimensions:
            assert len(dims) >= 2
            assert list(dims) == sorted(set(dims))

    def test_costs_nonnegative(self, small_dataset, small_params):
        r = run(small_dataset, small_params)
        assert r.cost >= 0.0
        assert r.refined_cost >= 0.0

    def test_iteration_accounting(self, small_dataset, small_params):
        r = run(small_dataset, small_params)
        assert 1 <= r.iterations <= small_params.max_iterations
        assert 0 <= r.best_iteration < r.iterations

    def test_stats_populated(self, small_dataset, small_params):
        r = run(small_dataset, small_params)
        s = r.stats
        assert s.backend == "proclus"
        assert s.modeled_seconds > 0
        assert s.wall_seconds > 0
        assert s.peak_device_bytes > 0
        assert s.counters
        assert s.phase_seconds

    def test_patience_bounds_tail_iterations(self, small_dataset):
        params = ProclusParams(k=4, l=3, a=30, b=5, patience=2)
        data, _ = small_dataset
        r = proclus(data, backend="proclus", params=params, seed=0)
        # After the best iteration, at most `patience` more iterations run
        # in a row without improvement before stopping.
        assert r.iterations <= r.best_iteration + 1 + 2 * params.patience + 1


class TestDeterminism:
    @pytest.mark.parametrize("backend", CPU_BACKENDS)
    def test_same_seed_same_result(self, small_dataset, small_params, backend):
        a = run(small_dataset, small_params, backend, seed=5)
        b = run(small_dataset, small_params, backend, seed=5)
        assert a.same_clustering(b)
        assert a.cost == b.cost

    def test_different_seeds_generally_differ(self, small_dataset, small_params):
        results = [run(small_dataset, small_params, seed=s) for s in range(4)]
        medoid_sets = {tuple(sorted(r.medoids.tolist())) for r in results}
        assert len(medoid_sets) > 1


class TestEngineLifecycle:
    def test_engine_single_use(self, small_dataset, small_params):
        from repro.core.proclus import ProclusEngine

        data, _ = small_dataset
        engine = ProclusEngine(params=small_params, seed=0)
        engine.fit(data)
        with pytest.raises(RuntimeError, match="single-use"):
            engine.fit(data)

    def test_best_positions_exposed(self, small_dataset, small_params):
        from repro.core.proclus import ProclusEngine

        data, _ = small_dataset
        engine = ProclusEngine(params=small_params, seed=0)
        result = engine.fit(data)
        positions = engine.best_positions_
        assert len(positions) == small_params.k
        m = small_params.effective_num_potential(data.shape[0])
        assert positions.min() >= 0 and positions.max() < m

    def test_bad_initial_medoids_rejected(self, small_dataset, small_params):
        from repro.core.proclus import ProclusEngine

        data, _ = small_dataset
        engine = ProclusEngine(
            params=small_params, seed=0, initial_medoids=np.array([0, 0, 1, 2])
        )
        with pytest.raises(DataValidationError, match="distinct"):
            engine.fit(data)


class TestDataValidation:
    def test_rejects_1d(self, small_params):
        with pytest.raises(DataValidationError):
            proclus(np.zeros(10), params=small_params)

    def test_rejects_nan(self, small_params):
        data = np.random.default_rng(0).random((200, 5)).astype(np.float32)
        data[3, 2] = np.nan
        with pytest.raises(DataValidationError):
            proclus(data, params=small_params)

    def test_rejects_non_numeric(self, small_params):
        with pytest.raises(DataValidationError):
            proclus(np.array([["a", "b"]]), params=small_params)

    def test_accepts_float64_input(self, small_dataset, small_params):
        data, _ = small_dataset
        r = proclus(data.astype(np.float64), params=small_params, seed=0)
        assert r.k == small_params.k

    def test_l_larger_than_d_rejected(self, small_dataset):
        data, _ = small_dataset  # d = 8
        with pytest.raises(Exception, match="dimensionality"):
            proclus(data, k=4, l=9, backend="proclus", seed=0)


class TestSmallDatasets:
    """The paper's sweeps include n < A*k; the sample caps at n."""

    @pytest.mark.parametrize("backend", ["proclus", "fast", "gpu-fast"])
    def test_tiny_n_with_default_a(self, backend):
        from repro.data.synthetic import generate_subspace_data
        from repro.data.normalize import minmax_normalize

        ds = generate_subspace_data(n=60, d=6, n_clusters=3, subspace_dims=3, seed=0)
        data = minmax_normalize(ds.data)
        r = proclus(data, k=3, l=3, backend=backend, seed=0)
        assert r.k == 3

    def test_k_exceeding_n_rejected(self):
        data = np.random.default_rng(0).random((5, 6)).astype(np.float32)
        with pytest.raises(Exception):
            proclus(data, k=10, l=3, backend="proclus", seed=0)
