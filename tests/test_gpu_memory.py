"""Tests for the simulated device memory manager."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DeviceError, DeviceOutOfMemoryError
from repro.gpu.memory import MemoryManager


@pytest.fixture
def manager():
    return MemoryManager(capacity_bytes=1024)


class TestAllocation:
    def test_alloc_returns_array_of_shape(self, manager):
        a = manager.alloc((4, 8), np.float32, "x")
        assert a.shape == (4, 8)
        assert a.dtype == np.float32
        assert a.nbytes == 128

    def test_scalar_shape_promoted(self, manager):
        a = manager.alloc(16, np.float32, "x")
        assert a.shape == (16,)

    def test_fill_value(self, manager):
        a = manager.alloc(4, np.float32, "x", fill=3.5)
        assert np.all(a.data == 3.5)

    def test_accounting(self, manager):
        manager.alloc(64, np.float32, "a")  # 256 B
        assert manager.allocated_bytes == 256
        assert manager.free_bytes == 768
        manager.alloc(64, np.float32, "b")
        assert manager.allocated_bytes == 512

    def test_peak_tracks_maximum(self, manager):
        a = manager.alloc(128, np.float32, "a")  # 512
        b = manager.alloc(64, np.float32, "b")  # 256
        a.free()
        manager.alloc(32, np.float32, "c")
        assert manager.peak_bytes == 768

    def test_out_of_memory_raises(self, manager):
        with pytest.raises(DeviceOutOfMemoryError) as err:
            manager.alloc(1024, np.float32, "big")  # 4096 B > 1024
        assert err.value.requested == 4096
        assert err.value.total == 1024

    def test_oom_after_partial_fill(self, manager):
        manager.alloc(200, np.float32, "a")  # 800 B
        with pytest.raises(DeviceOutOfMemoryError):
            manager.alloc(100, np.float32, "b")  # 400 B > 224 free

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryManager(0)


class TestFree:
    def test_free_returns_bytes(self, manager):
        a = manager.alloc(64, np.float32, "a")
        a.free()
        assert manager.allocated_bytes == 0
        assert a.freed

    def test_use_after_free_raises(self, manager):
        a = manager.alloc(4, np.float32, "a")
        a.free()
        with pytest.raises(DeviceError, match="use after free"):
            _ = a.data

    def test_double_free_is_noop(self, manager):
        a = manager.alloc(4, np.float32, "a")
        a.free()
        a.free()  # DeviceArray.free guards; no error, no double release
        assert manager.allocated_bytes == 0

    def test_free_all(self, manager):
        manager.alloc(4, np.float32, "a")
        manager.alloc(4, np.float32, "b")
        manager.free_all()
        assert manager.allocated_bytes == 0
        assert list(manager.live_arrays()) == []

    def test_footprint_by_name_groups(self, manager):
        manager.alloc(4, np.float32, "dist")
        manager.alloc(4, np.float32, "dist")
        manager.alloc(8, np.float32, "data")
        fp = manager.footprint_by_name()
        assert fp["dist"] == 32
        assert fp["data"] == 32

    def test_fill_and_copy_roundtrip(self, manager):
        a = manager.alloc((2, 2), np.float32, "x")
        a.fill(7.0)
        host = a.copy_to_host()
        assert np.all(host == 7.0)
        host[0, 0] = 0.0  # copy, not a view
        assert a.data[0, 0] == 7.0


class TestMemoryBudget:
    def test_reserve_release_and_peak(self):
        from repro.gpu.memory import MemoryBudget

        budget = MemoryBudget(1_000)
        budget.reserve(600)
        budget.reserve(300)
        assert budget.reserved_bytes == 900
        assert budget.free_bytes == 100
        budget.release(300)
        budget.release(600)
        assert budget.reserved_bytes == 0
        assert budget.peak_reserved_bytes == 900

    def test_over_capacity_reservation_rejected(self):
        from repro.gpu.memory import MemoryBudget

        budget = MemoryBudget(1_000)
        with pytest.raises(DeviceOutOfMemoryError):
            budget.reserve(1_001)
        assert budget.fits(1_000)
        assert not budget.fits(1_001)

    def test_timeout_when_capacity_held(self):
        from repro.gpu.memory import MemoryBudget

        budget = MemoryBudget(1_000)
        budget.reserve(800)
        with pytest.raises(DeviceOutOfMemoryError):
            budget.reserve(400, timeout=0.05)
        assert budget.waits == 1
        assert budget.reserved_bytes == 800

    def test_blocked_reservation_proceeds_on_release(self):
        import threading

        from repro.gpu.memory import MemoryBudget

        budget = MemoryBudget(1_000)
        budget.reserve(800)
        acquired = threading.Event()

        def contender():
            budget.reserve(400, timeout=5.0)
            acquired.set()

        thread = threading.Thread(target=contender)
        thread.start()
        assert not acquired.wait(0.05)
        budget.release(800)
        assert acquired.wait(5.0)
        thread.join()
        assert budget.reserved_bytes == 400

    def test_over_release_rejected(self):
        from repro.gpu.memory import MemoryBudget

        budget = MemoryBudget(1_000)
        budget.reserve(100)
        with pytest.raises(DeviceError):
            budget.release(200)

    def test_invalid_capacity_rejected(self):
        from repro.exceptions import ParameterError
        from repro.gpu.memory import MemoryBudget

        with pytest.raises(ParameterError):
            MemoryBudget(0)
