"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.normalize import minmax_normalize
from repro.data.synthetic import generate_subspace_data
from repro.params import ProclusParams


@pytest.fixture(scope="session")
def small_dataset():
    """A small, well-separated projected-cluster dataset (normalized)."""
    dataset = generate_subspace_data(
        n=600, d=8, n_clusters=4, subspace_dims=4, std=2.0, seed=7
    )
    return minmax_normalize(dataset.data), dataset


@pytest.fixture(scope="session")
def tiny_dataset():
    """A tiny dataset for emulator-scale tests (normalized)."""
    dataset = generate_subspace_data(
        n=150, d=6, n_clusters=3, subspace_dims=3, std=3.0, seed=11
    )
    return minmax_normalize(dataset.data), dataset


@pytest.fixture(scope="session")
def medium_dataset():
    """The default-style workload, scaled down (normalized)."""
    dataset = generate_subspace_data(n=4000, d=12, n_clusters=6, seed=3)
    return minmax_normalize(dataset.data), dataset


@pytest.fixture
def small_params():
    """Parameters sized for the small fixtures."""
    return ProclusParams(k=4, l=3, a=30, b=5)


@pytest.fixture
def tiny_params():
    return ProclusParams(k=3, l=3, a=20, b=4)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(params=[None, 1], ids=["inorder", "shuffled"])
def sanitized_emulator(request):
    """A SIMT emulator running under the kernel sanitizer.

    Parametrized over in-order and shuffled thread scheduling.  After
    the test body, the accumulated report must be clean — any
    out-of-bounds access, uninitialized shared read, or race in a
    kernel the test launched fails the test even if its assertions on
    the outputs passed.
    """
    from repro.gpu.emulator import SimtEmulator
    from repro.gpu.sanitizer import Sanitizer

    emulator = SimtEmulator(
        schedule_seed=request.param, sanitizer=Sanitizer()
    )
    yield emulator
    report = emulator.sanitizer.report
    assert report.ok, report.render()
