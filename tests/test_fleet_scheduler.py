"""Admission and placement edge cases for fleet-aware serving.

Covers the scheduler-side contract of ``ClusterService(fleet=...)``:
componentwise admission of sharded jobs (a job too big for every
single device still runs when its shards fit the fleet), zero-capacity
fleet members, and the per-backend EWMA backlog estimator under mixed
solo/sharded traffic.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro import proclus
from repro.data.normalize import minmax_normalize
from repro.data.synthetic import generate_subspace_data
from repro.exceptions import AdmissionError
from repro.fleet import Fleet, default_fleet
from repro.hardware.specs import GTX_1660_TI
from repro.params import ProclusParams
from repro.serve import (
    ClusterService,
    JobScheduler,
    estimate_device_bytes,
    estimate_shard_bytes,
)
from repro.serve.request import ClusterRequest, Job


def tiny_card(usable_bytes: int):
    """A 1660 Ti clone with exactly ``usable_bytes`` of app memory."""
    return replace(
        GTX_1660_TI,
        memory_bytes=usable_bytes + GTX_1660_TI.reserved_bytes,
    )


def make_job(backend, estimated_bytes=0, shard_bytes=None, job_id=0,
             priority=1):
    request = ClusterRequest(
        fingerprint="f" * 16, backend=backend,
        params=ProclusParams(k=6, l=4), priority=priority,
    )
    return Job(request=request, job_id=job_id,
               estimated_bytes=estimated_bytes, shard_bytes=shard_bytes)


@pytest.fixture(scope="module")
def data():
    dataset = generate_subspace_data(n=2000, d=10, n_clusters=4, seed=5)
    return minmax_normalize(dataset.data)


@pytest.fixture(scope="module")
def params():
    return ProclusParams(k=6, l=4)


class TestShardEstimates:
    def test_shards_cover_more_than_solo(self, params):
        """Replicated k-sized arrays make the fleet total exceed solo,
        while each single shard is strictly smaller."""
        solo = estimate_device_bytes(20_000, 12, params, "gpu-fast")
        shards = estimate_shard_bytes(
            20_000, 12, params, "fleet-gpu-fast", default_fleet(2)
        )
        assert len(shards) == 2
        assert sum(shards) > solo
        assert max(shards) < solo

    def test_zero_capacity_member_estimates_zero(self, params):
        fleet = Fleet(specs=(GTX_1660_TI, tiny_card(0)))
        shards = estimate_shard_bytes(
            10_000, 12, params, "fleet-gpu-fast", fleet
        )
        assert shards[1] == 0
        assert shards[0] == estimate_device_bytes(10_000, 12, params,
                                                  "gpu-fast")

    def test_device_bytes_for_fleet_backend_is_max_shard(self, params):
        fleet = default_fleet(3)
        shards = estimate_shard_bytes(8_192, 15, params, "fleet-gpu", fleet)
        assert estimate_device_bytes(
            8_192, 15, params, "fleet-gpu", fleet=fleet
        ) == max(shards)


class TestComponentwiseAdmission:
    def test_job_bigger_than_any_device_fits_the_fleet(self, params):
        """The tentpole admission case: solo is refused, sharded runs."""
        solo_bytes = estimate_device_bytes(2_000, 10, params, "gpu-fast")
        capacity = int(solo_bytes * 0.7)  # no single card fits the job
        fleet = Fleet(specs=(tiny_card(capacity), tiny_card(capacity)))
        shards = estimate_shard_bytes(
            2_000, 10, params, "fleet-gpu-fast", fleet
        )
        assert max(shards) <= capacity < solo_bytes

        scheduler = JobScheduler(
            capacity_bytes=fleet.max_usable_bytes,
            device_capacities=tuple(s.usable_bytes for s in fleet.specs),
        )
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.admit(make_job("gpu-fast", estimated_bytes=solo_bytes))
        assert excinfo.value.reason == "memory"
        # Same workload, sharded: admitted componentwise.
        scheduler.admit(
            make_job("fleet-gpu-fast", estimated_bytes=max(shards),
                     shard_bytes=shards)
        )

    def test_one_oversized_shard_is_refused(self):
        scheduler = JobScheduler(device_capacities=(100, 100))
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.admit(
                make_job("fleet-gpu", estimated_bytes=150,
                         shard_bytes=(80, 150))
            )
        assert excinfo.value.reason == "memory"
        assert "shard 1" in str(excinfo.value)

    def test_end_to_end_through_the_service(self, data, params):
        solo_bytes = estimate_device_bytes(
            len(data), data.shape[1], params, "gpu-fast"
        )
        capacity = int(solo_bytes * 0.7)
        fleet = Fleet(specs=(tiny_card(capacity), tiny_card(capacity)))
        reference = proclus(data, params=params, backend="gpu-fast", seed=0)
        with ClusterService(workers=1, fleet=fleet) as service:
            with pytest.raises(AdmissionError):
                service.submit(data, backend="gpu-fast", params=params,
                               seed=0)
            handle = service.submit(data, backend="fleet-gpu-fast",
                                    params=params, seed=0)
            result = handle.result(timeout=120)
            assert np.array_equal(result.labels, reference.labels)
            assert result.cost == reference.cost
            stats = service.stats()
        assert stats["counters"]["fleet.jobs"] == 1
        assert all(entry["peak_reserved_bytes"] > 0
                   for entry in stats["devices"])


class TestZeroCapacityMember:
    def test_service_runs_around_the_dead_device(self, data, params):
        fleet = Fleet(specs=(GTX_1660_TI, tiny_card(0)))
        reference = proclus(data, params=params, backend="gpu", seed=0)
        with ClusterService(workers=1, fleet=fleet) as service:
            assert service.device_budgets[1] is None
            handle = service.submit(data, backend="fleet-gpu",
                                    params=params, seed=0)
            result = handle.result(timeout=120)
            assert np.array_equal(result.labels, reference.labels)
            stats = service.stats()
        assert stats["devices"][1]["capacity_bytes"] == 0
        assert stats["devices"][1]["peak_reserved_bytes"] == 0
        assert stats["devices"][0]["peak_reserved_bytes"] > 0

    def test_solo_jobs_never_placed_on_the_dead_device(self, data, params):
        fleet = Fleet(specs=(GTX_1660_TI, tiny_card(0)))
        with ClusterService(workers=1, fleet=fleet) as service:
            for seed in (0, 1):
                service.submit(data, backend="gpu-fast", params=params,
                               seed=seed)
            service.drain(timeout=120)
            counters = service.stats()["counters"]
        assert counters.get("fleet.placements.dev0", 0) == 2
        assert "fleet.placements.dev1" not in counters


class TestBacklogEwmaMixedTraffic:
    def test_estimates_are_tracked_per_backend(self):
        scheduler = JobScheduler()
        scheduler.observe("gpu-fast", 1.0)
        scheduler.observe("fleet-gpu-fast", 0.25)
        assert scheduler.estimate_seconds("gpu-fast") == 1.0
        assert scheduler.estimate_seconds("fleet-gpu-fast") == 0.25
        # EWMA update (alpha = 0.3): 0.3 * 2.0 + 0.7 * 1.0
        scheduler.observe("gpu-fast", 2.0)
        assert scheduler.estimate_seconds("gpu-fast") == pytest.approx(1.3)
        assert scheduler.estimate_seconds("fleet-gpu-fast") == 0.25

    def test_backlog_sums_over_mixed_queue(self):
        scheduler = JobScheduler(max_backlog_seconds=1.0)
        scheduler.observe("gpu-fast", 0.5)
        scheduler.observe("fleet-gpu-fast", 0.3)
        scheduler.push(make_job("gpu-fast", job_id=0))
        scheduler.push(make_job("fleet-gpu-fast", job_id=1))
        assert scheduler.backlog_seconds() == pytest.approx(0.8)
        # 0.8 queued + 0.3 estimated = 1.1 > 1.0: refused as backlog...
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.admit(make_job("fleet-gpu-fast", job_id=2))
        assert excinfo.value.reason == "backlog"
        # ...while a cheap never-seen backend (estimate 0) still fits.
        scheduler.admit(make_job("fast", job_id=3))

    def test_service_learns_both_traffic_classes(self, data, params):
        with ClusterService(workers=1, fleet=default_fleet(2)) as service:
            for seed in (0, 1):
                service.submit(data, backend="gpu-fast", params=params,
                               seed=seed)
                service.submit(data, backend="fleet-gpu-fast", params=params,
                               seed=seed)
            service.drain(timeout=240)
            solo_estimate = service.scheduler.estimate_seconds("gpu-fast")
            fleet_estimate = service.scheduler.estimate_seconds(
                "fleet-gpu-fast"
            )
        assert solo_estimate > 0.0
        assert fleet_estimate > 0.0
        # Sharded runs model a different (here: slower, collective-
        # bound) time than solo runs on the same workload, and the
        # estimator keeps the two classes apart.
        assert solo_estimate != fleet_estimate
