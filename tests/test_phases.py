"""Tests for the shared phase math (FindDimensions, AssignPoints, ...)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.phases import (
    assign_points,
    cluster_sizes_from_labels,
    compute_bad_medoids,
    evaluate_clusters,
    find_dimensions,
    find_outliers,
)


class TestFindDimensions:
    def test_total_dimension_count_is_k_times_l(self):
        x = np.random.default_rng(0).random((4, 10))
        dims = find_dimensions(x, l=3)
        assert sum(len(d) for d in dims) == 12

    def test_every_medoid_gets_at_least_two(self):
        x = np.random.default_rng(1).random((5, 8))
        for d in find_dimensions(x, l=2):
            assert len(d) >= 2

    def test_l_equals_two_gives_exactly_two_each(self):
        x = np.random.default_rng(2).random((5, 8))
        for d in find_dimensions(x, l=2):
            assert len(d) == 2

    def test_dimensions_sorted_and_unique(self):
        x = np.random.default_rng(3).random((3, 9))
        for d in find_dimensions(x, l=4):
            assert list(d) == sorted(set(d))

    def test_picks_low_spread_dimensions(self):
        """Dimensions with much lower X (average distance) must be picked."""
        x = np.full((2, 6), 10.0)
        x[0, [1, 4]] = 0.1  # cluster 0 is tight in dims 1, 4
        x[1, [0, 2]] = 0.1
        dims = find_dimensions(x, l=2)
        assert dims[0] == (1, 4)
        assert dims[1] == (0, 2)

    def test_greedy_extra_dimensions_go_to_lowest_z(self):
        x = np.full((2, 5), 10.0)
        x[0, 0] = x[0, 1] = 0.0
        x[0, 2] = 1.0  # the third-lowest Z overall lives in medoid 0
        x[1, 3] = x[1, 4] = 5.0
        dims = find_dimensions(x, l=3)  # 6 picks: 2+2 mandatory, 2 greedy
        assert 2 in dims[0]

    def test_constant_row_yields_zero_z(self):
        """A medoid with identical X in all dims must not crash (sigma=0)."""
        x = np.vstack([np.full(6, 3.0), np.random.default_rng(4).random(6)])
        dims = find_dimensions(x, l=2)
        assert len(dims) == 2
        # ties broken toward lowest dimension index
        assert dims[0] == (0, 1)

    def test_deterministic_tie_breaking(self):
        x = np.zeros((2, 4))
        a = find_dimensions(x, l=2)
        b = find_dimensions(x, l=2)
        assert a == b == ((0, 1), (0, 1))


class TestAssignPoints:
    def test_assigns_to_closest_in_subspace(self):
        data = np.array(
            [[0.0, 0.0], [1.0, 1.0], [0.1, 0.9]], dtype=np.float32
        )
        medoids = data[:2]
        labels, seg = assign_points(data, medoids, ((0,), (1,)))
        # point 2: dist to m0 in dim0 = 0.1; to m1 in dim1 = 0.1 -> tie -> 0
        assert labels[0] == 0
        assert labels[1] == 0 or labels[1] == 1
        assert labels[2] == 0

    def test_medoids_belong_to_their_own_cluster(self):
        rng = np.random.default_rng(5)
        data = rng.random((50, 4), dtype=np.float32)
        medoids = data[[7, 21]]
        labels, _ = assign_points(data, medoids, ((0, 1), (2, 3)))
        assert labels[7] == 0
        assert labels[21] == 1

    def test_seg_matrix_shape(self):
        data = np.random.default_rng(6).random((30, 5), dtype=np.float32)
        _, seg = assign_points(data, data[:3], ((0, 1), (1, 2), (3, 4)))
        assert seg.shape == (30, 3)

    def test_tie_breaks_to_lowest_cluster(self):
        data = np.array([[0.5, 0.5]], dtype=np.float32)
        medoids = np.array([[0.0, 0.0], [1.0, 1.0]], dtype=np.float32)
        labels, _ = assign_points(data, medoids, ((0, 1), (0, 1)))
        assert labels[0] == 0


class TestClusterSizes:
    def test_counts(self):
        sizes = cluster_sizes_from_labels(np.array([0, 1, 1, 2, -1]), 3)
        assert sizes.tolist() == [1, 2, 1]

    def test_empty_cluster_counts_zero(self):
        sizes = cluster_sizes_from_labels(np.array([0, 0]), 3)
        assert sizes.tolist() == [2, 0, 0]


class TestEvaluateClusters:
    def test_zero_for_identical_points(self):
        data = np.ones((10, 3), dtype=np.float32)
        labels = np.zeros(10, dtype=np.int64)
        assert evaluate_clusters(data, labels, ((0, 1),)) == 0.0

    def test_hand_computed_cost(self):
        # Cluster of two points at 0 and 1 in a single dimension:
        # centroid 0.5, mean |p - mu| = 0.5, weight |C|=2, n=2 -> cost 0.5
        data = np.array([[0.0], [1.0]], dtype=np.float32)
        labels = np.zeros(2, dtype=np.int64)
        assert evaluate_clusters(data, labels, ((0,),)) == pytest.approx(0.5)

    def test_size_weighting(self):
        # Two clusters with equal per-point deviation: cost is the mean.
        data = np.array([[0.0], [1.0], [0.0], [1.0]], dtype=np.float32)
        labels = np.array([0, 0, 1, 1])
        cost = evaluate_clusters(data, labels, ((0,), (0,)))
        assert cost == pytest.approx(0.5)

    def test_empty_cluster_contributes_zero(self):
        data = np.array([[0.0], [1.0]], dtype=np.float32)
        labels = np.zeros(2, dtype=np.int64)
        cost = evaluate_clusters(data, labels, ((0,), (0,)))
        assert cost == pytest.approx(0.5)

    def test_outliers_excluded_but_n_total_kept(self):
        data = np.array([[0.0], [1.0], [0.5]], dtype=np.float32)
        labels = np.array([0, 0, -1])
        # sum = 2 * 0.5 / (1 dim) = 1.0, divided by |Data| = 3
        cost = evaluate_clusters(data, labels, ((0,),))
        assert cost == pytest.approx(1.0 / 3.0)

    def test_tighter_clustering_costs_less(self):
        rng = np.random.default_rng(7)
        data = np.vstack(
            [rng.normal(0.2, 0.01, (50, 3)), rng.normal(0.8, 0.01, (50, 3))]
        ).astype(np.float32)
        good = np.repeat([0, 1], 50)
        bad = np.tile([0, 1], 50)
        dims = ((0, 1, 2), (0, 1, 2))
        assert evaluate_clusters(data, good, dims) < evaluate_clusters(data, bad, dims)


class TestBadMedoids:
    def test_small_clusters_flagged(self):
        sizes = np.array([100, 2, 100, 3])
        bad = compute_bad_medoids(sizes, n=205, min_deviation=0.7)
        assert set(bad.tolist()) == {1, 3}

    def test_smallest_flagged_when_none_below_threshold(self):
        sizes = np.array([100, 90, 110])
        bad = compute_bad_medoids(sizes, n=300, min_deviation=0.7)
        assert bad.tolist() == [1]

    def test_smallest_tie_breaks_to_lowest_index(self):
        sizes = np.array([100, 100, 100])
        bad = compute_bad_medoids(sizes, n=300, min_deviation=0.7)
        assert bad.tolist() == [0]

    def test_min_deviation_one_flags_below_average(self):
        sizes = np.array([50, 150])
        bad = compute_bad_medoids(sizes, n=200, min_deviation=1.0)
        assert bad.tolist() == [0]


class TestFindOutliers:
    def test_point_near_medoid_not_outlier(self):
        medoids = np.array([[0.0, 0.0], [1.0, 1.0]], dtype=np.float32)
        data = np.array([[0.01, 0.01], [0.5, 0.5]], dtype=np.float32)
        dims = ((0, 1), (0, 1))
        from repro.core.distance import segmental_distances

        seg = segmental_distances(data, medoids, dims)
        out = find_outliers(seg, medoids, dims)
        assert not out[0]

    def test_far_point_is_outlier(self):
        # Medoids 0.1 apart -> sphere radius 0.1; a point at 0.9 is out.
        medoids = np.array([[0.0], [0.1]], dtype=np.float32)
        data = np.array([[0.0], [0.9]], dtype=np.float32)
        dims = ((0,), (0,))
        from repro.core.distance import segmental_distances

        seg = segmental_distances(data, medoids, dims)
        out = find_outliers(seg, medoids, dims)
        assert not out[0]
        assert out[1]

    def test_single_cluster_has_no_outliers(self):
        medoids = np.array([[0.5, 0.5]], dtype=np.float32)
        data = np.random.default_rng(8).random((20, 2), dtype=np.float32)
        dims = ((0, 1),)
        from repro.core.distance import segmental_distances

        seg = segmental_distances(data, medoids, dims)
        out = find_outliers(seg, medoids, dims)
        assert not out.any()

    def test_radius_uses_each_medoids_own_subspace(self):
        # m0 and m1 coincide in dim 0 (radius 0 there) but differ in dim 1.
        medoids = np.array([[0.0, 0.0], [0.0, 1.0]], dtype=np.float32)
        data = np.array([[0.0, 0.5]], dtype=np.float32)
        dims = ((0,), (1,))
        from repro.core.distance import segmental_distances

        seg = segmental_distances(data, medoids, dims)
        out = find_outliers(seg, medoids, dims)
        # sphere 0 has radius 0 in dim 0 and the point sits at 0 -> inside
        assert not out[0]
