"""Tests for the phase-profiling helpers."""

from __future__ import annotations

import pytest

from repro import proclus
from repro.eval.profiling import (
    PhaseBreakdown,
    compare_breakdowns,
    phase_breakdown,
)
from repro.params import ProclusParams


@pytest.fixture(scope="module")
def results(request):
    from repro.data.normalize import minmax_normalize
    from repro.data.synthetic import generate_subspace_data

    ds = generate_subspace_data(n=2000, d=8, n_clusters=4, subspace_dims=4, seed=0)
    data = minmax_normalize(ds.data)
    params = ProclusParams(k=4, l=3, a=25, b=5)
    return {
        name: proclus(data, backend=name, params=params, seed=1)
        for name in ("proclus", "fast", "gpu-fast")
    }


class TestPhaseBreakdown:
    def test_fractions_sum_to_one(self, results):
        b = phase_breakdown(results["proclus"])
        total_fraction = sum(f for _, _, f in b.as_rows())
        assert total_fraction == pytest.approx(1.0)

    def test_total_matches_stats(self, results):
        r = results["fast"]
        b = phase_breakdown(r)
        assert b.total_seconds == pytest.approx(r.stats.modeled_seconds)

    def test_dominant_phase_for_baseline_is_a_heavy_step(self, results):
        b = phase_breakdown(results["proclus"])
        assert b.dominant_phase() in ("assign_points", "compute_l")

    def test_fast_reduces_compute_l_share(self, results):
        base = phase_breakdown(results["proclus"])
        fast = phase_breakdown(results["fast"])
        assert fast.phase_seconds["compute_l"] < base.phase_seconds["compute_l"]

    def test_fraction_of_missing_phase_is_zero(self):
        b = PhaseBreakdown(backend="x", total_seconds=1.0, phase_seconds={"a": 1.0})
        assert b.fraction("nope") == 0.0

    def test_zero_total_fraction(self):
        b = PhaseBreakdown(backend="x", total_seconds=0.0)
        assert b.fraction("a") == 0.0
        assert b.dominant_phase() == ""


class TestCompare:
    def test_table_mentions_all_backends_and_phases(self, results):
        table = compare_breakdowns(
            [phase_breakdown(r) for r in results.values()]
        )
        for name in ("proclus", "fast-proclus", "gpu-fast-proclus"):
            assert name in table
        assert "compute_l" in table
        assert "total" in table

    def test_empty_input(self):
        assert compare_breakdowns([]) == "(no runs)"


class TestPhaseOrdering:
    def test_known_phases_in_canonical_order(self):
        from repro.eval.profiling import PHASE_ORDER

        b = PhaseBreakdown(
            backend="x", total_seconds=3.0,
            phase_seconds={"evaluate": 1.0, "compute_l": 1.0, "transfer": 1.0},
        )
        rows = [phase for phase, _, _ in b.as_rows()]
        assert rows == ["transfer", "compute_l", "evaluate"]
        assert all(p in PHASE_ORDER for p in rows)

    def test_unknown_phases_follow_in_first_accrual_order(self):
        """Custom phases append after the canonical ones, in the order
        the engine first accrued them (not alphabetically)."""
        phase_seconds = {}
        phase_seconds["zeta_custom"] = 1.0
        phase_seconds["compute_l"] = 1.0
        phase_seconds["alpha_custom"] = 1.0
        b = PhaseBreakdown(
            backend="x", total_seconds=3.0, phase_seconds=phase_seconds
        )
        rows = [phase for phase, _, _ in b.as_rows()]
        assert rows == ["compute_l", "zeta_custom", "alpha_custom"]

    def test_unknown_phases_are_not_dropped(self):
        b = PhaseBreakdown(
            backend="x", total_seconds=2.0,
            phase_seconds={"compute_l": 1.0, "my_phase": 1.0},
        )
        rows = b.as_rows()
        assert ("my_phase", 1.0, 0.5) in rows
        total_fraction = sum(f for _, _, f in rows)
        assert total_fraction == pytest.approx(1.0)
