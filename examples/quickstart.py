"""Quickstart: cluster a synthetic projected-cluster dataset.

Generates the paper's default-style workload, runs GPU-FAST-PROCLUS
(the headline variant), and prints the clustering, the recovered
subspaces, and the modeled running time on the paper's hardware.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import proclus
from repro.data import generate_subspace_data, minmax_normalize
from repro.eval.metrics import adjusted_rand_index, subspace_recovery


def main() -> None:
    # The paper's default synthetic workload, scaled down: Gaussian
    # clusters living in random 5-dimensional subspaces of a
    # 15-dimensional space.
    dataset = generate_subspace_data(
        n=20_000, d=15, n_clusters=10, subspace_dims=5, std=5.0, seed=0
    )
    data = minmax_normalize(dataset.data)

    result = proclus(data, k=10, l=5, backend="gpu-fast", seed=0)

    print(result.summary())
    print()
    print(f"ground-truth agreement (ARI): "
          f"{adjusted_rand_index(dataset.labels, result.labels):.3f}")
    print(f"subspace recovery (Jaccard):  "
          f"{subspace_recovery(dataset.subspaces, dataset.labels, result.dimensions, result.labels):.3f}")
    print()
    stats = result.stats
    print(f"backend:        {stats.backend}")
    print(f"modeled time:   {stats.modeled_seconds * 1e3:.2f} ms on {stats.hardware}")
    print(f"wall time:      {stats.wall_seconds:.2f} s (Python, this machine)")
    print(f"device memory:  {stats.peak_device_bytes / 1024**2:.1f} MiB peak")


if __name__ == "__main__":
    main()
