"""Parameter exploration: the multi-parameter reuse strategies at work.

PROCLUS results depend on k and l, so practitioners sweep a grid of
settings.  This example runs the paper's 9-combination study at every
reuse level (Section 3.1) and shows the cumulative effect:

* level 0 — independent runs, one setting at a time;
* level 1 — shared sample/medoids: the Dist/H caches stay warm;
* level 2 — the greedy pick itself is reused (computed once);
* level 3 — each setting warm-starts from the previous best medoids.

Run:  python examples/parameter_exploration.py
"""

from __future__ import annotations

from repro import ParameterGrid, ReuseLevel, run_parameter_study
from repro.data import generate_subspace_data, minmax_normalize

LEVEL_NAMES = {
    ReuseLevel.NONE: "one setting at a time",
    ReuseLevel.PARTIAL_RESULTS: "+ reuse Dist/H partial results",
    ReuseLevel.GREEDY: "+ reuse the greedy pick",
    ReuseLevel.WARM_START: "+ warm-start from previous best",
}


def main() -> None:
    dataset = generate_subspace_data(n=30_000, d=15, seed=2)
    data = minmax_normalize(dataset.data)
    grid = ParameterGrid()  # the paper's 9 combinations of (k, l)
    print(f"dataset: {dataset.n:,} x {dataset.d}; grid: "
          f"k in {grid.ks}, l in {grid.ls}\n")

    baseline = None
    print(f"{'level':>5}  {'strategy':32} {'time/setting':>13} {'speedup':>8}")
    for level in ReuseLevel:
        study = run_parameter_study(
            data, grid=grid, backend="gpu-fast", level=level, seed=0
        )
        per_setting = study.average_seconds_per_setting
        if baseline is None:
            baseline = per_setting
        print(f"{int(level):>5}  {LEVEL_NAMES[level]:32} "
              f"{per_setting * 1e3:>10.3f} ms {baseline / per_setting:>7.2f}x")

    # The exploration's outcome: the best setting across the grid.
    study = run_parameter_study(
        data, grid=grid, backend="gpu-fast", level=ReuseLevel.WARM_START, seed=0
    )
    k, l = study.best_setting()
    print(f"\nbest setting found: k={k}, l={l} "
          f"(cost {study.results[(k, l)].cost:.5f})")
    print("note: levels 2-3 change the sampling strategy, so their "
          "clusterings may differ from level 0's — the paper trades "
          "this for speed (Section 3.1).")


if __name__ == "__main__":
    main()
