"""Customer segmentation: the paper's motivating scenario.

The introduction motivates projected clustering with "finding groups of
customers that exhibit similar traits ... for a group of customers, a
trait like height might not be important for the grouping".  This
example builds a synthetic customer table in which each segment is
defined by a *subset* of traits (e.g. heavy online shoppers are alike
in basket size, visit frequency and return rate — but not in age or
region), and shows that PROCLUS both finds the segments and reports
*which traits define each one* — the information full-dimensional
k-means cannot give.

Run:  python examples/customer_segmentation.py
"""

from __future__ import annotations

import numpy as np

from repro import proclus
from repro.data import minmax_normalize
from repro.eval.metrics import purity

TRAITS = [
    "age",
    "income",
    "basket_size",
    "visits_per_month",
    "return_rate",
    "discount_usage",
    "night_shopping",
    "mobile_share",
    "support_tickets",
    "loyalty_years",
]

#: Each segment: (name, {trait: (mean, std)}) — only the segment's
#: defining traits are concentrated; everything else is idiosyncratic.
SEGMENTS = [
    (
        "bargain hunters",
        {"discount_usage": (0.9, 0.05), "basket_size": (0.2, 0.05),
         "visits_per_month": (0.8, 0.07)},
    ),
    (
        "premium loyalists",
        {"income": (0.85, 0.05), "loyalty_years": (0.9, 0.05),
         "return_rate": (0.1, 0.04), "support_tickets": (0.1, 0.05)},
    ),
    (
        "night-owl mobile shoppers",
        {"night_shopping": (0.9, 0.05), "mobile_share": (0.95, 0.03),
         "age": (0.25, 0.06)},
    ),
    (
        "bulk family buyers",
        {"basket_size": (0.9, 0.04), "visits_per_month": (0.2, 0.05),
         "return_rate": (0.3, 0.06)},
    ),
]


def build_customers(per_segment: int = 3_000, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Synthesize the customer table and ground-truth segment labels."""
    rng = np.random.default_rng(seed)
    rows = []
    labels = []
    for segment_id, (_, traits) in enumerate(SEGMENTS):
        block = rng.uniform(0.0, 1.0, size=(per_segment, len(TRAITS)))
        for trait, (mean, std) in traits.items():
            j = TRAITS.index(trait)
            block[:, j] = rng.normal(mean, std, size=per_segment)
        rows.append(block)
        labels.extend([segment_id] * per_segment)
    data = np.clip(np.vstack(rows), 0.0, 1.0).astype(np.float32)
    order = rng.permutation(len(data))
    return data[order], np.asarray(labels)[order]


def main() -> None:
    data, truth = build_customers()
    data = minmax_normalize(data)

    # One run per candidate seed; keep the lowest-cost clustering, as a
    # practitioner would with a randomized search.
    results = [
        proclus(data, k=len(SEGMENTS), l=3, backend="gpu-fast", seed=s)
        for s in range(5)
    ]
    best = min(results, key=lambda r: r.cost)

    print(f"clustered {data.shape[0]:,} customers with {len(TRAITS)} traits")
    print(f"purity vs ground truth: {purity(truth, best.labels):.3f}")
    print()
    sizes = best.cluster_sizes()
    for i in range(best.k):
        members = best.cluster_members(i)
        # Name the found cluster by its dominant true segment.
        seg_ids = truth[members]
        dominant = SEGMENTS[int(np.bincount(seg_ids).argmax())][0]
        traits = ", ".join(TRAITS[j] for j in best.dimensions[i])
        print(f"cluster {i} ({int(sizes[i]):>5} customers) ~ {dominant}")
        print(f"    defining traits: {traits}")
    print()
    print(f"outliers (customers matching no segment): {best.n_outliers}")
    print(f"modeled time: {best.stats.modeled_seconds * 1e3:.2f} ms "
          f"on {best.stats.hardware}")


if __name__ == "__main__":
    main()
