"""Sky-survey exploration: real-time interaction on a large catalogue.

The paper extracts windows of the SDSS SkyServer catalogue (sky 1x1 …
sky 5x5, up to 934,073 objects with 17 features) and shows that
GPU-FAST-PROCLUS makes parameter exploration interactive.  This example
reproduces that workflow on the sky 1x1 stand-in: a multi-parameter
study over nine (k, l) combinations with full reuse (multi-param 3),
reporting the cost of every setting so an astronomer can pick the best
one — with the modeled per-setting latency far below the 100 ms
real-time interaction budget the paper targets.

Run:  python examples/sky_survey.py
"""

from __future__ import annotations

from repro import ParameterGrid, ProclusParams, ReuseLevel, run_parameter_study
from repro.data import load_dataset, minmax_normalize


def main() -> None:
    dataset = load_dataset("sky-1x1", seed=0)
    data = minmax_normalize(dataset.data)
    print(f"loaded {dataset.name}: {dataset.n:,} objects, {dataset.d} features")

    grid = ParameterGrid(ks=(10, 8, 6), ls=(6, 4, 3), base=ProclusParams(a=40, b=6))
    study = run_parameter_study(
        data,
        grid=grid,
        backend="gpu-fast",
        level=ReuseLevel.WARM_START,  # multi-param 3: full reuse
        seed=0,
    )

    print(f"\nexplored {study.num_settings} (k, l) combinations "
          f"with {study.backend} (multi-param {int(study.level)})")
    print(f"{'k':>3} {'l':>3} {'cost':>10} {'outliers':>9} {'iters':>6}")
    for (k, l), result in sorted(study.results.items()):
        print(f"{k:>3} {l:>3} {result.cost:>10.5f} {result.n_outliers:>9} "
              f"{result.iterations:>6}")

    best_k, best_l = study.best_setting()
    best = study.results[(best_k, best_l)]
    print(f"\nbest setting: k={best_k}, l={best_l} (cost {best.cost:.5f})")
    for i, dims in enumerate(best.dimensions):
        print(f"  population {i}: feature subspace {dims}")

    per_setting_ms = study.average_seconds_per_setting * 1e3
    print(f"\nmodeled time per setting: {per_setting_ms:.2f} ms "
          f"({'within' if per_setting_ms < 100 else 'OVER'} the 100 ms "
          f"real-time interaction budget)")


if __name__ == "__main__":
    main()
