"""Why projected clustering? PROCLUS vs full-dimensional baselines.

The paper's introduction: "clustering within the full-dimensional space
becomes meaningless for higher-dimensional data as distances become
increasingly similar.  This implies that clusters might only exist
within subspace projections."  This example plants clusters in small
random subspaces of an increasingly high-dimensional space and compares
PROCLUS with the full-dimensional methods it descends from — CLARANS
(k-medoids) and k-means.  As irrelevant dimensions accumulate, the
full-dimensional methods collapse toward chance while PROCLUS keeps
recovering the planted structure.

Run:  python examples/projected_vs_fulldim.py
"""

from __future__ import annotations

from repro import proclus
from repro.baselines import clarans, kmeans
from repro.data import generate_subspace_data, minmax_normalize
from repro.eval.metrics import adjusted_rand_index
from repro.params import ProclusParams

N = 4_000
CLUSTERS = 5
SUBSPACE = 4  # planted clusters always live in 4 dimensions...


def main() -> None:
    print(f"{CLUSTERS} clusters planted in {SUBSPACE}-d subspaces; "
          f"ARI vs total dimensionality d\n")
    print(f"{'d':>4} {'noise dims':>10} {'k-means':>9} {'CLARANS':>9} {'PROCLUS':>9}")
    for d in (6, 10, 20, 40, 80):
        ds = generate_subspace_data(
            n=N, d=d, n_clusters=CLUSTERS, subspace_dims=SUBSPACE,
            std=2.0, seed=d,
        )
        data = minmax_normalize(ds.data)

        km = kmeans(data, k=CLUSTERS, seed=0)
        cl = clarans(data, k=CLUSTERS, num_local=2, max_neighbor=300, seed=0)
        params = ProclusParams(k=CLUSTERS, l=SUBSPACE, a=40, b=6)
        pr = min(
            (proclus(data, backend="gpu-fast", params=params, seed=s)
             for s in range(3)),
            key=lambda r: r.cost,
        )

        print(f"{d:>4} {d - SUBSPACE:>10} "
              f"{adjusted_rand_index(ds.labels, km.labels):>9.3f} "
              f"{adjusted_rand_index(ds.labels, cl.labels):>9.3f} "
              f"{adjusted_rand_index(ds.labels, pr.labels):>9.3f}")

    print("\nPROCLUS additionally reports *which* dimensions define each "
          "cluster;\nfull-dimensional methods cannot, even when they "
          "stumble on the right partition.")


if __name__ == "__main__":
    main()
