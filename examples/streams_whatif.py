"""What-if: CUDA streams for the small kernels (Section 5.4's aside).

The paper observes that some kernels (the k x k medoid-distance kernel,
the per-iteration bookkeeping) use a few percent of the GPU, and notes
that "if the preceding and the succeeding kernels were not depending on
each other, streams could be used to run two kernels concurrently".
The paper leaves it at that; this example quantifies it.

One genuinely independent pair exists at every iteration boundary: the
bookkeeping kernel of iteration t (best-cost update, bad-medoid
detection) and the distance kernel of iteration t+1 (which only reads
the data and the medoid list fixed before the launch).  We take the
kernel stream of a real GPU-FAST run, overlap exactly those pairs under
the stream model, and report the saving.

Run:  python examples/streams_whatif.py
"""

from __future__ import annotations

from repro.data import generate_subspace_data, minmax_normalize
from repro.gpu.streams import overlap_analysis
from repro.gpu_impl.gpu_fast import GpuFastProclusEngine
from repro.params import ProclusParams


def main() -> None:
    dataset = generate_subspace_data(n=30_000, d=15, seed=3)
    data = minmax_normalize(dataset.data)
    engine = GpuFastProclusEngine(params=ProclusParams(), seed=0)
    result = engine.fit(data)
    launches = engine.model.counter.kernel_launches
    print(f"run: {result.iterations} iterations, {len(launches)} kernel launches, "
          f"{result.stats.modeled_seconds * 1e3:.3f} ms modeled\n")

    # Build dependency groups: each bookkeeping kernel overlaps with the
    # immediately following distance kernel; everything else is serial.
    groups: list[list] = []
    i = 0
    overlapped_pairs = 0
    while i < len(launches):
        current = launches[i]
        nxt = launches[i + 1] if i + 1 < len(launches) else None
        if (
            nxt is not None
            and current.name == "update_iteration"
            and nxt.name == "compute_l.distances"
        ):
            groups.append([current, nxt])
            overlapped_pairs += 1
            i += 2
        else:
            groups.append([current])
            i += 1

    plan = overlap_analysis(engine.model.spec, groups)
    print(f"independent pairs found:   {overlapped_pairs} "
          f"(one per iteration boundary)")
    print(f"serial kernel time:        {plan.serial_seconds * 1e3:9.3f} ms")
    print(f"with streams:              {plan.overlapped_seconds * 1e3:9.3f} ms")
    print(f"saved:                     {plan.saved_seconds * 1e6:9.1f} us "
          f"({(plan.speedup - 1) * 100:.1f}%)")
    print("\nconclusion: consistent with the paper's assessment — the "
          "overlappable kernels are launch-overhead sized, so streams "
          "recover only a few percent; the heavy kernels are dependent "
          "and already saturate the device.")


if __name__ == "__main__":
    main()
