"""Robustness study: PROCLUS across data regimes.

The paper evaluates running time across data distributions (Figs. 2e-2f)
and asserts the result quality is a property of the algorithm, not the
implementation.  This example probes *quality* across progressively
harder generator regimes:

* the paper's default (axis-parallel Gaussian subspace clusters);
* overlapping subspaces (clusters share anchor dimensions);
* heavy size imbalance (tiny clusters below the minDev threshold);
* correlated clusters (stretched along a manifold — the known
  axis-parallel blind spot, included honestly).

Run:  python examples/robustness_study.py
"""

from __future__ import annotations

from repro import proclus
from repro.data import (
    generate_correlated_subspace_data,
    generate_imbalanced_subspace_data,
    generate_overlapping_subspace_data,
    generate_subspace_data,
    minmax_normalize,
)
from repro.eval.metrics import adjusted_rand_index, subspace_recovery
from repro.params import ProclusParams

N = 5_000
D = 12
K = 5
SUB = 4

REGIMES = [
    ("paper default", lambda: generate_subspace_data(
        n=N, d=D, n_clusters=K, subspace_dims=SUB, std=2.5, seed=1)),
    ("overlapping subspaces", lambda: generate_overlapping_subspace_data(
        n=N, d=D, n_clusters=K, subspace_dims=SUB, shared_dims=2,
        std=2.5, seed=2)),
    ("imbalanced sizes", lambda: generate_imbalanced_subspace_data(
        n=N, d=D, n_clusters=K, subspace_dims=SUB, std=2.5,
        imbalance=1.5, seed=3)),
    ("correlated clusters", lambda: generate_correlated_subspace_data(
        n=N, d=D, n_clusters=K, subspace_dims=SUB, std=2.0,
        extent=35.0, seed=4)),
]


def main() -> None:
    params = ProclusParams(k=K, l=SUB, a=40, b=6)
    print(f"{K} clusters, n={N}, d={D}; best of 5 seeds per regime\n")
    print(f"{'regime':24} {'ARI':>7} {'subspace recovery':>18}")
    for name, make in REGIMES:
        dataset = make()
        data = minmax_normalize(dataset.data)
        best = min(
            (proclus(data, backend="gpu-fast", params=params, seed=s)
             for s in range(5)),
            key=lambda r: r.cost,
        )
        ari = adjusted_rand_index(dataset.labels, best.labels)
        rec = subspace_recovery(
            dataset.subspaces, dataset.labels, best.dimensions, best.labels
        )
        print(f"{name:24} {ari:>7.3f} {rec:>18.3f}")
    print("\n(the correlated regime is PROCLUS's documented limitation — "
          "its axis-parallel subspace model cannot express manifolds; "
          "ORCLUS-style generalized projected clustering addresses it)")


if __name__ == "__main__":
    main()
