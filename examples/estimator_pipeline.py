"""End-to-end pipeline: CSV in, fitted model out, new data scored.

The production shape of using this library: load a delimited file,
fit the sklearn-style estimator with restarts, persist the result, and
score a fresh batch of observations against the saved clustering —
without re-clustering.

Run:  python examples/estimator_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core.serialization import load_result, save_result
from repro.data.loaders import load_delimited
from repro.estimator import PROCLUS
from repro.eval.metrics import purity


def fabricate_csv(path: Path, n_per_class: int = 800, seed: int = 0) -> None:
    """Write a CSV of sensor readings with three regimes."""
    rng = np.random.default_rng(seed)
    header = "temp,pressure,vibration,current,humidity,rpm,regime"
    regimes = [
        ("nominal", {"temp": (0.3, 0.02), "pressure": (0.5, 0.02),
                     "rpm": (0.6, 0.02)}),
        ("overload", {"temp": (0.8, 0.03), "current": (0.9, 0.02),
                      "vibration": (0.7, 0.03)}),
        ("bearing-wear", {"vibration": (0.9, 0.02), "rpm": (0.4, 0.03),
                          "current": (0.6, 0.02)}),
    ]
    names = header.split(",")[:-1]
    lines = [header]
    for regime, traits in regimes:
        block = rng.uniform(0, 1, size=(n_per_class, len(names)))
        for trait, (mean, std) in traits.items():
            block[:, names.index(trait)] = rng.normal(mean, std, n_per_class)
        for row in np.clip(block, 0, 1):
            lines.append(",".join(f"{v:.5f}" for v in row) + f",{regime}")
    path.write_text("\n".join(lines) + "\n")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="proclus-pipeline-"))
    csv_path = workdir / "sensors.csv"
    fabricate_csv(csv_path)

    # 1. Load
    table = load_delimited(csv_path, label_column="regime")
    print(f"loaded {table.n} rows x {table.d} features from {csv_path.name}")
    print(f"features: {', '.join(table.feature_names)}")

    # 2. Fit with restarts
    model = PROCLUS(n_clusters=3, n_dimensions=3, backend="gpu-fast",
                    n_runs=5, random_state=0, a=40, b=6)
    model.fit(table.data)
    print(f"\nfitted: cost {model.cost_:.5f}, {model.n_iter_} iterations, "
          f"{model.n_outliers_} outliers")
    for i, dims in enumerate(model.cluster_subspaces_):
        traits = ", ".join(table.feature_names[j] for j in dims)
        print(f"  regime-cluster {i}: defined by [{traits}]")
    print(f"purity vs the true regimes: {purity(table.labels, model.labels_):.3f}")

    # 3. Persist and reload
    saved = save_result(model.result_, workdir / "model.npz")
    reloaded = load_result(saved)
    print(f"\nresult saved to {saved.name} and reloaded "
          f"({'identical' if reloaded.same_clustering(model.result_) else 'DIFFERENT'})")

    # 4. Score a new batch
    rng = np.random.default_rng(99)
    new_batch = rng.uniform(0, 1, size=(6, table.d)).astype(np.float32)
    new_batch[0] = table.data[0]  # one known-nominal reading
    labels = model.predict(new_batch)
    print(f"new batch labels: {labels.tolist()}  (-1 = no known regime)")


if __name__ == "__main__":
    main()
