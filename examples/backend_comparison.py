"""Backend comparison: identical clusterings, very different speeds.

Runs every variant of the library on the same data with the same seed
and demonstrates the paper's two headline facts:

1. all variants return the *bitwise-identical* clustering (correctness
   w.r.t. the PROCLUS definition), and
2. the modeled running times span three orders of magnitude, from the
   sequential baseline to GPU-FAST-PROCLUS.

Run:  python examples/backend_comparison.py
"""

from __future__ import annotations

from repro import BACKENDS, proclus
from repro.data import generate_subspace_data, minmax_normalize


def main() -> None:
    dataset = generate_subspace_data(n=30_000, d=15, seed=1)
    data = minmax_normalize(dataset.data)
    print(f"dataset: {dataset.n:,} points, {dataset.d} dimensions\n")

    results = {
        name: proclus(data, k=10, l=5, backend=name, seed=4)
        for name in sorted(BACKENDS)
    }

    base = results["proclus"]
    print(f"{'backend':22} {'hardware':28} {'modeled time':>14} {'speedup':>9}  identical?")
    for name, result in sorted(
        results.items(), key=lambda kv: -kv[1].stats.modeled_seconds
    ):
        stats = result.stats
        if stats.modeled_seconds >= 1.0:
            t = f"{stats.modeled_seconds:10.3f} s "
        else:
            t = f"{stats.modeled_seconds * 1e3:10.3f} ms"
        speedup = base.stats.modeled_seconds / stats.modeled_seconds
        same = "yes" if result.same_clustering(base) else "NO!"
        print(f"{name:22} {stats.hardware:28} {t:>14} {speedup:>8.1f}x  {same}")

    print(f"\nall clusterings identical: "
          f"{all(r.same_clustering(base) for r in results.values())}")
    print(f"clustering cost: {base.cost:.6f} "
          f"({base.iterations} iterations, {base.n_outliers} outliers)")


if __name__ == "__main__":
    main()
