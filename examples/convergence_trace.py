"""Convergence tracing: watching the randomized search work.

PROCLUS is a hill-climbing search over medoid sets (inherited from
CLARANS): every iteration swaps out the "bad" medoids of the best
clustering for random candidates and keeps the swap when the cost
improves.  Engines can record a per-iteration trace; this example
renders it as an ASCII convergence chart and shows how the warm-started
multi-param runs converge faster — the mechanism behind the paper's
"multi-param 3" speedup.

Run:  python examples/convergence_trace.py
"""

from __future__ import annotations

import numpy as np

from repro.core.fast import FastProclusEngine
from repro.data import generate_subspace_data, minmax_normalize
from repro.params import ProclusParams


def ascii_chart(values: list[float], width: int = 56, height: int = 10) -> str:
    """Render a value series as a crude ASCII line chart."""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    # Downsample / stretch to the chart width.
    xs = np.linspace(0, len(values) - 1, num=min(width, len(values)))
    series = [values[int(round(x))] for x in xs]
    rows = []
    for level in range(height, -1, -1):
        threshold = lo + span * level / height
        line = "".join("*" if v >= threshold else " " for v in series)
        rows.append(f"{threshold:9.5f} |{line}")
    rows.append(" " * 10 + "+" + "-" * len(series))
    rows.append(" " * 11 + f"iterations 0..{len(values) - 1}")
    return "\n".join(rows)


def main() -> None:
    dataset = generate_subspace_data(n=8_000, d=12, n_clusters=6,
                                     subspace_dims=5, std=3.0, seed=4)
    data = minmax_normalize(dataset.data)
    params = ProclusParams(k=6, l=5, a=40, b=6, patience=8)

    engine = FastProclusEngine(params=params, seed=0, collect_trace=True)
    result = engine.fit(data)
    trace = engine.trace_

    print("best-cost-so-far during the iterative phase:\n")
    print(ascii_chart(trace.best_costs))
    print()
    print(trace.summary())
    print(f"improving iterations: {trace.improvements}")
    print(f"medoid churn per iteration: {trace.medoid_churn()}")

    # Warm start from the best medoids: the "multi-param 3" mechanism.
    warm = FastProclusEngine(
        params=params, seed=1, collect_trace=True,
        initial_medoids=engine.best_positions_,
    )
    warm_result = warm.fit(data)
    print()
    print(f"cold start: first-iteration cost {trace.costs[0]:.6f}, "
          f"best {result.cost:.6f}")
    print(f"warm start: first-iteration cost {warm.trace_.costs[0]:.6f}, "
          f"best {warm_result.cost:.6f}")
    print("(the warm start opens at the cold run's final quality — the "
          "mechanism that lets multi-param 3 spend fewer iterations per "
          "setting on average)")


if __name__ == "__main__":
    main()
