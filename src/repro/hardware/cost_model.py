"""Analytical cost models translating work counters into modeled seconds.

Three models mirror the paper's three execution platforms:

* :class:`ScalarCpuModel` — the sequential C++ baseline.  Time is the
  sum of scalar-op and vectorizable-op counts divided by the calibrated
  sustained single-core throughputs.  (The compiler vectorizes the
  contiguous inner per-dimension loops of the C++ code, which is why
  those are accounted at a higher rate; this is also what makes the
  GPU-over-CPU speedup shrink slightly as ``d`` grows, as the paper
  observes in Figs. 2c-2d.)
* :class:`MulticoreCpuModel` — the OpenMP version: the same work spread
  over ``cores`` with a parallel-efficiency factor and a fork/join
  overhead per parallel region.  This saturates near the ~6x the paper
  reports.
* :class:`GpuModel` — a per-kernel roofline: each launch costs a fixed
  launch overhead plus the maximum of its compute time, its global
  memory time, and its atomic-throughput time, each derated by how well
  the launch configuration fills the device (resident-warp utilization).
  Small helper kernels (e.g. the ``k x k`` medoid-distance kernel of
  Algorithm 3) are therefore launch-overhead dominated, exactly as the
  paper's Section 5.4 discusses.

Models are stateful per run: they accumulate per-phase seconds and hold
the run's :class:`~repro.hardware.counters.WorkCounter`.

Cost ledger
-----------
Every accrued second is also recorded as a :class:`CostEvent` with an
exact decomposition into cost components (:data:`COMPONENTS`).  The
ledger backs :mod:`repro.obs.explain`'s attribution, and its arithmetic
is *exact*: phase accumulators and event components are
:class:`fractions.Fraction` values (floats are dyadic rationals, so
``Fraction(float)`` is lossless and rational sums are associative).
Regrouping the ledger any way — by kernel, by pipeline, by component —
and converting the exact sum to float reproduces ``total_seconds``
bit for bit, which is the conservation contract the explain tests pin.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from fractions import Fraction

from .counters import KernelLaunch, WorkCounter
from .specs import CpuSpec, GpuSpec

__all__ = [
    "COMPONENTS",
    "CostEvent",
    "HardwareModel",
    "ScalarCpuModel",
    "MulticoreCpuModel",
    "GpuModel",
]

#: Cost-component buckets every accrued second is attributed to.
#: ``launch`` also covers CPU fork/join overhead (the launch-overhead
#: analog of a parallel region); ``comm`` is fleet collective time.
COMPONENTS = ("launch", "compute", "memory", "atomic", "transfer", "comm")

_ZERO = Fraction()


@dataclass(frozen=True, slots=True)
class CostEvent:
    """One accrual on a hardware model, with its exact decomposition.

    ``components`` always sums to ``seconds_exact`` exactly (the
    residual construction in :meth:`HardwareModel.account` guarantees
    it), so any regrouping of a model's events conserves its total.
    """

    kind: str  #: ``kernel`` | ``transfer`` | ``cpu`` | ``fleet``
    name: str
    phase: str
    seconds_exact: Fraction
    components: tuple[tuple[str, Fraction], ...]
    launch: KernelLaunch | None = None

    @property
    def seconds(self) -> float:
        return float(self.seconds_exact)

    def component_seconds(self) -> dict[str, float]:
        """Component decomposition as floats (reporting only)."""
        return {name: float(value) for name, value in self.components}


class HardwareModel(ABC):
    """Base class: accumulates per-phase modeled seconds and counters."""

    def __init__(self) -> None:
        self.counter = WorkCounter()
        #: Exact per-phase accumulators backing ``phase_seconds``.
        self._phase_exact: dict[str, Fraction] = {}
        #: The cost ledger, in accrual order.
        self.events: list[CostEvent] = []

    @property
    @abstractmethod
    def name(self) -> str:
        """Human-readable name of the modeled hardware."""

    @property
    def phase_seconds(self) -> dict[str, float]:
        """Per-phase modeled seconds (floats of the exact accumulators)."""
        return {
            phase: float(value) for phase, value in self._phase_exact.items()
        }

    @property
    def total_seconds(self) -> float:
        """Total modeled seconds accumulated so far (exact sum)."""
        return float(sum(self._phase_exact.values(), _ZERO))

    def _accrue(self, phase: str, seconds: float | Fraction) -> Fraction:
        exact = (
            seconds
            if isinstance(seconds, Fraction)
            else Fraction(float(seconds))
        )
        self._phase_exact[phase] = self._phase_exact.get(phase, _ZERO) + exact
        return exact

    def account(
        self,
        kind: str,
        name: str,
        phase: str,
        seconds: float | Fraction,
        parts: tuple[tuple[str, Fraction], ...] = (),
        residual: str = "compute",
        launch: KernelLaunch | None = None,
    ) -> float:
        """Accrue ``seconds`` into ``phase`` and ledger a cost event.

        ``parts`` are ``(component, exact seconds)`` pairs; whatever
        remains of the event's exact seconds lands on the ``residual``
        component, so the event's components sum to its seconds exactly
        by construction.  Returns the accrued seconds as a float.
        """
        exact = self._accrue(phase, seconds)
        remaining = exact - sum((value for _, value in parts), _ZERO)
        components = tuple((c, value) for c, value in parts if value)
        if remaining:
            components += ((residual, remaining),)
        self.events.append(
            CostEvent(
                kind=kind,
                name=name,
                phase=phase,
                seconds_exact=exact,
                components=components,
                launch=launch,
            )
        )
        return float(exact)


class ScalarCpuModel(HardwareModel):
    """Sequential single-core CPU model."""

    def __init__(self, spec: CpuSpec) -> None:
        super().__init__()
        self.spec = spec

    @property
    def name(self) -> str:
        return f"{self.spec.name} (1 core)"

    def work(
        self,
        phase: str,
        scalar_ops: float = 0.0,
        vector_ops: float = 0.0,
    ) -> float:
        """Account a block of sequential work; returns its modeled seconds.

        ``vector_ops`` are operations in contiguous inner loops that a
        C++ compiler auto-vectorizes; ``scalar_ops`` everything else
        (branches, gathers, bookkeeping).
        """
        self.counter.add("cpu.scalar_ops", scalar_ops)
        self.counter.add("cpu.vector_ops", vector_ops)
        seconds = (
            scalar_ops / self.spec.scalar_ops_per_s
            + vector_ops / self.spec.vector_ops_per_s
        )
        return self.account(
            "cpu", f"cpu.{phase}", phase, seconds, residual="compute"
        )


class MulticoreCpuModel(HardwareModel):
    """OpenMP-style multi-core CPU model (same counters, shared cores)."""

    def __init__(self, spec: CpuSpec) -> None:
        super().__init__()
        self.spec = spec

    @property
    def name(self) -> str:
        return f"{self.spec.name} ({self.spec.cores} cores)"

    def work(
        self,
        phase: str,
        scalar_ops: float = 0.0,
        vector_ops: float = 0.0,
        regions: int = 1,
        serial_fraction: float = 0.02,
    ) -> float:
        """Account one or more parallel regions of work.

        ``serial_fraction`` is the Amdahl share that cannot be
        parallelized (reductions, critical sections).
        """
        self.counter.add("cpu.scalar_ops", scalar_ops)
        self.counter.add("cpu.vector_ops", vector_ops)
        self.counter.add("cpu.parallel_regions", regions)
        serial = (
            scalar_ops * serial_fraction / self.spec.scalar_ops_per_s
            + vector_ops * serial_fraction / self.spec.vector_ops_per_s
        )
        speed = self.spec.cores * self.spec.parallel_efficiency
        parallel = (
            scalar_ops * (1 - serial_fraction) / (self.spec.scalar_ops_per_s * speed)
            + vector_ops * (1 - serial_fraction) / (self.spec.vector_ops_per_s * speed)
        )
        fork_join = regions * self.spec.fork_join_overhead_s
        seconds = serial + parallel + fork_join
        # Fork/join overhead is the CPU analog of launch overhead; the
        # serial + parallel op time is the compute residual.
        return self.account(
            "cpu",
            f"cpu.{phase}",
            phase,
            seconds,
            parts=(("launch", Fraction(float(fork_join))),),
            residual="compute",
        )


class GpuModel(HardwareModel):
    """Per-kernel roofline model of a CUDA GPU."""

    #: Resident warps per SM needed to saturate memory bandwidth.
    _SATURATION_WARPS_PER_SM = 8
    #: Threads per core needed to hide arithmetic latency.
    _LATENCY_HIDING_THREADS_PER_CORE = 4

    def __init__(self, spec: GpuSpec) -> None:
        super().__init__()
        self.spec = spec

    @property
    def name(self) -> str:
        return self.spec.name

    def resident_blocks_per_sm(self, launch: KernelLaunch) -> int:
        """Blocks of this launch that fit concurrently on one SM."""
        spec = self.spec
        warps = math.ceil(launch.threads_per_block / spec.warp_size)
        threads_rounded = warps * spec.warp_size
        limits = [
            spec.max_blocks_per_sm,
            max(1, spec.max_threads_per_sm // max(threads_rounded, 1)),
        ]
        if launch.smem_bytes_per_block > 0:
            limits.append(
                max(1, spec.shared_mem_per_sm // launch.smem_bytes_per_block)
            )
        regs_per_block = launch.registers_per_thread * threads_rounded
        if regs_per_block > 0:
            limits.append(max(1, spec.registers_per_sm // regs_per_block))
        return max(1, min(limits))

    def _utilization(self, launch: KernelLaunch) -> tuple[float, float]:
        """Return ``(mem_util, compute_util)`` in ``(0, 1]`` for a launch."""
        spec = self.spec
        warps_per_block = math.ceil(launch.threads_per_block / spec.warp_size)
        resident_blocks = min(
            launch.grid_blocks,
            self.resident_blocks_per_sm(launch) * spec.sm_count,
        )
        active_warps = max(1, resident_blocks * warps_per_block)
        mem_util = min(
            1.0, active_warps / (self._SATURATION_WARPS_PER_SM * spec.sm_count)
        )
        active_threads = max(
            launch.threads_per_block,
            resident_blocks * warps_per_block * spec.warp_size,
        )
        compute_util = min(
            1.0,
            active_threads
            / (self._LATENCY_HIDING_THREADS_PER_CORE * spec.core_count),
        )
        return mem_util, compute_util

    def roofline_terms(self, launch: KernelLaunch) -> dict[str, float]:
        """The three roofline times of a launch, by component name."""
        spec = self.spec
        mem_util, compute_util = self._utilization(launch)
        return {
            "memory": launch.gmem_bytes / (spec.effective_bandwidth * mem_util),
            # Plain FP adds/abs run at one op per core-cycle, not the
            # FMA peak, hence core_count * clock rather than peak_flops;
            # the kernel's ipc factor derates dependent accumulation
            # chains.
            "compute": launch.flops
            / (spec.core_count * spec.clock_hz * launch.ipc * compute_util),
            "atomic": launch.atomic_ops / spec.atomic_ops_per_s,
        }

    def dominant_component(self, launch: KernelLaunch) -> str:
        """The roofline component that sets this launch's time.

        Ties resolve in ``memory > compute > atomic`` order, mirroring
        the ``max(t_mem, t_compute, t_atomic)`` in :meth:`launch_time`.
        """
        terms = self.roofline_terms(launch)
        return max(("memory", "compute", "atomic"), key=lambda c: terms[c])

    def launch_time(self, launch: KernelLaunch) -> float:
        """Modeled seconds for one kernel launch (without accruing it)."""
        terms = self.roofline_terms(launch)
        return self.spec.kernel_launch_overhead_s + max(terms.values())

    def launch(self, launch: KernelLaunch) -> float:
        """Account one kernel launch; returns its modeled seconds."""
        self.counter.record_launch(launch)
        seconds = self.launch_time(launch)
        # Exact decomposition: the fixed launch overhead, then the
        # whole roofline max on its dominant component.
        return self.account(
            "kernel",
            launch.name,
            launch.phase,
            seconds,
            parts=(("launch", Fraction(self.spec.kernel_launch_overhead_s)),),
            residual=self.dominant_component(launch),
            launch=launch,
        )
