"""Re-deriving the CPU calibration constants from anchor measurements.

The cost models carry exactly four tuned numbers: the scalar and vector
sustained throughputs of the two CPUs (`specs.py`).  This module makes
that calibration *reproducible*: given anchor observations — "the C++
baseline takes T seconds on workload W" — it solves for the rates that
explain them, so anyone with access to the paper's hardware (or their
own) can re-calibrate instead of trusting ours.

The solve is ordinary least squares on the model equation

    T_run = scalar_ops / r_s + vector_ops / r_v

which is linear in ``1/r_s`` and ``1/r_v``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.normalize import minmax_normalize
from ..data.synthetic import generate_subspace_data
from ..params import ProclusParams
from .specs import CpuSpec

__all__ = ["Anchor", "CalibrationResult", "collect_op_counts", "solve_rates"]


@dataclass(frozen=True, slots=True)
class Anchor:
    """One observation: a workload plus its measured baseline seconds."""

    n: int
    d: int
    seconds: float
    seed: int = 0
    params: ProclusParams | None = None


@dataclass(frozen=True, slots=True)
class CalibrationResult:
    """Solved sustained rates and the fit quality."""

    scalar_ops_per_s: float
    vector_ops_per_s: float
    max_relative_error: float

    def apply_to(self, spec: CpuSpec) -> CpuSpec:
        """Return ``spec`` with the solved rates substituted."""
        import dataclasses

        return dataclasses.replace(
            spec,
            scalar_ops_per_s=self.scalar_ops_per_s,
            vector_ops_per_s=self.vector_ops_per_s,
        )


def collect_op_counts(anchor: Anchor, spec: CpuSpec) -> tuple[float, float]:
    """Run the baseline on the anchor's workload; return (scalar, vector) ops.

    The run uses the given spec only as a carrier — operation counts are
    independent of the rates.
    """
    from ..core.proclus import ProclusEngine

    params = anchor.params if anchor.params is not None else ProclusParams()
    dataset = generate_subspace_data(n=anchor.n, d=anchor.d, seed=anchor.seed)
    data = minmax_normalize(dataset.data)
    engine = ProclusEngine(params=params, seed=anchor.seed, cpu_spec=spec)
    result = engine.fit(data)
    counters = result.stats.counters
    return counters.get("cpu.scalar_ops", 0.0), counters.get("cpu.vector_ops", 0.0)


def solve_rates(
    anchors: list[Anchor], spec: CpuSpec
) -> CalibrationResult:
    """Solve the sustained rates that best explain the anchors.

    With a single anchor the system is under-determined; the solver then
    keeps the spec's scalar/vector *ratio* and scales both rates to
    match the anchor exactly.
    """
    if not anchors:
        raise ValueError("need at least one anchor")
    counts = [collect_op_counts(anchor, spec) for anchor in anchors]
    times = np.array([anchor.seconds for anchor in anchors], dtype=np.float64)
    if np.any(times <= 0):
        raise ValueError("anchor seconds must be positive")

    if len(anchors) == 1:
        scalar_ops, vector_ops = counts[0]
        modeled = (
            scalar_ops / spec.scalar_ops_per_s
            + vector_ops / spec.vector_ops_per_s
        )
        scale = modeled / times[0]
        result = CalibrationResult(
            scalar_ops_per_s=spec.scalar_ops_per_s * scale,
            vector_ops_per_s=spec.vector_ops_per_s * scale,
            max_relative_error=0.0,
        )
        return result

    design = np.array(counts, dtype=np.float64)  # columns: scalar, vector ops
    # Solve T = design @ [1/r_s, 1/r_v] with non-negativity via clipping.
    inverse_rates, *_ = np.linalg.lstsq(design, times, rcond=None)
    inverse_rates = np.clip(inverse_rates, 1e-12, None)
    predicted = design @ inverse_rates
    max_err = float(np.max(np.abs(predicted - times) / times))
    return CalibrationResult(
        scalar_ops_per_s=1.0 / inverse_rates[0],
        vector_ops_per_s=1.0 / inverse_rates[1],
        max_relative_error=max_err,
    )
