"""Hardware specifications of the paper's two evaluation machines.

The paper (Section 5) uses:

* a workstation with an Intel Core i7-9750H (2.6 GHz) and a GeForce
  GTX 1660 Ti (6 GB) for real-world and small/medium synthetic data, and
* a workstation with an Intel Core i9-10940X (3.3 GHz) and a GeForce
  RTX 3090 (24 GB) for the larger synthetic datasets.

The published architectural numbers below (SM counts, clocks, memory
bandwidth, occupancy limits) come from the vendor datasheets.  The
``*_eff`` fields are *calibration constants*: effective sustained
throughputs for the memory-access patterns PROCLUS exhibits (strided
float reads, atomic appends).  They are the only tuned quantities in
the cost models and are chosen once so that the modeled baseline
running time at the paper's default workload is in the paper's ballpark;
all *relative* results (speedups, crossovers, scaling shapes) follow
from the operation counts, not from these constants.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CpuSpec",
    "GpuSpec",
    "INTEL_I7_9750H",
    "INTEL_I9_10940X",
    "GTX_1660_TI",
    "RTX_3090",
    "gpu_for_problem",
    "cpu_for_problem",
]


@dataclass(frozen=True, slots=True)
class CpuSpec:
    """A CPU model used by the scalar and multi-core cost models.

    Attributes
    ----------
    name:
        Marketing name of the part.
    cores:
        Number of physical cores available to the multi-core model.
    clock_hz:
        Base clock.
    scalar_ops_per_s:
        Calibrated sustained scalar-operation throughput of a single
        core on PROCLUS-like loop nests (includes cache-miss stalls).
    vector_ops_per_s:
        Calibrated sustained throughput of a single core for the
        *vectorizable* inner loops (the compiler SIMD-izes the
        contiguous per-dimension loops of the C++ baseline).
    parallel_efficiency:
        Fraction of linear scaling achieved by the OpenMP version
        (below 1 because of scheduling and memory-bandwidth sharing).
    fork_join_overhead_s:
        Cost of entering/leaving one parallel region.
    """

    name: str
    cores: int
    clock_hz: float
    scalar_ops_per_s: float
    vector_ops_per_s: float
    parallel_efficiency: float
    fork_join_overhead_s: float


@dataclass(frozen=True, slots=True)
class GpuSpec:
    """A GPU model used by the kernel-level roofline cost model.

    Architectural limits mirror the CUDA occupancy rules; the two
    ``*_eff`` throughputs are calibrated sustained rates.
    """

    name: str
    sm_count: int
    cores_per_sm: int
    clock_hz: float
    memory_bytes: int
    mem_bandwidth_bytes_per_s: float
    #: Fraction of peak bandwidth a well-coalesced kernel sustains
    #: (the paper's Nsight numbers show ~86% for the heavy kernels).
    mem_bandwidth_efficiency: float
    #: Sustained global atomic operations per second across the device.
    atomic_ops_per_s: float
    #: Fixed host-side cost of launching one kernel.
    kernel_launch_overhead_s: float
    # --- occupancy limits (per SM) ---
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    registers_per_sm: int
    shared_mem_per_sm: int
    warp_size: int = 32
    #: Memory unavailable to the application (CUDA context, display).
    #: The paper reports only "4.2 GB of free memory" on the 6 GB card.
    reserved_bytes: int = 0
    # --- interconnect (multi-device fleets) ---
    #: Sustained device-to-device bandwidth for collective steps.  PCIe
    #: 3.0 x16 class by default; NVLink-class parts override it.  A
    #: link between two devices runs at the slower endpoint's rate.
    interconnect_bandwidth_bytes_per_s: float = 12e9
    #: Per-hop latency of one collective step on this device's link.
    interconnect_latency_s: float = 1.5e-6

    @property
    def usable_bytes(self) -> int:
        """Memory available to the application."""
        return self.memory_bytes - self.reserved_bytes

    @property
    def core_count(self) -> int:
        """Total CUDA core count."""
        return self.sm_count * self.cores_per_sm

    @property
    def peak_flops(self) -> float:
        """Peak single-precision FLOP/s (FMA counted as two)."""
        return self.core_count * self.clock_hz * 2.0

    @property
    def effective_bandwidth(self) -> float:
        """Sustained global-memory bandwidth in bytes/s."""
        return self.mem_bandwidth_bytes_per_s * self.mem_bandwidth_efficiency


#: CPU of the small/medium workstation (6 physical cores, 12 threads).
INTEL_I7_9750H = CpuSpec(
    name="Intel Core i7-9750H",
    cores=6,
    clock_hz=2.6e9,
    scalar_ops_per_s=6.0e7,
    vector_ops_per_s=4.2e8,
    parallel_efficiency=0.85,
    fork_join_overhead_s=8e-6,
)

#: CPU of the large workstation (14 physical cores).
INTEL_I9_10940X = CpuSpec(
    name="Intel Core i9-10940X",
    cores=14,
    clock_hz=3.3e9,
    scalar_ops_per_s=7.5e7,
    vector_ops_per_s=5.2e8,
    parallel_efficiency=0.85,
    fork_join_overhead_s=8e-6,
)

#: GPU of the small/medium workstation (Turing TU116, 6 GB).
GTX_1660_TI = GpuSpec(
    name="GeForce GTX 1660 Ti",
    sm_count=24,
    cores_per_sm=64,
    clock_hz=1.77e9,
    memory_bytes=6 * 1024**3,
    mem_bandwidth_bytes_per_s=288e9,
    mem_bandwidth_efficiency=0.86,
    atomic_ops_per_s=2.0e9,
    kernel_launch_overhead_s=4.0e-6,
    max_threads_per_sm=1024,
    max_threads_per_block=1024,
    max_blocks_per_sm=16,
    registers_per_sm=65536,
    shared_mem_per_sm=64 * 1024,
    reserved_bytes=int(1.8 * 1024**3),
)

#: GPU of the large workstation (Ampere GA102, 24 GB).
RTX_3090 = GpuSpec(
    name="GeForce RTX 3090",
    sm_count=82,
    cores_per_sm=128,
    clock_hz=1.70e9,
    memory_bytes=24 * 1024**3,
    mem_bandwidth_bytes_per_s=936e9,
    mem_bandwidth_efficiency=0.86,
    atomic_ops_per_s=4.0e9,
    kernel_launch_overhead_s=4.0e-6,
    max_threads_per_sm=1536,
    max_threads_per_block=1024,
    max_blocks_per_sm=16,
    registers_per_sm=65536,
    shared_mem_per_sm=100 * 1024,
    reserved_bytes=int(1.2 * 1024**3),
    # GA102 exposes NVLink (112.5 GB/s per direction on the 3090);
    # model a conservative sustained rate and a shorter hop latency.
    interconnect_bandwidth_bytes_per_s=56e9,
    interconnect_latency_s=0.7e-6,
)

#: Threshold above which the paper moves experiments to the big machine.
_LARGE_PROBLEM_POINTS = 2**21


def gpu_for_problem(n: int) -> GpuSpec:
    """Return the GPU the paper would use for an ``n``-point dataset.

    The paper runs datasets up to about a million points on the
    GTX 1660 Ti and moves larger synthetic sweeps to the RTX 3090.
    """
    return RTX_3090 if n >= _LARGE_PROBLEM_POINTS else GTX_1660_TI


def cpu_for_problem(n: int) -> CpuSpec:
    """Return the CPU paired with :func:`gpu_for_problem`."""
    return INTEL_I9_10940X if n >= _LARGE_PROBLEM_POINTS else INTEL_I7_9750H
