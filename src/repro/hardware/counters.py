"""Work counters shared by all algorithm variants.

Every variant records the work it *actually performs* — e.g. the FAST
variants record fewer distance computations because their caches hit —
into a :class:`WorkCounter`.  The cost models translate these counters
into modeled seconds; the benchmarks additionally report the raw
counters so the algorithmic savings can be inspected independently of
any hardware assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WorkCounter", "KernelLaunch"]


@dataclass(frozen=True, slots=True)
class KernelLaunch:
    """One simulated kernel launch and its aggregate work.

    Attributes
    ----------
    name:
        Kernel name (e.g. ``"compute_l.distances"``).
    phase:
        Algorithm phase the launch belongs to.
    grid_blocks:
        Number of thread blocks launched.
    threads_per_block:
        Block size.
    flops:
        Total arithmetic operations performed by all threads.
    gmem_bytes:
        Total global-memory traffic (reads + writes) in bytes.
    atomic_ops:
        Total atomic operations on global memory.
    smem_bytes_per_block:
        Static shared memory per block (occupancy input).
    registers_per_thread:
        Register usage per thread (occupancy input).
    """

    name: str
    phase: str
    grid_blocks: int
    threads_per_block: int
    flops: float = 0.0
    gmem_bytes: float = 0.0
    atomic_ops: float = 0.0
    smem_bytes_per_block: int = 0
    registers_per_thread: int = 32
    #: Effective instructions-per-cycle factor of the kernel's inner
    #: loop (1.0 = independent ops; ~0.25 for dependent accumulation
    #: chains like the serial per-dimension distance loops, which the
    #: paper notes are "not parallelized across dimensions").
    ipc: float = 1.0

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.threads_per_block


class WorkCounter:
    """Accumulates named work quantities for one algorithm run."""

    def __init__(self) -> None:
        self._counts: dict[str, float] = {}
        self.kernel_launches: list[KernelLaunch] = []

    def add(self, name: str, amount: float) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self._counts[name] = self._counts.get(name, 0.0) + amount

    def record_launch(self, launch: KernelLaunch) -> None:
        """Record a kernel launch and fold its work into the counters."""
        self.kernel_launches.append(launch)
        self.add("gpu.kernel_launches", 1)
        self.add("gpu.flops", launch.flops)
        self.add("gpu.gmem_bytes", launch.gmem_bytes)
        self.add("gpu.atomic_ops", launch.atomic_ops)

    def get(self, name: str, default: float = 0.0) -> float:
        return self._counts.get(name, default)

    def as_dict(self) -> dict[str, float]:
        """Return a copy of all counters."""
        return dict(self._counts)

    def merge(self, other: "WorkCounter") -> None:
        """Fold another counter's totals into this one."""
        for name, amount in other._counts.items():
            self.add(name, amount)
        self.kernel_launches.extend(other.kernel_launches)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"{k}={v:,.0f}" for k, v in sorted(self._counts.items()))
        return f"WorkCounter({body})"
