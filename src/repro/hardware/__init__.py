"""Hardware specifications and analytical cost models.

The paper measures wall-clock time on two CPU/GPU workstations.  This
reproduction runs on a plain CPU, so every algorithm variant *counts*
the work it performs (arithmetic, memory traffic, atomics, kernel
launches) and the models in this package translate those counts into
modeled seconds on the paper's hardware.  See ``DESIGN.md`` for why
this substitution preserves the paper's claims.
"""

from .specs import (
    CpuSpec,
    GpuSpec,
    GTX_1660_TI,
    RTX_3090,
    INTEL_I7_9750H,
    INTEL_I9_10940X,
    gpu_for_problem,
    cpu_for_problem,
)
from .counters import WorkCounter, KernelLaunch
from .cost_model import (
    HardwareModel,
    ScalarCpuModel,
    MulticoreCpuModel,
    GpuModel,
)
from .calibration import Anchor, CalibrationResult, solve_rates

__all__ = [
    "CpuSpec",
    "GpuSpec",
    "GTX_1660_TI",
    "RTX_3090",
    "INTEL_I7_9750H",
    "INTEL_I9_10940X",
    "gpu_for_problem",
    "cpu_for_problem",
    "WorkCounter",
    "KernelLaunch",
    "HardwareModel",
    "ScalarCpuModel",
    "MulticoreCpuModel",
    "GpuModel",
    "Anchor",
    "CalibrationResult",
    "solve_rates",
]
