"""Dataset persistence: save/load generated datasets as ``.npz`` files.

Benchmarks reuse generated datasets across runs; this module gives them
a stable on-disk format that round-trips the ground truth.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..exceptions import DataValidationError
from .synthetic import SyntheticDataset

__all__ = ["save_dataset", "load_saved_dataset"]


def save_dataset(dataset: SyntheticDataset, path: str | Path) -> Path:
    """Write a dataset (points + ground truth) to ``path`` (``.npz``)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    subspaces_json = json.dumps([list(dims) for dims in dataset.subspaces])
    np.savez_compressed(
        path,
        data=dataset.data,
        labels=dataset.labels,
        subspaces=np.array(subspaces_json),
        name=np.array(dataset.name),
    )
    return path


def load_saved_dataset(path: str | Path) -> SyntheticDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise DataValidationError(f"dataset file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        try:
            data = archive["data"]
            labels = archive["labels"]
            subspaces_json = str(archive["subspaces"])
            name = str(archive["name"])
        except KeyError as exc:
            raise DataValidationError(
                f"{path} is not a saved dataset (missing {exc})"
            ) from exc
    subspaces = tuple(tuple(int(j) for j in dims) for dims in json.loads(subspaces_json))
    return SyntheticDataset(data=data, labels=labels, subspaces=subspaces, name=name)
