"""Stable dataset fingerprints.

A fingerprint identifies the *clustering-relevant content* of a
dataset: two arrays that the engines would treat identically map to the
same digest.  :func:`~repro.core.base.validate_data` canonicalizes
every input to a C-contiguous float32 array before clustering, so the
fingerprint hashes exactly that canonical form — making it

* **memory-order invariant** — a Fortran-ordered array, a transposed
  view of a transpose, or a sliced copy fingerprint the same as their
  C-contiguous equivalent;
* **dtype robust** — an int or float64 array fingerprints the same as
  its float32 canonicalization (the values the engines actually see).

Arrays whose float32 canonicalizations differ in shape or in any value
get different digests (SHA-256 over shape + raw bytes).

Used by the serving layer's dataset registry (:mod:`repro.serve`) to
key uploaded datasets and their shareable partial state, and by the
study checkpoint (:mod:`repro.resilience.checkpoint`) to refuse
resuming against different data.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..exceptions import DataValidationError

__all__ = ["dataset_fingerprint"]


def dataset_fingerprint(data: np.ndarray) -> str:
    """SHA-256 digest of a dataset's canonical (C-order float32) form.

    Parameters
    ----------
    data:
        A numeric array of any dtype and memory order.  Arbitrary
        dimensionality is accepted (the serve registry fingerprints
        ``(n, d)`` datasets, but the digest is well-defined for any
        shape).

    Returns
    -------
    str
        64-character hex digest.  Equal for arrays whose canonical
        float32 forms are bit-identical; different otherwise.
    """
    array = np.asarray(data)
    if not np.issubdtype(array.dtype, np.number):
        raise DataValidationError(
            f"cannot fingerprint non-numeric data (dtype {array.dtype})"
        )
    canonical = np.ascontiguousarray(array, dtype=np.float32)
    digest = hashlib.sha256()
    digest.update(repr(canonical.shape).encode())
    digest.update(canonical.tobytes())
    return digest.hexdigest()
