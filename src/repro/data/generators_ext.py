"""Extended synthetic generators (the rest of the Beer et al. toolbox).

The paper's default workload uses axis-parallel Gaussian clusters in
arbitrary subspaces (:func:`repro.data.synthetic.generate_subspace_data`).
The generator it builds on (Beer, Schüler, Seidl — LWDA 2019) supports
richer structure that is useful for stress-testing projected
clustering; this module implements the pieces downstream users ask for:

* **overlapping subspaces** — clusters that share dimensions, so
  FindDimensions has to disentangle them;
* **correlated subspace clusters** — clusters concentrated around a
  random linear manifold inside their subspace rather than a point
  (harder for axis-parallel methods, a known PROCLUS limitation worth
  exposing);
* **imbalanced clusters** — power-law size distributions, exercising
  the bad-medoid machinery (tiny clusters fall below the ``minDev``
  threshold).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataValidationError
from .synthetic import SyntheticDataset

__all__ = [
    "generate_overlapping_subspace_data",
    "generate_correlated_subspace_data",
    "generate_imbalanced_subspace_data",
]


def _finish(
    data: np.ndarray,
    labels: np.ndarray,
    subspaces: list[tuple[int, ...]],
    rng: np.random.Generator,
    name: str,
    value_range: tuple[float, float],
) -> SyntheticDataset:
    low, high = value_range
    np.clip(data, low, high, out=data)
    order = rng.permutation(len(data))
    return SyntheticDataset(
        data=data[order].astype(np.float32),
        labels=labels[order],
        subspaces=tuple(subspaces),
        name=name,
    )


def generate_overlapping_subspace_data(
    n: int = 10_000,
    d: int = 15,
    n_clusters: int = 6,
    subspace_dims: int = 5,
    shared_dims: int = 2,
    std: float = 5.0,
    value_range: tuple[float, float] = (0.0, 100.0),
    seed: int | np.random.Generator | None = None,
) -> SyntheticDataset:
    """Clusters whose subspaces share ``shared_dims`` common dimensions.

    Every cluster's subspace contains the same ``shared_dims`` "anchor"
    dimensions plus ``subspace_dims - shared_dims`` private ones, so the
    anchor dimensions are informative for *all* clusters at once.
    """
    if not 0 <= shared_dims <= subspace_dims:
        raise DataValidationError(
            f"shared_dims must be in [0, subspace_dims], got {shared_dims}"
        )
    if subspace_dims > d:
        raise DataValidationError(
            f"subspace_dims {subspace_dims} exceeds d {d}"
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    low, high = value_range
    anchors = rng.choice(d, size=shared_dims, replace=False)
    rest = np.setdiff1d(np.arange(d), anchors)

    sizes = np.full(n_clusters, n // n_clusters)
    sizes[: n % n_clusters] += 1
    data = np.empty((n, d), dtype=np.float64)
    labels = np.empty(n, dtype=np.int64)
    subspaces: list[tuple[int, ...]] = []
    start = 0
    private_count = subspace_dims - shared_dims
    for i in range(n_clusters):
        size = int(sizes[i])
        private = rng.choice(rest, size=private_count, replace=False)
        dims = np.sort(np.concatenate([anchors, private]))
        subspaces.append(tuple(int(j) for j in dims))
        margin = min(3.0 * std, 0.4 * (high - low))
        center = rng.uniform(low + margin, high - margin, size=len(dims))
        block = rng.uniform(low, high, size=(size, d))
        block[:, dims] = rng.normal(center, std, size=(size, len(dims)))
        data[start : start + size] = block
        labels[start : start + size] = i
        start += size
    return _finish(data, labels, subspaces, rng,
                   f"overlapping-n{n}-d{d}", value_range)


def generate_correlated_subspace_data(
    n: int = 10_000,
    d: int = 15,
    n_clusters: int = 5,
    subspace_dims: int = 4,
    std: float = 2.0,
    extent: float = 40.0,
    value_range: tuple[float, float] = (0.0, 100.0),
    seed: int | np.random.Generator | None = None,
) -> SyntheticDataset:
    """Clusters stretched along a random line inside their subspace.

    Points are Gaussian around a random segment (length ``extent``)
    rather than a point — the "generalized projected clusters" of
    ORCLUS-style generators.  PROCLUS's axis-parallel model can still
    find these clusters but must widen its dimension picks; the
    generator is mainly useful for robustness examples and tests.
    """
    if subspace_dims > d:
        raise DataValidationError(
            f"subspace_dims {subspace_dims} exceeds d {d}"
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    low, high = value_range

    sizes = np.full(n_clusters, n // n_clusters)
    sizes[: n % n_clusters] += 1
    data = np.empty((n, d), dtype=np.float64)
    labels = np.empty(n, dtype=np.int64)
    subspaces: list[tuple[int, ...]] = []
    start = 0
    for i in range(n_clusters):
        size = int(sizes[i])
        dims = np.sort(rng.choice(d, size=subspace_dims, replace=False))
        subspaces.append(tuple(int(j) for j in dims))
        margin = extent / 2 + 3 * std
        center = rng.uniform(low + margin, high - margin, size=subspace_dims)
        direction = rng.normal(size=subspace_dims)
        direction /= np.linalg.norm(direction)
        t = rng.uniform(-extent / 2, extent / 2, size=size)
        block = rng.uniform(low, high, size=(size, d))
        block[:, dims] = (
            center[None, :]
            + t[:, None] * direction[None, :]
            + rng.normal(0.0, std, size=(size, subspace_dims))
        )
        data[start : start + size] = block
        labels[start : start + size] = i
        start += size
    return _finish(data, labels, subspaces, rng,
                   f"correlated-n{n}-d{d}", value_range)


def generate_imbalanced_subspace_data(
    n: int = 10_000,
    d: int = 15,
    n_clusters: int = 6,
    subspace_dims: int = 5,
    std: float = 3.0,
    imbalance: float = 2.0,
    value_range: tuple[float, float] = (0.0, 100.0),
    seed: int | np.random.Generator | None = None,
) -> SyntheticDataset:
    """Power-law cluster sizes: cluster ``i`` gets weight ``(i+1)^-imbalance``.

    With the default parameters the smallest cluster falls well below
    the ``n/k * minDev`` bad-medoid threshold, exercising the medoid
    replacement machinery the way skewed real data does.
    """
    if imbalance < 0:
        raise DataValidationError(f"imbalance must be >= 0, got {imbalance}")
    if subspace_dims > d:
        raise DataValidationError(
            f"subspace_dims {subspace_dims} exceeds d {d}"
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    low, high = value_range

    weights = (np.arange(1, n_clusters + 1, dtype=np.float64)) ** (-imbalance)
    sizes = np.maximum(1, np.floor(n * weights / weights.sum())).astype(np.int64)
    sizes[0] += n - sizes.sum()

    data = np.empty((n, d), dtype=np.float64)
    labels = np.empty(n, dtype=np.int64)
    subspaces: list[tuple[int, ...]] = []
    start = 0
    for i in range(n_clusters):
        size = int(sizes[i])
        dims = np.sort(rng.choice(d, size=subspace_dims, replace=False))
        subspaces.append(tuple(int(j) for j in dims))
        margin = min(3.0 * std, 0.4 * (high - low))
        center = rng.uniform(low + margin, high - margin, size=subspace_dims)
        block = rng.uniform(low, high, size=(size, d))
        block[:, dims] = rng.normal(center, std, size=(size, subspace_dims))
        data[start : start + size] = block
        labels[start : start + size] = i
        start += size
    return _finish(data, labels, subspaces, rng,
                   f"imbalanced-n{n}-d{d}", value_range)
