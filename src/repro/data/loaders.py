"""Loading user datasets from delimited text files.

The UCI files the paper uses (glass/vowel/pendigits) ship as plain
comma-separated text with a class column; users bringing their own data
usually have the same shape.  :func:`load_delimited` parses such files
into the library's convention — a float feature matrix plus an optional
integer label vector — handling headers, a label column by index or
name, and missing values.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..exceptions import DataValidationError

__all__ = ["LoadedTable", "load_delimited"]


@dataclass(slots=True)
class LoadedTable:
    """A parsed delimited file."""

    data: np.ndarray  #: (n, d) float32 features
    labels: np.ndarray | None  #: (n,) int64 class labels, if a column was given
    feature_names: tuple[str, ...]  #: header names ("f0".. when headerless)
    label_mapping: dict[str, int]  #: class value -> integer label

    @property
    def n(self) -> int:
        return self.data.shape[0]

    @property
    def d(self) -> int:
        return self.data.shape[1]


def _resolve_label_column(
    label_column: int | str | None, header: list[str] | None, width: int
) -> int | None:
    if label_column is None:
        return None
    if isinstance(label_column, str):
        if header is None:
            raise DataValidationError(
                f"label column {label_column!r} named but the file has no header"
            )
        try:
            return header.index(label_column)
        except ValueError:
            raise DataValidationError(
                f"label column {label_column!r} not in header {header}"
            ) from None
    index = int(label_column)
    if index < 0:
        index += width
    if not 0 <= index < width:
        raise DataValidationError(
            f"label column {label_column} out of range for {width} columns"
        )
    return index


def load_delimited(
    path: str | Path,
    delimiter: str = ",",
    has_header: bool | None = None,
    label_column: int | str | None = None,
    missing_values: tuple[str, ...] = ("", "?", "NA", "NaN"),
    drop_missing: bool = True,
) -> LoadedTable:
    """Parse a delimited text file into features (+ optional labels).

    Parameters
    ----------
    path:
        File to read.
    delimiter:
        Field separator.
    has_header:
        Whether the first row holds column names; auto-detected (a row
        whose fields are not all numeric) when ``None``.
    label_column:
        Column holding class labels — an index (negative allowed) or a
        header name.  Class values are mapped to ``0..c-1`` in first-
        appearance order (returned in ``label_mapping``).
    missing_values:
        Tokens treated as missing.
    drop_missing:
        Drop rows containing missing features (the alternative —
        raising — applies when ``False``).
    """
    path = Path(path)
    if not path.exists():
        raise DataValidationError(f"file not found: {path}")
    with open(path, newline="") as handle:
        rows = [row for row in csv.reader(handle, delimiter=delimiter) if row]
    if not rows:
        raise DataValidationError(f"{path} contains no data rows")

    def _numeric(cell: str) -> bool:
        cell = cell.strip()
        if cell in missing_values:
            return True
        try:
            float(cell)
        except ValueError:
            return False
        return True

    if has_header is None:
        # A header is a row that is non-numeric in a column where the
        # next row *is* numeric; a string label column (non-numeric in
        # both rows) is not evidence of a header.
        if len(rows) >= 2 and len(rows[0]) == len(rows[1]):
            has_header = any(
                not _numeric(a) and _numeric(b)
                for a, b in zip(rows[0], rows[1])
            )
        else:
            has_header = not all(_numeric(cell) for cell in rows[0])
    header = [cell.strip() for cell in rows[0]] if has_header else None
    body = rows[1:] if has_header else rows
    if not body:
        raise DataValidationError(f"{path} has a header but no data rows")

    width = len(body[0])
    if any(len(row) != width for row in body):
        raise DataValidationError(f"{path} has rows of differing width")
    label_index = _resolve_label_column(label_column, header, width)

    feature_indices = [j for j in range(width) if j != label_index]
    feature_names = tuple(
        header[j] if header else f"f{j}" for j in feature_indices
    )

    features: list[list[float]] = []
    raw_labels: list[str] = []
    dropped = 0
    for row in body:
        cells = [cell.strip() for cell in row]
        values = []
        missing = False
        for j in feature_indices:
            if cells[j] in missing_values:
                missing = True
                break
            try:
                values.append(float(cells[j]))
            except ValueError:
                raise DataValidationError(
                    f"{path}: non-numeric feature value {cells[j]!r}"
                ) from None
        if missing:
            if not drop_missing:
                raise DataValidationError(f"{path}: missing value in row {row}")
            dropped += 1
            continue
        features.append(values)
        if label_index is not None:
            raw_labels.append(cells[label_index])

    if not features:
        raise DataValidationError(f"{path}: every row had missing values")

    data = np.asarray(features, dtype=np.float32)
    labels = None
    mapping: dict[str, int] = {}
    if label_index is not None:
        for value in raw_labels:
            if value not in mapping:
                mapping[value] = len(mapping)
        labels = np.asarray([mapping[v] for v in raw_labels], dtype=np.int64)
    return LoadedTable(
        data=data,
        labels=labels,
        feature_names=feature_names,
        label_mapping=mapping,
    )
