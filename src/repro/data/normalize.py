"""Min-max normalization.

The paper normalizes every dataset so all dimensions lie in ``[0, 1]``
("The real-world and synthetic datasets are minmax normalized").
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataValidationError

__all__ = ["minmax_normalize"]


def minmax_normalize(data: np.ndarray) -> np.ndarray:
    """Scale each dimension of ``data`` to ``[0, 1]``.

    Constant dimensions (max == min) are mapped to 0.  The input is not
    modified; a new float32 array is returned.

    Raises
    ------
    DataValidationError
        If the input is not a 2-D numeric array or contains NaN/inf.
    """
    array = np.asarray(data)
    if array.ndim != 2:
        raise DataValidationError(
            f"expected a 2-D (n, d) array, got shape {array.shape}"
        )
    if array.size == 0:
        raise DataValidationError("dataset is empty")
    if not np.issubdtype(array.dtype, np.number):
        raise DataValidationError(f"expected numeric data, got dtype {array.dtype}")
    array = array.astype(np.float32, copy=True)
    if not np.all(np.isfinite(array)):
        raise DataValidationError("dataset contains NaN or infinite values")
    mins = array.min(axis=0)
    spans = array.max(axis=0) - mins
    constant = spans == 0
    spans[constant] = 1.0
    array -= mins
    array /= spans
    array[:, constant] = 0.0
    return array
