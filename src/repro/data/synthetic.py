"""Synthetic projected-cluster generator.

Follows the paper's data recipe (Section 5, "Synthetic data"): ``n``
points in ``d`` dimensions with values in ``[0, 100]``, distributed
among Gaussian clusters that live in random *arbitrary* subspaces (the
modification of [18] to the generator of [6]); the remaining dimensions
of a cluster's points are uniform noise.  Defaults match the paper:
64,000 points, 15 dimensions, 10 clusters in 5-dimensional subspaces
with standard deviation 5.0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DataValidationError

__all__ = ["SyntheticDataset", "generate_subspace_data", "default_dataset"]


@dataclass(slots=True)
class SyntheticDataset:
    """A generated dataset with its ground truth.

    Attributes
    ----------
    data:
        ``(n, d)`` float32 array of points.
    labels:
        ``(n,)`` ground-truth cluster labels; ``-1`` marks generated
        noise points.
    subspaces:
        Tuple of sorted dimension tuples — the true subspace of each
        generated cluster.
    name:
        Identifier used in benchmark output.
    """

    data: np.ndarray
    labels: np.ndarray
    subspaces: tuple[tuple[int, ...], ...]
    name: str = "synthetic"

    @property
    def n(self) -> int:
        return self.data.shape[0]

    @property
    def d(self) -> int:
        return self.data.shape[1]

    @property
    def n_clusters(self) -> int:
        return len(self.subspaces)


def _cluster_sizes(
    n_points: int, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Split ``n_points`` among clusters, roughly evenly (+-20 %)."""
    weights = rng.uniform(0.8, 1.2, size=n_clusters)
    sizes = np.floor(n_points * weights / weights.sum()).astype(np.int64)
    sizes[sizes < 1] = 1
    # Distribute the rounding remainder over the largest clusters.
    remainder = n_points - int(sizes.sum())
    order = np.argsort(-sizes)
    for i in range(abs(remainder)):
        sizes[order[i % n_clusters]] += 1 if remainder > 0 else -1
    return sizes


def generate_subspace_data(
    n: int = 64_000,
    d: int = 15,
    n_clusters: int = 10,
    subspace_dims: int = 5,
    std: float = 5.0,
    value_range: tuple[float, float] = (0.0, 100.0),
    noise_fraction: float = 0.0,
    seed: int | np.random.Generator | None = None,
    name: str | None = None,
) -> SyntheticDataset:
    """Generate Gaussian clusters in random arbitrary subspaces.

    Parameters mirror the paper's generator defaults.  ``noise_fraction``
    adds uniformly distributed points labeled ``-1`` (the paper's default
    datasets contain none, but the outlier-removal experiments use it).

    Returns
    -------
    SyntheticDataset
        Points, ground-truth labels, and true subspaces.
    """
    if n < 1:
        raise DataValidationError(f"n must be >= 1, got {n}")
    if d < 1:
        raise DataValidationError(f"d must be >= 1, got {d}")
    if not 1 <= n_clusters <= n:
        raise DataValidationError(
            f"n_clusters must be in [1, n], got {n_clusters} for n={n}"
        )
    if not 1 <= subspace_dims <= d:
        raise DataValidationError(
            f"subspace_dims must be in [1, d], got {subspace_dims} for d={d}"
        )
    if std <= 0:
        raise DataValidationError(f"std must be positive, got {std}")
    if not 0.0 <= noise_fraction < 1.0:
        raise DataValidationError(
            f"noise_fraction must be in [0, 1), got {noise_fraction}"
        )
    low, high = value_range
    if not low < high:
        raise DataValidationError(f"invalid value range {value_range}")

    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    n_noise = int(round(n * noise_fraction))
    n_clustered = n - n_noise
    if n_clustered < n_clusters:
        raise DataValidationError(
            "too much noise: fewer clustered points than clusters"
        )

    sizes = _cluster_sizes(n_clustered, n_clusters, rng)
    data = np.empty((n, d), dtype=np.float32)
    labels = np.empty(n, dtype=np.int64)
    subspaces: list[tuple[int, ...]] = []

    start = 0
    for i in range(n_clusters):
        size = int(sizes[i])
        dims = np.sort(rng.choice(d, size=subspace_dims, replace=False))
        subspaces.append(tuple(int(j) for j in dims))
        # Keep the center away from the borders so the Gaussian is not
        # clipped asymmetrically.
        margin = min(3.0 * std, 0.4 * (high - low))
        center = rng.uniform(low + margin, high - margin, size=subspace_dims)
        block = rng.uniform(low, high, size=(size, d)).astype(np.float32)
        block[:, dims] = rng.normal(center, std, size=(size, subspace_dims)).astype(
            np.float32
        )
        np.clip(block, low, high, out=block)
        data[start : start + size] = block
        labels[start : start + size] = i
        start += size

    if n_noise:
        data[start:] = rng.uniform(low, high, size=(n_noise, d)).astype(np.float32)
        labels[start:] = -1

    # Shuffle so cluster membership is not encoded in point order.
    order = rng.permutation(n)
    dataset_name = name if name is not None else f"synthetic-n{n}-d{d}"
    return SyntheticDataset(
        data=data[order],
        labels=labels[order],
        subspaces=tuple(subspaces),
        name=dataset_name,
    )


def default_dataset(
    n: int = 64_000, seed: int | None = 0
) -> SyntheticDataset:
    """The paper's default synthetic workload at a chosen size."""
    return generate_subspace_data(n=n, seed=seed)
