"""Stand-ins for the paper's real-world datasets.

The paper evaluates on UCI glass (214 x 9), vowel (990 x 10), pendigits
(7,494 x 16) and three extracts of the SDSS SkyServer catalogue:
sky 1x1 (30,390 x 17), sky 2x2 (133,095 x 17) and sky 5x5
(934,073 x 17).  Those files are not available offline, so this module
synthesizes datasets with the published sizes/dimensionalities and
qualitatively similar structure:

* the UCI stand-ins contain a handful of overlapping Gaussian classes
  with class-dependent informative feature subsets (like the originals,
  where e.g. refractive index separates glass types);
* the sky stand-ins contain two uniform "coordinate" features (the RA /
  DEC extract window) plus correlated photometric magnitudes with
  embedded projected clusters (object populations) and a noise tail.

The running-time experiments — the only ones the paper performs on real
data — depend on ``n``, ``d`` and cluster structure, all of which are
preserved (see ``DESIGN.md``, substitution table).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataValidationError
from .synthetic import SyntheticDataset, generate_subspace_data

__all__ = ["REAL_WORLD_SIZES", "load_dataset", "dataset_names"]

#: Published size and dimensionality of each real-world dataset.
REAL_WORLD_SIZES: dict[str, tuple[int, int]] = {
    "glass": (214, 9),
    "vowel": (990, 10),
    "pendigits": (7_494, 16),
    "sky-1x1": (30_390, 17),
    "sky-2x2": (133_095, 17),
    "sky-5x5": (934_073, 17),
}

#: Number of classes / embedded populations used for each stand-in.
_CLASS_COUNTS = {
    "glass": 6,
    "vowel": 11,
    "pendigits": 10,
    "sky-1x1": 8,
    "sky-2x2": 8,
    "sky-5x5": 8,
}


def dataset_names() -> tuple[str, ...]:
    """Names accepted by :func:`load_dataset`, smallest first."""
    return tuple(sorted(REAL_WORLD_SIZES, key=lambda k: REAL_WORLD_SIZES[k][0]))


def _uci_standin(name: str, seed: int) -> SyntheticDataset:
    """Small UCI-style dataset: overlapping classes, informative subsets."""
    n, d = REAL_WORLD_SIZES[name]
    classes = _CLASS_COUNTS[name]
    informative = max(2, d // 2)
    return generate_subspace_data(
        n=n,
        d=d,
        n_clusters=classes,
        subspace_dims=informative,
        std=12.0,  # broad, overlapping classes like the UCI originals
        noise_fraction=0.05,
        seed=seed,
        name=name,
    )


def _sky_standin(name: str, seed: int) -> SyntheticDataset:
    """SkyServer-style extract: coordinates + correlated magnitudes."""
    n, d = REAL_WORLD_SIZES[name]
    populations = _CLASS_COUNTS[name]
    rng = np.random.default_rng(seed)

    # Photometric part: object populations clustered in magnitude space.
    photometric = generate_subspace_data(
        n=n,
        d=d - 2,
        n_clusters=populations,
        subspace_dims=5,
        std=3.0,
        noise_fraction=0.10,  # the survey's unclustered background
        seed=rng,
        name=name,
    )
    # Spherical-coordinate part: uniform over the extract window.
    side = float(name.rsplit("-", 1)[1].split("x")[0])
    coords = rng.uniform(0.0, side, size=(n, 2)).astype(np.float32) * 100.0 / side
    data = np.concatenate([coords, photometric.data], axis=1)
    subspaces = tuple(
        tuple(j + 2 for j in dims) for dims in photometric.subspaces
    )
    return SyntheticDataset(
        data=data, labels=photometric.labels, subspaces=subspaces, name=name
    )


def load_dataset(name: str, seed: int = 0) -> SyntheticDataset:
    """Load (synthesize) a real-world stand-in dataset by name.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    seed:
        Seed for the deterministic synthesis.
    """
    if name not in REAL_WORLD_SIZES:
        raise DataValidationError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        )
    if name.startswith("sky-"):
        return _sky_standin(name, seed)
    return _uci_standin(name, seed)
