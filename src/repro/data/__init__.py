"""Datasets: synthetic subspace-cluster generator and real-world stand-ins.

The paper generates synthetic data with the generator of Beer et al.
(LWDA 2019), modified as in GPU-INSCY to place clusters in *arbitrary*
subspaces, and evaluates on UCI datasets (glass, vowel, pendigits) plus
extracts of the SDSS SkyServer catalogue.  Those exact files are not
available offline, so :mod:`repro.data.realworld` synthesizes stand-ins
with the published sizes and dimensionalities (see ``DESIGN.md``).
"""

from .fingerprint import dataset_fingerprint
from .synthetic import SyntheticDataset, generate_subspace_data, default_dataset
from .generators_ext import (
    generate_correlated_subspace_data,
    generate_imbalanced_subspace_data,
    generate_overlapping_subspace_data,
)
from .normalize import minmax_normalize
from .realworld import REAL_WORLD_SIZES, load_dataset, dataset_names
from .io import save_dataset, load_saved_dataset
from .loaders import LoadedTable, load_delimited

__all__ = [
    "dataset_fingerprint",
    "SyntheticDataset",
    "generate_subspace_data",
    "default_dataset",
    "generate_overlapping_subspace_data",
    "generate_correlated_subspace_data",
    "generate_imbalanced_subspace_data",
    "minmax_normalize",
    "REAL_WORLD_SIZES",
    "load_dataset",
    "dataset_names",
    "save_dataset",
    "load_saved_dataset",
    "LoadedTable",
    "load_delimited",
]
