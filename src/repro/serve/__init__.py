"""repro.serve: a multi-tenant clustering service over the engines.

The paper's multi-parameter driver (Section 3.1) shows that concurrent
PROCLUS runs on the same dataset share most of their expensive work —
the sample ``Data'``, the greedy medoid pick, the data upload, and the
FAST caches.  This package turns that observation into an in-process
serving layer:

* :class:`~repro.serve.registry.DatasetRegistry` — fingerprints
  uploaded datasets (:func:`repro.data.fingerprint.dataset_fingerprint`)
  so requests can reference data by content instead of re-uploading it;
* :class:`~repro.serve.scheduler.JobScheduler` — priority queue with
  admission control (queue depth, modeled-backlog, device-memory
  feasibility against the modeled card);
* the request **coalescer** — concurrently queued requests agreeing on
  ``(fingerprint, backend, seed, k, A, B)`` execute as one
  :func:`~repro.core.multiparam.run_coalesced_group`-style group,
  sharing initialization and caches while every response stays
  bit-identical to a direct solo run (the determinism contract the
  differential tests assert);
* :class:`~repro.serve.cache.ResultCache` — memoizes full results per
  ``(fingerprint, backend, seed, params)`` with LRU eviction;
* :class:`~repro.serve.service.ClusterService` — worker threads tying
  it together, running every job under the resilience policies and a
  :class:`~repro.gpu.memory.MemoryBudget` sized to the modeled GPU;
* :func:`~repro.serve.loadgen.run_loadgen` — seeded synthetic request
  mixes producing the ``BENCH_serve.json`` report.
"""

from .cache import ResultCache
from .events import ServeEvent, ServeLog
from .loadgen import run_loadgen
from .registry import DatasetRegistry
from .request import ClusterRequest, JobHandle
from .scheduler import JobScheduler, estimate_device_bytes, estimate_shard_bytes
from .service import ClusterService
from .spool import read_response, serve_spool, write_request

__all__ = [
    "ClusterRequest",
    "ClusterService",
    "DatasetRegistry",
    "JobHandle",
    "JobScheduler",
    "ResultCache",
    "ServeEvent",
    "ServeLog",
    "estimate_device_bytes",
    "estimate_shard_bytes",
    "read_response",
    "run_loadgen",
    "serve_spool",
    "write_request",
]
