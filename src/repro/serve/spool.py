"""Filesystem spool: the transport behind ``repro serve`` / ``repro submit``.

The service is in-process; to drive it from separate invocations the
CLI uses a spool directory::

    SPOOL/
      requests/    <id>.json   written by ``repro submit``
      responses/   <id>.json   written by ``repro serve``
      done/        <id>.json   processed requests (moved, not deleted)

Request and response documents are versioned JSON
(:data:`REQUEST_SCHEMA` / :data:`RESPONSE_SCHEMA`).  A request names
its dataset either as an ``.npy`` path or as a synthetic-generator
spec, so two submitters naming the same data coalesce through the
fingerprint registry exactly like in-process clients.  Responses carry
the clustering summary plus a SHA-256 of the label array, so a client
can check the determinism contract without shipping the labels.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Callable

import numpy as np

from ..data import generate_subspace_data, minmax_normalize
from ..exceptions import ReproError, ServeError
from .service import ClusterService

__all__ = [
    "REQUEST_SCHEMA",
    "RESPONSE_SCHEMA",
    "serve_spool",
    "write_request",
    "read_response",
]

REQUEST_SCHEMA = "repro.serve_request/1"
RESPONSE_SCHEMA = "repro.serve_response/1"


def _spool_dirs(directory: str | Path) -> tuple[Path, Path, Path]:
    root = Path(directory)
    requests = root / "requests"
    responses = root / "responses"
    done = root / "done"
    for path in (requests, responses, done):
        path.mkdir(parents=True, exist_ok=True)
    return requests, responses, done


def write_request(
    directory: str | Path,
    request_id: str,
    *,
    backend: str = "gpu-fast",
    k: int = 10,
    l: int = 5,
    seed: int = 0,
    priority: int = 1,
    npy: str | None = None,
    synthetic: dict | None = None,
) -> Path:
    """Write one spool request; returns its path.

    Exactly one of ``npy`` (path to a saved ``(n, d)`` array) or
    ``synthetic`` (generator spec with ``n``, ``d``, ``clusters``,
    ``seed``) must be given.
    """
    if (npy is None) == (synthetic is None):
        raise ServeError("pass exactly one of npy or synthetic")
    requests, _, _ = _spool_dirs(directory)
    document = {
        "schema": REQUEST_SCHEMA,
        "id": request_id,
        "backend": backend,
        "k": k,
        "l": l,
        "seed": seed,
        "priority": priority,
        "dataset": {"npy": npy} if npy is not None else {"synthetic": synthetic},
    }
    path = requests / f"{request_id}.json"
    path.write_text(json.dumps(document, indent=2))
    return path


def read_response(directory: str | Path, request_id: str) -> dict | None:
    """The response document for ``request_id``, or ``None`` if pending."""
    _, responses, _ = _spool_dirs(directory)
    path = responses / f"{request_id}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _load_request_data(document: dict) -> np.ndarray:
    dataset = document.get("dataset")
    if not isinstance(dataset, dict):
        raise ServeError(f"request {document.get('id')!r} has no dataset")
    if "npy" in dataset:
        return np.load(dataset["npy"])
    if "synthetic" in dataset:
        spec = dataset["synthetic"]
        return minmax_normalize(
            generate_subspace_data(
                n=int(spec.get("n", 2000)),
                d=int(spec.get("d", 10)),
                n_clusters=int(spec.get("clusters", 5)),
                seed=int(spec.get("seed", 0)),
            ).data
        )
    raise ServeError(
        f"request {document.get('id')!r}: dataset must name 'npy' or "
        f"'synthetic'"
    )


def _response_for(document: dict, result, handle) -> dict:
    labels = np.ascontiguousarray(result.labels, dtype=np.int64)
    return {
        "schema": RESPONSE_SCHEMA,
        "id": document["id"],
        "ok": True,
        "backend": document["backend"],
        "k": result.k,
        "l": document["l"],
        "seed": document["seed"],
        "cost": result.cost,
        "refined_cost": result.refined_cost,
        "iterations": result.iterations,
        "best_iteration": result.best_iteration,
        "n_outliers": result.n_outliers,
        "medoids": [int(value) for value in result.medoids],
        "dimensions": [list(dims) for dims in result.dimensions],
        "labels_sha256": hashlib.sha256(labels.tobytes()).hexdigest(),
        "modeled_seconds": result.stats.modeled_seconds,
        "cached": handle.cached,
        "coalesced": handle.coalesced,
    }


def _error_response(document: dict, error: BaseException) -> dict:
    return {
        "schema": RESPONSE_SCHEMA,
        "id": document.get("id", ""),
        "ok": False,
        "error": f"{type(error).__name__}: {error}",
    }


def serve_spool(
    directory: str | Path,
    service: ClusterService | None = None,
    *,
    once: bool = True,
    poll_seconds: float = 0.2,
    max_batches: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> int:
    """Process spool requests; returns the number handled.

    With ``once=True`` (the default, used by tests and CI) one sweep of
    the requests directory is processed and the function returns.
    Otherwise it polls until ``max_batches`` non-empty sweeps have been
    handled (forever when ``None`` — interrupt to stop).
    """
    requests_dir, responses_dir, done_dir = _spool_dirs(directory)
    say = progress if progress is not None else (lambda message: None)
    own_service = service is None
    if own_service:
        service = ClusterService()
    handled = 0
    batches = 0
    try:
        while True:
            batch = sorted(requests_dir.glob("*.json"))
            for path in batch:
                document = None
                try:
                    document = json.loads(path.read_text())
                    if document.get("schema") != REQUEST_SCHEMA:
                        raise ServeError(
                            f"{path.name}: expected schema "
                            f"{REQUEST_SCHEMA!r}, "
                            f"got {document.get('schema')!r}"
                        )
                    data = _load_request_data(document)
                    handle = service.submit(
                        data=data,
                        backend=document.get("backend", "gpu-fast"),
                        k=int(document.get("k", 10)),
                        l=int(document.get("l", 5)),
                        seed=int(document.get("seed", 0)),
                        priority=int(document.get("priority", 1)),
                    )
                    response = _response_for(
                        document, handle.result(timeout=600), handle
                    )
                except (ReproError, OSError, ValueError) as error:
                    response = _error_response(
                        document if isinstance(document, dict) else {},
                        error,
                    )
                name = response["id"] or path.stem
                (responses_dir / f"{name}.json").write_text(
                    json.dumps(response, indent=2)
                )
                path.rename(done_dir / path.name)
                handled += 1
                say(
                    f"{name}: "
                    + ("ok" if response.get("ok") else "error")
                )
            if batch:
                batches += 1
            if once:
                break
            if max_batches is not None and batches >= max_batches:
                break
            time.sleep(poll_seconds)
    finally:
        if own_service:
            service.close()
    return handled
