"""Content-addressed dataset registry.

Clients upload a dataset once and reference it afterwards by its
fingerprint (:func:`repro.data.fingerprint.dataset_fingerprint`), the
way the paper's multi-parameter experiments keep one dataset resident
on the device across many (k, l) settings.  Registration is idempotent
— re-uploading bytes that hash to a known fingerprint is free — and
the registry stores the *validated canonical* array (float32, C
order), so every job on a fingerprint sees the identical bytes
regardless of the dtype or memory order the client uploaded.
"""

from __future__ import annotations

import threading

import numpy as np

from ..core.base import validate_data
from ..data.fingerprint import dataset_fingerprint
from ..exceptions import ServeError

__all__ = ["DatasetRegistry"]


class DatasetRegistry:
    """Thread-safe fingerprint -> canonical dataset store."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._datasets: dict[str, np.ndarray] = {}

    def register(self, data: np.ndarray) -> str:
        """Validate, fingerprint, and store ``data``; returns the fingerprint.

        Raises :class:`~repro.exceptions.DataValidationError` for
        malformed input (the same contract as every engine).
        """
        canonical = validate_data(data)
        fingerprint = dataset_fingerprint(canonical)
        with self._lock:
            if fingerprint not in self._datasets:
                canonical = canonical.copy()
                canonical.setflags(write=False)
                self._datasets[fingerprint] = canonical
        return fingerprint

    def get(self, fingerprint: str) -> np.ndarray:
        """The canonical array for ``fingerprint`` (read-only view).

        Raises :class:`~repro.exceptions.ServeError` for unknown
        fingerprints.
        """
        with self._lock:
            try:
                return self._datasets[fingerprint]
            except KeyError:
                raise ServeError(
                    f"unknown dataset fingerprint {fingerprint[:12]!r}...; "
                    f"register the dataset first"
                ) from None

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._datasets

    def __len__(self) -> int:
        with self._lock:
            return len(self._datasets)

    def fingerprints(self) -> list[str]:
        """Registered fingerprints, in registration order."""
        with self._lock:
            return list(self._datasets)

    def total_bytes(self) -> int:
        """Host bytes held by the registry."""
        with self._lock:
            return sum(array.nbytes for array in self._datasets.values())
