"""Structured serve-event log (the input to the queue timeline view).

Every lifecycle transition of a request — submission, admission or
rejection, dedupe/cache-hit short-circuits, group coalescing, start,
completion, cache eviction — appends one :class:`ServeEvent` carrying
the queue and running depths *at that moment*, so the event stream is a
complete step-function record of service occupancy over time.
:func:`repro.viz.timeline.render_serve_lanes` renders it as ASCII
lanes; the loadgen report embeds it as plain dicts.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from typing import Any, Iterable

__all__ = ["EVENT_KINDS", "ServeEvent", "ServeLog"]

#: Every event kind the service emits, in rough lifecycle order.
EVENT_KINDS = (
    "submit",      #: request arrived
    "cache_hit",   #: answered immediately from the result cache
    "dedupe",      #: attached to an identical queued job
    "reject",      #: admission control refused it (detail = reason)
    "admit",       #: enqueued
    "coalesce",    #: a group of queued jobs merged (detail = group size)
    "start",       #: job began executing
    "complete",    #: job finished successfully
    "fail",        #: job raised
    "evict",       #: result cache evicted an entry (LRU)
    "device_down",       #: a fleet member was lost/quarantined (detail = tag)
    "device_recovered",  #: a fleet member was readmitted (detail = tag)
)


@dataclass(slots=True)
class ServeEvent:
    """One service lifecycle event with occupancy depths at its time."""

    ts: float  #: service clock (seconds since the service started)
    kind: str  #: one of :data:`EVENT_KINDS`
    job_id: int = -1
    fingerprint: str = ""
    backend: str = ""
    k: int = 0
    l: int = 0
    queued: int = 0  #: queue depth immediately after the event
    running: int = 0  #: jobs executing immediately after the event
    detail: str = ""
    span_id: int | None = None  #: tracer span id for log correlation

    def as_dict(self) -> dict[str, Any]:
        """Plain-data form for JSON reports."""
        return asdict(self)


class ServeLog:
    """Thread-safe, append-only list of :class:`ServeEvent`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[ServeEvent] = []

    def record(self, event: ServeEvent) -> None:
        with self._lock:
            self._events.append(event)

    def snapshot(self) -> list[ServeEvent]:
        """A copy of the events recorded so far."""
        with self._lock:
            return list(self._events)

    def as_dicts(self) -> list[dict[str, Any]]:
        """Plain-data snapshot for JSON reports."""
        return [event.as_dict() for event in self.snapshot()]

    def kinds(self) -> list[str]:
        """The event kinds in order (handy in tests)."""
        return [event.kind for event in self.snapshot()]

    def count(self, kind: str) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for event in self.snapshot() if event.kind == kind)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> "Iterable[ServeEvent]":
        return iter(self.snapshot())
