"""Seeded synthetic load generator and the ``BENCH_serve.json`` report.

The generator replays a deterministic request mix — small pools of
datasets, seeds, and (k, l) settings, so repeats and share-key
collisions actually occur — through a :class:`ClusterService`, then:

1. computes the **naive baseline**: every request executed as an
   independent solo run (the reference results double as the
   determinism oracle);
2. checks the **determinism contract**: each served response must be
   bit-identical (labels, medoids, subspaces, costs, iteration counts)
   to its solo reference;
3. reports the **savings**: modeled device seconds and work counters of
   what the service actually executed versus the naive sum.

The report's ``ok`` field (no determinism violations *and* a strict
modeled-seconds reduction) drives the CLI exit code, so the CI
serve-smoke job fails on any contract violation.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from ..core.api import BACKENDS, proclus
from ..data import generate_subspace_data, minmax_normalize
from ..exceptions import ParameterError
from ..hardware.specs import GTX_1660_TI, GpuSpec
from ..obs.export import report_envelope
from ..params import ProclusParams
from ..result import ProclusResult, RunStats
from .service import ClusterService

__all__ = ["SERVE_BENCH_SCHEMA", "run_loadgen"]

#: Schema identifier of the loadgen report (bump on breaking changes).
SERVE_BENCH_SCHEMA = "repro.serve_bench/1"


def _identical(served: ProclusResult, reference: ProclusResult) -> bool:
    """Full bit-identity: clustering outputs plus run trajectory."""
    return (
        np.array_equal(served.labels, reference.labels)
        and np.array_equal(served.medoids, reference.medoids)
        and served.dimensions == reference.dimensions
        and served.cost == reference.cost
        and served.refined_cost == reference.refined_cost
        and served.iterations == reference.iterations
        and served.best_iteration == reference.best_iteration
    )


def run_loadgen(
    num_requests: int = 24,
    *,
    seed: int = 0,
    workers: int = 2,
    backends: Sequence[str] = ("gpu-fast",),
    num_datasets: int = 2,
    n: int = 600,
    d: int = 8,
    clusters: int = 4,
    subspace_dims: int = 4,
    seeds: Sequence[int] = (0, 1),
    ks: Sequence[int] = (4,),
    ls: Sequence[int] = (3, 4, 5),
    a: int = 30,
    b: int = 5,
    cache_entries: int = 64,
    gpu_spec: GpuSpec | None = None,
    monitor_dir: str | None = None,
    postmortem_dir: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Replay a seeded request mix; returns the serve-bench report.

    With ``monitor_dir`` the service writes live monitoring output
    there (structured event log, Prometheus scrape, ``health.json``)
    and the report gains a ``health`` section — the final SLO summary
    flushed at shutdown, *after* the determinism oracle has reported
    its violations, so ``repro monitor --once`` on that directory sees
    every declared objective evaluated against this run.

    With ``postmortem_dir`` the service runs under a
    :class:`~repro.obs.FlightRecorder`; if the determinism oracle finds
    a violation, the first violating request's context (data, params,
    seed, the solo reference's result digest) is pinned and a
    ``determinism-violation`` postmortem bundle is dumped there — the
    report's ``postmortem_bundle`` field carries its path, and ``repro
    postmortem <bundle> --replay`` re-runs the solo bits against the
    recorded digest.
    """
    if num_requests < 1:
        raise ParameterError(
            f"num_requests must be >= 1, got {num_requests}"
        )
    for backend in backends:
        if backend not in BACKENDS:
            raise ParameterError(
                f"unknown backend {backend!r}; "
                f"available: {', '.join(sorted(BACKENDS))}"
            )
    spec = gpu_spec if gpu_spec is not None else GTX_1660_TI
    say = progress if progress is not None else (lambda message: None)

    say(f"generating {num_datasets} datasets (n={n}, d={d})")
    datasets = [
        minmax_normalize(
            generate_subspace_data(
                n=n, d=d, n_clusters=clusters,
                subspace_dims=subspace_dims, seed=100 + index,
            ).data
        )
        for index in range(num_datasets)
    ]

    # Deterministic request mix: small pools so repeats and share-key
    # collisions are frequent (that is the point of a serving layer).
    mix_rng = np.random.default_rng(seed)
    requests = []
    for _ in range(num_requests):
        requests.append(
            {
                "dataset": int(mix_rng.integers(len(datasets))),
                "backend": backends[int(mix_rng.integers(len(backends)))],
                "seed": int(seeds[int(mix_rng.integers(len(seeds)))]),
                "k": int(ks[int(mix_rng.integers(len(ks)))]),
                "l": int(ls[int(mix_rng.integers(len(ls)))]),
            }
        )

    say(f"serving {num_requests} requests with {workers} workers")
    wall_start = time.perf_counter()
    service = ClusterService(
        workers=workers, gpu_spec=spec, cache_entries=cache_entries,
        max_queue_depth=max(64, num_requests),
        monitor_dir=monitor_dir,
        postmortem_dir=postmortem_dir,
    )
    # Not a `with` block: the determinism oracle below must report its
    # violations to the service *before* shutdown flushes the final
    # monitoring snapshot, or the SLO summary would never see them.
    handles = []
    for spec_dict in requests:
        params = ProclusParams(
            k=spec_dict["k"], l=spec_dict["l"], a=a, b=b
        )
        handles.append(
            service.submit(
                data=datasets[spec_dict["dataset"]],
                backend=spec_dict["backend"],
                params=params,
                seed=spec_dict["seed"],
            )
        )
    served = [handle.result(timeout=600) for handle in handles]
    service.drain()
    wall_seconds = time.perf_counter() - wall_start

    # Naive baseline + determinism oracle: one solo run per unique
    # request signature, on the same modeled card.
    say("running solo references for the determinism check")
    references: dict[tuple, ProclusResult] = {}
    for handle in handles:
        key = handle.request.cache_key
        if key in references:
            continue
        request = handle.request
        engine_kwargs = (
            {"gpu_spec": spec} if request.backend.startswith("gpu") else {}
        )
        references[key] = proclus(
            service.registry.get(request.fingerprint),
            backend=request.backend,
            params=request.params,
            seed=request.seed,
            **engine_kwargs,
        )

    violations = []
    naive_stats = RunStats()
    for index, (handle, result) in enumerate(zip(handles, served)):
        reference = references[handle.request.cache_key]
        naive_stats = naive_stats.merge(reference.stats)
        if not _identical(result, reference):
            violations.append(
                {
                    "request": index,
                    "backend": handle.request.backend,
                    "seed": handle.request.seed,
                    "k": handle.request.params.k,
                    "l": handle.request.params.l,
                    "cached": handle.cached,
                    "coalesced": handle.coalesced,
                }
            )

    bundle_path = None
    if violations:
        recorder = service.recorder
        if recorder is not None:
            # Pin the first violating request as the replay context: the
            # solo reference's digest is the recorded truth the replay
            # must reproduce from the bundle alone.
            from ..obs.postmortem import result_digest

            first = violations[0]
            handle = handles[first["request"]]
            request = handle.request
            recorder.set_job(
                data=service.registry.get(request.fingerprint),
                backend=request.backend,
                params=request.params,
                seed=request.seed,
                policy=service.runner.policy,
                engine_kwargs=(
                    {"gpu_spec": spec}
                    if request.backend.startswith("gpu")
                    else {}
                ),
                fingerprint=request.fingerprint,
                pinned=True,
            )
            recorder.set_reference_digest(
                result_digest(references[request.cache_key])
            )
            recorder.record_failure(
                "determinism-violation",
                detail=(
                    f"{len(violations)} of {num_requests} served responses "
                    f"diverged from their solo references; first: request "
                    f"#{first['request']} ({first['backend']}, "
                    f"seed={first['seed']}, k={first['k']}, l={first['l']})"
                ),
            )
            bundle_path = recorder.auto_dump("determinism-violation")
        service.record_violations(len(violations))
    health = service.shutdown()

    served_stats = service.executed_stats
    latencies = np.array([handle.latency for handle in handles])
    saved = naive_stats.modeled_seconds - served_stats.modeled_seconds
    ok = not violations and saved > 0.0
    say(
        f"naive {naive_stats.modeled_seconds * 1e3:.3f}ms modeled vs "
        f"served {served_stats.modeled_seconds * 1e3:.3f}ms; "
        f"{len(violations)} determinism violations"
    )

    report = {
        **report_envelope(SERVE_BENCH_SCHEMA),
        "timestamp": time.time(),
        "ok": ok,
        "config": {
            "num_requests": num_requests,
            "seed": seed,
            "workers": workers,
            "backends": list(backends),
            "num_datasets": num_datasets,
            "n": n,
            "d": d,
            "clusters": clusters,
            "seeds": list(seeds),
            "ks": list(ks),
            "ls": list(ls),
            "a": a,
            "b": b,
            "cache_entries": cache_entries,
            "gpu": spec.name,
        },
        "requests": num_requests,
        "unique_settings": len(references),
        "determinism": {
            "checked": num_requests,
            "violations": violations,
        },
        "totals": {
            "naive_modeled_seconds": naive_stats.modeled_seconds,
            "served_modeled_seconds": served_stats.modeled_seconds,
            "saved_modeled_seconds": saved,
            "speedup": (
                naive_stats.modeled_seconds / served_stats.modeled_seconds
                if served_stats.modeled_seconds > 0
                else float("inf")
            ),
            "naive_counters": dict(naive_stats.counters),
            "served_counters": dict(served_stats.counters),
        },
        "latency_seconds": {
            "p50": float(np.percentile(latencies, 50)),
            "p95": float(np.percentile(latencies, 95)),
            "max": float(latencies.max()),
        },
        "wall_seconds": wall_seconds,
        "serve": service.stats(),
        "events": service.log.as_dicts(),
    }
    if health is not None:
        report["health"] = health
    if bundle_path is not None:
        report["postmortem_bundle"] = str(bundle_path)
    return report
