"""Memoizing result cache with LRU eviction.

A PROCLUS run is a pure function of ``(dataset fingerprint, backend,
seed, parameters)`` — the repository's determinism contract — so full
results are safely memoizable.  The cache is keyed by
:attr:`repro.serve.request.ClusterRequest.cache_key`, bounded by entry
count, and counts hits/misses/evictions so the loadgen report can show
how much repeated traffic it absorbed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from ..exceptions import ParameterError

__all__ = ["ResultCache"]


class ResultCache:
    """Thread-safe LRU mapping of cache keys to results.

    ``max_entries=0`` disables caching (every lookup misses, inserts
    are dropped) without requiring callers to special-case.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if not isinstance(max_entries, int) or isinstance(max_entries, bool):
            raise ParameterError(
                f"max_entries must be an int, got {type(max_entries).__name__}"
            )
        if max_entries < 0:
            raise ParameterError(
                f"max_entries must be >= 0, got {max_entries}"
            )
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Any | None:
        """The cached value, or ``None`` on a miss (counted either way)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: Hashable, value: Any) -> list[Hashable]:
        """Insert ``value``; returns the keys evicted to make room."""
        if self.max_entries == 0:
            return []
        evicted: list[Hashable] = []
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                old_key, _ = self._entries.popitem(last=False)
                self.evictions += 1
                evicted.append(old_key)
        return evicted

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus current size."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
