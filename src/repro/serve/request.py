"""Requests, jobs, and the handles clients wait on.

The two keys defined here encode the serving layer's sharing rules:

* :attr:`ClusterRequest.share_key` — requests with equal share keys can
  execute as one coalesced group.  The key covers everything the
  initialization phase depends on — dataset fingerprint, backend, seed,
  and ``(k, A, B)`` (which size the sample and the greedy pick) — so
  group members draw the identical sample and medoid set ``M`` and the
  solo-equivalence contract of
  :func:`repro.core.multiparam.run_coalesced_group` applies.
* :attr:`ClusterRequest.cache_key` — requests with equal cache keys
  produce the identical :class:`~repro.result.ProclusResult`, so the
  second one can be answered from the result cache (or attached to the
  first while it is still queued).  The key adds the remaining
  parameters (``l``, ``minDev``, patience, ...) that change the
  iterative phase.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..exceptions import ParameterError, ServeError
from ..params import ProclusParams

__all__ = ["ClusterRequest", "Job", "JobHandle"]


@dataclass(frozen=True, slots=True)
class ClusterRequest:
    """One clustering request against a registered dataset."""

    fingerprint: str
    backend: str
    params: ProclusParams
    seed: int = 0
    #: Lower values run earlier; ties run in submission order.
    priority: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.fingerprint, str) or not self.fingerprint:
            raise ParameterError("fingerprint must be a non-empty string")
        if not isinstance(self.params, ProclusParams):
            raise ParameterError(
                f"params must be a ProclusParams, "
                f"got {type(self.params).__name__}"
            )

    @property
    def share_key(self) -> tuple:
        """Requests with equal share keys may coalesce into one group."""
        p = self.params
        return (self.fingerprint, self.backend, self.seed, p.k, p.a, p.b)

    @property
    def cache_key(self) -> tuple:
        """Requests with equal cache keys produce the identical result."""
        p = self.params
        return (
            self.fingerprint, self.backend, self.seed,
            p.k, p.l, p.a, p.b, p.min_deviation, p.patience,
            p.max_iterations, p.bad_medoid_rule,
        )


class JobHandle:
    """Client-side handle on a submitted request.

    ``status`` moves ``queued -> running -> done | failed``; handles
    resolved from the result cache go straight to ``done`` with
    ``cached=True``.  :meth:`result` blocks until resolution.
    """

    def __init__(self, request: ClusterRequest, job_id: int) -> None:
        self.request = request
        self.job_id = job_id
        self.status = "queued"
        self.cached = False  #: answered from the result cache
        self.coalesced = False  #: executed as part of a shared group
        self.deduped = False  #: attached to an identical queued job
        self.submitted_at = 0.0  #: service clock at submit
        self.finished_at = 0.0  #: service clock at resolution
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Whether the job has resolved (successfully or not)."""
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """Block until resolved; returns the :class:`ProclusResult`.

        Raises the job's error if it failed, or :class:`ServeError`
        when ``timeout`` seconds pass without resolution.
        """
        if not self._event.wait(timeout):
            raise ServeError(
                f"job {self.job_id} did not finish within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def latency(self) -> float:
        """Submit-to-resolution seconds on the service clock."""
        return max(0.0, self.finished_at - self.submitted_at)

    def _resolve(self, result, finished_at: float) -> None:
        self._result = result
        self.status = "done"
        self.finished_at = finished_at
        self._event.set()

    def _fail(self, error: BaseException, finished_at: float) -> None:
        self._error = error
        self.status = "failed"
        self.finished_at = finished_at
        self._event.set()


@dataclass(slots=True)
class Job:
    """A queued unit of work: one request plus every handle waiting on it.

    Deduplicated submissions (same :attr:`ClusterRequest.cache_key`
    while the first is still queued) attach additional handles instead
    of creating new jobs.
    """

    request: ClusterRequest
    job_id: int
    estimated_bytes: int = 0
    #: Per-device footprint of a ``fleet-*`` job (None for solo jobs);
    #: admission checks it componentwise against the fleet.
    shard_bytes: "tuple[int, ...] | None" = None
    handles: list[JobHandle] = field(default_factory=list)

    @property
    def share_key(self) -> tuple:
        return self.request.share_key

    @property
    def cache_key(self) -> tuple:
        return self.request.cache_key
