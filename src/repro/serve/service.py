"""The in-process clustering service.

:class:`ClusterService` ties the serving pieces together: datasets are
registered once and referenced by fingerprint, submissions pass
admission control and wait in a priority queue, worker threads drain
the queue in coalesced groups, every job runs under the resilience
policies (:class:`~repro.resilience.runner.ResilientRunner`), and
concurrent device use is bounded by a
:class:`~repro.gpu.memory.MemoryBudget` sized to the modeled card.

**Determinism contract.**  Every response is bit-identical to the
direct solo call ``proclus(data, params=..., backend=..., seed=...)``:

* a lone job simply *is* that call (run through the resilient runner);
* a coalesced group replays the solo initialization draws once
  (:func:`~repro.core.multiparam.build_solo_shared_state`), snapshots
  the RNG, and restores that snapshot before every member — so each
  member consumes the exact random stream of its solo run while the
  sample, greedy pick, data upload, and FAST caches are paid for once.
  The FAST caches are *result-invariant* (the paper's Theorem 3.2
  argument): warmth changes the work counters and modeled seconds, not
  any clustering output;
* a cache hit returns the stored result of such a run.

What coalescing and caching change is only the *cost*: modeled device
seconds and work counters strictly shrink versus naive per-request
execution, which is exactly what ``BENCH_serve.json`` measures.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import numpy as np

from ..core.multiparam import build_solo_shared_state
from ..exceptions import DeviceOutOfMemoryError, ReproError, ServeError
from ..fleet.fleet import Fleet
from ..fleet.recovery import degraded_fleet
from ..gpu.memory import MemoryBudget
from ..hardware.specs import GTX_1660_TI, GpuSpec
from ..obs.monitor import ServiceMonitor, SloObjective
from ..obs.recorder import FlightRecorder, use_correlation, use_recorder
from ..obs.tracer import Tracer, current_tracer, use_tracer
from ..resilience.faults import FaultInjector, use_injector
from ..params import ProclusParams
from ..resilience.policy import RetryPolicy
from ..resilience.runner import ResilientRunner
from ..result import RunStats
from ..rng import RandomSource
from .cache import ResultCache
from .events import ServeEvent, ServeLog
from .registry import DatasetRegistry
from .request import ClusterRequest, Job, JobHandle
from .scheduler import JobScheduler, estimate_device_bytes, estimate_shard_bytes

__all__ = ["ClusterService"]


class ClusterService:
    """Multi-tenant clustering service with request coalescing.

    Parameters
    ----------
    workers:
        Worker threads draining the queue.
    gpu_spec:
        The modeled card (default: the paper's GTX 1660 Ti).  Its
        usable memory sizes the device budget; GPU jobs run against it.
    fleet:
        Serve against a :class:`~repro.fleet.Fleet` of modeled devices
        instead of one card.  Each member gets its own
        :class:`MemoryBudget` ledger; ``fleet-*`` jobs shard across the
        fleet (reserving per-shard footprints componentwise), solo GPU
        jobs are placed on the member with the most free modeled
        memory.  Admission then bounds solo jobs by the largest member
        and sharded jobs by the componentwise per-device capacities.
    policy:
        Retry/degradation policy for every job (default
        :class:`RetryPolicy`).
    cache_entries:
        Result-cache capacity (0 disables memoization).
    max_queue_depth, max_backlog_seconds:
        Admission-control bounds (see
        :class:`~repro.serve.scheduler.JobScheduler`).
    coalesce:
        Merge share-key-compatible queued requests into groups
        (disable to measure the naive baseline).
    tracer:
        Where spans/metrics go.  Defaults to the ambient tracer when
        one is installed, else a private always-on
        :class:`~repro.obs.tracer.Tracer` so ``serve.*`` metrics are
        always recorded.
    monitor_dir:
        When set, the service writes live monitoring output there via a
        :class:`~repro.obs.monitor.ServiceMonitor` — one structured
        JSON log record per event (with trace/span ids), periodic
        metric snapshots, a Prometheus scrape, and a ``health.json``
        SLO report.  ``repro monitor`` reads this directory.
    slos, snapshot_every:
        Objectives and snapshot cadence for that monitor (ignored
        without ``monitor_dir``).
    recorder, postmortem_dir:
        Attach a :class:`~repro.obs.recorder.FlightRecorder`.  Every
        serve event, span, kernel, fault, and resilience action flows
        into its bounded rings (correlated per job), and terminal
        failures — exhausted resilience, unexpected job errors, and
        SLO breaches crossing ``postmortem_slos`` — auto-dump a
        ``repro.postmortem/1`` bundle into ``postmortem_dir`` (which,
        given alone, creates a default recorder).
    postmortem_slos:
        SLO names whose breach triggers a bundle dump (once per name,
        and only when nothing else already captured a failure).
    injector:
        A :class:`~repro.resilience.faults.FaultInjector` installed
        around every job the workers run — fault drills under real
        serving load (``repro serve --fault``).
    """

    def __init__(
        self,
        workers: int = 2,
        gpu_spec: GpuSpec | None = None,
        fleet: Fleet | None = None,
        policy: RetryPolicy | None = None,
        cache_entries: int = 64,
        max_queue_depth: int = 64,
        max_backlog_seconds: float = float("inf"),
        coalesce: bool = True,
        tracer: Tracer | None = None,
        monitor_dir: "str | None" = None,
        slos: "tuple[SloObjective, ...] | None" = None,
        snapshot_every: float = 1.0,
        recorder: "FlightRecorder | None" = None,
        postmortem_dir: "str | None" = None,
        postmortem_slos: "tuple[str, ...]" = ("determinism-violations",),
        injector: "FaultInjector | None" = None,
    ) -> None:
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        self.gpu_spec = gpu_spec if gpu_spec is not None else GTX_1660_TI
        if tracer is not None:
            self.obs = tracer
        else:
            ambient = current_tracer()
            self.obs = ambient if ambient.enabled else Tracer()
        self.registry = DatasetRegistry()
        self.cache = ResultCache(cache_entries)
        self.fleet = fleet
        if fleet is not None:
            #: Per-device reservation ledgers (None for zero-capacity
            #: members, which hold no shards and run no jobs).
            self.device_budgets: "list[MemoryBudget | None] | None" = [
                MemoryBudget(spec.usable_bytes)
                if spec.usable_bytes > 0 else None
                for spec in fleet.specs
            ]
            self.budget = MemoryBudget(fleet.total_usable_bytes)
            capacity_bytes = fleet.max_usable_bytes
            device_capacities = tuple(
                max(0, spec.usable_bytes) for spec in fleet.specs
            )
        else:
            self.device_budgets = None
            self.budget = MemoryBudget(self.gpu_spec.usable_bytes)
            capacity_bytes = self.gpu_spec.usable_bytes
            device_capacities = None
        self.scheduler = JobScheduler(
            max_queue_depth=max_queue_depth,
            max_backlog_seconds=max_backlog_seconds,
            capacity_bytes=capacity_bytes,
            coalesce=coalesce,
            device_capacities=device_capacities,
        )
        self.log = ServeLog()
        #: Live monitoring sink (None unless ``monitor_dir`` was given).
        #: Shares the tracer's registry so the Prometheus scrape carries
        #: the same ``serve.*`` instruments the service increments.
        self.monitor: ServiceMonitor | None = (
            ServiceMonitor(
                monitor_dir,
                metrics=self.obs.metrics,
                objectives=slos,
                snapshot_every=snapshot_every,
            )
            if monitor_dir is not None
            else None
        )
        if self.monitor is not None and fleet is not None:
            self.monitor.slo.set_devices(
                [f"dev{index}" for index in range(fleet.num_devices)]
            )
        if recorder is None and postmortem_dir is not None:
            recorder = FlightRecorder(bundle_dir=postmortem_dir)
        elif recorder is not None and postmortem_dir is not None:
            recorder.bundle_dir = Path(postmortem_dir)
        #: Flight recorder fed by every layer of the service (None
        #: disables recording entirely).
        self.recorder = recorder
        self.postmortem_slos = tuple(postmortem_slos)
        self._slo_dumped: set[str] = set()
        if self.monitor is not None and recorder is not None:
            self.monitor.on_unhealthy = self._on_slo_breach
        #: Fault injector installed around every job (fault drills).
        self.injector = injector
        #: Fleet members currently quarantined by health-aware serving.
        self._quarantined: set[int] = set()
        self.runner = ResilientRunner(policy)
        #: Aggregated stats of every engine run the service executed
        #: (cache hits and coalesced sharing make this smaller than the
        #: sum over requests — the quantity BENCH_serve.json compares).
        self.executed_stats = RunStats()
        self._epoch = time.perf_counter()
        self._cond = threading.Condition()
        self._closed = False
        self._running = 0
        self._next_job_id = 0
        self._stats_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"serve-worker-{index}", daemon=True
            )
            for index in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def register(self, data: np.ndarray) -> str:
        """Register a dataset; returns its fingerprint."""
        return self.registry.register(data)

    def submit(
        self,
        data: np.ndarray | None = None,
        *,
        fingerprint: str | None = None,
        backend: str = "gpu-fast",
        params: ProclusParams | None = None,
        k: int = 10,
        l: int = 5,
        seed: int = 0,
        priority: int = 1,
    ) -> JobHandle:
        """Submit one clustering request; returns a waitable handle.

        Pass either ``data`` (registered on the fly) or the
        ``fingerprint`` of a previously registered dataset.  Raises
        :class:`~repro.exceptions.AdmissionError` when admission
        control refuses the request.
        """
        if self._closed:
            raise ServeError("service is closed")
        if (data is None) == (fingerprint is None):
            raise ServeError("pass exactly one of data or fingerprint")
        if data is not None:
            fingerprint = self.registry.register(data)
        dataset = self.registry.get(fingerprint)
        if params is None:
            params = ProclusParams(k=k, l=l)
        params.validate_against_data(*dataset.shape)
        request = ClusterRequest(
            fingerprint=fingerprint, backend=backend, params=params,
            seed=seed, priority=priority,
        )
        with self._cond:
            job_id = self._next_job_id
            self._next_job_id += 1
            handle = JobHandle(request, job_id)
            handle.submitted_at = self._clock()
            self._event("submit", job_id, request)
            self.obs.metrics.counter("serve.requests").inc()

            cached = self.cache.get(request.cache_key)
            if cached is not None:
                handle.cached = True
                handle._resolve(cached, self._clock())
                self._event("cache_hit", job_id, request)
                self.obs.metrics.counter("serve.cache.hits").inc()
                self._observe_latency(handle)
                return handle
            self.obs.metrics.counter("serve.cache.misses").inc()

            twin = self.scheduler.find_queued(request.cache_key)
            if twin is not None:
                handle.deduped = True
                twin.handles.append(handle)
                self._event(
                    "dedupe", job_id, request,
                    detail=f"attached to job {twin.job_id}",
                )
                self.obs.metrics.counter("serve.deduped").inc()
                return handle

            n, d = dataset.shape
            shard_bytes = None
            if backend.startswith("fleet-"):
                shard_bytes = estimate_shard_bytes(
                    n, d, params, backend, self._fleet_for()
                )
                estimated = max(shard_bytes)
            else:
                estimated = estimate_device_bytes(n, d, params, backend)
            job = Job(
                request=request,
                job_id=job_id,
                estimated_bytes=estimated,
                shard_bytes=shard_bytes,
                handles=[handle],
            )
            try:
                self.scheduler.admit(job)
            except ReproError as error:
                reason = getattr(error, "reason", "")
                self._event("reject", job_id, request, detail=reason)
                self.obs.metrics.counter("serve.rejected").inc()
                if reason:
                    self.obs.metrics.counter(f"serve.rejected.{reason}").inc()
                raise
            self.scheduler.push(job)
            self._event("admit", job_id, request)
            self._cond.notify()
        return handle

    def drain(self, timeout: float | None = None) -> None:
        """Block until the queue is empty and no job is running."""
        with self._cond:
            done = self._cond.wait_for(
                lambda: self.scheduler.depth == 0 and self._running == 0,
                timeout=timeout,
            )
        if not done:
            raise ServeError(f"service did not drain within {timeout}s")

    def close(self, drain: bool = True) -> None:
        """Stop the workers (after finishing queued work by default)."""
        if self._closed:
            return
        if drain:
            self.drain()
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        for thread in self._workers:
            thread.join()
        # Fail whatever was still queued on a non-draining close.
        while True:
            group = self.scheduler.pop_group()
            if not group:
                break
            for job in group:
                error = ServeError("service closed before the job ran")
                for handle in job.handles:
                    handle._fail(error, self._clock())

    def shutdown(self, drain: bool = True) -> dict | None:
        """Graceful stop: close, then flush final monitoring output.

        Returns the final ``repro.health/1`` report when a monitor is
        attached (so even a short-lived service never exits with empty
        monitoring output), else None.
        """
        self.close(drain=drain)
        if self.monitor is None:
            return None
        return self.monitor.flush(self._clock())

    # ------------------------------------------------------------------
    # Health-aware failover
    # ------------------------------------------------------------------
    def quarantine_device(self, index: int, reason: str = "") -> bool:
        """Pull fleet member ``index`` out of serving rotation.

        New sharded jobs re-shard over the remaining members (the
        quarantined member keeps its index at weight zero, so device
        numbering is stable); solo GPU placement skips it; admission
        control sees its capacity as zero.  Emits a ``device_down``
        service event (which feeds the ``fleet-availability`` and
        ``fleet-mttr`` SLOs).  Returns False when the member was
        already quarantined.  Raises :class:`ServeError` without a
        fleet, for an out-of-range index, or when quarantining would
        leave no member serving.
        """
        self._check_device_index(index)
        if index in self._quarantined:
            return False
        if degraded_fleet(self.fleet, self._quarantined | {index}) is None:
            raise ServeError(
                f"cannot quarantine dev{index}: no fleet member with "
                f"capacity would remain"
            )
        self._quarantined.add(index)
        self.scheduler.set_device_capacity(index, 0)
        self.obs.metrics.counter("fleet.quarantined").inc()
        self._device_event("device_down", index, reason)
        return True

    def readmit_device(self, index: int) -> bool:
        """Return a quarantined member to serving rotation.

        Restores its admission capacity and emits a
        ``device_recovered`` event (closing the MTTR window the
        ``device_down`` event opened).  Returns False when the member
        was not quarantined.
        """
        self._check_device_index(index)
        if index not in self._quarantined:
            return False
        self._quarantined.discard(index)
        self.scheduler.set_device_capacity(
            index, max(0, self.fleet.specs[index].usable_bytes)
        )
        self.obs.metrics.counter("fleet.readmitted").inc()
        self._device_event("device_recovered", index)
        return True

    @property
    def quarantined_devices(self) -> frozenset[int]:
        """Fleet member indices currently quarantined."""
        return frozenset(self._quarantined)

    def _check_device_index(self, index: int) -> None:
        if self.fleet is None:
            raise ServeError("service has no fleet to quarantine from")
        if not 0 <= index < self.fleet.num_devices:
            raise ServeError(
                f"device index {index} out of range for "
                f"{self.fleet.num_devices} fleet members"
            )

    def _device_event(self, kind: str, index: int, reason: str = "") -> None:
        """Record a device lifecycle event (no request attached)."""
        tag = f"dev{index}"
        event = ServeEvent(
            ts=self._clock(),
            kind=kind,
            detail=tag if not reason else f"{tag}: {reason}",
            queued=self.scheduler.depth,
            running=self._running,
        )
        with self.obs.span(
            f"serve.{kind}", category="serve", device=tag, detail=reason,
        ) as span:
            event.span_id = span.span_id
        self.log.record(event)
        if self.monitor is not None:
            # The SLO tracker keys availability/MTTR on the device tag.
            self.monitor.on_event(
                {**event.as_dict(), "detail": tag}
            )
        if self.recorder is not None:
            self.recorder.record_serve(event.as_dict())

    def record_violations(self, count: int = 1) -> None:
        """Report determinism violations found by an external oracle.

        The service cannot detect these itself (they require re-running
        each request solo); the loadgen harness calls this so the
        violation count reaches the SLO tracker before the final flush.
        """
        self.obs.metrics.counter("serve.determinism.violations").inc(count)
        if self.monitor is not None:
            self.monitor.slo.record_violations(count)

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def stats(self) -> dict:
        """Aggregate service statistics (JSON-serializable)."""
        counters = self.obs.metrics.as_dict()["counters"]
        serve_counters = {
            name: value
            for name, value in counters.items()
            if name.startswith(("serve.", "fleet."))
        }
        devices = None
        if self.fleet is not None:
            devices = [
                {
                    "spec": spec.name,
                    "capacity_bytes": max(0, spec.usable_bytes),
                    "peak_reserved_bytes": (
                        budget.peak_reserved_bytes if budget is not None else 0
                    ),
                }
                for spec, budget in zip(self.fleet.specs, self.device_budgets)
            ]
        return {
            "fleet": self.fleet.name if self.fleet is not None else None,
            "devices": devices,
            "quarantined": sorted(
                f"dev{index}" for index in self._quarantined
            ),
            "queued": self.scheduler.depth,
            "running": self._running,
            "datasets": len(self.registry),
            "cache": self.cache.stats(),
            "counters": serve_counters,
            "executed_modeled_seconds": self.executed_stats.modeled_seconds,
            "peak_reserved_bytes": self.budget.peak_reserved_bytes,
            "budget_capacity_bytes": self.budget.capacity_bytes,
        }

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: self._closed or self.scheduler.depth > 0
                )
                if self._closed:
                    return
                group = self.scheduler.pop_group()
                if not group:
                    continue
                self._running += len(group)
            try:
                self._run_group(group)
            finally:
                with self._cond:
                    self._running -= len(group)
                    self._cond.notify_all()

    def _run_group(self, group: list[Job]) -> None:
        leader = group[0].request
        data = self.registry.get(leader.fingerprint)
        nbytes = max(job.estimated_bytes for job in group)
        engine_kwargs, reservations = self._reserve_group(leader, group, nbytes)
        try:
            if len(group) > 1:
                self._event(
                    "coalesce", group[0].job_id, leader,
                    detail=f"{len(group)} jobs share one initialization",
                )
                self.obs.metrics.counter("serve.groups").inc()
                self.obs.metrics.counter("serve.coalesced").inc(
                    len(group) - 1
                )
            for job in group:
                self._event("start", job.job_id, job.request)
                for handle in job.handles:
                    handle.status = "running"
                    handle.coalesced = len(group) > 1
            if self.recorder is not None:
                # Pin the request-level replay context (the original
                # integer seed; coalesced members run mid-stream RNG
                # states that are useless for replay-from-bundle).
                self.recorder.set_job(
                    data=data, backend=leader.backend, params=leader.params,
                    seed=leader.seed, policy=self.runner.policy,
                    engine_kwargs=engine_kwargs,
                    fingerprint=leader.fingerprint, pinned=True,
                )
            with use_tracer(self.obs), use_recorder(self.recorder), \
                    use_injector(self.injector), \
                    use_correlation(f"job-{group[0].job_id}"):
                if len(group) == 1:
                    outcomes = [
                        self.runner.fit(
                            data,
                            backend=leader.backend,
                            params=leader.params,
                            seed=leader.seed,
                            engine_kwargs=engine_kwargs,
                        )
                    ]
                else:
                    outcomes = self._run_coalesced(
                        data, group, engine_kwargs
                    )
        except Exception as error:  # noqa: BLE001 - workers must survive
            now = self._clock()
            for job in group:
                self._event(
                    "fail", job.job_id, job.request,
                    detail=f"{type(error).__name__}: {error}",
                )
                self.obs.metrics.counter("serve.failed").inc()
                for handle in job.handles:
                    handle._fail(error, now)
            if self.recorder is not None and not self.recorder.dumped_error(
                error
            ):
                # Exhaustion bundles were already dumped by the runner
                # (with the full job context); everything else — FATAL
                # classifications, substrate bugs — is captured here.
                self.recorder.record_failure("job-failure", error)
                self.recorder.auto_dump("job-failure", error)
            return
        finally:
            for budget, amount in reservations:
                budget.release(amount)

        for job, outcome in zip(group, outcomes):
            result = outcome.result
            stats = result.stats
            with self._stats_lock:
                self.executed_stats = self.executed_stats.merge(stats)
            self.scheduler.observe(
                job.request.backend, stats.modeled_seconds
            )
            self.obs.metrics.counter("serve.executed").inc()
            self.obs.metrics.counter("serve.device_seconds").inc(
                stats.modeled_seconds
            )
            comm_seconds = stats.counters.get("fleet.comm_seconds", 0.0)
            if comm_seconds > 0.0:
                self.obs.metrics.counter("fleet.comm_seconds").inc(
                    comm_seconds
                )
            for evicted in self.cache.put(job.cache_key, result):
                self._event(
                    "evict", -1, job.request,
                    detail=f"lru evicted {evicted[0][:12]}...",
                )
                self.obs.metrics.counter("serve.cache.evictions").inc()
            now = self._clock()
            self._event(
                "complete", job.job_id, job.request,
                detail=f"{stats.modeled_seconds * 1e3:.3f}ms modeled, "
                       f"attempts={outcome.attempts}",
            )
            self.obs.metrics.counter("serve.completed").inc()
            for handle in job.handles:
                handle._resolve(result, now)
                self._observe_latency(handle)

    def _fleet_for(self) -> Fleet:
        """The fleet sharded jobs run on (a one-card fleet without one).

        Quarantined members are zeroed in place, so sharded jobs
        re-shard over the healthy members while device numbering (and
        the componentwise budget/admission ledgers) stay aligned.
        """
        if self.fleet is not None:
            if self._quarantined:
                degraded = degraded_fleet(self.fleet, self._quarantined)
                if degraded is not None:
                    return degraded
            return self.fleet
        return Fleet(specs=(self.gpu_spec,))

    def _reserve_group(
        self, leader: ClusterRequest, group: list[Job], nbytes: int
    ) -> "tuple[dict, list[tuple[MemoryBudget, int]]]":
        """Reserve modeled memory for one group; pick where it runs.

        Returns the engine kwargs and the ``(budget, bytes)``
        reservations to release when the group finishes.  Sharded jobs
        reserve each shard's footprint on its device ledger; on a fleet
        service, solo GPU jobs are placed on the device with the most
        free modeled memory (ties to the lowest index).  ``self.budget``
        stays the aggregate book either way.  Per-device budgets are
        always acquired in index order, so concurrent workers cannot
        deadlock against each other.
        """
        backend = leader.backend
        reservations: "list[tuple[MemoryBudget, int]]" = []
        if backend.startswith("fleet-"):
            fleet = self._fleet_for()
            engine_kwargs = {"fleet": fleet}
            shard_bytes = tuple(
                max(parts)
                for parts in zip(*(job.shard_bytes for job in group))
            )
            if self.device_budgets is not None:
                for budget, need in zip(self.device_budgets, shard_bytes):
                    if budget is not None and need > 0:
                        budget.reserve(need)
                        reservations.append((budget, need))
            total = sum(shard_bytes)
            self.budget.reserve(total)
            reservations.append((self.budget, total))
            self.obs.metrics.counter("fleet.jobs").inc()
        elif backend.startswith("gpu"):
            if self.device_budgets is not None and self.fleet is not None:
                index = self._place(nbytes)
                budget = self.device_budgets[index]
                budget.reserve(nbytes)
                reservations.append((budget, nbytes))
                engine_kwargs = {"gpu_spec": self.fleet.specs[index]}
                self.obs.metrics.counter(
                    f"fleet.placements.dev{index}"
                ).inc()
            else:
                engine_kwargs = {"gpu_spec": self.gpu_spec}
            self.budget.reserve(nbytes)
            reservations.append((self.budget, nbytes))
        else:
            engine_kwargs = {}
            self.budget.reserve(nbytes)
            reservations.append((self.budget, nbytes))
        return engine_kwargs, reservations

    def _place(self, nbytes: int) -> int:
        """Fleet member for a solo GPU job: most free modeled memory."""
        best, best_free = None, -1
        for index, budget in enumerate(self.device_budgets):
            if budget is None or not budget.fits(nbytes):
                continue
            if index in self._quarantined:
                continue
            if budget.free_bytes > best_free:
                best, best_free = index, budget.free_bytes
        if best is None:  # pragma: no cover - admission checks this
            raise DeviceOutOfMemoryError(
                nbytes, 0, max(0, self.fleet.max_usable_bytes)
            )
        return best

    def _run_coalesced(
        self, data: np.ndarray, group: list[Job], engine_kwargs: dict
    ) -> list:
        """Run a share-key group against one shared initialization.

        Replays the solo initialization protocol once, then restores
        the post-initialization RNG snapshot before every member so
        each result is bit-identical to its solo run (see the module
        docstring).
        """
        leader = group[0].request
        with self.obs.span(
            "coalesced_group", category="serve",
            backend=leader.backend, jobs=len(group),
        ):
            rng = RandomSource(leader.seed)
            with self.obs.span("shared_state", category="serve"):
                shared = build_solo_shared_state(data, leader.params, rng)
            post_init_state = rng.get_state()
            outcomes = []
            for index, job in enumerate(group):
                rng.set_state(post_init_state)
                outcomes.append(
                    self.runner.fit(
                        data,
                        backend=job.request.backend,
                        params=job.request.params,
                        seed=rng,
                        shared_state=shared,
                        charge_greedy=index == 0,
                        engine_kwargs=engine_kwargs,
                    )
                )
            return outcomes

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _clock(self) -> float:
        return time.perf_counter() - self._epoch

    def _event(
        self, kind: str, job_id: int, request: ClusterRequest,
        detail: str = "",
    ) -> None:
        event = ServeEvent(
            ts=self._clock(),
            kind=kind,
            job_id=job_id,
            fingerprint=request.fingerprint,
            backend=request.backend,
            k=request.params.k,
            l=request.params.l,
            queued=self.scheduler.depth,
            running=self._running,
            detail=detail,
        )
        with self.obs.span(
            f"serve.{kind}", category="serve",
            job_id=job_id, backend=request.backend,
            k=request.params.k, l=request.params.l,
            detail=detail,
        ) as span:
            event.span_id = span.span_id
        self.log.record(event)
        if self.monitor is not None:
            self.monitor.on_event(event)
        if self.recorder is not None:
            self.recorder.record_serve(
                event.as_dict(),
                corr=f"job-{job_id}" if job_id >= 0 else None,
            )

    def _on_slo_breach(self, report: dict) -> None:
        """Monitor callback: last-resort bundle dump on an SLO breach.

        Fires once per configured SLO name, and only when no other
        trigger already captured a bundle — a breach caused by an
        exhausted job should yield that job's forensics, not a second
        bundle for the symptom.
        """
        if self.recorder is None or self.recorder.dump_count > 0:
            return
        failing = [
            str(slo.get("name"))
            for slo in report.get("slos", [])
            if isinstance(slo, dict)
            and not slo.get("ok", True)
            and slo.get("name") in self.postmortem_slos
            and slo.get("name") not in self._slo_dumped
        ]
        if not failing:
            return
        self._slo_dumped.update(failing)
        self.recorder.record_failure(
            "slo-breach", detail="failing: " + ", ".join(failing)
        )
        self.recorder.auto_dump("slo-breach", health=report)

    def _observe_latency(self, handle: JobHandle) -> None:
        self.obs.metrics.histogram("serve.latency_seconds").observe(
            handle.latency
        )
