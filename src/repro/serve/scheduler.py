"""Priority queue, admission control, and the request coalescer.

Admission decisions are made against the *modeled* device, in the same
units the paper reports:

* **memory** — :func:`estimate_device_bytes` pre-computes the exact
  footprint the GPU engine's up-front allocation
  (:meth:`repro.gpu_impl.accounting.GpuEngineMixin._setup`) will
  request, so a request that could never fit the modeled card
  (Section 5: space becomes the limit at 8M points on the 6 GB
  GTX 1660 Ti) is rejected at submit time instead of failing mid-run.
  ``fleet-*`` jobs carry per-shard estimates
  (:func:`estimate_shard_bytes`) and are admitted componentwise
  against the fleet's per-device capacities, so a job too big for any
  single card still runs when its shards fit the fleet together;
* **backlog** — completed runs feed an exponentially weighted average
  of modeled device seconds per backend, and the queue's summed
  estimate is capped, bounding modeled wait time;
* **queue** — a plain depth bound.

:meth:`JobScheduler.pop_group` implements the coalescer: it pops the
best job and drains every other queued job with the same
:attr:`~repro.serve.request.ClusterRequest.share_key`, so the group
executes once per the multi-parameter driver's sharing strategy while
each member's response stays bit-identical to a solo run.
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading

from ..exceptions import AdmissionError, ParameterError
from ..fleet.fleet import Fleet
from ..params import ProclusParams
from .request import Job

__all__ = ["JobScheduler", "estimate_device_bytes", "estimate_shard_bytes"]

_F32 = 4
_I64 = 8
_BOOL = 1


def _variant_shapes(backend, n, d, k, m, w):
    """Variant-specific device arrays as ``(shape, itemsize)`` entries,
    mirroring each engine's ``_variant_device_arrays``."""
    if backend == "gpu":
        # GPU-PROCLUS: Dist rows for the k current medoids only.
        return [((k, n), _F32)]
    if backend == "gpu-fast-star":
        # GPU-FAST*: k-row caches + slot ownership (O(k*n) space).
        return [
            ((k, n), _F32), ((k, d), _F32), ((k,), _F32), ((k,), _F32),
            ((k,), _I64),
        ]
    if backend == "gpu-fast-dist-only":
        return [((m, n), _F32), ((m,), _BOOL)]
    if backend == "gpu-fast-h-only":
        return [((k, n), _F32), ((m, d), _F32), ((m,), _F32), ((m,), _F32)]
    # GPU-FAST: Dist window + H + prev_delta + L_size_cache + DistFound.
    return [
        ((w, n), _F32), ((m, d), _F32), ((m,), _F32), ((m,), _F32),
        ((m,), _BOOL),
    ]


def _device_shapes(n, d, params, backend, dist_chunks):
    """Every up-front device allocation as ``(shape, itemsize)``.

    Mirrors the one-shot allocation of
    :class:`~repro.gpu_impl.accounting.GpuEngineMixin._setup` (data,
    greedy distances, M, L/C worst-case sets, labels, X/Z, deltas, plus
    the variant's cache arrays).
    """
    k = params.k
    s = params.effective_sample_size(n)
    m = params.effective_num_potential(n)
    window = math.ceil(m / dist_chunks)
    common = [
        ((n, d), _F32),  # data
        ((s,), _F32),  # greedy_dist
        ((m,), _F32),  # M
        ((k, n), _F32),  # L (worst-case size n per medoid)
        ((k, n), _F32),  # C
        ((k,), _F32),  # L_sizes
        ((k,), _F32),  # C_sizes
        ((n,), _F32),  # labels
        ((k, d), _F32),  # X
        ((k, d), _F32),  # Z
        ((k,), _F32),  # delta
        ((k, k), _F32),  # medoid_dist
    ]
    return common + _variant_shapes(backend, n, d, k, m, window)


def estimate_device_bytes(
    n: int,
    d: int,
    params: ProclusParams,
    backend: str,
    dist_chunks: int = 1,
    fleet: Fleet | None = None,
) -> int:
    """Modeled device bytes a run will allocate up front.

    Returns 0 for CPU backends, which use no device memory.  For a
    ``fleet-*`` backend this is the *largest single-device* footprint
    of the sharded run (over a one-card fleet when ``fleet`` is
    omitted); use :func:`estimate_shard_bytes` for the per-device
    breakdown.
    """
    if backend.startswith("fleet-"):
        if fleet is None:
            return estimate_device_bytes(
                n, d, params, backend.removeprefix("fleet-"), dist_chunks
            )
        return max(estimate_shard_bytes(n, d, params, backend, fleet,
                                        dist_chunks))
    if not backend.startswith("gpu"):
        return 0
    return sum(
        math.prod(shape) * itemsize
        for shape, itemsize in _device_shapes(n, d, params, backend,
                                              dist_chunks)
    )


def estimate_shard_bytes(
    n: int,
    d: int,
    params: ProclusParams,
    backend: str,
    fleet: Fleet,
    dist_chunks: int = 1,
) -> tuple[int, ...]:
    """Per-device modeled bytes of a fleet-sharded run.

    Mirrors :meth:`repro.fleet.device.FleetDevice.alloc`: every
    allocation splits its first ``n``-sized axis per the fleet's shard
    plan and is replicated on every active shard otherwise, so the
    per-device estimates are exact for the same reason the solo
    estimate is.  Members holding no points (zero weight or zero
    capacity) estimate to 0.
    """
    solo = backend.removeprefix("fleet-")
    if not solo.startswith("gpu"):
        return tuple(0 for _ in fleet.specs)
    shapes = _device_shapes(n, d, params, solo, dist_chunks)
    out = []
    for count in fleet.shard_plan(n).counts:
        if count == 0:
            out.append(0)
            continue
        total = 0
        for shape, itemsize in shapes:
            split = list(shape)
            for axis, size in enumerate(shape):
                if size == n:
                    split[axis] = count
                    break
            total += math.prod(split) * itemsize
        out.append(total)
    return tuple(out)


class JobScheduler:
    """Thread-safe priority queue with admission control and coalescing."""

    #: EWMA smoothing for the per-backend modeled-seconds estimate.
    EWMA_ALPHA = 0.3

    def __init__(
        self,
        max_queue_depth: int = 64,
        max_backlog_seconds: float = math.inf,
        capacity_bytes: int | None = None,
        coalesce: bool = True,
        device_capacities: "tuple[int, ...] | None" = None,
    ) -> None:
        if max_queue_depth < 1:
            raise ParameterError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if not max_backlog_seconds > 0:
            raise ParameterError(
                f"max_backlog_seconds must be > 0, got {max_backlog_seconds}"
            )
        self.max_queue_depth = max_queue_depth
        self.max_backlog_seconds = max_backlog_seconds
        self.capacity_bytes = capacity_bytes
        #: Per-device capacities of the fleet (when serving one); jobs
        #: carrying per-shard estimates are admitted componentwise
        #: against these instead of against ``capacity_bytes``.
        self.device_capacities = device_capacities
        self.coalesce = coalesce
        self._lock = threading.Lock()
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._ewma_seconds: dict[str, float] = {}

    def set_device_capacity(self, index: int, capacity_bytes: int) -> None:
        """Adjust one fleet member's admission capacity in place.

        Health-aware serving drives this: a quarantined member's
        capacity drops to 0 (no shard may be admitted onto it) and is
        restored on readmission.  Raises :class:`ParameterError` when
        the scheduler has no per-device capacities or ``index`` is out
        of range.
        """
        with self._lock:
            if self.device_capacities is None:
                raise ParameterError(
                    "scheduler has no per-device capacities to adjust"
                )
            if not 0 <= index < len(self.device_capacities):
                raise ParameterError(
                    f"device index {index} out of range for "
                    f"{len(self.device_capacities)} devices"
                )
            capacities = list(self.device_capacities)
            capacities[index] = max(0, int(capacity_bytes))
            self.device_capacities = tuple(capacities)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, job: Job) -> None:
        """Raise :class:`AdmissionError` when ``job`` must be refused."""
        backend = job.request.backend
        with self._lock:
            if len(self._heap) >= self.max_queue_depth:
                raise AdmissionError(
                    f"queue full ({len(self._heap)} of "
                    f"{self.max_queue_depth} jobs); retry later",
                    reason="queue",
                )
            if (
                job.shard_bytes is not None
                and self.device_capacities is not None
            ):
                # Sharded job on a fleet: each shard must fit its own
                # device.  A job too big for any single card is still
                # admitted when its shards fit the fleet together.
                for index, (need, cap) in enumerate(
                    zip(job.shard_bytes, self.device_capacities)
                ):
                    if need > cap:
                        raise AdmissionError(
                            f"shard {index} needs {need} modeled device "
                            f"bytes but device {index} has {cap}; it can "
                            f"never run",
                            reason="memory",
                        )
            elif (
                self.capacity_bytes is not None
                and job.estimated_bytes > self.capacity_bytes
            ):
                raise AdmissionError(
                    f"request needs {job.estimated_bytes} modeled device "
                    f"bytes but the card has {self.capacity_bytes}; it can "
                    f"never run",
                    reason="memory",
                )
            backlog = self._backlog_seconds_locked()
            estimate = self._ewma_seconds.get(backend, 0.0)
            if backlog + estimate > self.max_backlog_seconds:
                raise AdmissionError(
                    f"modeled backlog {backlog + estimate:.3f}s exceeds the "
                    f"{self.max_backlog_seconds:.3f}s budget; retry later",
                    reason="backlog",
                )

    # ------------------------------------------------------------------
    # Queue
    # ------------------------------------------------------------------
    def push(self, job: Job) -> None:
        """Enqueue an admitted job."""
        with self._lock:
            heapq.heappush(
                self._heap, (job.request.priority, next(self._seq), job)
            )

    def pop_group(self) -> list[Job]:
        """Dequeue the best job plus every queued share-key sibling.

        Returns ``[]`` when the queue is empty.  With coalescing off,
        returns at most one job.  Group members keep their
        priority/submission order, so the leader (which pays the greedy
        charge) is deterministic.
        """
        with self._lock:
            if not self._heap:
                return []
            priority, seq, leader = heapq.heappop(self._heap)
            if not self.coalesce:
                return [leader]
            group = [(priority, seq, leader)]
            remaining = []
            for entry in self._heap:
                if entry[2].share_key == leader.share_key:
                    group.append(entry)
                else:
                    remaining.append(entry)
            if len(group) > 1:
                heapq.heapify(remaining)
                self._heap = remaining
                group.sort(key=lambda entry: entry[:2])
            return [entry[2] for entry in group]

    def find_queued(self, cache_key: tuple) -> Job | None:
        """A queued job with this cache key, for submit-time dedupe."""
        with self._lock:
            for _, _, job in self._heap:
                if job.cache_key == cache_key:
                    return job
            return None

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    # ------------------------------------------------------------------
    # Modeled-backlog accounting
    # ------------------------------------------------------------------
    def observe(self, backend: str, modeled_seconds: float) -> None:
        """Feed one completed run's modeled seconds into the estimator."""
        with self._lock:
            previous = self._ewma_seconds.get(backend)
            if previous is None:
                self._ewma_seconds[backend] = modeled_seconds
            else:
                self._ewma_seconds[backend] = (
                    self.EWMA_ALPHA * modeled_seconds
                    + (1.0 - self.EWMA_ALPHA) * previous
                )

    def estimate_seconds(self, backend: str) -> float:
        """Current modeled-seconds estimate for one run of ``backend``."""
        with self._lock:
            return self._ewma_seconds.get(backend, 0.0)

    def backlog_seconds(self) -> float:
        """Summed modeled-seconds estimate of everything queued."""
        with self._lock:
            return self._backlog_seconds_locked()

    def _backlog_seconds_locked(self) -> float:
        return sum(
            self._ewma_seconds.get(job.request.backend, 0.0)
            for _, _, job in self._heap
        )
