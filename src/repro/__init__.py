"""GPU-FAST-PROCLUS: fast (simulated-)GPU-parallelized projected clustering.

A full reproduction of "GPU-FAST-PROCLUS: A Fast GPU-parallelized
Approach to Projected Clustering" (EDBT 2022): the PROCLUS baseline,
the FAST / FAST* algorithmic strategies, GPU parallelizations of all
three on a simulated CUDA device with a calibrated performance model,
multi-core CPU variants, and the multi-parameter reuse strategies.

Entry points:

* :func:`repro.proclus` — run one clustering with any backend;
* :func:`repro.run_parameter_study` — run a (k, l) grid with the
  multi-parameter reuse strategies;
* :mod:`repro.data` — synthetic generator and real-world stand-ins;
* :mod:`repro.bench` — the harness regenerating the paper's figures.
"""

from .core.api import BACKENDS, proclus, run_parameter_study
from .core.multiparam import MultiParamResult, ReuseLevel
from .core.predict import assign_new_points
from .core.serialization import (
    load_engine_state,
    load_result,
    save_engine_state,
    save_result,
)
from .core.state import IterativeState
from .core.trace import RunTrace
from .estimator import PROCLUS
from .params import ParameterGrid, ProclusParams
from .result import OUTLIER_LABEL, ProclusResult, RunStats
from .rng import RandomSource
from .exceptions import (
    AdmissionError,
    CheckpointError,
    ConvergenceError,
    DataValidationError,
    DeviceError,
    DeviceOutOfMemoryError,
    EmulationError,
    KernelLaunchError,
    KernelTimeoutError,
    ParameterError,
    ReproError,
    ResilienceExhaustedError,
    ServeError,
    TransferCorruptionError,
    TransientDeviceError,
)
from .resilience import (
    FaultInjector,
    RetryPolicy,
    ResilientRunner,
    resilient_fit,
    run_resilient_study,
    use_injector,
)
from .data.fingerprint import dataset_fingerprint

# Imported last: repro.serve builds on most of the layers above.
from .serve import ClusterService

__version__ = "1.0.0"

__all__ = [
    "proclus",
    "run_parameter_study",
    "BACKENDS",
    "ProclusParams",
    "ParameterGrid",
    "ProclusResult",
    "RunStats",
    "MultiParamResult",
    "ReuseLevel",
    "assign_new_points",
    "save_result",
    "load_result",
    "save_engine_state",
    "load_engine_state",
    "IterativeState",
    "RunTrace",
    "PROCLUS",
    "RandomSource",
    "OUTLIER_LABEL",
    "ReproError",
    "ParameterError",
    "DataValidationError",
    "DeviceError",
    "DeviceOutOfMemoryError",
    "KernelLaunchError",
    "EmulationError",
    "ConvergenceError",
    "TransientDeviceError",
    "TransferCorruptionError",
    "KernelTimeoutError",
    "CheckpointError",
    "ResilienceExhaustedError",
    "FaultInjector",
    "use_injector",
    "RetryPolicy",
    "ResilientRunner",
    "resilient_fit",
    "run_resilient_study",
    "ClusterService",
    "ServeError",
    "AdmissionError",
    "dataset_fingerprint",
    "__version__",
]
