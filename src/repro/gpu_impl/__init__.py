"""GPU-parallelized PROCLUS variants (Section 4 of the paper).

The engines here execute the same exact mathematics as their CPU
counterparts (guaranteeing identical clusterings) while routing every
piece of work through simulated kernel launches on a
:class:`~repro.gpu.device.Device`: allocations live in (and are limited
by) device memory, and each launch is costed by the roofline model with
the launch geometry of the paper's Algorithms 2-6.

:mod:`repro.gpu_impl.kernels` additionally contains faithful SIMT
implementations of the paper's kernels for the emulator; tests verify
them thread-for-thread against the vectorized phase math.
"""

from .gpu_proclus import GpuProclusEngine
from .gpu_fast import GpuFastProclusEngine
from .gpu_fast_star import GpuFastStarProclusEngine

__all__ = [
    "GpuProclusEngine",
    "GpuFastProclusEngine",
    "GpuFastStarProclusEngine",
]
