"""GPU-FAST*-PROCLUS: the space-reduced GPU variant (Sections 3.2, 4.2)."""

from __future__ import annotations

import numpy as np

from ..core.fast_star import FastStarProclusEngine
from .accounting import GpuEngineMixin

__all__ = ["GpuFastStarProclusEngine"]


class GpuFastStarProclusEngine(GpuEngineMixin, FastStarProclusEngine):
    """FAST*-PROCLUS executed as kernels on the simulated GPU.

    Device footprint is ``O(k*n)`` like GPU-PROCLUS (only the current
    slots' distance rows and ``H`` sums are cached), which Fig. 3f shows
    as roughly half of GPU-FAST-PROCLUS's usage, at a ~1.05-1.1x
    running-time cost (Fig. 1).
    """

    backend_name = "gpu-fast*-proclus"

    def _variant_device_arrays(self, n: int, d: int) -> None:
        k = self.params.k
        self.device.alloc((k, n), np.float32, "Dist")
        self.device.alloc((k, d), np.float32, "H")
        self.device.alloc((k,), np.float32, "prev_delta")
        self.device.alloc((k,), np.int32, "L_size_cache")
        self.device.alloc((k,), np.int64, "slot_medoid")
