"""RemoveOutliers (Section 4.1, last paragraph) as emulated kernels."""

from __future__ import annotations

import math

import numpy as np

from ...gpu.atomics import atomic_min
from ...gpu.emulator import SimtEmulator, ThreadContext
from .assign_points import _segmental_f32

__all__ = ["find_outliers_emulated"]


def _medoid_delta_kernel(
    ctx: ThreadContext,
    medoid_points: np.ndarray,
    dims_padded: np.ndarray,
    dims_count: np.ndarray,
    delta: np.ndarray,
) -> None:
    """Block per medoid i, thread per medoid j: smallest segmental
    distance between medoids within D_i."""
    i = ctx.bx
    k = medoid_points.shape[0]
    for j in ctx.block_stride(k):
        if j != i:
            dims = tuple(int(t) for t in dims_padded[i, : dims_count[i]])
            dist = _segmental_f32(medoid_points[j], medoid_points[i], dims)
            atomic_min(delta, i, dist)


def _check_kernel(
    ctx: ThreadContext,
    data: np.ndarray,
    medoid_points: np.ndarray,
    dims_padded: np.ndarray,
    dims_count: np.ndarray,
    delta: np.ndarray,
    outlier: np.ndarray,
) -> None:
    """Each point is an outlier unless it lies within some sphere."""
    k = medoid_points.shape[0]
    for p in ctx.grid_stride(data.shape[0]):
        inside = False
        for i in range(k):
            dims = tuple(int(t) for t in dims_padded[i, : dims_count[i]])
            if _segmental_f32(data[p], medoid_points[i], dims) <= delta[i]:
                inside = True
                break
        outlier[p] = not inside


def find_outliers_emulated(
    data: np.ndarray,
    medoid_ids: np.ndarray,
    dimensions: tuple[tuple[int, ...], ...],
    emulator: SimtEmulator | None = None,
    threads_per_block: int = 32,
) -> np.ndarray:
    """Run the outlier detection on the emulator; returns a bool mask."""
    em = emulator if emulator is not None else SimtEmulator()
    n = data.shape[0]
    k = len(medoid_ids)
    medoid_points = data[medoid_ids]

    max_dims = max(len(dims) for dims in dimensions)
    dims_padded = np.zeros((k, max_dims), dtype=np.int64)
    dims_count = np.zeros(k, dtype=np.int64)
    for i, dims in enumerate(dimensions):
        dims_count[i] = len(dims)
        dims_padded[i, : len(dims)] = dims

    delta = np.full(k, np.inf, dtype=np.float64)
    em.launch(
        _medoid_delta_kernel,
        k,
        max(1, min(threads_per_block, k)),
        medoid_points,
        dims_padded,
        dims_count,
        delta,
    )

    outlier = np.zeros(n, dtype=bool)
    em.launch(
        _check_kernel,
        max(1, math.ceil(n / threads_per_block)),
        threads_per_block,
        data,
        medoid_points,
        dims_padded,
        dims_count,
        delta,
        outlier,
    )
    return outlier
