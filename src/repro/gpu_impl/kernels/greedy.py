"""Algorithm 2 (Greedy) as emulated SIMT kernels."""

from __future__ import annotations

import math

import numpy as np

from ...gpu.atomics import atomic_max, atomic_min
from ...gpu.emulator import SimtEmulator, ThreadContext

__all__ = ["greedy_select_emulated"]


def _euclidean_f32(a: np.ndarray, b: np.ndarray) -> np.float32:
    """Per-thread distance: f32 terms, exact f64 accumulation, f32 result.

    Mirrors :func:`repro.core.distance.euclidean_to_point` exactly.
    """
    acc = 0.0
    for j in range(len(a)):
        diff = np.float32(a[j] - b[j])
        acc += float(np.float32(diff * diff))
    return np.float32(math.sqrt(acc))


def _distance_kernel(
    ctx: ThreadContext,
    sample: np.ndarray,
    medoid_index: np.ndarray,
    dist: np.ndarray,
    max_dist: np.ndarray,
    first: bool,
) -> None:
    """Lines 2-5 / 10-13: update min-distances and the shared maximum."""
    medoid = sample[int(medoid_index[0])]
    for p in ctx.grid_stride(sample.shape[0]):
        new = _euclidean_f32(sample[p], medoid)
        if first or new < dist[p]:
            dist[p] = new
        atomic_max(max_dist, 0, dist[p])


def _argmax_check_kernel(
    ctx: ThreadContext,
    dist: np.ndarray,
    max_dist: np.ndarray,
    winner: np.ndarray,
) -> None:
    """Lines 7-9: find a point at the maximal distance.

    The paper lets the last writer win; we take the lowest index via an
    atomic min so the pick is deterministic (and matches the vectorized
    ``argmax``).
    """
    for p in ctx.grid_stride(dist.shape[0]):
        if dist[p] == max_dist[0]:
            atomic_min(winner, 0, p)


def greedy_select_emulated(
    sample: np.ndarray,
    count: int,
    seed_index: int,
    emulator: SimtEmulator | None = None,
    threads_per_block: int = 32,
) -> np.ndarray:
    """Run Algorithm 2 on the emulator; returns indices into ``sample``."""
    em = emulator if emulator is not None else SimtEmulator()
    s = sample.shape[0]
    grid = max(1, math.ceil(s / threads_per_block))

    dist = np.empty(s, dtype=np.float32)
    max_dist = np.zeros(1, dtype=np.float32)
    chosen = np.empty(count, dtype=np.int64)
    chosen[0] = seed_index
    current = np.array([seed_index], dtype=np.int64)

    em.launch(_distance_kernel, grid, threads_per_block,
              sample, current, dist, max_dist, True)
    for i in range(1, count):
        winner = np.array([s], dtype=np.int64)
        em.launch(_argmax_check_kernel, grid, threads_per_block,
                  dist, max_dist, winner)
        chosen[i] = winner[0]
        current[0] = winner[0]
        max_dist[0] = 0.0
        em.launch(_distance_kernel, grid, threads_per_block,
                  sample, current, dist, max_dist, False)
    return chosen
