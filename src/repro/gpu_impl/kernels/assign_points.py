"""Algorithm 5 (AssignPoints) as an emulated SIMT kernel."""

from __future__ import annotations

import numpy as np

from ...gpu.atomics import atomic_inc, atomic_min
from ...gpu.emulator import SimtEmulator, ThreadContext

__all__ = ["assign_points_emulated"]


def _segmental_f32(
    point: np.ndarray, medoid: np.ndarray, dims: tuple[int, ...]
) -> float:
    """Manhattan segmental distance with exact f64 accumulation."""
    acc = 0.0
    for j in dims:
        acc += float(np.float32(abs(np.float32(point[j] - medoid[j]))))
    return acc / len(dims)


def _assign_kernel(
    ctx: ThreadContext,
    data: np.ndarray,
    medoid_points: np.ndarray,
    dims_padded: np.ndarray,
    dims_count: np.ndarray,
    c_sets: np.ndarray,
    c_sizes: np.ndarray,
    labels: np.ndarray,
):
    """One block handles one point; its threads cover the k medoids.

    ``minDist_p`` lives in shared memory and is reduced with atomicMin;
    after the barrier, the winning medoid (lowest index on ties, for
    determinism) appends the point.
    """
    p = ctx.bx
    k = medoid_points.shape[0]
    min_dist = ctx.shared.array("min_dist", 1, np.float64, fill=np.inf)
    local = np.full(k, np.inf)
    for i in ctx.block_stride(k):
        dims = tuple(int(j) for j in dims_padded[i, : dims_count[i]])
        local[i] = _segmental_f32(data[p], medoid_points[i], dims)
        atomic_min(min_dist, 0, local[i])
    yield  # __syncthreads: all medoids checked before selecting
    # Deterministic tie-break: thread 0 scans medoids in order and the
    # first one matching the minimum wins (the paper lets any matching
    # thread append, which ties nondeterministically).
    if ctx.tx == 0:
        for i in range(k):
            dims = tuple(int(j) for j in dims_padded[i, : dims_count[i]])
            dist = _segmental_f32(data[p], medoid_points[i], dims)
            if dist == min_dist[0]:
                slot = atomic_inc(c_sizes, i)
                c_sets[i, slot] = p
                labels[p] = i
                break


def assign_points_emulated(
    data: np.ndarray,
    medoid_ids: np.ndarray,
    dimensions: tuple[tuple[int, ...], ...],
    emulator: SimtEmulator | None = None,
    threads_per_block: int = 8,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Run Algorithm 5 on the emulator; returns ``(labels, c_sets)``."""
    em = emulator if emulator is not None else SimtEmulator()
    n = data.shape[0]
    k = len(medoid_ids)
    medoid_points = data[medoid_ids]

    max_dims = max(len(dims) for dims in dimensions)
    dims_padded = np.zeros((k, max_dims), dtype=np.int64)
    dims_count = np.zeros(k, dtype=np.int64)
    for i, dims in enumerate(dimensions):
        dims_count[i] = len(dims)
        dims_padded[i, : len(dims)] = dims

    c_sets = np.full((k, n), -1, dtype=np.int64)
    c_sizes = np.zeros(k, dtype=np.int64)
    labels = np.full(n, -1, dtype=np.int64)
    em.launch(
        _assign_kernel,
        n,
        min(threads_per_block, max(1, k)),
        data,
        medoid_points,
        dims_padded,
        dims_count,
        c_sets,
        c_sizes,
        labels,
    )
    return labels, [c_sets[i, : c_sizes[i]] for i in range(k)]
