"""Faithful SIMT implementations of the paper's CUDA kernels.

Each module implements one of the paper's Algorithms 2-6 (plus
RemoveOutliers) as kernels for the cooperative emulator in
:mod:`repro.gpu.emulator`: explicit thread blocks, shared memory,
atomics and barrier synchronization, following the pseudocode line by
line.  They are intentionally slow — their job is to validate, on small
inputs, that the vectorized phase implementations used by the engines
compute exactly what the GPU kernels would.

Deterministic tie-breaking: where the paper's kernels resolve ties by
racing writes (``if maxDist = Dist_p then M_i <- p``), these kernels
resolve toward the lowest index with an atomic min, so their output is
schedule-independent and matches the vectorized implementation bit for
bit.
"""

from .greedy import greedy_select_emulated
from .compute_l import compute_l_emulated
from .find_dimensions import find_dimensions_emulated
from .assign_points import assign_points_emulated
from .evaluate import evaluate_clusters_emulated
from .outliers import find_outliers_emulated
from .fast_compute_l import fast_compute_l_emulated

__all__ = [
    "greedy_select_emulated",
    "compute_l_emulated",
    "find_dimensions_emulated",
    "assign_points_emulated",
    "evaluate_clusters_emulated",
    "find_outliers_emulated",
    "fast_compute_l_emulated",
]
