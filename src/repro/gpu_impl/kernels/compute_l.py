"""Algorithm 3 (ComputeL) as emulated SIMT kernels."""

from __future__ import annotations

import math

import numpy as np

from ...gpu.atomics import atomic_inc, atomic_min
from ...gpu.emulator import SimtEmulator, ThreadContext
from .greedy import _euclidean_f32

__all__ = ["compute_l_emulated"]


def _distances_kernel(
    ctx: ThreadContext,
    data: np.ndarray,
    medoid_points: np.ndarray,
    dist: np.ndarray,
) -> None:
    """Lines 1-3: distances from each medoid (block y) to each point."""
    i = ctx.by  # medoid block
    for p in ctx.grid_stride_x(data.shape[0]):
        dist[i, p] = _euclidean_f32(data[p], medoid_points[i])


def _delta_kernel(
    ctx: ThreadContext,
    medoid_ids: np.ndarray,
    dist: np.ndarray,
    delta: np.ndarray,
) -> None:
    """Lines 4-7: radius = distance to the closest other medoid."""
    i = ctx.bx
    j = ctx.tx
    if j < len(medoid_ids) and j != i:
        atomic_min(delta, i, dist[i, medoid_ids[j]])


def _build_l_kernel(
    ctx: ThreadContext,
    dist: np.ndarray,
    delta: np.ndarray,
    l_sets: np.ndarray,
    l_sizes: np.ndarray,
) -> None:
    """Lines 8-12: append the in-sphere points with atomicInc."""
    i = ctx.by
    for p in ctx.grid_stride_x(dist.shape[1]):
        if dist[i, p] <= delta[i]:
            slot = atomic_inc(l_sizes, i)
            l_sets[i, slot] = p


def compute_l_emulated(
    data: np.ndarray,
    medoid_ids: np.ndarray,
    emulator: SimtEmulator | None = None,
    threads_per_block: int = 32,
) -> tuple[list[np.ndarray], np.ndarray, np.ndarray]:
    """Run Algorithm 3 on the emulator.

    Returns ``(l_sets, delta, dist)`` where ``l_sets[i]`` holds the
    point indices of ``L_i`` (in nondeterministic append order — the
    sets, not the order, are the algorithm's output), ``delta`` the
    sphere radii and ``dist`` the ``(k, n)`` distance matrix.
    """
    em = emulator if emulator is not None else SimtEmulator()
    n = data.shape[0]
    k = len(medoid_ids)
    medoid_points = data[medoid_ids]

    dist = np.empty((k, n), dtype=np.float32)
    em.launch(
        _distances_kernel,
        (max(1, math.ceil(n / threads_per_block)), k),
        threads_per_block,
        data,
        medoid_points,
        dist,
    )

    delta = np.full(k, np.inf, dtype=np.float32)
    em.launch(_delta_kernel, k, max(1, k), medoid_ids, dist, delta)

    l_sets = np.full((k, n), -1, dtype=np.int64)
    l_sizes = np.zeros(k, dtype=np.int64)
    em.launch(
        _build_l_kernel,
        (max(1, math.ceil(n / threads_per_block)), k),
        threads_per_block,
        dist,
        delta,
        l_sets,
        l_sizes,
    )
    sets = [l_sets[i, : l_sizes[i]] for i in range(k)]
    return sets, delta, dist
