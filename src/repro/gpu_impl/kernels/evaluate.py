"""Algorithm 6 (EvaluateCluster) as an emulated SIMT kernel."""

from __future__ import annotations

import numpy as np

from ...gpu.atomics import atomic_add
from ...gpu.emulator import SimtEmulator, ThreadContext

__all__ = ["evaluate_clusters_emulated"]


def _evaluate_kernel(
    ctx: ThreadContext,
    data: np.ndarray,
    c_sets: np.ndarray,
    c_sizes: np.ndarray,
    pair_cluster: np.ndarray,
    pair_dim: np.ndarray,
    pair_weight: np.ndarray,
    cost: np.ndarray,
):
    """One block per (cluster i, dimension j in D_i) pair (Eq. 9).

    The centroid coordinate ``mu_ij`` is accumulated in shared memory
    (never written to global memory, as the paper stresses); each
    thread keeps a local partial and issues one atomic per pass.
    """
    i = int(pair_cluster[ctx.bx])
    j = int(pair_dim[ctx.bx])
    size = int(c_sizes[i])
    mu = ctx.shared.array("mu", 1, np.float64, fill=0.0)
    local = 0.0
    for t in ctx.block_stride(size):
        local += float(data[c_sets[i, t], j])
    atomic_add(mu, 0, local / size if size else 0.0)
    yield  # __syncthreads: mu_ij complete before it is used
    local = 0.0
    for t in ctx.block_stride(size):
        local += abs(float(data[c_sets[i, t], j]) - mu[0])
    atomic_add(cost, 0, local * pair_weight[ctx.bx])


def evaluate_clusters_emulated(
    data: np.ndarray,
    c_sets: np.ndarray,
    c_sizes: np.ndarray,
    dimensions: tuple[tuple[int, ...], ...],
    emulator: SimtEmulator | None = None,
    threads_per_block: int = 32,
) -> float:
    """Run Algorithm 6 on the emulator; returns the clustering cost.

    Note the float64 atomic accumulation of ``cost`` is order-sensitive
    in the last bits (the terms are not exactly representable once the
    centroid enters), so callers compare against the vectorized
    :func:`~repro.core.phases.evaluate_clusters` with a tolerance.
    """
    em = emulator if emulator is not None else SimtEmulator()
    n = data.shape[0]
    pair_cluster: list[int] = []
    pair_dim: list[int] = []
    pair_weight: list[float] = []
    for i, dims in enumerate(dimensions):
        for j in dims:
            pair_cluster.append(i)
            pair_dim.append(j)
            pair_weight.append(1.0 / (len(dims) * n))
    cost = np.zeros(1, dtype=np.float64)
    em.launch(
        _evaluate_kernel,
        len(pair_cluster),
        threads_per_block,
        data,
        c_sets,
        c_sizes,
        np.array(pair_cluster, dtype=np.int64),
        np.array(pair_dim, dtype=np.int64),
        np.array(pair_weight, dtype=np.float64),
        cost,
    )
    return float(cost[0])
