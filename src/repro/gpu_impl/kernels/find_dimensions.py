"""Algorithm 4 (FindDimensions) as emulated SIMT kernels."""

from __future__ import annotations

import math

import numpy as np

from ...gpu.atomics import atomic_add
from ...gpu.emulator import SimtEmulator, ThreadContext
from ...core.phases import find_dimensions as _select_dimensions

__all__ = ["find_dimensions_emulated"]


def _x_sums_kernel(
    ctx: ThreadContext,
    data: np.ndarray,
    medoid_points: np.ndarray,
    l_sets: np.ndarray,
    l_sizes: np.ndarray,
    x: np.ndarray,
) -> None:
    """Lines 1-6: per-(medoid, dimension) average of |p_j - m_ij|.

    Each thread accumulates a local partial sum over its share of
    ``L_i`` and performs a single atomic add at the end — the paper's
    strategy for reducing atomic traffic.  The raw sum of float32 terms
    is exact in float64, so the atomic ordering cannot change it; the
    driver divides by ``|L_i|`` once afterwards (the paper's pseudocode
    divides each partial, which is the same value up to one rounding).
    """
    i, j = ctx.by, ctx.bx
    size = int(l_sizes[i])
    local = 0.0
    for t in ctx.block_stride(size):
        p = l_sets[i, t]
        local += float(np.float32(abs(np.float32(data[p, j] - medoid_points[i, j]))))
    if local:
        atomic_add(x, (i, j), local)


def _z_kernel(
    ctx: ThreadContext,
    x: np.ndarray,
    y: np.ndarray,
    sigma: np.ndarray,
    z: np.ndarray,
):
    """Lines 7-14: combined Y / sigma / Z computation with barriers."""
    i = ctx.bx
    d = x.shape[1]
    for j in ctx.block_stride(d):
        atomic_add(y, i, x[i, j] / d)
    yield  # __syncthreads: Y_i complete before deviations
    for j in ctx.block_stride(d):
        dev = x[i, j] - y[i]
        atomic_add(sigma, i, dev * dev)
    yield  # __syncthreads: sigma sum complete
    if ctx.tx == 0 and d > 1:
        sigma[i] = math.sqrt(sigma[i] / (d - 1))
    yield  # __syncthreads: sigma finalized
    for j in ctx.block_stride(d):
        z[i, j] = (x[i, j] - y[i]) / sigma[i] if sigma[i] > 0 else 0.0


def find_dimensions_emulated(
    data: np.ndarray,
    medoid_ids: np.ndarray,
    l_sets: np.ndarray,
    l_sizes: np.ndarray,
    l: int,
    emulator: SimtEmulator | None = None,
    threads_per_block: int = 32,
) -> tuple[tuple[tuple[int, ...], ...], np.ndarray]:
    """Run Algorithm 4 on the emulator; returns ``(dimensions, x)``.

    ``l_sets``/``l_sizes`` are the padded sphere arrays produced by
    :func:`~repro.gpu_impl.kernels.compute_l.compute_l_emulated`'s
    kernels.  The final pick of the ``k*l`` lowest-Z dimensions (lines
    15-16) reuses the shared host-side selection, as the CUDA code does
    for this tiny ``k x d`` problem.
    """
    em = emulator if emulator is not None else SimtEmulator()
    d = data.shape[1]
    k = len(medoid_ids)
    medoid_points = data[medoid_ids]

    x = np.zeros((k, d), dtype=np.float64)
    em.launch(
        _x_sums_kernel,
        (d, k),
        threads_per_block,
        data,
        medoid_points,
        l_sets,
        l_sizes,
        x,
    )
    sizes = np.maximum(l_sizes[:k].astype(np.float64), 1.0)
    x /= sizes[:, None]

    y = np.zeros(k, dtype=np.float64)
    sigma = np.zeros(k, dtype=np.float64)
    z = np.zeros((k, d), dtype=np.float64)
    em.launch(_z_kernel, k, min(threads_per_block, d), x, y, sigma, z)

    return _select_dimensions_from_z(z, l), x


def _select_dimensions_from_z(
    z: np.ndarray, l: int
) -> tuple[tuple[int, ...], ...]:
    """Pick subspaces from a precomputed Z matrix (lines 15-16)."""
    # The shared selection in repro.core.phases works on X and
    # recomputes Z; here Z is already given, so replicate the pick.
    k, d = z.shape
    picked = np.zeros((k, d), dtype=bool)
    for i in range(k):
        order = np.argsort(z[i], kind="stable")
        picked[i, order[:2]] = True
    remaining = k * l - 2 * k
    if remaining > 0:
        flat_i, flat_j = np.nonzero(~picked)
        order = np.lexsort((flat_j, flat_i, z[flat_i, flat_j]))[:remaining]
        picked[flat_i[order], flat_j[order]] = True
    return tuple(tuple(int(j) for j in np.flatnonzero(picked[i])) for i in range(k))
