"""Section 4.2's GPU-FAST-PROCLUS kernels, emulated.

GPU-FAST-PROCLUS modifies ComputeL and FindDimensions:

* the distance kernel checks ``DistFound`` and only computes missing
  rows; the flag is set **in a separate kernel afterwards** because
  thread blocks cannot synchronize with each other ("Instead of using
  community groups to synchronize across thread blocks, we set the flag
  afterward in a separate kernel call");
* instead of rebuilding ``L_i``, a kernel collects the *change*
  ``DeltaL_i`` between the previous and current radius (Theorem 3.1)
  and a per-(medoid, dimension) kernel adds ``lambda_i * sum`` into the
  persistent ``H`` matrix (Theorem 3.2);
* ``X = H / |L|`` happens in another separate kernel, again so that all
  ``H`` updates are visible first.

These kernels drive the emulated GPU-FAST engine and are tested to
produce bitwise the state the vectorized
:class:`~repro.core.fast.FastProclusEngine` maintains.
"""

from __future__ import annotations

import math

import numpy as np

from ...gpu.atomics import atomic_add, atomic_inc, atomic_min
from ...gpu.emulator import SimtEmulator, ThreadContext
from .greedy import _euclidean_f32

__all__ = ["fast_compute_l_emulated"]


def _distances_if_missing_kernel(
    ctx: ThreadContext,
    data: np.ndarray,
    medoid_ids: np.ndarray,
    midx: np.ndarray,
    dist: np.ndarray,
    dist_found: np.ndarray,
) -> None:
    """Compute a medoid's distance row only when DistFound is unset.

    The flag is *read* here but set later in a separate kernel so that
    all blocks working on the same row agree on whether to compute.
    """
    i = ctx.by
    row = int(midx[i])
    if dist_found[row]:
        return
    medoid = data[int(medoid_ids[i])]
    for p in ctx.grid_stride_x(data.shape[0]):
        dist[row, p] = _euclidean_f32(data[p], medoid)


def _set_found_kernel(
    ctx: ThreadContext, midx: np.ndarray, dist_found: np.ndarray
) -> None:
    """The separate flag-setting kernel (one thread per current medoid)."""
    for i in ctx.grid_stride(len(midx)):
        dist_found[int(midx[i])] = True


def _delta_kernel(
    ctx: ThreadContext,
    medoid_ids: np.ndarray,
    midx: np.ndarray,
    dist: np.ndarray,
    delta: np.ndarray,
) -> None:
    """Radius to the nearest other current medoid, from cached rows."""
    i = ctx.bx
    for j in ctx.block_stride(len(midx)):
        if j != i:
            atomic_min(delta, i, dist[int(midx[i]), int(medoid_ids[j])])


def _collect_delta_l_kernel(
    ctx: ThreadContext,
    midx: np.ndarray,
    dist: np.ndarray,
    prev_delta: np.ndarray,
    delta: np.ndarray,
    dl_sets: np.ndarray,
    dl_sizes: np.ndarray,
) -> None:
    """Collect DeltaL_i: the points between the previous and current
    radius (Theorem 3.1), appended with atomicInc like L in Algorithm 3."""
    i = ctx.by
    row = int(midx[i])
    previous = prev_delta[row]
    current = delta[i]
    lo, hi = (previous, current) if current >= previous else (current, previous)
    for p in ctx.grid_stride_x(dist.shape[1]):
        value = dist[row, p]
        if lo < value <= hi:
            slot = atomic_inc(dl_sizes, i)
            dl_sets[i, slot] = p


def _h_update_kernel(
    ctx: ThreadContext,
    data: np.ndarray,
    medoid_ids: np.ndarray,
    midx: np.ndarray,
    lam: np.ndarray,
    dl_sets: np.ndarray,
    dl_sizes: np.ndarray,
    h: np.ndarray,
) -> None:
    """H update (Theorem 3.2): one block per (medoid, dimension), local
    partial sums, one atomic per thread.  Exact in float64."""
    i, j = ctx.by, ctx.bx
    row = int(midx[i])
    medoid = data[int(medoid_ids[i])]
    size = int(dl_sizes[i])
    local = 0.0
    for t in ctx.block_stride(size):
        p = dl_sets[i, t]
        local += float(np.float32(abs(np.float32(data[p, j] - medoid[j]))))
    if local:
        atomic_add(h, (row, j), float(lam[i]) * local)


def _finalize_kernel(
    ctx: ThreadContext,
    midx: np.ndarray,
    lam: np.ndarray,
    dl_sizes: np.ndarray,
    delta: np.ndarray,
    prev_delta: np.ndarray,
    size_l: np.ndarray,
    h: np.ndarray,
    x: np.ndarray,
) -> None:
    """Bookkeeping + X <- H / |L| in a separate kernel (Section 4.2:
    "X_{i,j} is computed in a separate kernel call" so every H update
    is visible).  One block per medoid; thread 0 updates the scalars."""
    i = ctx.bx
    row = int(midx[i])
    d = h.shape[1]
    if ctx.tx == 0:
        size_l[row] = size_l[row] + int(lam[i]) * int(dl_sizes[i])
        prev_delta[row] = delta[i]
    yield  # __syncthreads: |L| updated before the division
    for j in ctx.block_stride(d):
        x[i, j] = h[row, j] / size_l[row]


def fast_compute_l_emulated(
    data: np.ndarray,
    medoid_ids: np.ndarray,
    midx: np.ndarray,
    dist: np.ndarray,
    dist_found: np.ndarray,
    h: np.ndarray,
    prev_delta: np.ndarray,
    size_l: np.ndarray,
    emulator: SimtEmulator | None = None,
    threads_per_block: int = 32,
) -> tuple[np.ndarray, np.ndarray]:
    """Run GPU-FAST's ComputeL + X pipeline on the emulator.

    Mutates the persistent cache arrays (``dist``, ``dist_found``,
    ``h``, ``prev_delta``, ``size_l`` — all indexed by position in M)
    exactly as the CUDA implementation would, and returns ``(x, sizes)``
    for the current medoids.

    Parameters mirror the device state of GPU-FAST-PROCLUS:
    ``medoid_ids`` are the current medoids' point ids and ``midx`` their
    positions in M (the paper's ``MIdx``).
    """
    em = emulator if emulator is not None else SimtEmulator()
    n, d = data.shape
    k = len(midx)
    grid_x = max(1, math.ceil(n / threads_per_block))

    em.launch(
        _distances_if_missing_kernel, (grid_x, k), threads_per_block,
        data, medoid_ids, midx, dist, dist_found,
    )
    em.launch(_set_found_kernel, 1, max(1, k), midx, dist_found)

    delta = np.full(k, np.inf, dtype=np.float32)
    em.launch(_delta_kernel, k, max(1, k), medoid_ids, midx, dist, delta)

    # lambda_i: +1 when the sphere grew, -1 when it shrank (host-side
    # scalar per medoid, as in FAST-PROCLUS).
    lam = np.where(delta >= prev_delta[midx], 1, -1).astype(np.int64)

    dl_sets = np.full((k, n), -1, dtype=np.int64)
    dl_sizes = np.zeros(k, dtype=np.int64)
    em.launch(
        _collect_delta_l_kernel, (grid_x, k), threads_per_block,
        midx, dist, prev_delta, delta, dl_sets, dl_sizes,
    )

    em.launch(
        _h_update_kernel, (d, k), threads_per_block,
        data, medoid_ids, midx, lam, dl_sets, dl_sizes, h,
    )

    x = np.zeros((k, d), dtype=np.float64)
    em.launch(
        _finalize_kernel, k, min(threads_per_block, max(1, d)),
        midx, lam, dl_sizes, delta, prev_delta, size_l, h, x,
    )
    return x, size_l[midx].copy()
