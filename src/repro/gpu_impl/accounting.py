"""Kernel-launch accounting shared by the GPU engine variants.

:class:`GpuEngineMixin` overrides every ``_account_*`` hook of
:class:`~repro.core.base.EngineBase` to record the kernel launches the
corresponding CUDA implementation (Algorithms 2-6) would issue, with
the actual per-iteration work sizes (distance rows computed, sphere
deltas, cluster sizes, ...).  The launch geometries follow the paper's
kernel configurations: 1024 threads per block in general, 128 for
AssignPoints, block-per-(medoid, dimension) for the X / EvaluateCluster
reductions, and the tiny ``k x k`` block for the medoid-distance kernel
whose low occupancy Section 5.4 discusses.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ParameterError
from ..gpu.device import Device
from ..hardware.cost_model import GpuModel, HardwareModel
from ..hardware.specs import GpuSpec, gpu_for_problem
from ..core.base import OPS_PER_TERM

__all__ = ["GpuEngineMixin"]

#: General-purpose block size (paper: "the block size of 1024 threads").
BLOCK = 1024
#: AssignPoints block size (paper: "128 threads are used per block").
ASSIGN_BLOCK = 128
#: float32 size in bytes.
F32 = 4


def _blocks(items: int, threads: int) -> int:
    return max(1, math.ceil(items / threads))


class GpuEngineMixin:
    """Device setup + per-kernel accounting for the GPU variants."""

    def __init__(
        self,
        *args,
        gpu_spec: GpuSpec | None = None,
        dist_chunks: int = 1,
        **kwargs,
    ) -> None:
        """``dist_chunks``: keep only ``ceil(m / dist_chunks)`` rows of
        the ``Dist`` cache resident on the device (GPU-FAST variants).
        Evicted rows are recomputed on demand — bit-identical values at
        a higher modeled cost — so raising it trades speed for device
        memory.  The resilience layer's degradation ladder uses this
        knob to recover from capacity errors without changing results.
        """
        if not isinstance(dist_chunks, int) or isinstance(dist_chunks, bool):
            raise ParameterError(
                f"dist_chunks must be an int, got {type(dist_chunks).__name__}"
            )
        if dist_chunks < 1:
            raise ParameterError(f"dist_chunks must be >= 1, got {dist_chunks}")
        self._gpu_spec = gpu_spec
        self.dist_chunks = dist_chunks
        self.device: Device | None = None
        super().__init__(*args, **kwargs)

    # ------------------------------------------------------------------
    # Model / device lifecycle
    # ------------------------------------------------------------------
    def _make_model(self, n: int, d: int) -> HardwareModel:
        spec = self._gpu_spec if self._gpu_spec is not None else gpu_for_problem(n)
        return GpuModel(spec)

    def _variant_device_arrays(self, n: int, d: int) -> None:
        """Allocate the variant-specific device arrays (Dist cache, H)."""

    def _make_device(self, data: np.ndarray):
        """Create the device facade kernels launch into.

        The fleet variants override this to return a multi-device
        facade; everything else in :meth:`_setup` (allocation sizes,
        upload protocol, kernel accounting) is shared.
        """
        assert isinstance(self.model, GpuModel)
        return Device(self.model.spec, model=self.model, tracer=self._obs)

    def _setup(self, data: np.ndarray) -> None:
        super()._setup(data)
        n, d = data.shape
        p = self.params
        k = p.k
        self.device = self._make_device(data)
        # All memory is allocated once up front and reused across
        # iterations (Section 4.1).  Within a multi-parameter study the
        # dataset stays resident on the device, so only the first
        # setting pays the PCIe transfer.
        if self.shared_state is not None and self.shared_state.data_uploaded:
            resident = self.device.alloc(data.shape, data.dtype, "data")
            resident.data[...] = data
        else:
            self.device.to_device(data, "data")
            if self.shared_state is not None:
                self.shared_state.data_uploaded = True
        self.device.alloc((p.effective_sample_size(n),), np.float32, "greedy_dist")
        self.device.alloc((self._m_rows(),), np.int32, "M")
        # Sphere sets L and clusters C, worst-case size n per medoid.
        self.device.alloc((k, n), np.int32, "L")
        self.device.alloc((k, n), np.int32, "C")
        self.device.alloc((k,), np.int32, "L_sizes")
        self.device.alloc((k,), np.int32, "C_sizes")
        self.device.alloc((n,), np.int32, "labels")
        self.device.alloc((k, d), np.float32, "X")
        self.device.alloc((k, d), np.float32, "Z")
        self.device.alloc((k,), np.float32, "delta")
        self.device.alloc((k, k), np.float32, "medoid_dist")
        self._variant_device_arrays(n, d)

    def _m_rows(self) -> int:
        """Number of potential medoids the device M array holds."""
        if self.shared_state is not None:
            return self.shared_state.num_potential_medoids
        return self.params.effective_num_potential(self._data.shape[0])

    def _teardown(self) -> None:
        if self.device is not None:
            self.device.memory.free_all()
        super()._teardown()

    def _modeled_peak_bytes(self) -> int:
        return self.device.peak_bytes

    # ------------------------------------------------------------------
    # Kernel accounting (geometry per the paper's Algorithms 2-6)
    # ------------------------------------------------------------------
    def _account_greedy(self, s: int, count: int, d: int) -> None:
        # Algorithm 2: per pick, one distance+atomicMax kernel over
        # Data' and one arg-max-check kernel (separate launch because
        # blocks cannot synchronize globally).
        threads = min(BLOCK, s)
        for _ in range(count):
            self.device.launch(
                "greedy.distances",
                "initialization",
                grid_blocks=_blocks(s, threads),
                threads_per_block=threads,
                flops=s * (OPS_PER_TERM * d + 1),
                gmem_bytes=s * (d * F32 + 2 * F32),
                atomic_ops=s,
                ipc=0.25,
            )
            self.device.launch(
                "greedy.argmax_check",
                "initialization",
                grid_blocks=_blocks(s, threads),
                threads_per_block=threads,
                flops=s,
                gmem_bytes=s * F32,
            )

    def _account_distance_rows(self, rows: int, n: int, d: int) -> None:
        # Algorithm 3 lines 1-3 (with the DistFound check for the FAST
        # variants: a row costs nothing when cached).
        self._count_distance_cache(rows)
        k = self.params.k
        # Each pass streams the dataset once (points are read by one
        # block and distances to the resident medoids computed from
        # registers/shared memory); the output is one row per medoid.
        data_bytes = n * d * F32 if rows > 0 else k * F32
        self.device.launch(
            "compute_l.distances",
            "compute_l",
            grid_blocks=max(1, k * _blocks(n, BLOCK)),
            threads_per_block=min(BLOCK, n),
            flops=rows * n * OPS_PER_TERM * d,
            gmem_bytes=data_bytes + rows * n * F32,
            ipc=0.25,
        )

    def _account_delta(self, k: int) -> None:
        # Algorithm 3 lines 4-7: k blocks of k threads — the low
        # occupancy kernel of Section 5.4.
        self.device.launch(
            "compute_l.medoid_delta",
            "compute_l",
            grid_blocks=k,
            threads_per_block=k,
            flops=k * k,
            gmem_bytes=k * k * F32,
            atomic_ops=k * k,
        )

    def _account_scan_l(self, n: int, k: int, appended: int) -> None:
        # Algorithm 3 lines 8-12: every (medoid, point) pair is checked;
        # points inside the (changed) sphere are appended with atomicInc.
        self.device.launch(
            "compute_l.build_l",
            "compute_l",
            grid_blocks=max(1, k * _blocks(n, BLOCK)),
            threads_per_block=min(BLOCK, n),
            flops=n * k,
            gmem_bytes=n * k * F32 + appended * F32,
            atomic_ops=appended + k,
        )

    def _account_x_sums(self, points: int, d: int, k: int) -> None:
        # Algorithm 4 lines 1-6: block per (medoid, dimension), local
        # partial sums, one atomic per thread at the end.
        self.device.launch(
            "find_dimensions.x_sums",
            "find_dimensions",
            grid_blocks=max(1, k * d),
            threads_per_block=BLOCK,
            flops=points * d * OPS_PER_TERM,
            gmem_bytes=points * d * F32 + k * d * F32,
            atomic_ops=k * d,
            ipc=0.25,
        )

    def _account_x_finalize(self, k: int, d: int) -> None:
        # GPU-FAST: X <- H / |L| in a separate kernel so all H updates
        # are visible first (Section 4.2).
        self.device.launch(
            "find_dimensions.x_finalize",
            "find_dimensions",
            grid_blocks=k,
            threads_per_block=min(BLOCK, d),
            flops=k * d,
            gmem_bytes=k * d * 2 * F32,
        )

    def _account_find_dimensions(self, k: int, d: int) -> None:
        kd = k * d
        # Combined Y / sigma / Z kernel (one launch saves global traffic).
        self.device.launch(
            "find_dimensions.z",
            "find_dimensions",
            grid_blocks=k,
            threads_per_block=min(BLOCK, d),
            flops=kd * 8,
            gmem_bytes=kd * 2 * F32,
            atomic_ops=2 * kd,
        )
        # Selection of the k*l lowest-Z dimensions.
        self.device.launch(
            "find_dimensions.select",
            "find_dimensions",
            grid_blocks=1,
            threads_per_block=min(BLOCK, kd),
            flops=kd * max(1.0, math.log2(kd)),
            gmem_bytes=kd * F32,
        )

    def _account_assign(self, n: int, k: int, total_dims: int, d: int) -> None:
        # Algorithm 5: 128-thread blocks, distances to all medoids for a
        # point within one block, atomicMin + append.
        self.device.launch(
            "assign_points",
            "assign_points",
            grid_blocks=_blocks(n * k, ASSIGN_BLOCK),
            threads_per_block=ASSIGN_BLOCK,
            flops=n * total_dims * OPS_PER_TERM + n * k * 2,
            gmem_bytes=n * d * F32 + n * k * F32 + n * F32,
            # The atomicMin lives in shared memory (fast); only the
            # per-point append to C_i is a global atomic.
            atomic_ops=n,
            smem_bytes_per_block=ASSIGN_BLOCK * F32,
            ipc=0.25,
        )

    def _account_evaluate(
        self, member_dims: int, total_dims: int, k: int, d: int
    ) -> None:
        # Algorithm 6: block per (cluster, dimension) pair — sum(|D_i|)
        # blocks; centroid and cost accumulated in shared memory, two
        # passes over the members.
        blocks = max(1, total_dims)
        # Threads per block follow the average cluster size (Sec. 5.4:
        # "8,000 points and 10 clusters implies around 800 threads per
        # block"), capped at the 1024-thread block limit.
        threads = int(min(BLOCK, max(32, member_dims / blocks)))
        self.device.launch(
            "evaluate_cluster",
            "evaluate",
            grid_blocks=blocks,
            threads_per_block=threads,
            flops=member_dims * OPS_PER_TERM * 2,
            gmem_bytes=member_dims * 2 * F32 + k * d * F32,
            atomic_ops=2 * blocks,
            smem_bytes_per_block=2 * F32,
            ipc=0.25,
        )

    def _account_bookkeeping(self, k: int) -> None:
        # Best-cost update, bad-medoid detection, DistFound flag setting
        # — one tiny kernel ("not time-consuming", Section 4.1).
        self.device.launch(
            "update_iteration",
            "update",
            grid_blocks=1,
            threads_per_block=max(32, k),
            flops=k * 8,
            gmem_bytes=k * 4 * F32,
        )

    def _account_refinement_x(self, n: int, d: int, k: int) -> None:
        # Refinement FindDimensions over L <- CBest: every point
        # contributes its d dimensions once.
        self.device.launch(
            "refinement.x_sums",
            "refinement",
            grid_blocks=max(1, k * d),
            threads_per_block=BLOCK,
            flops=n * d * OPS_PER_TERM,
            gmem_bytes=n * d * F32 + k * d * F32,
            atomic_ops=k * d,
            ipc=0.25,
        )

    def _record_iteration_samples(self) -> None:
        # Counter tracks on the modeled device timeline: cumulative
        # Dist-cache hit-rate and the iteration's modeled global-memory
        # bandwidth.  Sampled once per iteration at the current device
        # clock so Perfetto shows the FAST cache warming up.
        obs = self._obs
        if not obs.enabled:
            return
        counter = self.model.counter
        ts = self.device.clock_offset + self.model.total_seconds
        hit = counter.get("cache.dist_rows_hit")
        missed = counter.get("cache.dist_rows_missed")
        if hit + missed > 0:
            obs.counter("cache hit-rate", hit / (hit + missed), ts)
        total_bytes = counter.get("gpu.gmem_bytes")
        prev_bytes, prev_ts = getattr(
            self, "_obs_bandwidth_mark", (0.0, self.device.clock_offset)
        )
        if ts > prev_ts:
            obs.counter(
                "bandwidth (GB/s)",
                (total_bytes - prev_bytes) / (ts - prev_ts) / 1e9,
                ts,
            )
        self._obs_bandwidth_mark = (total_bytes, ts)

    def _account_outliers(self, n: int, k: int, total_dims: int) -> None:
        # Medoid-to-medoid segmental distances (k blocks of k threads)…
        self.device.launch(
            "remove_outliers.medoid_delta",
            "refinement",
            grid_blocks=k,
            threads_per_block=k,
            flops=k * total_dims * OPS_PER_TERM,
            gmem_bytes=k * k * F32,
            atomic_ops=k * k,
        )
        # …then every point checks all k spheres.
        self.device.launch(
            "remove_outliers.check",
            "refinement",
            grid_blocks=_blocks(n, BLOCK),
            threads_per_block=min(BLOCK, n),
            flops=n * total_dims * OPS_PER_TERM + n * k,
            gmem_bytes=n * self._data.shape[1] * F32 + n * F32,
            ipc=0.25,
        )
