"""GPU-PROCLUS: the paper's straight GPU parallelization of PROCLUS."""

from __future__ import annotations

import numpy as np

from ..core.proclus import ProclusEngine
from .accounting import GpuEngineMixin

__all__ = ["GpuProclusEngine"]


class GpuProclusEngine(GpuEngineMixin, ProclusEngine):
    """PROCLUS executed as kernels on the simulated GPU.

    Performs exactly the baseline's computation (and returns the
    identical clustering) but on the device: all arrays live in device
    memory, every phase runs as the kernel launches of Algorithms 2-6,
    and running time is the roofline model's per-launch cost.
    """

    backend_name = "gpu-proclus"

    def _variant_device_arrays(self, n: int, d: int) -> None:
        # Distances of the k current medoids only (recomputed each
        # iteration — no cache).
        self.device.alloc((self.params.k, n), np.float32, "Dist")
