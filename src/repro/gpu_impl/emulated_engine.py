"""End-to-end PROCLUS on the SIMT emulator (validation engine).

This engine is the "host program" of the paper's CUDA implementation:
it drives the emulated kernels of Algorithms 2-6 (greedy pick, ComputeL,
FindDimensions, AssignPoints, EvaluateCluster, RemoveOutliers) through
the full three-phase PROCLUS algorithm, with every data-parallel step
executed thread by thread under the cooperative emulator.

It exists for validation, not speed: the integration tests run it on
small datasets and assert that its clustering is identical to every
vectorized backend's.  Expect it to be several orders of magnitude
slower than the vectorized engines — each emulated thread is a Python
generator.

The randomness protocol is the shared one, so for equal seeds the
emulated run is directly comparable to any other backend.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..core.base import EngineBase
from ..core.phases import cluster_sizes_from_labels, compute_bad_medoids
from ..exceptions import DataValidationError
from ..gpu.emulator import SimtEmulator
from ..result import OUTLIER_LABEL, ProclusResult, RunStats
from .kernels.assign_points import assign_points_emulated
from .kernels.compute_l import compute_l_emulated
from .kernels.evaluate import evaluate_clusters_emulated
from .kernels.find_dimensions import (
    _x_sums_kernel,
    find_dimensions_emulated,
    _select_dimensions_from_z,
)
from .kernels.fast_compute_l import fast_compute_l_emulated
from .kernels.find_dimensions import _z_kernel
from .kernels.greedy import greedy_select_emulated
from .kernels.outliers import find_outliers_emulated

__all__ = [
    "EmulatedGpuProclusEngine",
    "EmulatedGpuFastProclusEngine",
    "EmulatedGpuFastStarProclusEngine",
]


def _pad_sets(sets: list[np.ndarray], n: int) -> tuple[np.ndarray, np.ndarray]:
    """Pack variable-length index sets into the (k, n) device layout."""
    k = len(sets)
    padded = np.full((k, n), -1, dtype=np.int64)
    sizes = np.zeros(k, dtype=np.int64)
    for i, members in enumerate(sets):
        padded[i, : len(members)] = members
        sizes[i] = len(members)
    return padded, sizes


class EmulatedGpuProclusEngine(EngineBase):
    """GPU-PROCLUS executed kernel-for-kernel on the SIMT emulator."""

    backend_name = "gpu-emulated"

    def __init__(self, *args, schedule_seed: int | None = None, **kwargs) -> None:
        """``schedule_seed`` shuffles intra-round thread order, proving
        the result does not depend on warp scheduling."""
        super().__init__(*args, **kwargs)
        self.emulator = SimtEmulator(schedule_seed=schedule_seed)

    def _compute_l_and_x(self, mcur):  # pragma: no cover - _run overridden
        raise NotImplementedError

    def _initialization_phase(self, data: np.ndarray) -> np.ndarray:
        """Sample Data' and run Algorithm 2 on the emulator."""
        if self.shared_state is not None:
            return self.shared_state.medoid_ids
        n, d = data.shape
        p = self.params
        sample_size = p.effective_sample_size(n)
        count = p.effective_num_potential(n)
        sample_indices = self.rng.sample_indices(n, sample_size)
        seed_index = self.rng.greedy_seed(sample_size)
        local = greedy_select_emulated(
            data[sample_indices], count, seed_index, emulator=self.emulator
        )
        return sample_indices[local]

    def _dims_for_iteration(
        self, data: np.ndarray, medoid_ids: np.ndarray, mcur: np.ndarray
    ) -> tuple[tuple[int, ...], ...]:
        """One iteration's ComputeL + FindDimensions (Algorithms 3-4)."""
        obs = self._obs
        with obs.span("compute_l"):
            l_sets, _, _ = compute_l_emulated(
                data, medoid_ids, emulator=self.emulator
            )
            l_pad, l_sizes = _pad_sets(l_sets, data.shape[0])
        with obs.span("find_dimensions"):
            dims, _ = find_dimensions_emulated(
                data, medoid_ids, l_pad, l_sizes, self.params.l,
                emulator=self.emulator,
            )
        return dims

    def _run(self, data: np.ndarray, started: float) -> ProclusResult:
        n, d = data.shape
        p = self.params
        k = p.k
        em = self.emulator
        obs = self._obs

        with obs.span("initialization"):
            self._medoid_ids = self._initialization_phase(data)
        m = len(self._medoid_ids)

        if self.initial_medoids is not None:
            mcur = np.asarray(self.initial_medoids, dtype=np.int64).copy()
            if len(mcur) != k or len(np.unique(mcur)) != k:
                raise DataValidationError(
                    f"initial_medoids must hold {k} distinct positions into M"
                )
        else:
            mcur = self.rng.initial_medoids(m, k)

        cost_best = math.inf
        mbest = mcur.copy()
        c_best: list[np.ndarray] | None = None
        sizes_best: np.ndarray | None = None
        best_iteration = 0
        stale = 0
        total = 0
        with obs.span("iterative") as iterative_span:
            while stale < p.patience and total < p.max_iterations:
                with obs.span("iteration", iteration=total) as iteration_span:
                    medoid_ids = self._medoid_ids[mcur]
                    dims = self._dims_for_iteration(data, medoid_ids, mcur)
                    with obs.span("assign_points"):
                        labels, c_sets = assign_points_emulated(
                            data, medoid_ids, dims, emulator=em
                        )
                    with obs.span("evaluate"):
                        c_pad, c_sizes = _pad_sets(c_sets, n)
                        cost = evaluate_clusters_emulated(
                            data, c_pad, c_sizes, dims, emulator=em
                        )
                        sizes = cluster_sizes_from_labels(labels, k)

                    total += 1
                    stale += 1
                    if cost < cost_best:
                        cost_best = cost
                        mbest = mcur.copy()
                        c_best = c_sets
                        sizes_best = sizes
                        best_iteration = total - 1
                        stale = 0

                    with obs.span("update"):
                        bad = compute_bad_medoids(
                            sizes_best, n, p.min_deviation, p.bad_medoid_rule
                        )

                        if self.trace_ is not None:
                            self.trace_.append(
                                iteration=total - 1,
                                cost=cost,
                                improved=stale == 0,
                                best_cost=cost_best,
                                medoid_positions=mcur,
                                cluster_sizes=sizes,
                                bad_medoids=bad,
                            )

                        candidates = np.setdiff1d(np.arange(m), mbest)
                        replace = min(len(bad), len(candidates))
                        mcur = mbest.copy()
                        if replace > 0:
                            replacements = self.rng.replacement_medoids(
                                candidates, replace
                            )
                            mcur[bad[:replace]] = replacements

                    iteration_span.set(cost=float(cost), improved=stale == 0)
                    self._record_iteration_samples()
            iterative_span.set(iterations=total)

        # --- refinement: L <- CBest, then the same kernels -----------
        assert c_best is not None
        with obs.span("refinement") as refinement_span:
            with obs.span("find_dimensions"):
                medoid_ids = self._medoid_ids[mbest]
                c_pad, c_sizes = _pad_sets(c_best, n)
                x = np.zeros((k, d), dtype=np.float64)
                em.launch(
                    _x_sums_kernel, (d, k), 32,
                    data, data[medoid_ids], c_pad, c_sizes, x,
                )
                x /= np.maximum(c_sizes.astype(np.float64), 1.0)[:, None]
                y = np.zeros(k)
                sigma = np.zeros(k)
                z = np.zeros((k, d))

                em.launch(_z_kernel, k, min(32, d), x, y, sigma, z)
                dims = _select_dimensions_from_z(z, p.l)

            with obs.span("assign_points"):
                labels, _ = assign_points_emulated(
                    data, medoid_ids, dims, emulator=em
                )
            with obs.span("outliers"):
                outliers = find_outliers_emulated(
                    data, medoid_ids, dims, emulator=em
                )
                labels = labels.copy()
                labels[outliers] = OUTLIER_LABEL

            with obs.span("evaluate"):
                refined_cost = self._evaluate_refined(data, labels, dims, em)
            refinement_span.set(refined_cost=float(refined_cost))

        self.best_positions_ = mbest.copy()
        stats = RunStats(
            counters={"emulator.kernel_launches": float(em.launches)},
            wall_seconds=time.perf_counter() - started,
            iterations=total,
            backend=self.backend_name,
            hardware="SIMT emulator",
        )
        return ProclusResult(
            labels=labels,
            medoids=self._medoid_ids[mbest].copy(),
            dimensions=dims,
            cost=float(cost_best),
            refined_cost=float(refined_cost),
            iterations=total,
            best_iteration=best_iteration,
            stats=stats,
            trace=self.trace_,
        )

    def _evaluate_refined(self, data, labels, dims, em) -> float:
        """Cost of the refined clustering (outliers excluded)."""
        k = self.params.k
        sets = [np.flatnonzero(labels == i) for i in range(k)]
        c_pad, c_sizes = _pad_sets(sets, data.shape[0])
        return evaluate_clusters_emulated(data, c_pad, c_sizes, dims, emulator=em)


class EmulatedGpuFastProclusEngine(EmulatedGpuProclusEngine):
    """GPU-FAST-PROCLUS executed kernel-for-kernel on the SIMT emulator.

    Runs Section 4.2's modified pipeline: DistFound-guarded distance
    kernel, separate flag-set kernel, DeltaL collection (Theorem 3.1),
    per-(medoid, dimension) H update (Theorem 3.2), and the separate
    ``X <- H / |L|`` kernel — against persistent device-state arrays.
    """

    backend_name = "gpu-fast-emulated"

    def _setup(self, data: np.ndarray) -> None:
        n, d = data.shape
        m = (
            self.shared_state.num_potential_medoids
            if self.shared_state is not None
            else self.params.effective_num_potential(n)
        )
        from ..core.state import NEVER_USED_DELTA

        self._dist = np.zeros((m, n), dtype=np.float32)
        self._dist_found = np.zeros(m, dtype=bool)
        self._h = np.zeros((m, d), dtype=np.float64)
        self._prev_delta = np.full(m, NEVER_USED_DELTA, dtype=np.float32)
        self._size_l = np.zeros(m, dtype=np.int64)

    def _dims_for_iteration(
        self, data: np.ndarray, medoid_ids: np.ndarray, mcur: np.ndarray
    ) -> tuple[tuple[int, ...], ...]:
        k = len(mcur)
        d = data.shape[1]
        obs = self._obs
        with obs.span("compute_l"):
            x, _ = fast_compute_l_emulated(
                data,
                medoid_ids,
                np.asarray(mcur, dtype=np.int64),
                self._dist,
                self._dist_found,
                self._h,
                self._prev_delta,
                self._size_l,
                emulator=self.emulator,
            )
        with obs.span("find_dimensions"):
            y = np.zeros(k)
            sigma = np.zeros(k)
            z = np.zeros((k, d))
            self.emulator.launch(_z_kernel, k, min(32, d), x, y, sigma, z)
            return _select_dimensions_from_z(z, self.params.l)


class EmulatedGpuFastStarProclusEngine(EmulatedGpuFastProclusEngine):
    """GPU-FAST*-PROCLUS on the emulator: k-slot caches (Section 3.2).

    Uses the same Section 4.2 kernel pipeline as the emulated GPU-FAST
    engine but with per-slot state: before each iteration, any slot
    whose medoid changed is reset on the host (the paper's "use i in
    MBad to identify for which of the medoids we need to recompute"),
    and ``MIdx`` degenerates to the slot index.
    """

    backend_name = "gpu-fast*-emulated"

    def _setup(self, data: np.ndarray) -> None:
        n, d = data.shape
        k = self.params.k
        from ..core.state import NEVER_USED_DELTA

        self._dist = np.zeros((k, n), dtype=np.float32)
        self._dist_found = np.zeros(k, dtype=bool)
        self._h = np.zeros((k, d), dtype=np.float64)
        self._prev_delta = np.full(k, NEVER_USED_DELTA, dtype=np.float32)
        self._size_l = np.zeros(k, dtype=np.int64)
        self._slot_ids = np.full(k, -1, dtype=np.int64)

    def _dims_for_iteration(
        self, data: np.ndarray, medoid_ids: np.ndarray, mcur: np.ndarray
    ) -> tuple[tuple[int, ...], ...]:
        from ..core.state import NEVER_USED_DELTA

        k = len(mcur)
        obs = self._obs
        with obs.span("compute_l"):
            # Reset the slots whose medoid changed since the last iteration.
            for i in range(k):
                if self._slot_ids[i] != medoid_ids[i]:
                    self._dist_found[i] = False
                    self._h[i].fill(0.0)
                    self._prev_delta[i] = NEVER_USED_DELTA
                    self._size_l[i] = 0
                    self._slot_ids[i] = medoid_ids[i]
            # MIdx is the identity for the k-slot cache.
            slots = np.arange(k, dtype=np.int64)
            x, _ = fast_compute_l_emulated(
                data,
                medoid_ids,
                slots,
                self._dist,
                self._dist_found,
                self._h,
                self._prev_delta,
                self._size_l,
                emulator=self.emulator,
            )
        with obs.span("find_dimensions"):
            d = data.shape[1]
            y = np.zeros(k)
            sigma = np.zeros(k)
            z = np.zeros((k, d))
            self.emulator.launch(_z_kernel, k, min(32, d), x, y, sigma, z)
            return _select_dimensions_from_z(z, self.params.l)
