"""Sanitizer sweep over the repository's emulated kernels.

``repro sanitize`` drives every kernel pipeline in
:mod:`repro.gpu_impl.kernels` across a grid of small launch geometries
and schedule shuffles, each run fully instrumented by the kernel
sanitizer (:mod:`repro.gpu.sanitizer`).  The shipped kernels must come
out with *zero* diagnostics; any finding is a correctness bug of the
same severity as a cuda-memcheck hit on the real CUDA code.

Inputs feeding a target kernel (medoids from greedy, spheres from
ComputeL, subspaces from FindDimensions) are computed *unsanitized* —
only the kernel under test runs instrumented, so a report line always
names the culprit stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.state import MedoidCache
from ..exceptions import SanitizerError
from ..gpu.emulator import SimtEmulator
from ..gpu.sanitizer import Diagnostic, Sanitizer

__all__ = [
    "KERNELS",
    "GEOMETRIES",
    "KernelSweepResult",
    "SweepReport",
    "run_sweep",
]

#: Small launch geometries: points, dimensions, clusters, subspace size,
#: threads per block.  Deliberately awkward sizes — n not a multiple of
#: the block, blocks with a single thread, more threads than work items —
#: the corners where off-by-one indexing slips through.
GEOMETRIES: tuple[dict[str, int], ...] = (
    {"n": 13, "d": 3, "k": 3, "l": 2, "tpb": 4},
    {"n": 29, "d": 4, "k": 4, "l": 3, "tpb": 8},
    {"n": 40, "d": 5, "k": 5, "l": 3, "tpb": 16},
)

#: Schedule seeds per geometry: in-order plus one shuffled order.
SCHEDULE_SEEDS: tuple[int | None, ...] = (None, 1)


@dataclass(slots=True)
class KernelSweepResult:
    """Sanitizer outcome for one kernel across the geometry grid."""

    kernel: str
    runs: int = 0
    launches: int = 0
    accesses: int = 0
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def to_dict(self) -> dict[str, Any]:
        return {
            "kernel": self.kernel,
            "runs": self.runs,
            "launches": self.launches,
            "accesses": self.accesses,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


@dataclass(slots=True)
class SweepReport:
    """Results of a full ``repro sanitize`` sweep."""

    results: list[KernelSweepResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return [d for r in self.results for d in r.diagnostics]

    def render(self) -> str:
        lines = ["kernel sanitizer sweep"]
        for r in self.results:
            status = "ok" if r.ok else f"{len(r.diagnostics)} DIAGNOSTICS"
            lines.append(
                f"  {r.kernel:<16} {r.runs:>3} runs  {r.launches:>4} launches  "
                f"{r.accesses:>7} accesses  {status}"
            )
            for diag in r.diagnostics:
                lines.append("    " + diag.message)
        verdict = "clean" if self.ok else "FAILED"
        lines.append(
            f"{len(self.results)} kernels swept: {verdict} "
            f"({len(self.diagnostics)} diagnostics)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "kernels": [r.to_dict() for r in self.results],
        }


def _dataset(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    return rng.random((n, d), dtype=np.float32)


def _medoids(rng: np.random.Generator, n: int, k: int) -> np.ndarray:
    return np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)


def _padded_l(
    l_sets: list[np.ndarray], n: int
) -> tuple[np.ndarray, np.ndarray]:
    k = len(l_sets)
    padded = np.full((k, n), -1, dtype=np.int64)
    sizes = np.zeros(k, dtype=np.int64)
    for i, members in enumerate(l_sets):
        sizes[i] = len(members)
        padded[i, : len(members)] = members
    return padded, sizes


# -- per-kernel drivers ----------------------------------------------------
# Each driver receives (rng, geometry, emulator) and must run its target
# pipeline through the given (sanitizing) emulator; any upstream inputs
# are computed with plain emulators so findings stay attributable.


def _drive_greedy(rng, geo, em):
    from .kernels.greedy import greedy_select_emulated

    sample = _dataset(rng, geo["n"], geo["d"])
    greedy_select_emulated(
        sample, geo["k"], int(rng.integers(geo["n"])),
        emulator=em, threads_per_block=geo["tpb"],
    )


def _drive_compute_l(rng, geo, em):
    from .kernels.compute_l import compute_l_emulated

    data = _dataset(rng, geo["n"], geo["d"])
    compute_l_emulated(
        data, _medoids(rng, geo["n"], geo["k"]),
        emulator=em, threads_per_block=geo["tpb"],
    )


def _drive_find_dimensions(rng, geo, em):
    from .kernels.compute_l import compute_l_emulated
    from .kernels.find_dimensions import find_dimensions_emulated

    data = _dataset(rng, geo["n"], geo["d"])
    medoid_ids = _medoids(rng, geo["n"], geo["k"])
    l_sets, _, _ = compute_l_emulated(data, medoid_ids)
    padded, sizes = _padded_l(l_sets, geo["n"])
    find_dimensions_emulated(
        data, medoid_ids, padded, sizes, geo["l"],
        emulator=em, threads_per_block=geo["tpb"],
    )


def _dimensions_for(rng, geo, data, medoid_ids):
    from .kernels.compute_l import compute_l_emulated
    from .kernels.find_dimensions import find_dimensions_emulated

    l_sets, _, _ = compute_l_emulated(data, medoid_ids)
    padded, sizes = _padded_l(l_sets, geo["n"])
    dimensions, _ = find_dimensions_emulated(
        data, medoid_ids, padded, sizes, geo["l"]
    )
    return dimensions


def _drive_assign_points(rng, geo, em):
    from .kernels.assign_points import assign_points_emulated

    data = _dataset(rng, geo["n"], geo["d"])
    medoid_ids = _medoids(rng, geo["n"], geo["k"])
    dimensions = _dimensions_for(rng, geo, data, medoid_ids)
    assign_points_emulated(
        data, medoid_ids, dimensions,
        emulator=em, threads_per_block=geo["tpb"],
    )


def _drive_evaluate(rng, geo, em):
    from .kernels.assign_points import assign_points_emulated
    from .kernels.evaluate import evaluate_clusters_emulated

    data = _dataset(rng, geo["n"], geo["d"])
    medoid_ids = _medoids(rng, geo["n"], geo["k"])
    dimensions = _dimensions_for(rng, geo, data, medoid_ids)
    _, c_sets = assign_points_emulated(data, medoid_ids, dimensions)
    padded, sizes = _padded_l(c_sets, geo["n"])
    evaluate_clusters_emulated(
        data, padded, sizes, dimensions,
        emulator=em, threads_per_block=geo["tpb"],
    )


def _drive_outliers(rng, geo, em):
    from .kernels.outliers import find_outliers_emulated

    data = _dataset(rng, geo["n"], geo["d"])
    medoid_ids = _medoids(rng, geo["n"], geo["k"])
    dimensions = _dimensions_for(rng, geo, data, medoid_ids)
    find_outliers_emulated(
        data, medoid_ids, dimensions,
        emulator=em, threads_per_block=geo["tpb"],
    )


def _drive_fast_compute_l(rng, geo, em):
    from .kernels.fast_compute_l import fast_compute_l_emulated

    n, k = geo["n"], geo["k"]
    data = _dataset(rng, n, geo["d"])
    # Two successive medoid subsets sharing one persistent cache — the
    # FAST replacement loop — so both the cold (distances missing) and
    # warm (incremental delta-L) paths run sanitized.
    m = min(n, 2 * k)
    pool = np.sort(rng.choice(n, size=m, replace=False)).astype(np.int64)
    cache = MedoidCache.create(m, n, geo["d"])
    for midx in (
        np.arange(k, dtype=np.int64),
        np.sort(rng.choice(m, size=k, replace=False)).astype(np.int64),
    ):
        fast_compute_l_emulated(
            data, pool[midx], midx,
            cache.dist, cache.dist_found, cache.h,
            cache.prev_delta, cache.size_l,
            emulator=em, threads_per_block=geo["tpb"],
        )


#: The seven kernel pipelines of the paper, in dependency order.
KERNELS: dict[str, Callable[..., None]] = {
    "greedy": _drive_greedy,
    "compute_l": _drive_compute_l,
    "find_dimensions": _drive_find_dimensions,
    "assign_points": _drive_assign_points,
    "evaluate": _drive_evaluate,
    "outliers": _drive_outliers,
    "fast_compute_l": _drive_fast_compute_l,
}


def run_sweep(
    kernels: list[str] | None = None,
    schedule_seeds: tuple[int | None, ...] = SCHEDULE_SEEDS,
    seed: int = 0,
) -> SweepReport:
    """Sweep the named kernels (default: all) under the sanitizer.

    Every (geometry, schedule seed) combination runs with a fresh
    sanitizer; a fatal out-of-bounds aborts only that run — the finding
    is recorded and the sweep continues.
    """
    names = list(KERNELS) if kernels is None else kernels
    unknown = [name for name in names if name not in KERNELS]
    if unknown:
        raise ValueError(
            f"unknown kernels {unknown}; available: {list(KERNELS)}"
        )
    report = SweepReport()
    for name in names:
        result = KernelSweepResult(kernel=name)
        driver = KERNELS[name]
        for geo_idx, geo in enumerate(GEOMETRIES):
            for schedule_seed in schedule_seeds:
                rng = np.random.default_rng(seed + geo_idx)
                sanitizer = Sanitizer()
                em = SimtEmulator(
                    schedule_seed=schedule_seed, sanitizer=sanitizer
                )
                try:
                    driver(rng, geo, em)
                except SanitizerError:
                    pass  # fatal finding already recorded in the report
                result.runs += 1
                result.launches += sanitizer.report.launches
                result.accesses += sanitizer.report.accesses
                result.diagnostics.extend(sanitizer.report.diagnostics)
        report.results.append(result)
    return report
