"""GPU versions of the ablation engines (strategy 1 / strategy 2 only)."""

from __future__ import annotations

import numpy as np

from ..core.ablation import FastDistOnlyEngine, FastHOnlyEngine
from .accounting import GpuEngineMixin

__all__ = ["GpuFastDistOnlyEngine", "GpuFastHOnlyEngine"]


class GpuFastDistOnlyEngine(GpuEngineMixin, FastDistOnlyEngine):
    """GPU variant caching only the distance rows (no H)."""

    backend_name = "gpu-fast-dist-only"

    def _variant_device_arrays(self, n: int, d: int) -> None:
        m = self._m_rows()
        self.device.alloc((m, n), np.float32, "Dist")
        self.device.alloc((m,), np.bool_, "DistFound")


class GpuFastHOnlyEngine(GpuEngineMixin, FastHOnlyEngine):
    """GPU variant maintaining only the incremental H (no Dist cache)."""

    backend_name = "gpu-fast-h-only"

    def _variant_device_arrays(self, n: int, d: int) -> None:
        k = self.params.k
        m = self._m_rows()
        self.device.alloc((k, n), np.float32, "Dist")
        self.device.alloc((m, d), np.float32, "H")
        self.device.alloc((m,), np.float32, "prev_delta")
        self.device.alloc((m,), np.int32, "L_size_cache")
