"""GPU-FAST-PROCLUS: FAST-PROCLUS's caches on the GPU (Section 4.2)."""

from __future__ import annotations

import numpy as np

from ..core.fast import FastProclusEngine
from .accounting import GpuEngineMixin

__all__ = ["GpuFastProclusEngine"]


class GpuFastProclusEngine(GpuEngineMixin, FastProclusEngine):
    """FAST-PROCLUS executed as kernels on the simulated GPU.

    Keeps the full ``(B*k, n)`` distance matrix and the ``(B*k, d)``
    sums ``H`` in device memory — the space/time trade-off that makes
    this the fastest but most memory-hungry variant (it is the one that
    exhausts the 6 GB card at ~8M points in Fig. 3e).  The ``DistFound``
    flag is set in a separate kernel after the distance kernel finishes,
    as the paper describes (no cross-block synchronization).
    """

    backend_name = "gpu-fast-proclus"

    def _variant_device_arrays(self, n: int, d: int) -> None:
        m = self._m_rows()
        self.device.alloc((m, n), np.float32, "Dist")
        self.device.alloc((m, d), np.float32, "H")
        self.device.alloc((m,), np.float32, "prev_delta")
        self.device.alloc((m,), np.int32, "L_size_cache")
        self.device.alloc((m,), np.bool_, "DistFound")
