"""GPU-FAST-PROCLUS: FAST-PROCLUS's caches on the GPU (Section 4.2)."""

from __future__ import annotations

import math

import numpy as np

from ..core.fast import FastProclusEngine
from .accounting import GpuEngineMixin

__all__ = ["GpuFastProclusEngine"]


class GpuFastProclusEngine(GpuEngineMixin, FastProclusEngine):
    """FAST-PROCLUS executed as kernels on the simulated GPU.

    Keeps the full ``(B*k, n)`` distance matrix and the ``(B*k, d)``
    sums ``H`` in device memory — the space/time trade-off that makes
    this the fastest but most memory-hungry variant (it is the one that
    exhausts the 6 GB card at ~8M points in Fig. 3e).  The ``DistFound``
    flag is set in a separate kernel after the distance kernel finishes,
    as the paper describes (no cross-block synchronization).

    With ``dist_chunks > 1`` only a ``ceil(m / dist_chunks)``-row window
    of ``Dist`` stays resident; older rows are evicted FIFO (their
    ``DistFound`` flag cleared) and recomputed on their next use.
    Recomputed rows are bit-identical, so chunking changes the modeled
    time and footprint but never the clustering — which is what lets the
    degradation ladder use it to recover from device OOM.  The small
    ``H`` state (``(m, d)``, the incremental sums) always stays
    resident; only the dominant ``(m, n)`` matrix is windowed.
    """

    backend_name = "gpu-fast-proclus"

    def _variant_device_arrays(self, n: int, d: int) -> None:
        m = self._m_rows()
        self._dist_window_rows = math.ceil(m / self.dist_chunks)
        # FIFO of resident Dist rows; a shared (study) cache may arrive
        # pre-warmed, so seed the queue with whatever is already found.
        self._dist_resident = [int(i) for i in np.flatnonzero(self._cache.dist_found)]
        self.device.alloc((self._dist_window_rows, n), np.float32, "Dist")
        self.device.alloc((m, d), np.float32, "H")
        self.device.alloc((m,), np.float32, "prev_delta")
        self.device.alloc((m,), np.int32, "L_size_cache")
        self.device.alloc((m,), np.bool_, "DistFound")

    def _compute_l_and_x(
        self, mcur: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x, sizes = super()._compute_l_and_x(mcur)
        if self.dist_chunks > 1:
            self._evict_dist_rows(mcur)
        return x, sizes

    def _evict_dist_rows(self, mcur: np.ndarray) -> None:
        """Shrink the resident Dist window back to its capacity (FIFO)."""
        cache = self._cache
        resident = self._dist_resident
        known = set(resident)
        for mi in mcur:
            mi = int(mi)
            if mi not in known and cache.dist_found[mi]:
                resident.append(mi)
                known.add(mi)
        evicted = 0
        while len(resident) > self._dist_window_rows:
            cache.dist_found[resident.pop(0)] = False
            evicted += 1
        if evicted and self.model is not None:
            self.model.counter.add("cache.dist_rows_evicted", evicted)
