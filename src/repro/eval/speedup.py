"""Speedup tables comparing backends against a reference backend."""

from __future__ import annotations

from dataclasses import dataclass

from .timing import TimingResult

__all__ = ["SpeedupRow", "speedup_table", "format_speedup_table"]


@dataclass(slots=True)
class SpeedupRow:
    """One backend's time and speedup relative to the reference."""

    backend: str
    modeled_seconds: float
    speedup: float


def speedup_table(
    timings: list[TimingResult], reference: str
) -> list[SpeedupRow]:
    """Compute speedups of every timing w.r.t. ``reference``'s backend."""
    by_name = {t.backend: t for t in timings}
    if reference not in by_name:
        raise ValueError(
            f"reference backend {reference!r} not among "
            f"{sorted(by_name)}"
        )
    base = by_name[reference].modeled_seconds
    return [
        SpeedupRow(
            backend=t.backend,
            modeled_seconds=t.modeled_seconds,
            speedup=base / t.modeled_seconds if t.modeled_seconds > 0 else float("inf"),
        )
        for t in timings
    ]


def format_speedup_table(rows: list[SpeedupRow], title: str = "") -> str:
    """Render speedup rows as an aligned text table."""
    lines = []
    if title:
        lines.append(title)
    width = max(len(r.backend) for r in rows)
    lines.append(f"{'backend'.ljust(width)}  {'modeled time':>14}  {'speedup':>10}")
    for r in rows:
        if r.modeled_seconds >= 1.0:
            t = f"{r.modeled_seconds:10.3f} s  "
        else:
            t = f"{r.modeled_seconds * 1e3:10.3f} ms "
        lines.append(f"{r.backend.ljust(width)}  {t}  {r.speedup:9.1f}x")
    return "\n".join(lines)
