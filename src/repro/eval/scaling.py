"""Scaling-law fits: extrapolate measurements to the paper's sizes.

The default benchmarks sweep scaled-down sizes; this module fits the
measured (n, time) points to the model the complexity analysis
predicts — ``time(n) = a + b * n`` per iteration-dominated phase (every
heavy step of PROCLUS is linear in n for fixed k, d, l) — and
extrapolates to the paper's dataset sizes with a goodness-of-fit
diagnostic, so EXPERIMENTS.md's "the trend extrapolates into the
paper's range" is a computed statement, not an eyeballed one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ScalingFit", "fit_linear_scaling", "extrapolate_speedup"]


@dataclass(slots=True)
class ScalingFit:
    """An affine fit ``time(n) = intercept + slope * n``."""

    intercept: float
    slope: float
    r_squared: float
    n_points: int

    def predict(self, n: float) -> float:
        """Predicted seconds at size ``n`` (clamped at the intercept)."""
        return max(self.intercept, self.intercept + self.slope * n)

    @property
    def is_linear(self) -> bool:
        """Whether the affine model explains the measurements well."""
        return self.r_squared >= 0.98


def fit_linear_scaling(
    sizes: list[int] | np.ndarray, seconds: list[float] | np.ndarray
) -> ScalingFit:
    """Least-squares affine fit of running time against dataset size."""
    n = np.asarray(sizes, dtype=np.float64)
    t = np.asarray(seconds, dtype=np.float64)
    if n.shape != t.shape or n.size < 2:
        raise ValueError(
            f"need >= 2 matching measurements, got {n.size} sizes / {t.size} times"
        )
    design = np.vstack([np.ones_like(n), n]).T
    coef, *_ = np.linalg.lstsq(design, t, rcond=None)
    predicted = design @ coef
    ss_res = float(np.sum((t - predicted) ** 2))
    ss_tot = float(np.sum((t - t.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ScalingFit(
        intercept=float(coef[0]),
        slope=float(coef[1]),
        r_squared=r_squared,
        n_points=int(n.size),
    )


def extrapolate_speedup(
    sizes: list[int],
    baseline_seconds: list[float],
    accelerated_seconds: list[float],
    target_n: int,
) -> tuple[float, ScalingFit, ScalingFit]:
    """Predict the speedup at ``target_n`` from small-size measurements.

    Fits both series and returns ``(speedup, baseline_fit, fast_fit)``.
    The baseline is linear in n with a tiny intercept; the accelerated
    variant has a large fixed share (launch overheads), which is exactly
    why the measured speedup keeps growing with n before flattening.
    """
    base = fit_linear_scaling(sizes, baseline_seconds)
    fast = fit_linear_scaling(sizes, accelerated_seconds)
    prediction = base.predict(target_n) / fast.predict(target_n)
    return prediction, base, fast
