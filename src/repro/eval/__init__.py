"""Evaluation utilities: clustering quality metrics and timing harness.

The paper's evaluation is purely about running time ("The important
measure in this work is ... not the accuracy but solely the running
time") because all variants produce the same clustering; this package
provides both the timing harness used by the benchmarks and standard
external quality metrics (ARI, NMI, purity, subspace recovery) so the
examples can demonstrate that the clusterings are also *good*.
"""

from .metrics import (
    adjusted_rand_index,
    confusion_matrix,
    normalized_mutual_information,
    purity,
    subspace_recovery,
)
from .timing import TimingResult, time_backend, time_parameter_study
from .speedup import SpeedupRow, speedup_table
from .profiling import PhaseBreakdown, compare_breakdowns, phase_breakdown
from .scaling import ScalingFit, extrapolate_speedup, fit_linear_scaling
from .stability import StabilityReport, stability_analysis
from .validation import ValidationReport, validate_equivalence

__all__ = [
    "adjusted_rand_index",
    "confusion_matrix",
    "normalized_mutual_information",
    "purity",
    "subspace_recovery",
    "TimingResult",
    "time_backend",
    "time_parameter_study",
    "SpeedupRow",
    "speedup_table",
    "PhaseBreakdown",
    "phase_breakdown",
    "compare_breakdowns",
    "ScalingFit",
    "fit_linear_scaling",
    "extrapolate_speedup",
    "ValidationReport",
    "validate_equivalence",
    "StabilityReport",
    "stability_analysis",
]
