"""Cross-variant validation report.

Runs every registered backend on a common workload with a common seed
and checks the paper's correctness premise — identical clusterings —
programmatically.  Exposed through ``python -m repro validate`` so a
user can re-establish the invariant on their own machine in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.api import BACKENDS, proclus
from ..data.normalize import minmax_normalize
from ..data.synthetic import generate_subspace_data
from ..params import ProclusParams

__all__ = ["ValidationReport", "validate_equivalence"]


@dataclass(slots=True)
class ValidationReport:
    """Outcome of one cross-variant equivalence check."""

    n: int
    d: int
    seeds: tuple[int, ...]
    backends: tuple[str, ...]
    #: (backend, seed) pairs that diverged from the baseline (empty = pass).
    failures: list[tuple[str, int]] = field(default_factory=list)
    runs: int = 0

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"cross-variant equivalence: {len(self.backends)} backends x "
            f"{len(self.seeds)} seeds on n={self.n}, d={self.d} "
            f"({self.runs} runs)",
        ]
        if self.passed:
            lines.append("PASS — all clusterings bitwise identical")
        else:
            lines.append(f"FAIL — {len(self.failures)} divergent runs:")
            for backend, seed in self.failures:
                lines.append(f"  {backend} at seed {seed}")
        return "\n".join(lines)


def validate_equivalence(
    n: int = 2_000,
    d: int = 10,
    seeds: tuple[int, ...] = (0, 1, 2),
    params: ProclusParams | None = None,
    backends: tuple[str, ...] | None = None,
) -> ValidationReport:
    """Check that every backend reproduces the baseline clustering."""
    if params is None:
        params = ProclusParams(k=5, l=4, a=30, b=5)
    names = tuple(backends) if backends is not None else tuple(sorted(BACKENDS))
    dataset = generate_subspace_data(
        n=n, d=d, n_clusters=params.k, subspace_dims=min(4, d), seed=7
    )
    data = minmax_normalize(dataset.data)
    report = ValidationReport(n=n, d=d, seeds=tuple(seeds), backends=names)
    for seed in seeds:
        baseline = proclus(data, backend="proclus", params=params, seed=seed)
        report.runs += 1
        for name in names:
            if name == "proclus":
                continue
            result = proclus(data, backend=name, params=params, seed=seed)
            report.runs += 1
            if not result.same_clustering(baseline):
                report.failures.append((name, seed))
    return report
