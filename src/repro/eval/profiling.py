"""Phase-level profiling across algorithm variants.

The paper's analysis is phase-driven ("the iterative phase has several
steps with O(n*k*d) running time... the focus for improvement").  These
helpers turn the per-phase modeled seconds that every run records into
comparable breakdowns, so users can see *where* each variant spends its
time and what the FAST strategies actually removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..result import ProclusResult

__all__ = ["PhaseBreakdown", "phase_breakdown", "compare_breakdowns"]

#: Canonical phase display order.
PHASE_ORDER = (
    "transfer",
    "initialization",
    "compute_l",
    "find_dimensions",
    "assign_points",
    "evaluate",
    "update",
    "refinement",
)


@dataclass(slots=True)
class PhaseBreakdown:
    """One run's time, split by algorithm phase."""

    backend: str
    total_seconds: float
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def fraction(self, phase: str) -> float:
        """Share of the total spent in ``phase`` (0 when absent)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.phase_seconds.get(phase, 0.0) / self.total_seconds

    def dominant_phase(self) -> str:
        """The phase with the largest share."""
        if not self.phase_seconds:
            return ""
        return max(self.phase_seconds, key=self.phase_seconds.get)  # type: ignore[arg-type]

    def as_rows(self) -> list[tuple[str, float, float]]:
        """``(phase, seconds, fraction)`` rows in canonical order.

        Phases outside :data:`PHASE_ORDER` (custom phases an engine
        accrued) follow the canonical ones in first-accrual order, so
        breakdowns stay deterministic and aligned across backends.
        """
        ordered = [p for p in PHASE_ORDER if p in self.phase_seconds]
        ordered += [p for p in self.phase_seconds if p not in PHASE_ORDER]
        return [
            (p, self.phase_seconds[p], self.fraction(p)) for p in ordered
        ]


def phase_breakdown(result: ProclusResult) -> PhaseBreakdown:
    """Extract the phase breakdown from a run's statistics."""
    return PhaseBreakdown(
        backend=result.stats.backend,
        total_seconds=result.stats.modeled_seconds,
        phase_seconds=dict(result.stats.phase_seconds),
    )


def compare_breakdowns(breakdowns: list[PhaseBreakdown]) -> str:
    """Render several breakdowns side by side (phases x backends)."""
    if not breakdowns:
        return "(no runs)"
    phases: list[str] = []
    for b in breakdowns:
        for phase, _, _ in b.as_rows():
            if phase not in phases:
                phases.append(phase)
    name_width = max(len("phase"), max(len(p) for p in phases))
    col_width = max(12, max(len(b.backend) for b in breakdowns) + 2)
    header = "phase".ljust(name_width) + "".join(
        b.backend.rjust(col_width) for b in breakdowns
    )
    lines = [header, "-" * len(header)]
    for phase in phases:
        cells = []
        for b in breakdowns:
            seconds = b.phase_seconds.get(phase, 0.0)
            cells.append(f"{seconds * 1e3:8.3f}ms {b.fraction(phase) * 100:4.0f}%".rjust(col_width))
        lines.append(phase.ljust(name_width) + "".join(cells))
    totals = "total".ljust(name_width) + "".join(
        f"{b.total_seconds * 1e3:8.3f}ms     ".rjust(col_width) for b in breakdowns
    )
    lines.append("-" * len(header))
    lines.append(totals)
    return "\n".join(lines)
