"""External clustering quality metrics (implemented from scratch).

Outliers (label ``-1``) in *either* labeling are treated as their own
singleton-ish class by :func:`confusion_matrix` callers unless they
exclude them; the pairwise metrics below exclude points that are
outliers in either labeling, which is the convention subspace-clustering
evaluations (Müller et al., VLDB 2009) use for PROCLUS-style outputs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "confusion_matrix",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "purity",
    "subspace_recovery",
]


def _validated_pair(
    labels_true: np.ndarray, labels_pred: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    labels_true = np.asarray(labels_true).ravel()
    labels_pred = np.asarray(labels_pred).ravel()
    if labels_true.shape != labels_pred.shape:
        raise ValueError(
            f"label arrays differ in length: {labels_true.shape} vs "
            f"{labels_pred.shape}"
        )
    keep = (labels_true >= 0) & (labels_pred >= 0)
    return labels_true[keep], labels_pred[keep]


def confusion_matrix(
    labels_true: np.ndarray, labels_pred: np.ndarray
) -> np.ndarray:
    """Contingency table over the non-outlier points.

    Rows are true classes (sorted unique order), columns predicted
    clusters.
    """
    t, p = _validated_pair(labels_true, labels_pred)
    true_ids, t_idx = np.unique(t, return_inverse=True)
    pred_ids, p_idx = np.unique(p, return_inverse=True)
    table = np.zeros((len(true_ids), len(pred_ids)), dtype=np.int64)
    np.add.at(table, (t_idx, p_idx), 1)
    return table


def _comb2(x: np.ndarray) -> np.ndarray:
    return x * (x - 1) / 2.0


def adjusted_rand_index(
    labels_true: np.ndarray, labels_pred: np.ndarray
) -> float:
    """Adjusted Rand Index in ``[-1, 1]``; 1 means identical partitions."""
    table = confusion_matrix(labels_true, labels_pred)
    n = table.sum()
    if n < 2:
        return 1.0
    sum_cells = _comb2(table.astype(np.float64)).sum()
    sum_rows = _comb2(table.sum(axis=1).astype(np.float64)).sum()
    sum_cols = _comb2(table.sum(axis=0).astype(np.float64)).sum()
    expected = sum_rows * sum_cols / _comb2(np.float64(n))
    maximum = (sum_rows + sum_cols) / 2.0
    if maximum == expected:
        return 1.0
    return float((sum_cells - expected) / (maximum - expected))


def normalized_mutual_information(
    labels_true: np.ndarray, labels_pred: np.ndarray
) -> float:
    """NMI with arithmetic-mean normalization, in ``[0, 1]``."""
    table = confusion_matrix(labels_true, labels_pred).astype(np.float64)
    n = table.sum()
    if n == 0:
        return 0.0
    pij = table / n
    pi = pij.sum(axis=1)
    pj = pij.sum(axis=0)
    nz = pij > 0
    outer = np.outer(pi, pj)
    mi = float(np.sum(pij[nz] * np.log(pij[nz] / outer[nz])))
    h_true = -float(np.sum(pi[pi > 0] * np.log(pi[pi > 0])))
    h_pred = -float(np.sum(pj[pj > 0] * np.log(pj[pj > 0])))
    denom = (h_true + h_pred) / 2.0
    if denom == 0:
        return 1.0 if mi == 0 else 0.0
    return float(np.clip(mi / denom, 0.0, 1.0))


def purity(labels_true: np.ndarray, labels_pred: np.ndarray) -> float:
    """Fraction of points in the majority true class of their cluster."""
    table = confusion_matrix(labels_true, labels_pred)
    n = table.sum()
    if n == 0:
        return 0.0
    return float(table.max(axis=0).sum() / n)


def subspace_recovery(
    true_subspaces: tuple[tuple[int, ...], ...],
    labels_true: np.ndarray,
    found_subspaces: tuple[tuple[int, ...], ...],
    labels_pred: np.ndarray,
) -> float:
    """Average Jaccard similarity between matched true and found subspaces.

    Each found cluster is matched to the true cluster it overlaps most
    (by shared points); the metric is the size-weighted mean Jaccard
    index between the matched subspace dimension sets.  1.0 means every
    cluster recovered its true projected subspace exactly.
    """
    t = np.asarray(labels_true).ravel()
    p = np.asarray(labels_pred).ravel()
    total = 0.0
    weight = 0.0
    for i, found in enumerate(found_subspaces):
        members = t[(p == i) & (t >= 0)]
        if members.size == 0:
            continue
        counts = np.bincount(members)
        best_true = int(np.argmax(counts))
        truth = set(true_subspaces[best_true])
        found_set = set(found)
        union = truth | found_set
        jaccard = len(truth & found_set) / len(union) if union else 1.0
        total += members.size * jaccard
        weight += members.size
    return total / weight if weight else 0.0
