"""Seed-stability analysis of the randomized search.

PROCLUS is non-deterministic across seeds ("results between runs may
differ both for the GPU versions and the CPU versions", Section 4.1).
Practitioners therefore run several seeds and keep the best; this
module quantifies how much that matters for a given workload — the
spread of costs, the agreement between runs, and the marginal value of
additional seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.api import proclus
from ..params import ProclusParams
from ..result import ProclusResult
from .metrics import adjusted_rand_index

__all__ = ["StabilityReport", "stability_analysis"]


@dataclass(slots=True)
class StabilityReport:
    """Cost/agreement statistics across seeds for one workload."""

    backend: str
    seeds: tuple[int, ...]
    costs: list[float] = field(default_factory=list)
    results: list[ProclusResult] = field(default_factory=list)

    @property
    def best_cost(self) -> float:
        return min(self.costs)

    @property
    def worst_cost(self) -> float:
        return max(self.costs)

    @property
    def mean_cost(self) -> float:
        return float(np.mean(self.costs))

    @property
    def std_cost(self) -> float:
        return float(np.std(self.costs))

    @property
    def relative_spread(self) -> float:
        """(worst - best) / best: 0 means seeds don't matter."""
        return (self.worst_cost - self.best_cost) / self.best_cost

    def best_result(self) -> ProclusResult:
        return self.results[int(np.argmin(self.costs))]

    def pairwise_agreement(self) -> float:
        """Mean ARI between all pairs of runs (1 = always identical)."""
        if len(self.results) < 2:
            return 1.0
        scores = []
        for i in range(len(self.results)):
            for j in range(i + 1, len(self.results)):
                scores.append(
                    adjusted_rand_index(
                        self.results[i].labels, self.results[j].labels
                    )
                )
        return float(np.mean(scores))

    def seeds_to_reach(self, tolerance: float = 0.05) -> int:
        """Seeds (in order) needed until the running best is within
        ``tolerance`` (relative) of the overall best."""
        target = self.best_cost * (1.0 + tolerance)
        best = np.inf
        for i, cost in enumerate(self.costs, start=1):
            best = min(best, cost)
            if best <= target:
                return i
        return len(self.costs)

    def render(self) -> str:
        return (
            f"{self.backend}: {len(self.seeds)} seeds — cost "
            f"best {self.best_cost:.6f} / mean {self.mean_cost:.6f} "
            f"(sd {self.std_cost:.6f}) / worst {self.worst_cost:.6f}; "
            f"relative spread {self.relative_spread * 100:.1f}%; "
            f"pairwise ARI {self.pairwise_agreement():.3f}; "
            f"{self.seeds_to_reach():d} seed(s) reach within 5% of best"
        )


def stability_analysis(
    data: np.ndarray,
    params: ProclusParams | None = None,
    backend: str = "fast",
    seeds: tuple[int, ...] = tuple(range(10)),
    **engine_kwargs,
) -> StabilityReport:
    """Run one workload across ``seeds`` and summarize the variability."""
    params = params if params is not None else ProclusParams()
    report = StabilityReport(backend=backend, seeds=tuple(seeds))
    for seed in seeds:
        result = proclus(
            data, backend=backend, params=params, seed=seed, **engine_kwargs
        )
        report.costs.append(result.cost)
        report.results.append(result)
    return report
