"""Timing harness: average modeled running times over repeated runs.

The paper reports running times as "averages of 10 runs on different
generated datasets".  :func:`time_backend` mirrors that protocol:
``repeats`` datasets are generated with different seeds, the backend
runs once on each, and the modeled times are averaged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.api import proclus, run_parameter_study
from ..core.multiparam import ReuseLevel
from ..data.normalize import minmax_normalize
from ..data.synthetic import SyntheticDataset, generate_subspace_data
from ..params import ParameterGrid, ProclusParams

__all__ = ["TimingResult", "time_backend", "time_parameter_study"]

DatasetFactory = Callable[[int], SyntheticDataset]


@dataclass(slots=True)
class TimingResult:
    """Aggregated timing of one backend on one workload."""

    backend: str
    modeled_seconds: float
    wall_seconds: float
    peak_bytes: float
    iterations: float
    repeats: int
    per_run_seconds: list[float] = field(default_factory=list)

    @property
    def modeled_milliseconds(self) -> float:
        return self.modeled_seconds * 1e3


def default_workload(n: int = 64_000, d: int = 15, **kwargs) -> DatasetFactory:
    """The paper's default synthetic workload as a dataset factory."""

    def factory(seed: int) -> SyntheticDataset:
        return generate_subspace_data(n=n, d=d, seed=seed, **kwargs)

    return factory


def time_backend(
    backend: str,
    dataset_factory: DatasetFactory,
    params: ProclusParams | None = None,
    repeats: int = 3,
    base_seed: int = 0,
    **engine_kwargs,
) -> TimingResult:
    """Average a backend's modeled time over ``repeats`` fresh datasets."""
    params = params if params is not None else ProclusParams()
    per_run: list[float] = []
    wall = 0.0
    peak = 0.0
    iterations = 0.0
    for r in range(repeats):
        dataset = dataset_factory(base_seed + r)
        data = minmax_normalize(dataset.data)
        result = proclus(
            data,
            backend=backend,
            params=params,
            seed=base_seed + r,
            **engine_kwargs,
        )
        per_run.append(result.stats.modeled_seconds)
        wall += result.stats.wall_seconds
        peak = max(peak, result.stats.peak_device_bytes)
        iterations += result.iterations
    return TimingResult(
        backend=backend,
        modeled_seconds=float(np.mean(per_run)),
        wall_seconds=wall / repeats,
        peak_bytes=peak,
        iterations=iterations / repeats,
        repeats=repeats,
        per_run_seconds=per_run,
    )


def time_parameter_study(
    backend: str,
    dataset_factory: DatasetFactory,
    grid: ParameterGrid | None = None,
    level: ReuseLevel | int = ReuseLevel.WARM_START,
    repeats: int = 3,
    base_seed: int = 0,
    **engine_kwargs,
) -> TimingResult:
    """Average modeled time *per setting* of a multi-parameter study."""
    grid = grid if grid is not None else ParameterGrid()
    per_run: list[float] = []
    wall = 0.0
    peak = 0.0
    iterations = 0.0
    for r in range(repeats):
        dataset = dataset_factory(base_seed + r)
        data = minmax_normalize(dataset.data)
        study = run_parameter_study(
            data,
            grid=grid,
            backend=backend,
            level=level,
            seed=base_seed + r,
            **engine_kwargs,
        )
        per_run.append(study.average_seconds_per_setting)
        wall += study.total_stats.wall_seconds
        peak = max(peak, study.total_stats.peak_device_bytes)
        iterations += study.total_stats.iterations
    return TimingResult(
        backend=f"{backend} (multi-param {int(level)})",
        modeled_seconds=float(np.mean(per_run)),
        wall_seconds=wall / repeats,
        peak_bytes=peak,
        iterations=iterations / repeats,
        repeats=repeats,
        per_run_seconds=per_run,
    )
