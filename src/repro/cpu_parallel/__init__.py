"""Multi-core CPU variants (the paper's OpenMP implementations)."""

from .multicore import (
    MulticoreProclusEngine,
    MulticoreFastProclusEngine,
    MulticoreFastStarProclusEngine,
)

__all__ = [
    "MulticoreProclusEngine",
    "MulticoreFastProclusEngine",
    "MulticoreFastStarProclusEngine",
]
