"""Multi-core CPU variants of PROCLUS and the FAST strategies.

Section 5 of the paper: "Some of the strategies proposed for
GPU-parallelization are directly applicable to the CPU as well.  We
have therefore implemented multi-core CPU versions using OpenMP".  The
parallel loops are the same data-parallel loops the GPU kernels cover,
so these variants perform *identical* work to their sequential
counterparts (the clusterings are identical too); only the cost model
changes — work is spread over the cores with an efficiency factor and a
fork/join overhead per parallel region, which caps the speedup near the
~6x the paper observes on 6 physical cores.
"""

from __future__ import annotations

from ..hardware.cost_model import HardwareModel, MulticoreCpuModel
from ..hardware.specs import cpu_for_problem
from ..core.proclus import ProclusEngine
from ..core.fast import FastProclusEngine
from ..core.fast_star import FastStarProclusEngine

__all__ = [
    "MulticoreProclusEngine",
    "MulticoreFastProclusEngine",
    "MulticoreFastStarProclusEngine",
]


class _MulticoreModelMixin:
    """Swaps the scalar CPU cost model for the multi-core one."""

    def _make_model(self, n: int, d: int) -> HardwareModel:
        spec = self._cpu_spec if self._cpu_spec is not None else cpu_for_problem(n)
        return MulticoreCpuModel(spec)


class MulticoreProclusEngine(_MulticoreModelMixin, ProclusEngine):
    """OpenMP-style parallel PROCLUS."""

    backend_name = "multicore-proclus"


class MulticoreFastProclusEngine(_MulticoreModelMixin, FastProclusEngine):
    """OpenMP-style parallel FAST-PROCLUS."""

    backend_name = "multicore-fast-proclus"


class MulticoreFastStarProclusEngine(_MulticoreModelMixin, FastStarProclusEngine):
    """OpenMP-style parallel FAST*-PROCLUS."""

    backend_name = "multicore-fast*-proclus"
