"""Result types returned by PROCLUS runs.

A :class:`ProclusResult` captures the clustering itself (labels,
medoids, per-cluster subspaces, outliers, cost) while a
:class:`RunStats` captures how much *work* the run performed — operation
counters plus the modeled running times on the calibrated hardware
models.  Both are returned by every algorithm variant so that
benchmarks can compare variants on identical footing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - hints only
    from .core.trace import RunTrace

__all__ = ["ProclusResult", "RunStats", "OUTLIER_LABEL"]

#: Label used for points classified as outliers in the refinement phase.
OUTLIER_LABEL = -1


@dataclass(slots=True)
class RunStats:
    """Work and timing statistics for one PROCLUS run.

    Attributes
    ----------
    counters:
        Raw operation counters (scalar flops, bytes moved, atomic
        operations, kernel launches, ...), keyed by counter name.
    phase_seconds:
        Modeled seconds per algorithm phase on the run's hardware model.
    modeled_seconds:
        Total modeled running time on the run's hardware model.
    wall_seconds:
        Actual wall-clock time of the Python run (host-side, for
        information only; the reproduction compares modeled times).
    peak_device_bytes:
        Peak simulated device-memory footprint (GPU variants) or peak
        auxiliary working-set estimate (CPU variants).
    iterations:
        Number of iterations the iterative phase executed.
    backend:
        Human-readable name of the algorithm variant that produced the
        stats (e.g. ``"gpu-fast-proclus"``).
    hardware:
        Name of the hardware model used for the time modeling.
    """

    counters: dict[str, float] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    modeled_seconds: float = 0.0
    wall_seconds: float = 0.0
    peak_device_bytes: int = 0
    iterations: int = 0
    backend: str = ""
    hardware: str = ""

    def merge(self, other: "RunStats") -> "RunStats":
        """Return a new :class:`RunStats` aggregating ``self`` and ``other``.

        Used by the multi-parameter driver to aggregate per-setting
        stats into a total.
        """
        merged = RunStats(
            backend=self.backend or other.backend,
            hardware=self.hardware or other.hardware,
        )
        for key, value in list(self.counters.items()) + list(other.counters.items()):
            merged.counters[key] = merged.counters.get(key, 0.0) + value
        for key, value in list(self.phase_seconds.items()) + list(
            other.phase_seconds.items()
        ):
            merged.phase_seconds[key] = merged.phase_seconds.get(key, 0.0) + value
        merged.modeled_seconds = self.modeled_seconds + other.modeled_seconds
        merged.wall_seconds = self.wall_seconds + other.wall_seconds
        merged.peak_device_bytes = max(self.peak_device_bytes, other.peak_device_bytes)
        merged.iterations = self.iterations + other.iterations
        return merged


@dataclass(slots=True)
class ProclusResult:
    """A projected clustering produced by any PROCLUS variant.

    Attributes
    ----------
    labels:
        Integer array of shape ``(n,)``.  ``labels[p]`` is the cluster
        index of point ``p`` in ``0..k-1`` or :data:`OUTLIER_LABEL` for
        outliers removed in the refinement phase.
    medoids:
        Integer array of shape ``(k,)`` with the indices (into the
        dataset) of the best medoids found.
    dimensions:
        Tuple of ``k`` sorted tuples; ``dimensions[i]`` is the subspace
        ``D_i`` assigned to cluster ``i``.
    cost:
        The best (lowest) weighted clustering cost found during the
        iterative phase (Eq. 2 of the paper).
    refined_cost:
        Cost of the refined clustering (after the refinement phase,
        outliers excluded), for information.
    iterations:
        Total number of iterations of the iterative phase.
    best_iteration:
        Iteration index (0-based) at which the best cost was found.
    stats:
        Work/timing statistics for this run.
    trace:
        Per-iteration :class:`~repro.core.trace.RunTrace` when the
        engine was constructed with ``collect_trace=True``; ``None``
        otherwise.  Persisted alongside the clustering by
        :func:`~repro.core.serialization.save_result`.
    """

    labels: np.ndarray
    medoids: np.ndarray
    dimensions: tuple[tuple[int, ...], ...]
    cost: float
    refined_cost: float
    iterations: int
    best_iteration: int
    stats: RunStats
    trace: "RunTrace | None" = None

    @property
    def k(self) -> int:
        """Number of clusters."""
        return len(self.medoids)

    @property
    def n_outliers(self) -> int:
        """Number of points labeled as outliers."""
        return int(np.count_nonzero(self.labels == OUTLIER_LABEL))

    def cluster_sizes(self) -> np.ndarray:
        """Return the size of each cluster (outliers excluded)."""
        sizes = np.zeros(self.k, dtype=np.int64)
        valid = self.labels >= 0
        np.add.at(sizes, self.labels[valid], 1)
        return sizes

    def cluster_members(self, i: int) -> np.ndarray:
        """Return the point indices assigned to cluster ``i``."""
        if not 0 <= i < self.k:
            raise IndexError(f"cluster index {i} out of range [0, {self.k})")
        return np.flatnonzero(self.labels == i)

    def same_clustering(self, other: "ProclusResult") -> bool:
        """True when two results describe the identical clustering.

        Compares labels, medoids and subspaces — the quantities the
        paper asserts are identical across its algorithm variants for
        matching random decisions.
        """
        return (
            np.array_equal(self.labels, other.labels)
            and np.array_equal(self.medoids, other.medoids)
            and self.dimensions == other.dimensions
        )

    def summary(self) -> str:
        """Human-readable multi-line description of the clustering."""
        sizes = self.cluster_sizes()
        lines = [
            f"PROCLUS clustering: k={self.k}, cost={self.cost:.6f}, "
            f"outliers={self.n_outliers}, iterations={self.iterations}",
        ]
        for i in range(self.k):
            dims = ", ".join(str(j) for j in self.dimensions[i])
            lines.append(
                f"  cluster {i}: size={int(sizes[i])}, medoid={int(self.medoids[i])}, "
                f"dims=({dims})"
            )
        return "\n".join(lines)


def counters_as_table(counters: Mapping[str, float]) -> str:
    """Format a counter mapping as an aligned two-column table."""
    if not counters:
        return "(no counters)"
    width = max(len(name) for name in counters)
    rows = [f"{name.ljust(width)}  {value:,.0f}" for name, value in sorted(counters.items())]
    return "\n".join(rows)
