"""Distance primitives with order-independent (exact) accumulation.

The paper claims that PROCLUS, FAST-PROCLUS, FAST*-PROCLUS and all GPU
variants "produce the same clustering" when they take the same random
decisions.  Making that claim *bitwise testable* requires care: the
FAST variants build the per-dimension sums ``H`` incrementally
(Theorem 3.2) and the GPU kernels accumulate with atomics in arbitrary
thread order, so naive floating-point summation would differ between
variants and could flip discrete choices (dimension selection, argmin
assignment).

The trick used throughout this module: every summed *term* is a float32
value in ``[0, 2)`` (datasets are min-max normalized to ``[0, 1]``), and
the accumulator is float64.  A float64 accumulation of float32 terms in
that range is **exact** (no rounding) as long as the partial sums stay
below ``2^29`` — the terms carry 24-bit mantissas with granularity
``>= 2^-24``, so any partial sum needs at most ``29 + 24 = 53``
mantissa bits, precisely what float64 provides.  Exact sums are
order-independent, so the incremental ``H`` updates, the baseline's
full recomputation, and any GPU atomic ordering all yield identical
float64 values, and every downstream discrete choice matches.

This holds for up to ``2^28`` points per sum — far beyond the paper's
largest dataset (8.4 M points).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "euclidean_distances",
    "euclidean_to_point",
    "abs_diff_dim_sums",
    "segmental_distances",
    "MAX_EXACT_POINTS",
]

#: Sums of this many float32 terms in [0, 2) are exact in float64.
MAX_EXACT_POINTS = 2**28

#: Rows processed per chunk: bounds the temporary diff buffer to
#: ~`_CHUNK_ROWS * d * 4` bytes (16 MiB at d = 15), so million-point
#: datasets never allocate an n x d scratch copy.  Chunking cannot
#: change any result — every chunk's arithmetic is element-wise and the
#: accumulation is exact.
_CHUNK_ROWS = 262_144


def euclidean_to_point(data: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Full-dimensional Euclidean distances from every row to ``point``.

    Terms ``(a - b)^2`` are computed and rounded in float32 (as CUDA
    kernels would), accumulated exactly in float64, square-rooted in
    float64 and finally rounded once to float32.  Every algorithm
    variant calls this same function, so stored distances are identical
    across variants.  Large inputs are processed in fixed-size chunks
    to bound temporary memory.

    Returns a float32 array of shape ``(n,)``.
    """
    point = point.astype(np.float32)
    n = data.shape[0]
    out = np.empty(n, dtype=np.float32)
    for start in range(0, n, _CHUNK_ROWS):
        chunk = data[start : start + _CHUNK_ROWS]
        diff = chunk - point
        np.multiply(diff, diff, out=diff)
        sq = np.sum(diff, axis=1, dtype=np.float64)
        out[start : start + _CHUNK_ROWS] = np.sqrt(sq)
    return out


def euclidean_distances(data: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Distances from every row of ``data`` to every row of ``points``.

    Returns a float32 array of shape ``(len(points), n)``.
    """
    points = np.atleast_2d(points)
    out = np.empty((points.shape[0], data.shape[0]), dtype=np.float32)
    for i, point in enumerate(points):
        out[i] = euclidean_to_point(data, point)
    return out


def abs_diff_dim_sums(points: np.ndarray, medoid: np.ndarray) -> np.ndarray:
    """Per-dimension sums ``sum_p |p_j - m_j|`` over ``points``.

    This is the quantity the ``H`` matrix stores (Eq. 5).  The absolute
    differences are float32 terms; the sum is exact in float64, so the
    incremental update of Theorem 3.2 reproduces the full sum bit for
    bit.

    Returns a float64 array of shape ``(d,)``.
    """
    if points.shape[0] == 0:
        return np.zeros(points.shape[1], dtype=np.float64)
    medoid = medoid.astype(np.float32)
    total = np.zeros(points.shape[1], dtype=np.float64)
    for start in range(0, points.shape[0], _CHUNK_ROWS):
        chunk = points[start : start + _CHUNK_ROWS]
        total += np.sum(np.abs(chunk - medoid), axis=0, dtype=np.float64)
    return total


def segmental_distances(
    data: np.ndarray,
    medoid_points: np.ndarray,
    dimensions: tuple[tuple[int, ...], ...],
) -> np.ndarray:
    """Manhattan segmental distances from all points to each medoid.

    ``dist[p, i] = sum_{j in D_i} |p_j - m_{i,j}| / |D_i|`` — the
    measure AssignPoints and RemoveOutliers use.

    Returns a float64 array of shape ``(n, k)``.
    """
    n = data.shape[0]
    k = medoid_points.shape[0]
    out = np.empty((n, k), dtype=np.float64)
    for i in range(k):
        dims = list(dimensions[i])
        medoid = medoid_points[i, dims].astype(np.float32)
        for start in range(0, n, _CHUNK_ROWS):
            chunk = data[start : start + _CHUNK_ROWS, dims]
            diff = np.abs(chunk - medoid)
            out[start : start + _CHUNK_ROWS, i] = (
                np.sum(diff, axis=1, dtype=np.float64) / len(dims)
            )
    return out
