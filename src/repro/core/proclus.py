"""Sequential baseline PROCLUS (Aggarwal et al. 1999, as in the paper).

Every iteration recomputes the full medoid-to-point distance matrix and
the per-dimension averages ``X`` from scratch — the ``O(n*k*d)`` steps
the FAST strategies target.
"""

from __future__ import annotations

import numpy as np

from .base import EngineBase

__all__ = ["ProclusEngine"]


class ProclusEngine(EngineBase):
    """The unmodified PROCLUS algorithm on a single CPU core."""

    backend_name = "proclus"

    def _compute_l_and_x(
        self, mcur: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        data = self._data
        n, d = data.shape
        k = len(mcur)
        medoid_ids = self._medoid_ids[mcur]
        medoid_points = data[medoid_ids]

        # Distances from every current medoid to every point (recomputed
        # from scratch every iteration — the baseline's main cost).
        dist = np.empty((k, n), dtype=np.float32)
        for i in range(k):
            dist[i] = self._distance_row(medoid_points[i])
        self._account_distance_rows(k, n, d)

        # delta_i: distance to the nearest other medoid.
        medoid_dist = dist[:, medoid_ids].astype(np.float32)
        np.fill_diagonal(medoid_dist, np.inf)
        delta = medoid_dist.min(axis=1)
        self._account_delta(k)

        x = np.zeros((k, d), dtype=np.float64)
        sizes = np.zeros(k, dtype=np.int64)
        total_in_l = 0
        for i in range(k):
            mask = dist[i] <= delta[i]
            count = int(np.count_nonzero(mask))
            sizes[i] = count
            total_in_l += count
            x[i] = self._dim_sums(mask, medoid_points[i]) / count
        self._account_scan_l(n, k, total_in_l)
        self._account_x_sums(total_in_l, d, k)
        self._account_x_finalize(k, d)
        return x, sizes
