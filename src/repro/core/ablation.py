"""Ablation variants isolating FAST-PROCLUS's two strategies.

Section 3 combines two independent ideas:

1. **Dist caching** — compute each potential medoid's distance row once
   (``Dist`` + ``DistFound``) and reuse it across iterations;
2. **incremental H** — maintain the per-dimension sums over ``L_i``
   through the sphere *changes* ``DeltaL`` (Theorems 3.1/3.2) instead of
   recomputing them from the full sphere.

The paper evaluates them only jointly (as FAST-PROCLUS).  These engines
apply exactly one strategy each, so the ablation benchmark can
attribute the measured speedup to its source.  Both still produce the
identical clustering (they draw the same random decisions and the exact
accumulation makes all summation orders equal).
"""

from __future__ import annotations

import numpy as np

from .base import EngineBase
from .distance import abs_diff_dim_sums, euclidean_to_point
from .state import MedoidCache

__all__ = ["FastDistOnlyEngine", "FastHOnlyEngine"]


class FastDistOnlyEngine(EngineBase):
    """Strategy 1 only: cached distance rows, full X recomputation."""

    backend_name = "fast-dist-only"

    def _setup(self, data: np.ndarray) -> None:
        n, d = data.shape
        if self.shared_state is not None:
            self._cache = self.shared_state.cache
        else:
            self._cache = MedoidCache.create(
                self.params.effective_num_potential(n), n, d
            )

    def _modeled_peak_bytes(self) -> int:
        n, d = self._data.shape
        return n * d * 4 + self._cache.dist.nbytes + n * 4 + self.params.k * d * 8

    def _compute_l_and_x(
        self, mcur: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        data = self._data
        n, d = data.shape
        k = len(mcur)
        cache = self._cache
        medoid_ids = self._medoid_ids[mcur]

        missing = mcur[~cache.dist_found[mcur]]
        for mi in missing:
            cache.dist[mi] = euclidean_to_point(data, data[self._medoid_ids[mi]])
        self._account_distance_rows(len(missing), n, d)
        cache.dist_found[missing] = True

        medoid_dist = cache.dist[mcur][:, medoid_ids]
        np.fill_diagonal(medoid_dist, np.inf)
        delta = medoid_dist.min(axis=1)
        self._account_delta(k)

        # X recomputed from the full sphere every iteration (no H).
        x = np.zeros((k, d), dtype=np.float64)
        sizes = np.zeros(k, dtype=np.int64)
        total_in_l = 0
        for i, mi in enumerate(mcur):
            mask = cache.dist[mi] <= delta[i]
            count = int(np.count_nonzero(mask))
            sizes[i] = count
            total_in_l += count
            x[i] = abs_diff_dim_sums(data[mask], data[self._medoid_ids[mi]]) / count
        self._account_scan_l(n, k, total_in_l)
        self._account_x_sums(total_in_l, d, k)
        self._account_x_finalize(k, d)
        return x, sizes


class FastHOnlyEngine(EngineBase):
    """Strategy 2 only: incremental H, distances recomputed each iteration."""

    backend_name = "fast-h-only"

    def _setup(self, data: np.ndarray) -> None:
        n, d = data.shape
        if self.shared_state is not None:
            self._cache = self.shared_state.cache
        else:
            self._cache = MedoidCache.create(
                self.params.effective_num_potential(n), n, d
            )

    def _modeled_peak_bytes(self) -> int:
        n, d = self._data.shape
        k = self.params.k
        m = self._cache.m
        # Only k distance rows are live at a time (no cache), plus H.
        return n * d * 4 + k * n * 4 + m * d * 8 + n * 4

    def _compute_l_and_x(
        self, mcur: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        data = self._data
        n, d = data.shape
        k = len(mcur)
        cache = self._cache
        medoid_ids = self._medoid_ids[mcur]

        # Distances recomputed from scratch for all current medoids —
        # but stored per potential medoid so DeltaL can be derived.
        for mi in mcur:
            cache.dist[mi] = euclidean_to_point(data, data[self._medoid_ids[mi]])
        self._account_distance_rows(k, n, d)

        medoid_dist = cache.dist[mcur][:, medoid_ids]
        np.fill_diagonal(medoid_dist, np.inf)
        delta = medoid_dist.min(axis=1)
        self._account_delta(k)

        x = np.zeros((k, d), dtype=np.float64)
        sizes = np.zeros(k, dtype=np.int64)
        total_changed = 0
        for i, mi in enumerate(mcur):
            row = cache.dist[mi]
            previous = cache.prev_delta[mi]
            current = delta[i]
            if current >= previous:
                mask = (row > previous) & (row <= current)
                lam = 1
            else:
                mask = (row > current) & (row <= previous)
                lam = -1
            count = int(np.count_nonzero(mask))
            total_changed += count
            if count:
                point = data[self._medoid_ids[mi]]
                cache.h[mi] += lam * abs_diff_dim_sums(data[mask], point)
                cache.size_l[mi] += lam * count
            cache.prev_delta[mi] = current
            sizes[i] = cache.size_l[mi]
            x[i] = cache.h[mi] / cache.size_l[mi]
        self._account_scan_l(n, k, total_changed)
        self._account_x_sums(total_changed, d, k)
        self._account_x_finalize(k, d)
        return x, sizes
