"""Greedy selection of potential medoids (initialization phase).

PROCLUS greedily picks ``B*k`` potential medoids from the sample
``Data'``: starting from a random seed point, it repeatedly adds the
point whose distance to the already-picked set is largest (a maximin /
farthest-first traversal), which spreads the potential medoids far
apart — the property the FAST strategies later exploit ("the set L_i
only changes for a fraction of the points between iterations since the
potential medoids are selected to be far apart").

Ties in the arg-max are broken toward the lowest index.  CUDA's
Algorithm 2 resolves ties by racing writes; fixing a deterministic rule
lets every variant (and the SIMT-emulated kernel, which adopts the same
rule) produce identical medoid sets.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from .distance import euclidean_to_point

__all__ = ["greedy_select"]


def greedy_select(sample: np.ndarray, count: int, seed_index: int) -> np.ndarray:
    """Greedily pick ``count`` far-apart points from ``sample``.

    Parameters
    ----------
    sample:
        ``(s, d)`` float32 array (the random sample ``Data'``).
    count:
        Number of potential medoids ``B*k`` to pick.
    seed_index:
        Index into ``sample`` of the randomly chosen first medoid.

    Returns
    -------
    numpy.ndarray
        ``(count,)`` int64 indices into ``sample``; the first entry is
        ``seed_index``.
    """
    s = sample.shape[0]
    if not 0 < count <= s:
        raise ParameterError(f"cannot pick {count} medoids from a sample of {s}")
    if not 0 <= seed_index < s:
        raise ParameterError(f"seed index {seed_index} out of range [0, {s})")

    chosen = np.empty(count, dtype=np.int64)
    chosen[0] = seed_index
    # Distance from every sample point to its closest chosen medoid.
    min_dist = euclidean_to_point(sample, sample[seed_index])
    for i in range(1, count):
        nxt = int(np.argmax(min_dist))  # ties -> lowest index
        chosen[i] = nxt
        np.minimum(min_dist, euclidean_to_point(sample, sample[nxt]), out=min_dist)
    return chosen
