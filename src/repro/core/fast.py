"""FAST-PROCLUS: reuse distances and partial sums across iterations.

Implements the paper's Section 3 strategies:

* ``Dist`` — the ``(B*k, n)`` distance matrix holding each potential
  medoid's distances to all points, computed the *first* time a medoid
  enters ``MCur`` (``DistFound`` flags) and reused forever after;
* ``H`` — the ``(B*k, d)`` per-dimension distance sums over each
  medoid's sphere ``L_i``, updated incrementally from the sphere
  *change* ``DeltaL_i`` between usages (Theorems 3.1 and 3.2) instead
  of recomputed from the full sphere.

Thanks to the exact accumulation in :mod:`repro.core.distance`, the
incrementally maintained ``X = H / |L|`` matches the baseline's bit for
bit, so FAST-PROCLUS provably returns the baseline's clustering.
"""

from __future__ import annotations

import numpy as np

from .base import EngineBase
from .state import MedoidCache

__all__ = ["FastProclusEngine"]


class FastProclusEngine(EngineBase):
    """PROCLUS with the Dist/DistFound cache and incremental ``H``."""

    backend_name = "fast-proclus"

    def _setup(self, data: np.ndarray) -> None:
        n, d = data.shape
        if self.shared_state is not None:
            # Multi-parameter studies share one cache across settings.
            self._cache = self.shared_state.cache
        else:
            self._cache = MedoidCache.create(
                self.params.effective_num_potential(n), n, d
            )

    def _modeled_peak_bytes(self) -> int:
        n, d = self._data.shape
        return n * d * 4 + self._cache.nbytes() + n * 4 + self.params.k * d * 8

    def _compute_l_and_x(
        self, mcur: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        data = self._data
        n, d = data.shape
        k = len(mcur)
        cache = self._cache
        medoid_ids = self._medoid_ids[mcur]

        # Distances: only rows never computed before (DistFound check).
        missing = mcur[~cache.dist_found[mcur]]
        for mi in missing:
            point = data[self._medoid_ids[mi]]
            cache.dist[mi] = self._distance_row(point)
        self._account_distance_rows(len(missing), n, d)
        cache.dist_found[missing] = True

        # delta_i from the cached rows.
        medoid_dist = cache.dist[mcur][:, medoid_ids]
        np.fill_diagonal(medoid_dist, np.inf)
        delta = medoid_dist.min(axis=1)
        self._account_delta(k)

        x = np.zeros((k, d), dtype=np.float64)
        sizes = np.zeros(k, dtype=np.int64)
        total_changed = 0
        for i, mi in enumerate(mcur):
            row = cache.dist[mi]
            previous = cache.prev_delta[mi]
            current = delta[i]
            if current >= previous:
                mask = (row > previous) & (row <= current)
                lam = 1
            else:
                mask = (row > current) & (row <= previous)
                lam = -1
            count = int(np.count_nonzero(mask))
            total_changed += count
            if count:
                point = data[self._medoid_ids[mi]]
                cache.h[mi] += lam * self._dim_sums(mask, point)
                cache.size_l[mi] += lam * count
            cache.prev_delta[mi] = current
            sizes[i] = cache.size_l[mi]
            x[i] = cache.h[mi] / cache.size_l[mi]
        self._account_scan_l(n, k, total_changed)
        self._account_x_sums(total_changed, d, k)
        self._account_x_finalize(k, d)
        return x, sizes
