"""Shared phase mathematics: FindDimensions, AssignPoints, EvaluateClusters.

These functions implement the parts of PROCLUS that are *identical*
across the baseline, FAST, FAST* and GPU variants.  The variants differ
only in how they obtain the per-medoid/per-dimension average distances
``X`` (full recomputation vs. the incremental ``H`` of Theorem 3.2);
everything downstream of ``X`` is shared, which — together with the
exact accumulation in :mod:`repro.core.distance` — guarantees identical
clusterings across variants.

All discrete choices break ties deterministically (lowest index), the
convention the emulated GPU kernels follow as well.
"""

from __future__ import annotations

import numpy as np

from .distance import segmental_distances

__all__ = [
    "find_dimensions",
    "assign_points",
    "evaluate_clusters",
    "compute_bad_medoids",
    "find_outliers",
    "cluster_sizes_from_labels",
]


def find_dimensions(x: np.ndarray, l: int) -> tuple[tuple[int, ...], ...]:
    """Select the projected subspaces ``D_i`` from the spread matrix ``X``.

    Implements the paper's FindDimensions: for each medoid compute the
    mean ``Y_i`` and standard deviation ``sigma_i`` of its row of ``X``,
    standardize into ``Z_{i,j} = (X_{i,j} - Y_i) / sigma_i``, then pick
    the two lowest-``Z`` dimensions per medoid and distribute the
    remaining ``k*l - 2k`` picks greedily by lowest ``Z`` overall.

    Parameters
    ----------
    x:
        ``(k, d)`` float64 matrix of average distances ``X_{i,j}``.
    l:
        Average subspace size; ``k*l`` dimensions are selected in total.

    Returns
    -------
    tuple of k sorted dimension tuples.
    """
    k, d = x.shape
    y = x.mean(axis=1)
    deviation = x - y[:, None]
    if d > 1:
        sigma = np.sqrt(np.sum(deviation**2, axis=1) / (d - 1))
    else:  # pragma: no cover - guarded by l >= 2 <= d
        sigma = np.zeros(k)
    z = np.zeros_like(deviation)
    np.divide(deviation, sigma[:, None], out=z, where=sigma[:, None] > 0)

    picked = np.zeros((k, d), dtype=bool)
    # Two lowest-Z dimensions per medoid (stable sort: ties -> lowest j).
    for i in range(k):
        order = np.argsort(z[i], kind="stable")
        picked[i, order[:2]] = True

    remaining = k * l - 2 * k
    if remaining > 0:
        flat_i, flat_j = np.nonzero(~picked)
        flat_z = z[flat_i, flat_j]
        # Lowest Z first; ties -> lowest medoid, then lowest dimension.
        order = np.lexsort((flat_j, flat_i, flat_z))[:remaining]
        picked[flat_i[order], flat_j[order]] = True

    return tuple(
        tuple(int(j) for j in np.flatnonzero(picked[i])) for i in range(k)
    )


def assign_points(
    data: np.ndarray,
    medoid_points: np.ndarray,
    dimensions: tuple[tuple[int, ...], ...],
) -> tuple[np.ndarray, np.ndarray]:
    """Assign each point to the medoid with the smallest Manhattan
    segmental distance within that medoid's subspace.

    Returns ``(labels, seg)`` where ``labels`` is the ``(n,)`` cluster
    assignment (ties -> lowest cluster index) and ``seg`` the ``(n, k)``
    segmental-distance matrix, which the refinement phase reuses for
    outlier detection.
    """
    seg = segmental_distances(data, medoid_points, dimensions)
    labels = np.argmin(seg, axis=1).astype(np.int64)
    return labels, seg


def cluster_sizes_from_labels(labels: np.ndarray, k: int) -> np.ndarray:
    """Size of each of the ``k`` clusters (ignores negative labels)."""
    sizes = np.zeros(k, dtype=np.int64)
    valid = labels >= 0
    np.add.at(sizes, labels[valid], 1)
    return sizes


def evaluate_clusters(
    data: np.ndarray,
    labels: np.ndarray,
    dimensions: tuple[tuple[int, ...], ...],
) -> float:
    """Weighted clustering cost (Eq. 2): the size-weighted average
    Manhattan segmental distance of points to their cluster *centroid*
    within the cluster's subspace.

    Empty clusters contribute zero.  Points with negative labels
    (outliers, during refinement re-evaluation) are excluded from both
    the sums and the denominator's weights but ``|Data|`` stays the full
    dataset size, matching Eq. 2.
    """
    n = data.shape[0]
    k = len(dimensions)
    total = 0.0
    for i in range(k):
        dims = list(dimensions[i])
        members = data[labels == i][:, dims]
        size = members.shape[0]
        if size == 0:
            continue
        centroid = np.sum(members, axis=0, dtype=np.float64) / size
        v = np.sum(np.abs(members - centroid), axis=0, dtype=np.float64) / size
        w = float(v.mean())
        total += size * w
    return total / n


def compute_bad_medoids(
    sizes: np.ndarray, n: int, min_deviation: float, rule: str = "paper"
) -> np.ndarray:
    """Indices of the bad medoids of the best clustering.

    ``rule="paper"`` (this paper's Section 2.1): a medoid is bad when
    its cluster holds fewer than ``n/k * min_deviation`` points; if no
    medoid is that starved, the single smallest cluster's medoid is bad
    (ties -> lowest index).

    ``rule="original"`` (Aggarwal et al. 1999): the smallest cluster's
    medoid is *always* bad, in addition to every below-threshold one.
    """
    k = len(sizes)
    threshold = n / k * min_deviation
    bad = np.flatnonzero(sizes < threshold)
    if rule == "original":
        smallest = int(np.argmin(sizes))
        if smallest not in bad:
            bad = np.sort(np.append(bad, smallest))
    elif bad.size == 0:
        bad = np.array([int(np.argmin(sizes))], dtype=np.int64)
    return bad


def find_outliers(
    seg: np.ndarray,
    medoid_points: np.ndarray,
    dimensions: tuple[tuple[int, ...], ...],
) -> np.ndarray:
    """Boolean outlier mask for the refinement phase.

    For each medoid ``m_i`` the sphere radius is
    ``Delta_i = min_{j != i} ||m_i - m_j||_1^{D_i} / |D_i|`` (segmental
    distance to the closest other medoid in ``m_i``'s own subspace).  A
    point is an outlier when it lies outside every medoid's sphere.
    With ``k == 1`` there is no other medoid, the radius is infinite and
    no point is an outlier.

    Parameters
    ----------
    seg:
        ``(n, k)`` segmental distances from :func:`assign_points`.
    medoid_points:
        ``(k, d)`` medoid coordinates.
    dimensions:
        The k subspaces.
    """
    k = medoid_points.shape[0]
    medoid_seg = segmental_distances(medoid_points, medoid_points, dimensions)
    np.fill_diagonal(medoid_seg, np.inf)
    delta = medoid_seg.min(axis=0)  # delta[i] = min_j seg(m_j -> m_i in D_i)
    return np.all(seg > delta[None, :], axis=1)
