"""Template engine shared by every PROCLUS variant.

:class:`EngineBase.fit` implements Algorithm 1 (initialization,
iterative, refinement phases).  Variants differ in exactly two places:

* :meth:`EngineBase._compute_l_and_x` — how the sphere sets ``L_i`` and
  the average-distance matrix ``X`` are obtained (full recomputation in
  the baseline; cached distances + incremental ``H`` in FAST/FAST*);
* the ``_account_*`` hooks — how performed work is charged to a
  hardware cost model (scalar CPU here; multi-core and per-kernel GPU
  accounting in the subclasses).

Because the *math* is shared and all accumulations are exact
(:mod:`repro.core.distance`), every variant produces an identical
clustering for the same seed — the paper's correctness claim.
"""

from __future__ import annotations

import abc
import math
import time

import numpy as np

from pathlib import Path

from ..exceptions import CheckpointError, DataValidationError, ParameterError
from ..hardware.cost_model import HardwareModel, ScalarCpuModel
from ..hardware.specs import CpuSpec, cpu_for_problem
from ..obs.tracer import Tracer, current_tracer
from ..params import ProclusParams
from ..result import OUTLIER_LABEL, ProclusResult, RunStats
from ..rng import RandomSource
from .distance import abs_diff_dim_sums, euclidean_to_point
from .greedy import greedy_select
from .phases import (
    assign_points,
    cluster_sizes_from_labels,
    compute_bad_medoids,
    evaluate_clusters,
    find_dimensions,
    find_outliers,
)
from .state import IterativeState, SharedStudyState
from .trace import RunTrace

__all__ = ["EngineBase", "validate_data"]

#: Arithmetic operations per distance term (subtract, square/abs, add).
OPS_PER_TERM = 3


def validate_data(data: np.ndarray) -> np.ndarray:
    """Validate and canonicalize an input dataset.

    Returns a C-contiguous float32 ``(n, d)`` array.  The library
    expects min-max normalized data (values in ``[0, 1]``) for the
    exact-accumulation guarantee; other finite values still cluster
    correctly but cross-variant bitwise equality is no longer ensured.
    """
    array = np.asarray(data)
    if array.ndim != 2 or array.shape[0] < 1 or array.shape[1] < 1:
        raise DataValidationError(
            f"expected a non-empty 2-D (n, d) array, got shape {array.shape}"
        )
    if not np.issubdtype(array.dtype, np.number):
        raise DataValidationError(f"expected numeric data, got dtype {array.dtype}")
    array = np.ascontiguousarray(array, dtype=np.float32)
    if not np.all(np.isfinite(array)):
        raise DataValidationError("dataset contains NaN or infinite values")
    return array


class EngineBase(abc.ABC):
    """One PROCLUS run: construct, :meth:`fit` once, read the result."""

    #: Variant name reported in :class:`~repro.result.RunStats`.
    backend_name = "base"

    def __init__(
        self,
        params: ProclusParams | None = None,
        seed: int | RandomSource | None = 0,
        cpu_spec: CpuSpec | None = None,
        shared_state: SharedStudyState | None = None,
        initial_medoids: np.ndarray | None = None,
        charge_greedy: bool = True,
        collect_trace: bool = False,
        tracer: Tracer | None = None,
        checkpoint_every: int = 0,
        checkpoint_path: str | Path | None = None,
        resume_from: IterativeState | str | Path | None = None,
    ) -> None:
        """
        Parameters
        ----------
        params:
            Algorithm parameters (paper defaults when omitted).
        seed:
            Seed or :class:`~repro.rng.RandomSource` driving every
            random decision.
        cpu_spec:
            CPU to model; chosen per problem size when omitted.
        shared_state:
            Multi-parameter study state (sample, medoids, caches) to
            reuse instead of sampling afresh (Section 3.1).
        initial_medoids:
            Positions into ``M`` to use as the initial ``MCur`` (the
            "multi-param 3" warm start); random when omitted.
        charge_greedy:
            Whether to charge the greedy pick's cost to the model.
            "multi-param 1" re-runs greedy (cost charged, same result);
            "multi-param 2" skips it entirely (not charged).
        collect_trace:
            Record a per-iteration :class:`~repro.core.trace.RunTrace`
            in :attr:`trace_` (costs, improvements, medoid churn).
        tracer:
            :class:`~repro.obs.Tracer` to report spans and kernel
            events into.  When omitted, the ambient tracer installed
            with :func:`repro.obs.use_tracer` is used (a disabled
            no-op singleton by default).
        checkpoint_every:
            When > 0, write an engine checkpoint to ``checkpoint_path``
            after every that-many completed iterations of the iterative
            phase.
        checkpoint_path:
            Where checkpoints go (``.npz``); required when
            ``checkpoint_every`` is set.
        resume_from:
            An :class:`~repro.core.state.IterativeState` (or a path to
            a saved one) to continue from instead of starting fresh.
            The snapshot may come from *any* backend: caches are not
            part of it and are rebuilt, provably with identical values.
        """
        self.params = params if params is not None else ProclusParams()
        self.rng = seed if isinstance(seed, RandomSource) else RandomSource(seed)
        self._cpu_spec = cpu_spec
        self.shared_state = shared_state
        self.initial_medoids = initial_medoids
        self.charge_greedy = charge_greedy
        if not isinstance(checkpoint_every, int) or isinstance(checkpoint_every, bool):
            raise ParameterError(
                f"checkpoint_every must be an int, "
                f"got {type(checkpoint_every).__name__}"
            )
        if checkpoint_every < 0:
            raise ParameterError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if checkpoint_every > 0 and checkpoint_path is None:
            raise ParameterError(
                "checkpoint_every requires a checkpoint_path to write to"
            )
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.resume_from = resume_from
        self.model: HardwareModel | None = None
        self.trace_: RunTrace | None = RunTrace() if collect_trace else None
        self._tracer = tracer
        #: Resolved tracer for the current fit (the explicit one or the
        #: ambient tracer at the time fit() is entered).
        self._obs: Tracer = current_tracer()
        self._fitted = False

    # ------------------------------------------------------------------
    # Hooks a variant may override
    # ------------------------------------------------------------------
    def _make_model(self, n: int, d: int) -> HardwareModel:
        """Create the hardware cost model for this run."""
        spec = self._cpu_spec if self._cpu_spec is not None else cpu_for_problem(n)
        return ScalarCpuModel(spec)

    def _setup(self, data: np.ndarray) -> None:
        """Variant-specific preparation (cache/device allocation)."""

    def _teardown(self) -> None:
        """Variant-specific cleanup (free device memory)."""

    @abc.abstractmethod
    def _compute_l_and_x(
        self, mcur: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """ComputeL + the ``X`` averages for the current medoids.

        ``mcur`` holds positions into ``M``.  Returns ``(x, sizes)``:
        the ``(k, d)`` float64 average-distance matrix and the ``(k,)``
        sphere sizes ``|L_i|``.
        """

    def _modeled_peak_bytes(self) -> int:
        """Peak working-set estimate of the modeled implementation."""
        n, d = self._data.shape
        k = self.params.k
        # data + one distance row set + labels
        return n * d * 4 + self.params.k * n * 4 + n * 4 + k * d * 8

    # ------------------------------------------------------------------
    # CPU accounting (subclasses with other hardware override these)
    # ------------------------------------------------------------------
    def _account_greedy(self, s: int, count: int, d: int) -> None:
        self.model.work(
            "initialization",
            vector_ops=count * s * OPS_PER_TERM * d,
            scalar_ops=count * s * 2,
        )

    def _count_distance_cache(self, rows: int) -> None:
        """Count recomputed vs cache-served distance rows this iteration.

        ``rows`` of the ``k`` needed rows were recomputed; the rest came
        out of the ``Dist`` cache.  The baseline recomputes all ``k``
        every iteration (0 % hit-rate); the FAST variants converge to
        ~100 %.  Feeds the ``cache hit-rate`` counter track.
        """
        k = self.params.k
        self.model.counter.add("cache.dist_rows_missed", min(rows, k))
        self.model.counter.add("cache.dist_rows_hit", max(0, k - rows))

    def _account_distance_rows(self, rows: int, n: int, d: int) -> None:
        self._count_distance_cache(rows)
        self.model.work("compute_l", vector_ops=rows * n * OPS_PER_TERM * d)

    def _account_delta(self, k: int) -> None:
        self.model.work("compute_l", scalar_ops=k * k * 2)

    def _account_scan_l(self, n: int, k: int, appended: int) -> None:
        self.model.work("compute_l", scalar_ops=n * k * 2 + appended)

    def _account_x_sums(self, points: int, d: int, k: int) -> None:
        self.model.work("find_dimensions", vector_ops=points * OPS_PER_TERM * d)

    def _account_x_finalize(self, k: int, d: int) -> None:
        self.model.work("find_dimensions", scalar_ops=k * d)

    def _account_find_dimensions(self, k: int, d: int) -> None:
        kd = k * d
        self.model.work(
            "find_dimensions",
            scalar_ops=kd * 8 + kd * max(1.0, math.log2(kd)),
        )

    def _account_assign(self, n: int, k: int, total_dims: int, d: int) -> None:
        # The segmental-distance loop gathers the |D_i| selected
        # dimensions (indexed access), which the compiler cannot
        # vectorize — scalar throughput applies.
        self.model.work(
            "assign_points",
            scalar_ops=n * total_dims * OPS_PER_TERM + n * k,
        )

    def _account_evaluate(
        self, member_dims: int, total_dims: int, k: int, d: int
    ) -> None:
        # Two passes over each cluster member's subspace dimensions
        # (centroid, then deviations); gathered access -> scalar.
        self.model.work(
            "evaluate",
            scalar_ops=member_dims * OPS_PER_TERM * 2 + k * d,
        )

    def _account_bookkeeping(self, k: int) -> None:
        self.model.work("update", scalar_ops=k * 8)

    def _account_refinement_x(self, n: int, d: int, k: int) -> None:
        self.model.work("refinement", vector_ops=n * OPS_PER_TERM * d)

    def _account_outliers(self, n: int, k: int, total_dims: int) -> None:
        self.model.work(
            "refinement",
            scalar_ops=k * total_dims * OPS_PER_TERM + n * k,
        )

    def _record_iteration_samples(self) -> None:
        """Emit per-iteration counter-track samples to the tracer.

        Called at the end of every iteration of the iterative phase;
        the GPU variants sample cache hit-rate and modeled bandwidth
        onto the device timeline here.  No-op by default.
        """

    # ------------------------------------------------------------------
    # Data-parallel primitives (the fleet backends shard these)
    # ------------------------------------------------------------------
    # Every primitive is row-local over the n points, so a sharded
    # override may compute per-shard pieces and concatenate (rows) or
    # merge exact partial sums (dim sums) and remain bit-identical to
    # the solo implementation.
    def _distance_row(self, point: np.ndarray) -> np.ndarray:
        """Euclidean distances from every data point to ``point``."""
        return euclidean_to_point(self._data, point)

    def _dim_sums(self, mask: np.ndarray, point: np.ndarray) -> np.ndarray:
        """Per-dimension |x - point| sums over ``data[mask]`` (exact)."""
        return abs_diff_dim_sums(self._data[mask], point)

    def _assign_points(
        self, medoid_points: np.ndarray, dims: list
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assign every point to its nearest medoid's subspace."""
        return assign_points(self._data, medoid_points, dims)

    def _evaluate_clusters(self, labels: np.ndarray, dims: list) -> float:
        """Average within-cluster subspace deviation (Definition 1)."""
        return evaluate_clusters(self._data, labels, dims)

    # ------------------------------------------------------------------
    # The algorithm (Algorithm 1)
    # ------------------------------------------------------------------
    def fit(self, data: np.ndarray) -> ProclusResult:
        """Run PROCLUS on ``data`` and return the clustering."""
        if self._fitted:
            raise RuntimeError(
                "engine instances are single-use; construct a new engine"
            )
        self._fitted = True
        started = time.perf_counter()

        data = validate_data(data)
        n, d = data.shape
        p = self.params
        p.validate_against_data(n, d)
        self._data = data
        obs = self._tracer if self._tracer is not None else current_tracer()
        self._obs = obs
        with obs.span(
            "fit", category="run",
            backend=self.backend_name, n=n, d=d, k=p.k, l=p.l,
        ) as fit_span:
            self.model = self._make_model(n, d)
            with obs.span("setup"):
                self._setup(data)
            try:
                result = self._run(data, started)
            finally:
                self._teardown()
            fit_span.set(
                cost=result.cost,
                iterations=result.iterations,
                modeled_seconds=result.stats.modeled_seconds,
            )
            if obs.enabled:
                obs.metrics.absorb_run_stats(result.stats)
                obs.metrics.absorb_kernel_times(self.model)
        return result

    def _initialization_phase(self, data: np.ndarray) -> np.ndarray:
        """Sample ``Data'``, greedily pick ``M``; returns point ids of M."""
        n, d = data.shape
        p = self.params
        if self.shared_state is not None:
            if self.charge_greedy:
                s = len(self.shared_state.sample_indices)
                self._account_greedy(s, self.shared_state.num_potential_medoids, d)
            return self.shared_state.medoid_ids
        sample_size = p.effective_sample_size(n)
        count = p.effective_num_potential(n)
        sample_indices = self.rng.sample_indices(n, sample_size)
        seed_index = self.rng.greedy_seed(sample_size)
        local = greedy_select(data[sample_indices], count, seed_index)
        self._account_greedy(sample_size, count, d)
        return sample_indices[local]

    def _resolve_resume(self, n: int, d: int) -> IterativeState | None:
        """Load and validate the ``resume_from`` snapshot, if any."""
        source = self.resume_from
        if source is None:
            return None
        if isinstance(source, IterativeState):
            state = source
        else:
            from .serialization import load_engine_state

            state = load_engine_state(source)
        p = self.params
        if (state.n, state.d) != (n, d):
            raise CheckpointError(
                f"checkpoint was written for a ({state.n}, {state.d}) "
                f"dataset, got ({n}, {d}); refusing to resume"
            )
        if (state.k, state.l) != (p.k, p.l):
            raise CheckpointError(
                f"checkpoint was written for k={state.k} l={state.l}, "
                f"got k={p.k} l={p.l}; refusing to resume"
            )
        return state

    def _write_iterative_checkpoint(
        self, n, d, mcur, mbest, cost_best, labels_best,
        sizes_best, best_iteration, stale, total,
    ) -> None:
        from .serialization import save_engine_state

        state = IterativeState(
            n=n,
            d=d,
            k=self.params.k,
            l=self.params.l,
            backend=self.backend_name,
            medoid_ids=np.asarray(self._medoid_ids),
            mcur=mcur,
            mbest=mbest,
            cost_best=float(cost_best),
            labels_best=labels_best,
            sizes_best=sizes_best,
            best_iteration=best_iteration,
            stale=stale,
            total=total,
            rng_state=self.rng.get_state(),
        )
        obs = self._obs
        with obs.span(
            "checkpoint", category="resilience",
            iteration=total, path=str(self.checkpoint_path),
        ):
            save_engine_state(state, self.checkpoint_path)
        if obs.enabled:
            obs.metrics.counter("resilience.checkpoints").inc()

    def _run(self, data: np.ndarray, started: float) -> ProclusResult:
        n, d = data.shape
        p = self.params
        k = p.k
        obs = self._obs

        resume = self._resolve_resume(n, d)
        if resume is not None:
            # The snapshot holds M and the full loop state; the
            # initialization phase's work was already paid for before
            # the original run died, so it is neither re-run nor
            # re-charged.  Caches are rebuilt lazily with provably
            # identical values.
            self._medoid_ids = resume.medoid_ids.copy()
        else:
            with obs.span("initialization"):
                self._medoid_ids = self._initialization_phase(data)
        m = len(self._medoid_ids)

        if resume is not None:
            mcur = resume.mcur.copy()
        elif self.initial_medoids is not None:
            mcur = np.asarray(self.initial_medoids, dtype=np.int64).copy()
            if len(mcur) != k or len(np.unique(mcur)) != k:
                raise DataValidationError(
                    f"initial_medoids must hold {k} distinct positions into M"
                )
        else:
            mcur = self.rng.initial_medoids(m, k)

        # --- iterative phase -----------------------------------------
        cost_best = math.inf
        mbest = mcur.copy()
        labels_best: np.ndarray | None = None
        sizes_best: np.ndarray | None = None
        best_iteration = 0
        stale = 0
        total = 0
        if resume is not None:
            cost_best = resume.cost_best
            mbest = resume.mbest.copy()
            labels_best = resume.labels_best.copy()
            sizes_best = resume.sizes_best.copy()
            best_iteration = resume.best_iteration
            stale = resume.stale
            total = resume.total
            self.rng.set_state(resume.rng_state)
        with obs.span("iterative") as iterative_span:
            while stale < p.patience and total < p.max_iterations:
                with obs.span("iteration", iteration=total) as iteration_span:
                    with obs.span("compute_l"):
                        x, _sizes_l = self._compute_l_and_x(mcur)

                    with obs.span("find_dimensions"):
                        dims = find_dimensions(x, p.l)
                        self._account_find_dimensions(k, d)

                    with obs.span("assign_points"):
                        medoid_points = data[self._medoid_ids[mcur]]
                        labels, _seg = self._assign_points(medoid_points, dims)
                        total_dims = sum(len(ds) for ds in dims)
                        self._account_assign(n, k, total_dims, d)

                    with obs.span("evaluate"):
                        cost = self._evaluate_clusters(labels, dims)
                        sizes = cluster_sizes_from_labels(labels, k)
                        member_dims = int(
                            sum(sizes[i] * len(dims[i]) for i in range(k))
                        )
                        self._account_evaluate(member_dims, total_dims, k, d)

                    total += 1
                    stale += 1
                    if cost < cost_best:
                        cost_best = cost
                        mbest = mcur.copy()
                        labels_best = labels
                        sizes_best = sizes
                        best_iteration = total - 1
                        stale = 0

                    with obs.span("update"):
                        bad = compute_bad_medoids(
                            sizes_best, n, p.min_deviation, p.bad_medoid_rule
                        )
                        self._account_bookkeeping(k)

                        if self.trace_ is not None:
                            self.trace_.append(
                                iteration=total - 1,
                                cost=cost,
                                improved=stale == 0,
                                best_cost=cost_best,
                                medoid_positions=mcur,
                                cluster_sizes=sizes,
                                bad_medoids=bad,
                            )

                        candidates = np.setdiff1d(np.arange(m), mbest)
                        replace = min(len(bad), len(candidates))
                        mcur = mbest.copy()
                        if replace > 0:
                            replacements = self.rng.replacement_medoids(
                                candidates, replace
                            )
                            mcur[bad[:replace]] = replacements

                    iteration_span.set(cost=float(cost), improved=stale == 0)
                    self._record_iteration_samples()
                if self.checkpoint_every and total % self.checkpoint_every == 0:
                    self._write_iterative_checkpoint(
                        n, d, mcur, mbest, cost_best, labels_best,
                        sizes_best, best_iteration, stale, total,
                    )
            iterative_span.set(iterations=total)

        # --- refinement phase ----------------------------------------
        assert labels_best is not None
        with obs.span("refinement") as refinement_span:
            with obs.span("find_dimensions"):
                medoid_points = data[self._medoid_ids[mbest]]
                x_ref = np.zeros((k, d), dtype=np.float64)
                for i in range(k):
                    mask = labels_best == i
                    count = int(np.count_nonzero(mask))
                    if count:
                        x_ref[i] = self._dim_sums(mask, medoid_points[i]) / count
                self._account_refinement_x(n, d, k)

                dims = find_dimensions(x_ref, p.l)
                self._account_find_dimensions(k, d)

            with obs.span("assign_points"):
                labels, seg = self._assign_points(medoid_points, dims)
                total_dims = sum(len(ds) for ds in dims)
                self._account_assign(n, k, total_dims, d)

            with obs.span("outliers"):
                outliers = find_outliers(seg, medoid_points, dims)
                self._account_outliers(n, k, total_dims)
                labels = labels.copy()
                labels[outliers] = OUTLIER_LABEL

            with obs.span("evaluate"):
                refined_cost = self._evaluate_clusters(labels, dims)
                sizes = cluster_sizes_from_labels(labels, k)
                member_dims = int(sum(sizes[i] * len(dims[i]) for i in range(k)))
                self._account_evaluate(member_dims, total_dims, k, d)
            refinement_span.set(refined_cost=float(refined_cost))

        # Positions of the best medoids within M — the multi-parameter
        # warm start ("multi-param 3") seeds the next setting with these.
        self.best_positions_ = mbest.copy()

        stats = RunStats(
            counters=self.model.counter.as_dict(),
            phase_seconds=dict(self.model.phase_seconds),
            modeled_seconds=self.model.total_seconds,
            wall_seconds=time.perf_counter() - started,
            peak_device_bytes=self._modeled_peak_bytes(),
            iterations=total,
            backend=self.backend_name,
            hardware=self.model.name,
        )
        return ProclusResult(
            labels=labels,
            medoids=self._medoid_ids[mbest].copy(),
            dimensions=dims,
            cost=float(cost_best),
            refined_cost=float(refined_cost),
            iterations=total,
            best_iteration=best_iteration,
            stats=stats,
            trace=self.trace_,
        )
