"""Public API: :func:`proclus` and :func:`run_parameter_study`.

Quickstart::

    import numpy as np
    from repro import proclus
    from repro.data import default_dataset, minmax_normalize

    dataset = default_dataset(n=10_000, seed=0)
    result = proclus(minmax_normalize(dataset.data), k=10, l=5,
                     backend="gpu-fast", seed=0)
    print(result.summary())

Backends (all produce the identical clustering for the same seed):

==================  ==================================================
name                variant
==================  ==================================================
``proclus``         sequential baseline (Aggarwal et al. 1999)
``fast``            FAST-PROCLUS (Section 3)
``fast-star``       FAST*-PROCLUS (Section 3.2, O(k*n) space)
``gpu``             GPU-PROCLUS (Section 4.1)
``gpu-fast``        GPU-FAST-PROCLUS (Section 4.2) — the headline
``gpu-fast-star``   GPU-FAST*-PROCLUS
``multicore``       OpenMP-style multi-core PROCLUS
``multicore-fast``  OpenMP-style multi-core FAST-PROCLUS
``fleet-gpu*``      any GPU variant sharded across a device fleet
==================  ==================================================
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..params import ParameterGrid, ProclusParams
from ..result import ProclusResult
from ..data.normalize import minmax_normalize
from ..cpu_parallel.multicore import (
    MulticoreFastProclusEngine,
    MulticoreFastStarProclusEngine,
    MulticoreProclusEngine,
)
from ..fleet.engine import (
    FleetGpuFastProclusEngine,
    FleetGpuFastStarProclusEngine,
    FleetGpuProclusEngine,
)
from ..gpu_impl.gpu_ablation import GpuFastDistOnlyEngine, GpuFastHOnlyEngine
from ..gpu_impl.gpu_fast import GpuFastProclusEngine
from ..gpu_impl.gpu_fast_star import GpuFastStarProclusEngine
from ..gpu_impl.gpu_proclus import GpuProclusEngine
from .ablation import FastDistOnlyEngine, FastHOnlyEngine
from .base import EngineBase
from .fast import FastProclusEngine
from .fast_star import FastStarProclusEngine
from .multiparam import MultiParamResult, ReuseLevel, run_study
from .proclus import ProclusEngine

__all__ = ["BACKENDS", "proclus", "run_parameter_study"]

#: Backend name -> engine class.
BACKENDS: dict[str, type[EngineBase]] = {
    "proclus": ProclusEngine,
    "fast": FastProclusEngine,
    "fast-star": FastStarProclusEngine,
    "gpu": GpuProclusEngine,
    "gpu-fast": GpuFastProclusEngine,
    "gpu-fast-star": GpuFastStarProclusEngine,
    # Multi-device sharding of the GPU variants (repro.fleet): identical
    # clustering, modeled across a fleet of devices.
    "fleet-gpu": FleetGpuProclusEngine,
    "fleet-gpu-fast": FleetGpuFastProclusEngine,
    "fleet-gpu-fast-star": FleetGpuFastStarProclusEngine,
    "multicore": MulticoreProclusEngine,
    "multicore-fast": MulticoreFastProclusEngine,
    "multicore-fast-star": MulticoreFastStarProclusEngine,
    # Ablations isolating FAST's two strategies (Dist cache vs
    # incremental H); not part of the paper's variant set but useful
    # for attributing the measured speedup.
    "fast-dist-only": FastDistOnlyEngine,
    "fast-h-only": FastHOnlyEngine,
    "gpu-fast-dist-only": GpuFastDistOnlyEngine,
    "gpu-fast-h-only": GpuFastHOnlyEngine,
}


def _resolve_backend(backend: str) -> type[EngineBase]:
    try:
        return BACKENDS[backend]
    except KeyError:
        raise ParameterError(
            f"unknown backend {backend!r}; available: {', '.join(sorted(BACKENDS))}"
        ) from None


def proclus(
    data: np.ndarray,
    k: int = 10,
    l: int = 5,
    backend: str = "gpu-fast",
    seed: int | None = 0,
    params: ProclusParams | None = None,
    normalize: bool = False,
    **engine_kwargs,
) -> ProclusResult:
    """Run one PROCLUS clustering.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset; expected min-max normalized (pass
        ``normalize=True`` to have the library do it).
    k, l:
        Number of clusters / average subspace dimensionality.  Ignored
        when an explicit ``params`` object is given.
    backend:
        Algorithm variant, see :data:`BACKENDS`.
    seed:
        Seed for all random decisions; equal seeds give the identical
        clustering for every backend.
    params:
        Full parameter set overriding ``k``/``l`` and the defaults.
    normalize:
        Min-max normalize ``data`` before clustering.
    engine_kwargs:
        Forwarded to the engine (e.g. ``gpu_spec=RTX_3090`` for GPU
        backends, ``cpu_spec=...`` for CPU backends).

    Returns
    -------
    ProclusResult
        Clustering plus per-run work/timing statistics in ``.stats``.
    """
    factory = _resolve_backend(backend)
    if params is None:
        params = ProclusParams(k=k, l=l)
    if normalize:
        data = minmax_normalize(data)
    engine = factory(params=params, seed=seed, **engine_kwargs)
    return engine.fit(data)


def run_parameter_study(
    data: np.ndarray,
    grid: ParameterGrid | None = None,
    backend: str = "gpu-fast",
    level: ReuseLevel | int = ReuseLevel.WARM_START,
    seed: int | None = 0,
    normalize: bool = False,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    resilience: object | None = None,
    **engine_kwargs,
) -> MultiParamResult:
    """Run a grid of (k, l) settings with the chosen reuse level.

    See :mod:`repro.core.multiparam` for the reuse levels; the paper's
    default grid of 9 (k, l) combinations is used when ``grid`` is
    omitted.

    ``checkpoint_dir``, ``resume``, and ``resilience`` route the study
    through the fault-tolerant driver (:mod:`repro.resilience`):
    ``checkpoint_dir`` persists each completed setting so a killed study
    resumes (``resume=True``) with identical output; ``resilience`` is a
    :class:`~repro.resilience.RetryPolicy` (or ``True`` for defaults)
    enabling retry and backend degradation on device errors.  Plain
    studies take the original driver and pay zero overhead.
    """
    factory = _resolve_backend(backend)
    if normalize:
        data = minmax_normalize(data)
    if resume and checkpoint_dir is None:
        raise ParameterError("resume=True requires a checkpoint_dir")
    if checkpoint_dir is not None or resume or resilience:
        # Deferred import: the resilience layer imports this module.
        from ..resilience import RetryPolicy, run_resilient_study

        if resilience is None or isinstance(resilience, bool):
            policy = None
        elif isinstance(resilience, RetryPolicy):
            policy = resilience
        else:
            raise ParameterError(
                f"resilience must be a RetryPolicy or bool, "
                f"got {type(resilience).__name__}"
            )
        return run_resilient_study(
            data, backend=backend, grid=grid, level=level, seed=seed,
            policy=policy, checkpoint_dir=checkpoint_dir, resume=resume,
            **engine_kwargs,
        )
    return run_study(
        data, factory, grid=grid, level=level, seed=seed, **engine_kwargs
    )
