"""Multi-parameter-setting studies (Section 3.1 / experiments 5.3).

PROCLUS results depend on ``k`` and ``l``, so users run it for a grid
of settings.  The paper layers three reuse strategies on top of
(GPU-)FAST-PROCLUS:

* **multi-param 1** — pick the sample ``Data'`` and potential medoids
  ``M`` for the *largest* ``k`` and use them for every setting; the
  ``Dist`` and ``H`` caches then stay valid across settings.  Greedy is
  still executed per setting (same result, cost still paid).
* **multi-param 2** — additionally reuse the greedy pick itself: the
  selection cost is paid only once.
* **multi-param 3** — additionally initialize each setting's ``MCur``
  with a random subset of the *previous* setting's best medoids, which
  converges in fewer iterations.

The paper measures ~1.4x, ~1.6x and ~2.3x speedups for the three levels
over running GPU-FAST-PROCLUS one setting at a time.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ParameterError
from ..obs.tracer import current_tracer
from ..params import ParameterGrid, ProclusParams
from ..result import ProclusResult, RunStats
from ..rng import RandomSource
from .base import EngineBase, validate_data
from .greedy import greedy_select
from .state import MedoidCache, SharedStudyState

__all__ = [
    "ReuseLevel",
    "MultiParamResult",
    "run_study",
    "build_shared_state",
    "build_solo_shared_state",
    "run_coalesced_group",
]


class ReuseLevel(enum.IntEnum):
    """How much is reused across the settings of a study."""

    #: Independent runs, one fresh engine per setting.
    NONE = 0
    #: Shared sample/medoids; Dist and H caches persist across settings.
    PARTIAL_RESULTS = 1
    #: Additionally reuse the greedy pick (its cost is paid only once).
    GREEDY = 2
    #: Additionally warm-start each setting from the previous best medoids.
    WARM_START = 3


@dataclass(slots=True)
class MultiParamResult:
    """Results and aggregate statistics of a parameter study."""

    results: dict[tuple[int, int], ProclusResult] = field(default_factory=dict)
    total_stats: RunStats = field(default_factory=RunStats)
    level: ReuseLevel = ReuseLevel.NONE
    backend: str = ""
    #: Retry/degradation/checkpoint events recorded when the study ran
    #: under the resilience layer (:mod:`repro.resilience`); empty for
    #: plain studies.
    events: list = field(default_factory=list)

    @property
    def num_settings(self) -> int:
        return len(self.results)

    @property
    def average_seconds_per_setting(self) -> float:
        """Average modeled seconds per (k, l) combination — the unit the
        paper's Figs. 3a-3e report."""
        if not self.results:
            return 0.0
        return self.total_stats.modeled_seconds / len(self.results)

    def best_setting(self) -> tuple[int, int]:
        """The (k, l) combination with the lowest clustering cost."""
        if not self.results:
            raise ParameterError("study produced no results")
        return min(self.results, key=lambda key: self.results[key].cost)


def build_shared_state(
    data: np.ndarray, grid: ParameterGrid, rng: RandomSource
) -> SharedStudyState:
    """Sample Data' and greedily pick M once, for the largest k."""
    n, d = data.shape
    base = grid.base
    k_max = grid.max_k
    sample_size = min(base.a * k_max, n)
    count = min(base.b * k_max, sample_size)
    if count < k_max:
        raise ParameterError(
            f"dataset of {n} points cannot supply {k_max} medoids"
        )
    sample_indices = rng.sample_indices(n, sample_size)
    seed_index = rng.greedy_seed(sample_size)
    local = greedy_select(data[sample_indices], count, seed_index)
    return SharedStudyState(
        sample_indices=sample_indices,
        medoid_ids=sample_indices[local],
        cache=MedoidCache.create(count, n, d),
    )


def build_solo_shared_state(
    data: np.ndarray, params: ProclusParams, rng: RandomSource
) -> SharedStudyState:
    """Build shared state by replaying a *solo* run's initialization.

    Unlike :func:`build_shared_state` (which sizes the sample for the
    grid's largest ``k``), this draws the sample and greedy pick with
    exactly the random protocol of
    :meth:`EngineBase._initialization_phase <repro.core.base.EngineBase>`
    for one parameter set: ``rng`` consumes the same two draws a solo
    engine with the same seed would, and the returned medoid set ``M``
    is bit-identical to the solo run's.  An engine constructed with this
    shared state and the *advanced* ``rng`` therefore produces the
    identical clustering to a direct solo run — the sharing contract
    the serving layer's request coalescer relies on (requests agreeing
    on seed, ``k``, ``A`` and ``B`` share sample, greedy pick, and FAST
    caches without changing any request's result).
    """
    n, d = data.shape
    sample_size = params.effective_sample_size(n)
    count = params.effective_num_potential(n)
    if count < params.k:
        raise ParameterError(
            f"dataset of {n} points cannot supply {params.k} medoids"
        )
    sample_indices = rng.sample_indices(n, sample_size)
    seed_index = rng.greedy_seed(sample_size)
    local = greedy_select(data[sample_indices], count, seed_index)
    return SharedStudyState(
        sample_indices=sample_indices,
        medoid_ids=sample_indices[local],
        cache=MedoidCache.create(count, n, d),
    )


def _require_shareable(settings: list[ProclusParams]) -> None:
    """All settings of a coalesced group must agree on (k, A, B).

    The shared sample is sized ``A*k`` and the greedy pick ``B*k``, so
    any divergence in these changes the medoid set ``M`` — and with it
    the results — which would break the solo-equivalence contract.
    """
    if not settings:
        raise ParameterError("a coalesced group needs at least one setting")
    head = settings[0]
    for params in settings[1:]:
        if (params.k, params.a, params.b) != (head.k, head.a, head.b):
            raise ParameterError(
                f"coalesced settings must share (k, A, B); got "
                f"({head.k}, {head.a}, {head.b}) and "
                f"({params.k}, {params.a}, {params.b})"
            )


def run_coalesced_group(
    data: np.ndarray,
    engine_factory: type[EngineBase],
    settings: list[ProclusParams],
    seed: int | None = 0,
    **engine_kwargs,
) -> list[ProclusResult]:
    """Run several same-seed settings sharing solo-equivalent state.

    The serving counterpart of :func:`run_study`: every setting is
    served from one shared sample / greedy pick / FAST cache (built by
    :func:`build_solo_shared_state`), but — unlike a study, whose
    per-setting seeds derive from a master source — every setting's RNG
    is restored to the *post-initialization state of a solo run with
    ``seed``* before its engine runs.  Each returned clustering is
    therefore bit-identical to ``engine_factory(params=p, seed=seed)``
    run alone, while the group pays the initialization, the data
    upload, and cold ``Dist`` rows only once.

    All settings must agree on ``(k, A, B)`` (:class:`ParameterError`
    otherwise); they typically differ in ``l``.
    """
    data = validate_data(data)
    _require_shareable(settings)
    obs = current_tracer()
    rng = RandomSource(seed)
    with obs.span(
        "coalesced_group", category="study",
        backend=engine_factory.backend_name, settings=len(settings),
    ):
        with obs.span("shared_state", category="study"):
            shared = build_solo_shared_state(data, settings[0], rng)
        post_init_state = rng.get_state()
        results: list[ProclusResult] = []
        for index, params in enumerate(settings):
            rng.set_state(post_init_state)
            with obs.span(
                "setting", category="study",
                k=params.k, l=params.l, coalesced=True,
                charge_greedy=index == 0,
            ):
                engine = engine_factory(
                    params=params,
                    seed=rng,
                    shared_state=shared,
                    charge_greedy=index == 0,
                    **engine_kwargs,
                )
                results.append(engine.fit(data))
        return results


def _count_duplicate_setting(obs) -> None:
    """Record one skipped duplicate (k, l) grid entry on the metrics.

    A grid like ``ks=(10, 10, 8)`` used to run the (10, l) settings
    twice — the second run silently overwrote the first in ``results``
    while double-counting its work in ``total_stats``.  Duplicates are
    now executed once; each skip increments the
    ``study.duplicate_settings`` metrics counter.
    """
    if obs.enabled:
        obs.metrics.counter("study.duplicate_settings").inc()


def _warn_duplicate_settings(duplicates: list[tuple[int, int]]) -> None:
    """Emit ONE :class:`UserWarning` for all of a study's duplicates.

    Warning once per study (rather than once per skipped pair, as an
    earlier revision did) keeps a pathological grid from flooding the
    warning log while still naming every skipped setting.
    """
    if not duplicates:
        return
    unique = sorted(set(duplicates))
    listing = ", ".join(f"(k={k}, l={l})" for k, l in unique)
    warnings.warn(
        f"parameter grid contains {len(duplicates)} duplicate setting "
        f"entr{'y' if len(duplicates) == 1 else 'ies'} [{listing}]; "
        f"computing each setting once",
        stacklevel=3,
    )


def run_study(
    data: np.ndarray,
    engine_factory: type[EngineBase],
    grid: ParameterGrid | None = None,
    level: ReuseLevel | int = ReuseLevel.WARM_START,
    seed: int | None = 0,
    **engine_kwargs,
) -> MultiParamResult:
    """Run one PROCLUS variant over a grid of (k, l) settings.

    Parameters
    ----------
    data:
        Min-max normalized ``(n, d)`` dataset.
    engine_factory:
        Engine class to run (e.g. ``GpuFastProclusEngine``).
    grid:
        The (k, l) grid; the paper's 9-combination default when omitted.
    level:
        Reuse strategy, see :class:`ReuseLevel`.
    seed:
        Master seed; per-setting randomness derives from it.
    engine_kwargs:
        Extra keyword arguments passed to every engine (e.g.
        ``gpu_spec=...``).
    """
    data = validate_data(data)
    grid = grid if grid is not None else ParameterGrid()
    level = ReuseLevel(level)
    master = RandomSource(seed)
    obs = current_tracer()

    with obs.span(
        "study", category="study",
        backend=engine_factory.backend_name,
        level=int(level), settings=len(grid),
    ):
        shared: SharedStudyState | None = None
        shared_span_id = None
        if level >= ReuseLevel.PARTIAL_RESULTS:
            with obs.span("shared_state", category="study") as shared_span:
                shared = build_shared_state(data, grid, master)
            shared_span_id = shared_span.span_id

        study = MultiParamResult(level=level, backend=engine_factory.backend_name)
        previous_best: np.ndarray | None = None
        previous_span_id = None
        first = True
        duplicates: list[tuple[int, int]] = []
        for params in grid:
            if (params.k, params.l) in study.results:
                duplicates.append((params.k, params.l))
                _count_duplicate_setting(obs)
                continue
            initial = None
            if (
                level >= ReuseLevel.WARM_START
                and previous_best is not None
                and params.k <= len(previous_best)
            ):
                if params.k == len(previous_best):
                    initial = previous_best.copy()
                else:
                    initial = master.generator.choice(
                        previous_best, size=params.k, replace=False
                    )
            charge_greedy = level <= ReuseLevel.PARTIAL_RESULTS or first
            # Shared-work reuse shows up in the trace as links: every
            # setting links to the shared-state span it consumes, and a
            # warm-started setting links to the setting that seeded it.
            setting_span = obs.span(
                "setting", category="study",
                k=params.k, l=params.l,
                warm_start=initial is not None,
                charge_greedy=charge_greedy,
            )
            setting_span.link(shared_span_id)
            if initial is not None:
                setting_span.link(previous_span_id)
            with setting_span:
                engine = engine_factory(
                    params=params,
                    seed=master.spawn(),
                    shared_state=shared,
                    initial_medoids=initial,
                    charge_greedy=charge_greedy,
                    **engine_kwargs,
                )
                result = engine.fit(data)
            study.results[(params.k, params.l)] = result
            study.total_stats = study.total_stats.merge(result.stats)
            if level >= ReuseLevel.WARM_START:
                previous_best = engine.best_positions_
            previous_span_id = setting_span.span_id
            first = False
        _warn_duplicate_settings(duplicates)
        study.total_stats.backend = engine_factory.backend_name
        return study
