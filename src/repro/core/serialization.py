"""Persisting clustering results and mid-run engine state.

Pipelines cluster once and consume the result elsewhere;
:func:`save_result`/:func:`load_result` round-trip a
:class:`~repro.result.ProclusResult` (labels, medoids, subspaces, costs,
the run's statistics, and — when the engine collected one — the
per-iteration :class:`~repro.core.trace.RunTrace`) through a single
``.npz`` file.

:func:`save_engine_state`/:func:`load_engine_state` do the same for an
:class:`~repro.core.state.IterativeState` — the engine checkpoint a run
writes every ``checkpoint_every`` iterations so a killed fit resumes
from the last completed iteration (``resume_from=``) instead of from
scratch.  Checkpoints are written atomically (temp file +
``os.replace``), so a kill mid-write leaves the previous checkpoint
intact.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path

import numpy as np

from ..exceptions import CheckpointError, DataValidationError
from ..result import ProclusResult, RunStats
from .state import IterativeState
from .trace import RunTrace

__all__ = [
    "save_result",
    "load_result",
    "save_engine_state",
    "load_engine_state",
]

#: Bumped on incompatible format changes.
_FORMAT_VERSION = 1

#: Schema tag of engine-state checkpoints.
_ENGINE_STATE_SCHEMA = "repro.engine_state/1"


def save_result(result: ProclusResult, path: str | Path) -> Path:
    """Write a clustering result to ``path`` (``.npz``)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "version": _FORMAT_VERSION,
        "dimensions": [list(d) for d in result.dimensions],
        "cost": result.cost,
        "refined_cost": result.refined_cost,
        "iterations": result.iterations,
        "best_iteration": result.best_iteration,
        "stats": {
            "counters": result.stats.counters,
            "phase_seconds": result.stats.phase_seconds,
            "modeled_seconds": result.stats.modeled_seconds,
            "wall_seconds": result.stats.wall_seconds,
            "peak_device_bytes": result.stats.peak_device_bytes,
            "iterations": result.stats.iterations,
            "backend": result.stats.backend,
            "hardware": result.stats.hardware,
        },
        "trace": result.trace.as_dict() if result.trace is not None else None,
    }
    np.savez_compressed(
        path,
        labels=result.labels,
        medoids=result.medoids,
        meta=np.array(json.dumps(meta)),
    )
    return path


def load_result(path: str | Path) -> ProclusResult:
    """Load a result previously written by :func:`save_result`."""
    path = Path(path)
    if not path.exists():
        raise DataValidationError(f"result file not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            labels = archive["labels"]
            medoids = archive["medoids"]
            meta = json.loads(str(archive["meta"]))
    except (
        OSError, ValueError, KeyError, zipfile.BadZipFile,
        json.JSONDecodeError,
    ) as exc:
        # Corrupt/truncated archives surface as a typed error naming
        # the file, never as a raw zipfile/json/KeyError.
        raise DataValidationError(
            f"{path} is not a readable saved result: {exc}"
        ) from exc
    version = meta.get("version")
    if version != _FORMAT_VERSION:
        raise DataValidationError(
            f"{path} has format version {version}, expected {_FORMAT_VERSION}"
        )
    try:
        stats_meta = meta["stats"]
        stats = RunStats(
            counters=dict(stats_meta["counters"]),
            phase_seconds=dict(stats_meta["phase_seconds"]),
            modeled_seconds=stats_meta["modeled_seconds"],
            wall_seconds=stats_meta["wall_seconds"],
            peak_device_bytes=stats_meta["peak_device_bytes"],
            iterations=stats_meta["iterations"],
            backend=stats_meta["backend"],
            hardware=stats_meta["hardware"],
        )
        trace_meta = meta.get("trace")
        return ProclusResult(
            labels=labels,
            medoids=medoids,
            dimensions=tuple(
                tuple(int(j) for j in d) for d in meta["dimensions"]
            ),
            cost=meta["cost"],
            refined_cost=meta["refined_cost"],
            iterations=meta["iterations"],
            best_iteration=meta["best_iteration"],
            stats=stats,
            trace=RunTrace.from_dict(trace_meta) if trace_meta else None,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataValidationError(
            f"{path} saved-result metadata is incomplete or malformed: "
            f"{exc!r}"
        ) from exc


def save_engine_state(state: IterativeState, path: str | Path) -> Path:
    """Atomically write a mid-run engine checkpoint to ``path`` (.npz)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "schema": _ENGINE_STATE_SCHEMA,
        "n": state.n,
        "d": state.d,
        "k": state.k,
        "l": state.l,
        "backend": state.backend,
        "cost_best": state.cost_best,
        "best_iteration": state.best_iteration,
        "stale": state.stale,
        "total": state.total,
        "rng_state": state.rng_state,
    }
    # numpy appends ".npz" to names without it, so the temp file must
    # carry the suffix already for the atomic rename to find it.
    tmp = path.with_name(path.stem + ".tmp.npz")
    np.savez_compressed(
        tmp,
        medoid_ids=state.medoid_ids,
        mcur=state.mcur,
        mbest=state.mbest,
        labels_best=state.labels_best,
        sizes_best=state.sizes_best,
        meta=np.array(json.dumps(meta)),
    )
    os.replace(tmp, path)
    return path


def load_engine_state(path: str | Path) -> IterativeState:
    """Load an engine checkpoint written by :func:`save_engine_state`."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"engine checkpoint not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            medoid_ids = archive["medoid_ids"].copy()
            mcur = archive["mcur"].copy()
            mbest = archive["mbest"].copy()
            labels_best = archive["labels_best"].copy()
            sizes_best = archive["sizes_best"].copy()
            meta = json.loads(str(archive["meta"]))
    except (
        OSError, ValueError, KeyError, zipfile.BadZipFile,
        json.JSONDecodeError,
    ) as exc:
        raise CheckpointError(
            f"{path} is not a readable engine checkpoint: {exc}"
        ) from exc
    if meta.get("schema") != _ENGINE_STATE_SCHEMA:
        raise CheckpointError(
            f"{path} has schema {meta.get('schema')!r}, "
            f"expected {_ENGINE_STATE_SCHEMA!r}"
        )
    try:
        return IterativeState(
            n=int(meta["n"]),
            d=int(meta["d"]),
            k=int(meta["k"]),
            l=int(meta["l"]),
            backend=meta["backend"],
            medoid_ids=medoid_ids,
            mcur=mcur,
            mbest=mbest,
            cost_best=float(meta["cost_best"]),
            labels_best=labels_best,
            sizes_best=sizes_best,
            best_iteration=int(meta["best_iteration"]),
            stale=int(meta["stale"]),
            total=int(meta["total"]),
            rng_state=meta["rng_state"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"{path} engine-checkpoint metadata is incomplete or "
            f"malformed: {exc!r}"
        ) from exc
