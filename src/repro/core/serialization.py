"""Persisting clustering results.

Pipelines cluster once and consume the result elsewhere;
:func:`save_result`/:func:`load_result` round-trip a
:class:`~repro.result.ProclusResult` (labels, medoids, subspaces, costs,
the run's statistics, and — when the engine collected one — the
per-iteration :class:`~repro.core.trace.RunTrace`) through a single
``.npz`` file.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..exceptions import DataValidationError
from ..result import ProclusResult, RunStats
from .trace import RunTrace

__all__ = ["save_result", "load_result"]

#: Bumped on incompatible format changes.
_FORMAT_VERSION = 1


def save_result(result: ProclusResult, path: str | Path) -> Path:
    """Write a clustering result to ``path`` (``.npz``)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "version": _FORMAT_VERSION,
        "dimensions": [list(d) for d in result.dimensions],
        "cost": result.cost,
        "refined_cost": result.refined_cost,
        "iterations": result.iterations,
        "best_iteration": result.best_iteration,
        "stats": {
            "counters": result.stats.counters,
            "phase_seconds": result.stats.phase_seconds,
            "modeled_seconds": result.stats.modeled_seconds,
            "wall_seconds": result.stats.wall_seconds,
            "peak_device_bytes": result.stats.peak_device_bytes,
            "iterations": result.stats.iterations,
            "backend": result.stats.backend,
            "hardware": result.stats.hardware,
        },
        "trace": result.trace.as_dict() if result.trace is not None else None,
    }
    np.savez_compressed(
        path,
        labels=result.labels,
        medoids=result.medoids,
        meta=np.array(json.dumps(meta)),
    )
    return path


def load_result(path: str | Path) -> ProclusResult:
    """Load a result previously written by :func:`save_result`."""
    path = Path(path)
    if not path.exists():
        raise DataValidationError(f"result file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        try:
            labels = archive["labels"]
            medoids = archive["medoids"]
            meta = json.loads(str(archive["meta"]))
        except KeyError as exc:
            raise DataValidationError(
                f"{path} is not a saved result (missing {exc})"
            ) from exc
    version = meta.get("version")
    if version != _FORMAT_VERSION:
        raise DataValidationError(
            f"{path} has format version {version}, expected {_FORMAT_VERSION}"
        )
    stats_meta = meta["stats"]
    stats = RunStats(
        counters=dict(stats_meta["counters"]),
        phase_seconds=dict(stats_meta["phase_seconds"]),
        modeled_seconds=stats_meta["modeled_seconds"],
        wall_seconds=stats_meta["wall_seconds"],
        peak_device_bytes=stats_meta["peak_device_bytes"],
        iterations=stats_meta["iterations"],
        backend=stats_meta["backend"],
        hardware=stats_meta["hardware"],
    )
    trace_meta = meta.get("trace")
    return ProclusResult(
        labels=labels,
        medoids=medoids,
        dimensions=tuple(tuple(int(j) for j in d) for d in meta["dimensions"]),
        cost=meta["cost"],
        refined_cost=meta["refined_cost"],
        iterations=meta["iterations"],
        best_iteration=meta["best_iteration"],
        stats=stats,
        trace=RunTrace.from_dict(trace_meta) if trace_meta else None,
    )
