"""Iteration-level tracing of the randomized search.

PROCLUS is a hill-climbing search over medoid sets; understanding a run
(why it stopped, which medoids churned, how the cost moved) needs
per-iteration records.  Engines collect a :class:`RunTrace` when
constructed with ``collect_trace=True``; the convergence example and
several tests consume it.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["IterationRecord", "RunTrace"]


@dataclass(frozen=True, slots=True)
class IterationRecord:
    """One iteration of the iterative phase."""

    iteration: int  #: 0-based iteration index
    cost: float  #: clustering cost of this iteration's medoid set
    improved: bool  #: whether this iteration became the new best
    best_cost: float  #: best cost after this iteration
    medoid_positions: tuple[int, ...]  #: MCur as positions into M
    cluster_sizes: tuple[int, ...]  #: sizes of this iteration's clusters
    bad_medoids: tuple[int, ...]  #: slots replaced for the next iteration


@dataclass(slots=True)
class RunTrace:
    """All iteration records of one run."""

    records: list[IterationRecord] = field(default_factory=list)

    def append(
        self,
        iteration: int,
        cost: float,
        improved: bool,
        best_cost: float,
        medoid_positions: np.ndarray,
        cluster_sizes: np.ndarray,
        bad_medoids: np.ndarray,
    ) -> None:
        """Record one iteration."""
        self.records.append(
            IterationRecord(
                iteration=iteration,
                cost=float(cost),
                improved=bool(improved),
                best_cost=float(best_cost),
                medoid_positions=tuple(int(x) for x in medoid_positions),
                cluster_sizes=tuple(int(x) for x in cluster_sizes),
                bad_medoids=tuple(int(x) for x in bad_medoids),
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def costs(self) -> list[float]:
        """Per-iteration costs, in order."""
        return [r.cost for r in self.records]

    @property
    def best_costs(self) -> list[float]:
        """Best-so-far cost after each iteration (non-increasing)."""
        return [r.best_cost for r in self.records]

    @property
    def improvements(self) -> list[int]:
        """Indices of the iterations that improved the best cost."""
        return [r.iteration for r in self.records if r.improved]

    def medoid_churn(self) -> list[int]:
        """Number of medoid slots that changed before each iteration."""
        churn = [0]
        for prev, cur in zip(self.records, self.records[1:]):
            changed = sum(
                1
                for a, b in zip(prev.medoid_positions, cur.medoid_positions)
                if a != b
            )
            churn.append(changed)
        return churn

    def summary(self) -> str:
        """One-paragraph description of the search."""
        if not self.records:
            return "(empty trace)"
        first = self.records[0]
        last = self.records[-1]
        return (
            f"{len(self.records)} iterations; cost {first.cost:.6f} -> "
            f"{last.best_cost:.6f} over {len(self.improvements)} improvements "
            f"(last at iteration {self.improvements[-1]}); "
            f"avg medoid churn {np.mean(self.medoid_churn()):.2f} slots/iter"
        )

    # ------------------------------------------------------------------
    # Serialization (round-trips through save_result/load_result)
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-serializable representation of the trace."""
        return {"records": [asdict(r) for r in self.records]}

    def to_json(self, indent: int | None = None) -> str:
        """Serialize the trace as a JSON string."""
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunTrace":
        """Rebuild a trace from :meth:`as_dict` output."""
        trace = cls()
        for record in payload.get("records", []):
            trace.records.append(
                IterationRecord(
                    iteration=int(record["iteration"]),
                    cost=float(record["cost"]),
                    improved=bool(record["improved"]),
                    best_cost=float(record["best_cost"]),
                    medoid_positions=tuple(
                        int(x) for x in record["medoid_positions"]
                    ),
                    cluster_sizes=tuple(int(x) for x in record["cluster_sizes"]),
                    bad_medoids=tuple(int(x) for x in record["bad_medoids"]),
                )
            )
        return trace

    @classmethod
    def from_json(cls, text: str) -> "RunTrace":
        """Rebuild a trace from a :meth:`to_json` string."""
        return cls.from_dict(json.loads(text))

    def to_csv(self, path: str | Path) -> Path:
        """Write the trace as a CSV file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["iteration", "cost", "improved", "best_cost",
                 "medoid_positions", "cluster_sizes", "bad_medoids"]
            )
            for r in self.records:
                writer.writerow(
                    [r.iteration, r.cost, int(r.improved), r.best_cost,
                     " ".join(map(str, r.medoid_positions)),
                     " ".join(map(str, r.cluster_sizes)),
                     " ".join(map(str, r.bad_medoids))]
                )
        return path
