"""FAST*-PROCLUS: the space-reduced adaptation (Section 3.2).

Keeps the cached distance rows, radii, and ``H`` sums only for the ``k``
*current medoid slots* instead of all ``B*k`` potential medoids —
``O(k*n)`` space instead of ``O(B*k*n)`` — at the cost of recomputing a
slot's state whenever its medoid changes (a bad-medoid replacement, or
reverting to ``MBest`` after an unsuccessful iteration).  Since few
medoids are replaced per iteration, most cached rows survive, which is
why the paper measures only a 1.05-1.1x slowdown versus FAST.
"""

from __future__ import annotations

import numpy as np

from .base import EngineBase
from .state import MedoidCache

__all__ = ["FastStarProclusEngine"]


class FastStarProclusEngine(EngineBase):
    """PROCLUS with per-slot (``O(k*n)``) distance and ``H`` caches."""

    backend_name = "fast*-proclus"

    def _setup(self, data: np.ndarray) -> None:
        n, d = data.shape
        self._cache = MedoidCache.create(self.params.k, n, d)
        # Which medoid (point id) each slot's cached row belongs to.
        self._slot_ids = np.full(self.params.k, -1, dtype=np.int64)

    def _modeled_peak_bytes(self) -> int:
        n, d = self._data.shape
        return n * d * 4 + self._cache.nbytes() + n * 4 + self.params.k * d * 8

    def _compute_l_and_x(
        self, mcur: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        data = self._data
        n, d = data.shape
        k = len(mcur)
        cache = self._cache
        medoid_ids = self._medoid_ids[mcur]

        # Recompute the slots whose medoid changed since last iteration
        # (the paper's "i in MBad" — plus reverts to MBest after
        # unsuccessful iterations, which replace slot contents too).
        recomputed = 0
        for i in range(k):
            point_id = medoid_ids[i]
            if self._slot_ids[i] != point_id:
                cache.reset_row(i)
                cache.dist[i] = self._distance_row(data[point_id])
                cache.dist_found[i] = True
                self._slot_ids[i] = point_id
                recomputed += 1
        self._account_distance_rows(recomputed, n, d)

        medoid_dist = cache.dist[:, medoid_ids]
        np.fill_diagonal(medoid_dist, np.inf)
        delta = medoid_dist.min(axis=1)
        self._account_delta(k)

        x = np.zeros((k, d), dtype=np.float64)
        sizes = np.zeros(k, dtype=np.int64)
        total_changed = 0
        for i in range(k):
            row = cache.dist[i]
            previous = cache.prev_delta[i]
            current = delta[i]
            if current >= previous:
                mask = (row > previous) & (row <= current)
                lam = 1
            else:
                mask = (row > current) & (row <= previous)
                lam = -1
            count = int(np.count_nonzero(mask))
            total_changed += count
            if count:
                point = data[medoid_ids[i]]
                cache.h[i] += lam * self._dim_sums(mask, point)
                cache.size_l[i] += lam * count
            cache.prev_delta[i] = current
            sizes[i] = cache.size_l[i]
            x[i] = cache.h[i] / cache.size_l[i]
        self._account_scan_l(n, k, total_changed)
        self._account_x_sums(total_changed, d, k)
        self._account_x_finalize(k, d)
        return x, sizes
