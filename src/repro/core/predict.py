"""Assign new points to an existing PROCLUS clustering.

A downstream user who clustered a reference dataset wants to place new
observations into the found structure without re-clustering.  PROCLUS
makes this natural: each cluster is (medoid, subspace), so a new point
goes to the medoid with the smallest Manhattan segmental distance in
that medoid's subspace, and it is an outlier under the same sphere rule
the refinement phase uses (Section 2.1).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataValidationError
from ..result import OUTLIER_LABEL, ProclusResult
from .base import validate_data
from .distance import segmental_distances
from .phases import find_outliers

__all__ = ["assign_new_points"]


def assign_new_points(
    result: ProclusResult,
    train_data: np.ndarray,
    new_points: np.ndarray,
    detect_outliers: bool = True,
) -> np.ndarray:
    """Label ``new_points`` using a fitted clustering.

    Parameters
    ----------
    result:
        The clustering to extend (defines medoids and subspaces).
    train_data:
        The dataset ``result`` was fitted on — the medoid coordinates
        live here.  Must be the same (already normalized) array.
    new_points:
        ``(m, d)`` new observations in the *same normalized feature
        space* as ``train_data``.
    detect_outliers:
        Apply the refinement phase's sphere rule; points outside every
        medoid's sphere get :data:`~repro.result.OUTLIER_LABEL`.

    Returns
    -------
    numpy.ndarray
        ``(m,)`` labels in ``0..k-1`` (or ``-1`` for outliers).
    """
    train_data = validate_data(train_data)
    new_points = validate_data(new_points)
    if new_points.shape[1] != train_data.shape[1]:
        raise DataValidationError(
            f"new points have {new_points.shape[1]} dimensions, "
            f"training data has {train_data.shape[1]}"
        )
    if result.medoids.max() >= train_data.shape[0]:
        raise DataValidationError(
            "result does not belong to this training data "
            "(medoid index out of range)"
        )
    medoid_points = train_data[result.medoids]
    seg = segmental_distances(new_points, medoid_points, result.dimensions)
    labels = np.argmin(seg, axis=1).astype(np.int64)
    if detect_outliers and result.k > 1:
        outliers = find_outliers(seg, medoid_points, result.dimensions)
        labels[outliers] = OUTLIER_LABEL
    return labels
