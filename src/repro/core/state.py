"""Reusable cache state for the FAST strategies.

FAST-PROCLUS keeps, for every potential medoid (indexed by ``MIdx``):

* its full distance row ``Dist`` to all points (computed once,
  ``DistFound`` flags which rows exist),
* the per-dimension distance sums ``H`` over its sphere ``L_i``
  (Eq. 5, updated incrementally via Theorem 3.2),
* the sphere radius ``delta`` and size ``|L_i|`` at its previous usage.

The same object is shared across parameter settings by the
multi-parameter strategies (Section 3.1): as long as the potential
medoid set ``M`` is unchanged, every cached row stays valid.

FAST*-PROCLUS allocates the same structure but with only ``k`` rows —
one per *current* medoid slot — trading reuse for an ``O(k*n)`` instead
of ``O(B*k*n)`` footprint (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["MedoidCache", "SharedStudyState", "IterativeState"]

#: Sentinel for "medoid never used": any real radius is >= 0, so the
#: first usage takes the "sphere grew" branch and adds the whole L_i.
NEVER_USED_DELTA = -1.0


@dataclass(slots=True)
class MedoidCache:
    """Per-potential-medoid cached distances and partial sums."""

    dist: np.ndarray  #: (m, n) float32 distance rows
    dist_found: np.ndarray  #: (m,) bool — which rows are valid
    h: np.ndarray  #: (m, d) float64 per-dimension sums over L_i
    prev_delta: np.ndarray  #: (m,) float32 radius at previous usage
    size_l: np.ndarray  #: (m,) int64 |L_i| at previous usage

    @classmethod
    def create(cls, m: int, n: int, d: int) -> "MedoidCache":
        """Allocate an empty cache for ``m`` potential medoids."""
        return cls(
            dist=np.zeros((m, n), dtype=np.float32),
            dist_found=np.zeros(m, dtype=bool),
            h=np.zeros((m, d), dtype=np.float64),
            prev_delta=np.full(m, NEVER_USED_DELTA, dtype=np.float32),
            size_l=np.zeros(m, dtype=np.int64),
        )

    @property
    def m(self) -> int:
        return self.dist.shape[0]

    def reset_row(self, row: int) -> None:
        """Invalidate one cached medoid row (FAST* slot reuse)."""
        self.dist_found[row] = False
        self.h[row].fill(0.0)
        self.prev_delta[row] = NEVER_USED_DELTA
        self.size_l[row] = 0

    def nbytes(self) -> int:
        """Host memory held by the cache (working-set accounting)."""
        return (
            self.dist.nbytes
            + self.dist_found.nbytes
            + self.h.nbytes
            + self.prev_delta.nbytes
            + self.size_l.nbytes
        )


@dataclass(slots=True)
class SharedStudyState:
    """State shared across the settings of a multi-parameter study.

    Holds the sample ``Data'``, the greedily picked potential medoids
    ``M`` (chosen once, for the largest ``k`` in the study), and the
    FAST cache keyed by position in ``M``.
    """

    sample_indices: np.ndarray  #: (A*k_max,) point ids of Data'
    medoid_ids: np.ndarray  #: (B*k_max,) point ids of M
    cache: MedoidCache
    #: Whether a GPU engine already uploaded the dataset in this study
    #: (the data stays resident on the device across settings).
    data_uploaded: bool = False

    @property
    def num_potential_medoids(self) -> int:
        return len(self.medoid_ids)


@dataclass(slots=True)
class IterativeState:
    """Mid-run snapshot of the iterative phase (engine checkpoint).

    Captures everything the loop needs to continue exactly where it
    stopped: the potential medoids ``M``, the current and best medoid
    positions, the best labels/sizes/cost, the loop counters, and the
    RNG state (including the spawn counter).  ``mcur`` is the *next*
    iteration's medoid set — a checkpoint is taken after the
    bad-medoid replacement, so resuming re-enters the loop at the top.

    The FAST ``Dist``/``H`` caches are deliberately **not** captured: a
    fresh cache provably recomputes identical ``X`` values (the FAST
    correctness theorem), which keeps checkpoints small and
    backend-agnostic — a GPU run's checkpoint resumes on the CPU
    engine, and vice versa, with a bit-identical final clustering.
    """

    n: int  #: dataset rows the snapshot belongs to
    d: int  #: dataset columns
    k: int  #: number of clusters of the interrupted run
    l: int  #: average subspace dimensionality
    backend: str  #: backend that wrote the snapshot (informational)
    medoid_ids: np.ndarray  #: (m,) point ids of the potential medoids M
    mcur: np.ndarray  #: (k,) next iteration's positions into M
    mbest: np.ndarray  #: (k,) best-so-far positions into M
    cost_best: float  #: best clustering cost so far
    labels_best: np.ndarray  #: (n,) labels of the best iteration
    sizes_best: np.ndarray  #: (k,) cluster sizes of the best iteration
    best_iteration: int  #: 0-based index of the best iteration
    stale: int  #: iterations since the last improvement
    total: int  #: iterations completed
    rng_state: dict[str, Any]  #: :meth:`repro.rng.RandomSource.get_state`
