"""Core PROCLUS algorithms: baseline, FAST, FAST*, and the public API."""

from .api import proclus, run_parameter_study, BACKENDS
from .proclus import ProclusEngine
from .fast import FastProclusEngine
from .fast_star import FastStarProclusEngine
from .multiparam import MultiParamResult, ReuseLevel
from .predict import assign_new_points
from .serialization import load_result, save_result
from .trace import IterationRecord, RunTrace

__all__ = [
    "proclus",
    "run_parameter_study",
    "BACKENDS",
    "ProclusEngine",
    "FastProclusEngine",
    "FastStarProclusEngine",
    "MultiParamResult",
    "ReuseLevel",
    "assign_new_points",
    "save_result",
    "load_result",
    "RunTrace",
    "IterationRecord",
]
