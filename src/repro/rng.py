"""Shared randomness protocol for all PROCLUS variants.

PROCLUS takes four kinds of random decisions:

1. drawing the random sample ``Data'`` of size ``A*k``;
2. picking the greedy seed (the first potential medoid);
3. picking the initial set of current medoids ``MCur`` from ``M``;
4. replacing bad medoids with random points from ``M``.

The paper claims that *"GPU-PROCLUS and all the algorithmic strategies
produce the same clustering as PROCLUS"*.  To make this claim testable,
every variant in this library draws randomness through a
:class:`RandomSource` using the **same named draws in the same order**.
Two runs constructed with the same seed therefore make identical random
decisions regardless of which variant executes them, and the property
tests assert that the resulting clusterings are byte-identical.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["RandomSource"]


class RandomSource:
    """Seeded source of the random decisions PROCLUS makes.

    Wraps a :class:`numpy.random.Generator`, exposing exactly the draws
    the algorithm needs.  The wrapper also counts draws so tests can
    verify that two variants consumed the same amount of randomness
    (a cheap proxy for "took the same decisions").
    """

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng = np.random.default_rng(seed)
        self.draw_count = 0

    def spawn(self) -> "RandomSource":
        """Return an independent child source (for data generation etc.)."""
        return RandomSource(self._rng.spawn(1)[0])

    # ------------------------------------------------------------------
    # The four PROCLUS decisions
    # ------------------------------------------------------------------
    def sample_indices(self, n: int, size: int) -> np.ndarray:
        """Draw ``size`` distinct indices from ``range(n)`` (``Data'``)."""
        self.draw_count += 1
        return self._rng.choice(n, size=size, replace=False)

    def greedy_seed(self, sample_size: int) -> int:
        """Pick the index (into ``Data'``) of the first potential medoid."""
        self.draw_count += 1
        return int(self._rng.integers(sample_size))

    def initial_medoids(self, num_potential: int, k: int) -> np.ndarray:
        """Pick ``k`` distinct indices into ``M`` for the initial ``MCur``."""
        self.draw_count += 1
        return self._rng.choice(num_potential, size=k, replace=False)

    def replacement_medoids(
        self, candidates: Sequence[int] | np.ndarray, count: int
    ) -> np.ndarray:
        """Pick ``count`` distinct replacement medoids from ``candidates``.

        ``candidates`` are indices into ``M`` that are not currently in
        use; the returned indices replace the bad medoids.
        """
        self.draw_count += 1
        candidates = np.asarray(candidates)
        return self._rng.choice(candidates, size=count, replace=False)

    # ------------------------------------------------------------------
    # General-purpose draws (data generation, workloads)
    # ------------------------------------------------------------------
    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator, for data-generation code."""
        return self._rng
