"""Shared randomness protocol for all PROCLUS variants.

PROCLUS takes four kinds of random decisions:

1. drawing the random sample ``Data'`` of size ``A*k``;
2. picking the greedy seed (the first potential medoid);
3. picking the initial set of current medoids ``MCur`` from ``M``;
4. replacing bad medoids with random points from ``M``.

The paper claims that *"GPU-PROCLUS and all the algorithmic strategies
produce the same clustering as PROCLUS"*.  To make this claim testable,
every variant in this library draws randomness through a
:class:`RandomSource` using the **same named draws in the same order**.
Two runs constructed with the same seed therefore make identical random
decisions regardless of which variant executes them, and the property
tests assert that the resulting clusterings are byte-identical.
"""

from __future__ import annotations

import copy
from typing import Any, Sequence

import numpy as np

from .exceptions import ParameterError

__all__ = ["RandomSource"]


class RandomSource:
    """Seeded source of the random decisions PROCLUS makes.

    Wraps a :class:`numpy.random.Generator`, exposing exactly the draws
    the algorithm needs.  The wrapper also counts draws so tests can
    verify that two variants consumed the same amount of randomness
    (a cheap proxy for "took the same decisions").
    """

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        elif seed is None or isinstance(
            seed, (int, np.integer, np.random.SeedSequence)
        ):
            self._rng = np.random.default_rng(seed)
        else:
            raise ParameterError(
                f"seed must be an int, numpy Generator, SeedSequence, or "
                f"None, got {type(seed).__name__}"
            )
        self.draw_count = 0

    def spawn(self) -> "RandomSource":
        """Return an independent child source (for data generation etc.)."""
        return RandomSource(self._rng.spawn(1)[0])

    # ------------------------------------------------------------------
    # State capture (checkpoint/resume and fault retry)
    # ------------------------------------------------------------------
    def get_state(self) -> dict[str, Any]:
        """Snapshot the generator state (JSON-serializable).

        The snapshot captures the underlying bit generator's full state
        plus the draw counter; restoring it with :meth:`set_state`
        reproduces the exact same sequence of future draws.  Used by the
        resilience layer to retry a failed iteration bit-for-bit and by
        checkpoints to resume a run mid-stream.
        """
        state: dict[str, Any] = {
            "bit_generator": copy.deepcopy(self._rng.bit_generator.state),
            "draw_count": self.draw_count,
        }
        seed_seq = getattr(self._rng.bit_generator, "seed_seq", None)
        if isinstance(seed_seq, np.random.SeedSequence):
            # The spawn counter lives on the seed sequence, not in the
            # bit-generator state; capture it so a restored *master*
            # source spawns the same per-setting children it would have.
            state["seed_seq"] = {
                "entropy": seed_seq.entropy,
                "spawn_key": list(seed_seq.spawn_key),
                "pool_size": seed_seq.pool_size,
                "n_children_spawned": seed_seq.n_children_spawned,
            }
        return state

    def set_state(self, state: dict[str, Any]) -> None:
        """Restore a state captured by :meth:`get_state`."""
        expected = self._rng.bit_generator.state["bit_generator"]
        recorded = state["bit_generator"]["bit_generator"]
        if recorded != expected:
            raise ParameterError(
                f"cannot restore {recorded} state into a {expected} source"
            )
        seq_info = state.get("seed_seq")
        seed_seq = getattr(self._rng.bit_generator, "seed_seq", None)
        if (
            seq_info is not None
            and isinstance(seed_seq, np.random.SeedSequence)
            and seed_seq.n_children_spawned != seq_info["n_children_spawned"]
        ):
            # SeedSequence attributes are read-only, so restoring the
            # spawn counter means rebuilding the generator around a
            # reconstructed sequence (same class of bit generator).
            sequence = np.random.SeedSequence(
                entropy=seq_info["entropy"],
                spawn_key=tuple(int(key) for key in seq_info["spawn_key"]),
                pool_size=int(seq_info["pool_size"]),
                n_children_spawned=int(seq_info["n_children_spawned"]),
            )
            self._rng = np.random.Generator(
                type(self._rng.bit_generator)(sequence)
            )
        self._rng.bit_generator.state = copy.deepcopy(state["bit_generator"])
        self.draw_count = int(state["draw_count"])

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "RandomSource":
        """Reconstruct a source from a :meth:`get_state` snapshot.

        Unlike :meth:`set_state` (which restores into an existing
        source), this rebuilds the source from scratch — including the
        seed sequence and its spawn counter — so a checkpointed master
        source resumes with both the same stream position *and* the
        same future :meth:`spawn` children.
        """
        seq_info = state.get("seed_seq")
        if seq_info is not None:
            sequence = np.random.SeedSequence(
                entropy=seq_info["entropy"],
                spawn_key=tuple(int(key) for key in seq_info["spawn_key"]),
                pool_size=int(seq_info["pool_size"]),
                n_children_spawned=int(seq_info["n_children_spawned"]),
            )
            generator = np.random.Generator(np.random.PCG64(sequence))
        else:  # pragma: no cover - exotic generators without a seed_seq
            generator = np.random.default_rng()
        source = cls(generator)
        source.set_state(state)
        return source

    # ------------------------------------------------------------------
    # The four PROCLUS decisions
    # ------------------------------------------------------------------
    def sample_indices(self, n: int, size: int) -> np.ndarray:
        """Draw ``size`` distinct indices from ``range(n)`` (``Data'``)."""
        self.draw_count += 1
        return self._rng.choice(n, size=size, replace=False)

    def greedy_seed(self, sample_size: int) -> int:
        """Pick the index (into ``Data'``) of the first potential medoid."""
        self.draw_count += 1
        return int(self._rng.integers(sample_size))

    def initial_medoids(self, num_potential: int, k: int) -> np.ndarray:
        """Pick ``k`` distinct indices into ``M`` for the initial ``MCur``."""
        self.draw_count += 1
        return self._rng.choice(num_potential, size=k, replace=False)

    def replacement_medoids(
        self, candidates: Sequence[int] | np.ndarray, count: int
    ) -> np.ndarray:
        """Pick ``count`` distinct replacement medoids from ``candidates``.

        ``candidates`` are indices into ``M`` that are not currently in
        use; the returned indices replace the bad medoids.
        """
        self.draw_count += 1
        candidates = np.asarray(candidates)
        return self._rng.choice(candidates, size=count, replace=False)

    # ------------------------------------------------------------------
    # General-purpose draws (data generation, workloads)
    # ------------------------------------------------------------------
    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator, for data-generation code."""
        return self._rng
