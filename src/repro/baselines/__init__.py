"""Full-dimensional clustering baselines.

PROCLUS is an adaptation of the k-medoids algorithm CLARANS (Ng & Han)
to projected clustering, and the related-work section contrasts it with
distance-based methods like k-means.  These from-scratch implementations
let the examples demonstrate *why* projected clustering is needed: on
data whose clusters live in subspaces, full-dimensional methods are
blinded by the noise dimensions (Beyer et al.'s "When is nearest
neighbor meaningful?" effect) while PROCLUS recovers the structure.
"""

from .clarans import ClaransResult, clarans
from .kmeans import KMeansResult, kmeans

__all__ = ["clarans", "ClaransResult", "kmeans", "KMeansResult"]
