"""CLARANS: Clustering Large Applications based on RANdomized Search.

Ng & Han (TKDE 2002) — the k-medoids algorithm PROCLUS adapts to
projected clustering.  CLARANS views the space of k-medoid sets as a
graph whose neighbors differ in one medoid, and performs randomized
hill-climbing: from the current node it samples up to ``max_neighbor``
random single-swap neighbors, moves to the first one that improves the
cost, and declares a local optimum when none does; ``num_local``
restarts keep the best optimum found.

The cost is the full-dimensional Manhattan cost
``sum_p min_i ||p - m_i||_1`` — the quantity whose degradation in high
dimensions motivates projected clustering in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.base import validate_data
from ..exceptions import ParameterError

__all__ = ["ClaransResult", "clarans"]


@dataclass(slots=True)
class ClaransResult:
    """A full-dimensional k-medoids clustering."""

    labels: np.ndarray  #: (n,) cluster assignment
    medoids: np.ndarray  #: (k,) point indices of the medoids
    cost: float  #: total Manhattan cost of the best node
    nodes_examined: int  #: local-search moves evaluated

    @property
    def k(self) -> int:
        return len(self.medoids)


def _manhattan_to_medoids(data: np.ndarray, medoids: np.ndarray) -> np.ndarray:
    """(n, k) full-dimensional Manhattan distances."""
    out = np.empty((data.shape[0], len(medoids)), dtype=np.float64)
    for i, mid in enumerate(medoids):
        out[:, i] = np.sum(
            np.abs(data - data[mid]), axis=1, dtype=np.float64
        )
    return out


def _node_cost(dist: np.ndarray) -> float:
    return float(dist.min(axis=1).sum())


def clarans(
    data: np.ndarray,
    k: int,
    num_local: int = 2,
    max_neighbor: int | None = None,
    seed: int | None = 0,
) -> ClaransResult:
    """Run CLARANS on ``data``.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    k:
        Number of medoids.
    num_local:
        Number of local-search restarts (the paper's ``numlocal``).
    max_neighbor:
        Neighbors sampled before declaring a local optimum; Ng & Han's
        recommended default ``max(250, 1.25% of k*(n-k))`` when omitted.
    seed:
        Seed for the randomized search.
    """
    data = validate_data(data)
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ParameterError(f"k must be in [1, n], got k={k} for n={n}")
    if num_local < 1:
        raise ParameterError(f"num_local must be >= 1, got {num_local}")
    if max_neighbor is None:
        max_neighbor = max(250, int(0.0125 * k * (n - k)))
    if max_neighbor < 1:
        raise ParameterError(f"max_neighbor must be >= 1, got {max_neighbor}")

    rng = np.random.default_rng(seed)
    best_medoids: np.ndarray | None = None
    best_cost = np.inf
    examined = 0

    for _ in range(num_local):
        current = rng.choice(n, size=k, replace=False)
        dist = _manhattan_to_medoids(data, current)
        current_cost = _node_cost(dist)
        tries = 0
        while tries < max_neighbor:
            slot = int(rng.integers(k))
            candidate = int(rng.integers(n))
            if candidate in current:
                tries += 1
                continue
            examined += 1
            new_col = np.sum(
                np.abs(data - data[candidate]), axis=1, dtype=np.float64
            )
            trial = dist.copy()
            trial[:, slot] = new_col
            trial_cost = _node_cost(trial)
            if trial_cost < current_cost:
                current = current.copy()
                current[slot] = candidate
                dist = trial
                current_cost = trial_cost
                tries = 0  # restart the neighbor counter after a move
            else:
                tries += 1
        if current_cost < best_cost:
            best_cost = current_cost
            best_medoids = current.copy()

    assert best_medoids is not None
    labels = np.argmin(
        _manhattan_to_medoids(data, best_medoids), axis=1
    ).astype(np.int64)
    return ClaransResult(
        labels=labels,
        medoids=best_medoids,
        cost=best_cost,
        nodes_examined=examined,
    )
