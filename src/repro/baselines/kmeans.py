"""Lloyd's k-means (full-dimensional Euclidean) with k-means++ seeding.

Referenced in the paper's related work as the canonical distance-based
method; used by the comparison example as the second full-dimensional
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.base import validate_data
from ..exceptions import ParameterError

__all__ = ["KMeansResult", "kmeans"]


@dataclass(slots=True)
class KMeansResult:
    """A full-dimensional k-means clustering."""

    labels: np.ndarray  #: (n,) cluster assignment
    centroids: np.ndarray  #: (k, d) cluster centers
    inertia: float  #: sum of squared Euclidean distances to centers
    iterations: int

    @property
    def k(self) -> int:
        return self.centroids.shape[0]


def _plus_plus_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: probability proportional to squared distance."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = data[first]
    closest_sq = np.sum((data - centroids[0]) ** 2, axis=1, dtype=np.float64)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            choice = int(rng.integers(n))  # all points coincide
        else:
            choice = int(rng.choice(n, p=closest_sq / total))
        centroids[i] = data[choice]
        dist_sq = np.sum((data - centroids[i]) ** 2, axis=1, dtype=np.float64)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centroids


def kmeans(
    data: np.ndarray,
    k: int,
    max_iterations: int = 100,
    tol: float = 1e-6,
    seed: int | None = 0,
) -> KMeansResult:
    """Run Lloyd's algorithm with k-means++ seeding.

    Converges when no assignment changes or the inertia improvement
    drops below ``tol`` (relative), or after ``max_iterations``.
    """
    data = validate_data(data)
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ParameterError(f"k must be in [1, n], got k={k} for n={n}")
    if max_iterations < 1:
        raise ParameterError(f"max_iterations must be >= 1, got {max_iterations}")

    rng = np.random.default_rng(seed)
    centroids = _plus_plus_init(data, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    previous_inertia = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        dist_sq = np.empty((n, k), dtype=np.float64)
        for i in range(k):
            dist_sq[:, i] = np.sum(
                (data - centroids[i]) ** 2, axis=1, dtype=np.float64
            )
        new_labels = np.argmin(dist_sq, axis=1).astype(np.int64)
        inertia = float(dist_sq[np.arange(n), new_labels].sum())
        for i in range(k):
            members = data[new_labels == i]
            if members.shape[0]:
                centroids[i] = members.mean(axis=0, dtype=np.float64)
            else:
                # Re-seed an empty cluster at the worst-served point.
                worst = int(np.argmax(dist_sq[np.arange(n), new_labels]))
                centroids[i] = data[worst]
        converged = np.array_equal(new_labels, labels) or (
            previous_inertia - inertia <= tol * max(previous_inertia, 1e-30)
        )
        labels = new_labels
        previous_inertia = inertia
        if converged:
            break
    return KMeansResult(
        labels=labels,
        centroids=centroids,
        inertia=previous_inertia,
        iterations=iterations,
    )
