"""ASCII rendering of explain attribution, diffs, and fleet analysis.

Pure functions from the JSON-shaped records produced by
:mod:`repro.obs.explain` to terminal text.  Every renderer tolerates
degenerate inputs (zero total seconds, empty kernel lists, single- or
zero-device fleets) and returns a meaningful placeholder instead of
raising — ``repro explain`` output must never crash on a thin run.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["render_attribution", "render_diff", "render_fleet_attribution"]


def _component_bar(
    components: Mapping[str, float], total: float, width: int
) -> str:
    """One stacked bar: each component's share in its marker character."""
    markers = {
        "launch": "L",
        "compute": "c",
        "memory": "m",
        "atomic": "a",
        "transfer": "t",
        "comm": "x",
    }
    if total <= 0:
        return " " * width
    bar = ""
    for name, seconds in sorted(
        components.items(), key=lambda item: -item[1]
    ):
        cells = round(seconds / total * width)
        bar += markers.get(name, "?") * max(0, cells)
    return bar[:width].ljust(width)


def render_attribution(
    record: Mapping[str, Any], top: int = 10, width: int = 32
) -> str:
    """Render an attribution record as a terminal report."""
    kernels = record.get("kernels") or []
    total = float(record.get("total_seconds") or 0.0)
    if not kernels or total <= 0:
        return "(no attributed cost — empty run)"
    lines = [
        f"{record.get('model', 'run')}: {total * 1e3:.3f} ms modeled, "
        "by component:"
    ]
    components = record.get("components") or {}
    for name, seconds in sorted(components.items(), key=lambda i: -i[1]):
        lines.append(
            f"  {name:<8} {seconds * 1e3:>9.3f} ms  "
            f"{seconds / total * 100:5.1f}%"
        )
    lines.append("")
    name_width = max(len(k["name"]) for k in kernels[:top])
    lines.append(
        f"{'kernel'.ljust(name_width)}  {'calls':>6}  {'total':>11}  "
        f"{'share':>6}  {'components'.ljust(width)}  dominant"
    )
    for kernel in kernels[:top]:
        bar = _component_bar(kernel.get("components") or {}, kernel["seconds"], width)
        lines.append(
            f"{kernel['name'].ljust(name_width)}  {kernel['calls']:>6}  "
            f"{kernel['seconds'] * 1e3:>9.3f}ms  "
            f"{kernel.get('share', 0.0) * 100:>5.1f}%  |{bar}|  "
            f"{kernel.get('dominant', '?')}"
        )
    if len(kernels) > top:
        rest = sum(k["seconds"] for k in kernels[top:])
        lines.append(
            f"(+{len(kernels) - top} more kernels, {rest * 1e3:.3f} ms)"
        )
    fusion = record.get("fusion") or {}
    pairs = fusion.get("pairs") or []
    if pairs:
        lines.append("")
        lines.append(
            f"fusion headroom: {fusion.get('total_headroom_seconds', 0.0) * 1e3:.3f} ms "
            f"({fusion.get('headroom_fraction', 0.0) * 100:.1f}% of the run) "
            "in launch overhead; top pairs:"
        )
        for pair in pairs[:3]:
            lines.append(
                f"  {pair['before']} -> {pair['after']}: "
                f"{pair['transitions']} transitions, "
                f"{pair['headroom_seconds'] * 1e6:.1f} us"
            )
    cache = record.get("cache") or {}
    if cache.get("enabled"):
        lines.append(
            f"dist cache: {cache.get('hit_rate', 0.0) * 100:.1f}% hit rate "
            f"({cache.get('hits', 0):g} hit / {cache.get('misses', 0):g} missed rows), "
            f"~{cache.get('avoided_seconds_estimate', 0.0) * 1e3:.3f} ms avoided"
        )
    occupancy = record.get("occupancy")
    if occupancy:
        lines.append(
            f"occupancy ({occupancy.get('gpu', '?')}): "
            f"{occupancy.get('weighted_achieved', 0.0) * 100:.1f}% "
            "achieved (seconds-weighted)"
        )
    return "\n".join(lines)


def render_diff(diff: Mapping[str, Any], top: int = 5) -> str:
    """Render a differential attribution (``repro explain --diff``)."""
    base = float(diff.get("baseline_seconds") or 0.0)
    cur = float(diff.get("fresh_seconds") or 0.0)
    if diff.get("zero"):
        return (
            f"no difference: both runs attribute {base * 1e3:.3f} ms "
            "identically (exact zero delta)"
        )
    rel = diff.get("rel_delta")
    rel_text = f" ({rel * 100:+.2f}%)" if rel is not None else ""
    lines = [
        f"modeled seconds {base * 1e3:.3f} ms -> {cur * 1e3:.3f} ms"
        f"{rel_text}"
    ]
    for title, key in (
        ("components", "components"),
        ("pipeline x component", "pipeline_components"),
        ("kernels", "kernels"),
    ):
        movers = diff.get(key) or []
        if not movers:
            continue
        lines.append(f"top {title} movers:")
        for row in movers[:top]:
            rel = row.get("rel_delta")
            rel_text = f" ({rel * 100:+.1f}%)" if rel is not None else " (new)"
            lines.append(
                f"  {row['name']}: {row['baseline'] * 1e3:.3f} -> "
                f"{row['fresh'] * 1e3:.3f} ms{rel_text}"
            )
    return "\n".join(lines)


def render_fleet_attribution(fleet: Mapping[str, Any], width: int = 32) -> str:
    """Render fleet straggler/imbalance attribution."""
    devices = fleet.get("devices") or []
    makespan = float(fleet.get("makespan_seconds") or 0.0)
    straggler = fleet.get("straggler_device")
    straggler_text = "n/a" if straggler is None else f"gpu{straggler}"
    lines = [
        f"fleet of {fleet.get('num_devices', len(devices))}: "
        f"makespan {makespan * 1e3:.3f} ms, "
        f"comm {float(fleet.get('comm_fraction') or 0.0) * 100:.1f}%, "
        f"straggler index {float(fleet.get('straggler_index') or 1.0):.3f} "
        f"({straggler_text}), "
        f"imbalance {float(fleet.get('imbalance') or 1.0):.3f}"
    ]
    if not devices:
        lines.append("(no per-device ledgers)")
        return "\n".join(lines)
    for entry in devices:
        busy = float(entry.get("busy_seconds") or 0.0)
        sync = float(entry.get("sync_seconds") or 0.0)
        idle = float(entry.get("idle_seconds") or 0.0)
        if makespan > 0:
            bar = (
                "#" * round(busy / makespan * width)
                + "." * round(sync / makespan * width)
                + " " * round(idle / makespan * width)
            )
        else:
            bar = ""
        lines.append(
            f"gpu{entry.get('device', '?')} |{bar[:width].ljust(width)}| "
            f"busy {busy * 1e3:.3f} ms, sync {sync * 1e3:.3f} ms, "
            f"idle {idle * 1e3:.3f} ms"
        )
    return "\n".join(lines)
