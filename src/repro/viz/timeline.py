"""ASCII timeline rendering of a traced run.

Perfetto is the first-class viewer for exported traces, but a terminal
summary answers the common questions ("where did the time go, which
pipeline dominates") without leaving the shell — the same spirit as the
ASCII charts in :mod:`repro.viz.ascii`.  Pure functions from a
:class:`~repro.obs.Tracer` to strings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - hints only
    from ..obs.tracer import Span, Tracer

__all__ = [
    "render_span_tree",
    "render_device_lanes",
    "render_serve_lanes",
    "render_health",
    "render_timeline",
    "render_postmortem",
]


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f}ms"
    return f"{seconds * 1e6:8.2f}us"


def _bar(start: float, end: float, total: float, width: int) -> str:
    if total <= 0:
        return " " * width
    left = int(start / total * width)
    right = max(left + 1, round(end / total * width))
    right = min(right, width)
    return " " * left + "#" * (right - left) + " " * (width - right)


def render_span_tree(
    roots: "list[Span]", width: int = 40, max_depth: int = 4,
    max_children: int = 6,
) -> str:
    """Indented span tree with bars positioned on the wall clock.

    Long sibling runs (e.g. dozens of iterations) are elided after
    ``max_children`` entries to keep the output readable.
    """
    if not roots:
        return "(no spans recorded)"
    total = max((span.end or span.start) for span in roots)
    name_width = 30
    lines = []

    def emit(span: "Span", depth: int) -> None:
        label = ("  " * depth + span.name)[:name_width]
        end = span.end if span.end is not None else span.start
        lines.append(
            f"{label.ljust(name_width)} |{_bar(span.start, end, total, width)}| "
            f"{_format_seconds(span.duration)}"
        )
        if depth >= max_depth:
            return
        shown = span.children[:max_children]
        for child in shown:
            emit(child, depth + 1)
        hidden = len(span.children) - len(shown)
        if hidden > 0:
            lines.append("  " * (depth + 1) + f"... {hidden} more sibling spans")

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def render_device_lanes(tracer: "Tracer", width: int = 40) -> str:
    """One lane per kernel pipeline on the modeled-device timeline."""
    modeled = [e for e in tracer.kernel_events if e.clock == "modeled"]
    if not modeled:
        return "(no modeled kernel launches recorded)"
    total = max(event.start + event.duration for event in modeled)
    lanes: dict[str, list] = {}
    for event in modeled:
        lanes.setdefault(event.pipeline, []).append(event)
    name_width = max(len(name) for name in lanes) + 2
    lines = [
        f"device timeline ({total * 1e3:.3f}ms modeled)",
    ]
    for name, events in lanes.items():
        cells = [" "] * width
        busy = 0.0
        for event in events:
            busy += event.duration
            left = int(event.start / total * width) if total > 0 else 0
            right = max(
                left + 1, round((event.start + event.duration) / total * width)
            )
            for index in range(left, min(right, width)):
                cells[index] = "#"
        lines.append(
            f"{name.ljust(name_width)}|{''.join(cells)}| "
            f"{_format_seconds(busy)} in {len(events)} launches"
        )
    return "\n".join(lines)


#: Event kinds marked on the serve ``events`` lane, by precedence
#: (later entries win when several land in the same cell).
_SERVE_MARKS = (
    ("cache_hit", "h"),
    ("coalesce", "*"),
    ("evict", "e"),
    ("reject", "!"),
    ("fail", "!"),
)


def render_serve_lanes(events, width: int = 60) -> str:
    """Queue-depth / occupancy lanes from a serve event log.

    ``events`` is an iterable of :class:`~repro.serve.events.ServeEvent`
    (or their ``as_dict()`` form).  Each event carries a snapshot of the
    queue depth and running-job count, so the lanes sample those step
    functions across the service's lifetime: a digit cell is the depth
    at that instant (``+`` for 10 or more), and a final marker lane
    flags cache hits (``h``), coalesced dispatches (``*``), evictions
    (``e``), and rejects/failures (``!``).
    """
    records = [
        event.as_dict() if hasattr(event, "as_dict") else dict(event)
        for event in events
    ]
    if not records:
        return "(no serve events recorded)"
    records.sort(key=lambda record: record["ts"])
    start = records[0]["ts"]
    total = records[-1]["ts"] - start

    def depth_cells(field: str) -> tuple[str, int]:
        cells = []
        peak = 0
        index = 0
        level = 0
        for cell in range(width):
            t = start + (total * (cell + 1) / width if total > 0 else 0.0)
            while index < len(records) and records[index]["ts"] <= t:
                level = records[index][field]
                index += 1
            peak = max(peak, level)
            cells.append(" " if level <= 0 else str(level) if level < 10 else "+")
        return "".join(cells), peak

    queued_cells, queued_peak = depth_cells("queued")
    running_cells, running_peak = depth_cells("running")

    marks = [" "] * width
    counts: dict[str, int] = {}
    for record in records:
        counts[record["kind"]] = counts.get(record["kind"], 0) + 1
        for kind, mark in _SERVE_MARKS:
            if record["kind"] == kind:
                cell = (
                    int((record["ts"] - start) / total * (width - 1))
                    if total > 0
                    else 0
                )
                marks[cell] = mark

    name_width = 9
    lines = [
        f"serve timeline ({len(records)} events over {total:.3f}s)",
        f"{'queued'.ljust(name_width)}|{queued_cells}| peak {queued_peak}",
        f"{'running'.ljust(name_width)}|{running_cells}| peak {running_peak}",
        f"{'events'.ljust(name_width)}|{''.join(marks)}| "
        "h=cache hit  *=coalesce  e=evict  !=reject/fail",
        "counts: "
        + ", ".join(f"{kind}={counts[kind]}" for kind in sorted(counts)),
    ]
    return "\n".join(lines)


def render_health(health: dict) -> str:
    """Render a ``repro.health/1`` report as an ASCII SLO dashboard.

    One row per declared objective (value vs threshold, pass/fail),
    then the service's headline counters and latency percentiles.  The
    ``repro monitor`` live view redraws this from ``health.json``.
    """
    state = "OK" if health.get("ok") else "FAILING"
    tag = " (final)" if health.get("final") else ""
    lines = [
        f"service health @ t={health.get('now', 0.0):.3f}s: {state}{tag}",
        f"{'SLO':<26} {'value':>12} {'objective':>14}  status",
        f"{'-' * 26} {'-' * 12} {'-' * 14}  ------",
    ]
    for slo in health.get("slos", []):
        objective = f"{slo['op']} {slo['threshold']:g}"
        lines.append(
            f"{slo['name']:<26} {slo['value']:>12.4f} {objective:>14}  "
            f"{'ok' if slo['ok'] else 'FAIL'}"
        )
    service = health.get("service", {})
    counters = service.get("counters", {})
    if counters:
        headline = (
            ("serve.requests", "requests"),
            ("serve.completed", "completed"),
            ("serve.cache.hits", "cache hits"),
            ("serve.coalesced", "coalesced"),
            ("serve.rejected", "rejected"),
            ("serve.failed", "failed"),
        )
        lines.append(
            "service:  "
            + "  ".join(
                f"{label}={int(counters.get(name, 0))}"
                for name, label in headline
            )
        )
    fleet_headline = (
        ("fleet.jobs", "sharded jobs"),
        ("fleet.quarantined", "quarantined"),
        ("fleet.readmitted", "readmitted"),
        ("fleet.recovery.reshards", "reshards"),
    )
    if any(counters.get(name) for name, _ in fleet_headline):
        lines.append(
            "fleet:    "
            + "  ".join(
                f"{label}={int(counters.get(name, 0))}"
                for name, label in fleet_headline
            )
        )
    latency = service.get("latency_seconds")
    if latency and latency.get("count"):
        lines.append(
            f"latency:  p50={latency['p50'] * 1e3:.1f}ms  "
            f"p95={latency['p95'] * 1e3:.1f}ms  "
            f"over {int(latency['count'])} responses"
        )
    return "\n".join(lines)


def render_postmortem(
    bundle: dict, analysis: dict, width: int = 60
) -> str:
    """Render a postmortem bundle + its forensic analysis as text.

    The terminal face of ``repro postmortem``: failure echo, suspect
    fault/kernel/device, the resilience trail the runner walked before
    dying, counter triage, collective-straggler table, the serve lanes
    of the flight recorder's last events, and the final health snapshot.
    """
    failure = analysis.get("failure", {})
    lines = [
        f"postmortem bundle: {analysis.get('bundle') or '(in memory)'}",
        f"reason: {analysis.get('reason', '?')}",
    ]
    if failure.get("error_type"):
        lines.append(
            f"error:  {failure['error_type']}: {failure.get('message', '')}"
        )
    if failure.get("last_error_type"):
        lines.append(f"last underlying error: {failure['last_error_type']}")
    if failure.get("detail"):
        lines.append(f"detail: {failure['detail']}")

    suspects = analysis.get("suspects") or {}
    if suspects:
        lines.append("")
        lines.append("suspects:")
        fault = suspects.get("fault")
        if fault:
            lines.append(
                f"  fault   {fault.get('spec', '?')} "
                f"({fault.get('kind', '?')} at {fault.get('site', '?')} "
                f"during {fault.get('operation', '?')})"
            )
        if suspects.get("device"):
            lines.append(f"  device  {suspects['device']}")
        kernel = suspects.get("kernel")
        if kernel:
            lines.append(
                f"  kernel  {kernel.get('name', '?')} "
                f"[{kernel.get('pipeline', '?')}/{kernel.get('phase', '?')}]"
            )

    trail = analysis.get("resilience_trail") or []
    if trail:
        lines.append("")
        lines.append(f"resilience trail ({len(trail)} actions):")
        for event in trail:
            step = f"  {event.get('kind', '?'):<10} rung {event.get('rung')}"
            if event.get("to_rung") is not None:
                step += f" -> {event['to_rung']}"
            if event.get("error_type"):
                step += f"  after {event['error_type']}"
            if event.get("detail"):
                step += f"  ({event['detail']})"
            lines.append(step)

    triage = analysis.get("counter_triage") or []
    if triage:
        lines.append("")
        lines.append("counter triage:")
        lines.extend(f"  {line}" for line in triage)

    stragglers = analysis.get("stragglers")
    if stragglers:
        lines.append("")
        lines.append(
            f"collective stragglers (straggler: {stragglers['straggler']}):"
        )
        for device, wait in stragglers["wait_seconds"].items():
            steps = stragglers["steps"].get(device, 0)
            marker = "  <- straggler" if device == stragglers["straggler"] else ""
            lines.append(
                f"  {device:<8} waited {_format_seconds(wait).strip():>10} "
                f"over {steps} collectives{marker}"
            )

    failing = analysis.get("failing_slos") or []
    if failing:
        lines.append("")
        lines.append("failing SLOs: " + ", ".join(failing))

    serve_ring = (bundle.get("rings", {}).get("streams", {}) or {}).get(
        "serve", []
    )
    if serve_ring:
        lines.append("")
        lines.append(render_serve_lanes(serve_ring, width=width))

    health = bundle.get("health")
    if isinstance(health, dict):
        lines.append("")
        lines.append(render_health(health))

    dropped = {
        stream: count
        for stream, count in (analysis.get("dropped") or {}).items()
        if count
    }
    if dropped:
        lines.append("")
        lines.append(
            "ring overflow (older records dropped): "
            + ", ".join(
                f"{stream}={count}" for stream, count in sorted(dropped.items())
            )
        )
    lines.append("")
    lines.append(
        "replayable from bundle alone: "
        + ("yes" if analysis.get("replayable") else "no")
    )
    return "\n".join(lines)


def render_timeline(tracer: "Tracer", width: int = 40) -> str:
    """Full ASCII timeline: host span tree plus device pipeline lanes."""
    sections = [render_span_tree(tracer.roots, width=width)]
    if any(event.clock == "modeled" for event in tracer.kernel_events):
        sections.append(render_device_lanes(tracer, width=width))
    counters: dict[str, float] = {}
    for sample in tracer.counter_samples:
        counters[sample.track] = sample.value
    if counters:
        sections.append(
            "final counters: "
            + ", ".join(f"{name}={value:.3g}" for name, value in counters.items())
        )
    return "\n\n".join(sections)
