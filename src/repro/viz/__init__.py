"""Terminal visualization: ASCII charts for benchmark series and traces."""

from .ascii import (
    bar_chart,
    fleet_utilization_chart,
    line_chart,
    log_line_chart,
    sparkline,
)
from .explain import (
    render_attribution,
    render_diff,
    render_fleet_attribution,
)
from .timeline import (
    render_device_lanes,
    render_health,
    render_postmortem,
    render_serve_lanes,
    render_span_tree,
    render_timeline,
)

__all__ = [
    "bar_chart",
    "fleet_utilization_chart",
    "line_chart",
    "log_line_chart",
    "sparkline",
    "render_attribution",
    "render_diff",
    "render_fleet_attribution",
    "render_span_tree",
    "render_device_lanes",
    "render_serve_lanes",
    "render_health",
    "render_timeline",
    "render_postmortem",
]
