"""Terminal visualization: ASCII charts for benchmark series and traces."""

from .ascii import bar_chart, line_chart, log_line_chart, sparkline

__all__ = ["bar_chart", "line_chart", "log_line_chart", "sparkline"]
