"""ASCII charts: render benchmark series without a plotting stack.

The paper's figures are log-log running-time plots; this module renders
the same series legibly in a terminal, which is all the benchmark
harness needs (`python -m repro bench fig2ab --plot`).  Pure functions
from data to strings — easy to test, nothing to configure.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "sparkline",
    "bar_chart",
    "line_chart",
    "log_line_chart",
    "fleet_utilization_chart",
]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line chart: each value becomes one block character."""
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        return _SPARK_LEVELS[0] * len(values)
    out = []
    for v in values:
        level = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per (label, value)."""
    labels = [str(x) for x in labels]
    values = list(values)
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels for {len(values)} values"
        )
    if not values:
        return "(no data)"
    peak = max(values)
    label_width = max(len(x) for x in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * (round(value / peak * width) if peak > 0 else 0)
        lines.append(
            f"{label.rjust(label_width)} |{bar.ljust(width)}| "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def fleet_utilization_chart(report: dict, width: int = 40) -> str:
    """Per-device busy/sync bars for a :func:`repro.fleet.fleet_report`.

    One row per fleet member: ``#`` is modeled busy time, ``.`` is time
    spent waiting at (or inside) collective steps, scaled to the fleet
    makespan.  An empty shard (zero points) renders an empty bar.
    Degenerate reports (no devices, missing keys, a zero-second
    makespan) render a placeholder or a zero-width bar instead of
    raising.
    """
    devices = report.get("devices") or []
    if not devices:
        return "(no devices)"
    makespan = float(report.get("total_seconds") or 0.0)
    labels = [
        f"gpu{entry.get('device', index)} {entry.get('spec', '?')}"
        for index, entry in enumerate(devices)
    ]
    label_width = max(len(label) for label in labels)
    lines = [
        f"{report.get('name', 'fleet')}: modeled makespan "
        f"{makespan * 1e3:.3f} ms, "
        f"{float(report.get('communication_fraction') or 0.0) * 100:.1f}% in "
        f"{float(report.get('allreduce_steps') or 0):.0f} all-reduce + "
        f"{float(report.get('broadcast_steps') or 0):.0f} broadcast steps"
    ]
    for label, entry in zip(labels, devices):
        busy = float(entry.get("busy_seconds") or 0.0)
        sync = float(entry.get("sync_seconds") or 0.0)
        if makespan > 0:
            busy_cells = round(busy / makespan * width)
            sync_cells = round(sync / makespan * width)
        else:
            busy_cells = sync_cells = 0
        bar = "#" * max(0, busy_cells) + "." * max(0, sync_cells)
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)[:width]}| "
            f"busy {busy * 1e3:.3f} ms, sync {sync * 1e3:.3f} ms"
        )
    return "\n".join(lines)


def _render_grid(
    xs: list[float],
    series: dict[str, list[float]],
    width: int,
    height: int,
    x_label: str,
    y_format,
) -> str:
    markers = "*o+x@%&"
    all_y = [y for ys in series.values() for y in ys]
    lo, hi = min(all_y), max(all_y)
    span = (hi - lo) or 1.0
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height + 1)]
    for index, (name, ys) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - round((y - lo) / span * height)
            grid[row][col] = marker

    lines = []
    for row_index, row in enumerate(grid):
        value = hi - (row_index / height) * span
        lines.append(f"{y_format(value):>12} |{''.join(row)}")
    lines.append(" " * 13 + "+" + "-" * width)
    lines.append(" " * 14 + x_label)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 14 + legend)
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
) -> str:
    """Multi-series scatter/line chart on linear axes."""
    xs = [float(x) for x in xs]
    series = {name: [float(v) for v in ys] for name, ys in series.items()}
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(xs)} x values"
            )
    if not xs or not series:
        return "(no data)"
    return _render_grid(xs, series, width, height, x_label, lambda v: f"{v:.4g}")


def log_line_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    x_label: str = "x (log)",
) -> str:
    """Multi-series chart on log-log axes (the paper's figure style).

    All values must be positive.
    """
    xs = [float(x) for x in xs]
    if any(x <= 0 for x in xs):
        raise ValueError("log chart requires positive x values")
    log_series = {}
    for name, ys in series.items():
        ys = [float(v) for v in ys]
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(xs)} x values"
            )
        if any(v <= 0 for v in ys):
            raise ValueError(f"log chart requires positive values in {name!r}")
        log_series[name] = [math.log10(v) for v in ys]
    if not xs or not series:
        return "(no data)"
    log_xs = [math.log10(x) for x in xs]
    return _render_grid(
        log_xs, log_series, width, height, x_label,
        lambda v: f"{10 ** v:.3g}",
    )
